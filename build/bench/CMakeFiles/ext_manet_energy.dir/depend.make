# Empty dependencies file for ext_manet_energy.
# This may be replaced when dependencies are built.
