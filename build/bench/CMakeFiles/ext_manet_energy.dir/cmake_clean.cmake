file(REMOVE_RECURSE
  "CMakeFiles/ext_manet_energy.dir/ext_manet_energy.cc.o"
  "CMakeFiles/ext_manet_energy.dir/ext_manet_energy.cc.o.d"
  "ext_manet_energy"
  "ext_manet_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_manet_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
