file(REMOVE_RECURSE
  "CMakeFiles/fig11_clustering_quality.dir/fig11_clustering_quality.cc.o"
  "CMakeFiles/fig11_clustering_quality.dir/fig11_clustering_quality.cc.o.d"
  "fig11_clustering_quality"
  "fig11_clustering_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_clustering_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
