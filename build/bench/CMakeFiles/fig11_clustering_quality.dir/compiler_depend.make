# Empty compiler generated dependencies file for fig11_clustering_quality.
# This may be replaced when dependencies are built.
