# Empty compiler generated dependencies file for fig8c_insertion_layers.
# This may be replaced when dependencies are built.
