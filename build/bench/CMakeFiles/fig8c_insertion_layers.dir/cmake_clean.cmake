file(REMOVE_RECURSE
  "CMakeFiles/fig8c_insertion_layers.dir/fig8c_insertion_layers.cc.o"
  "CMakeFiles/fig8c_insertion_layers.dir/fig8c_insertion_layers.cc.o.d"
  "fig8c_insertion_layers"
  "fig8c_insertion_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_insertion_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
