file(REMOVE_RECURSE
  "CMakeFiles/ext_unstructured.dir/ext_unstructured.cc.o"
  "CMakeFiles/ext_unstructured.dir/ext_unstructured.cc.o.d"
  "ext_unstructured"
  "ext_unstructured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_unstructured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
