# Empty dependencies file for ext_unstructured.
# This may be replaced when dependencies are built.
