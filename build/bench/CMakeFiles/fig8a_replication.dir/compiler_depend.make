# Empty compiler generated dependencies file for fig8a_replication.
# This may be replaced when dependencies are built.
