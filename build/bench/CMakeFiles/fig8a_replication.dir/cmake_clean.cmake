file(REMOVE_RECURSE
  "CMakeFiles/fig8a_replication.dir/fig8a_replication.cc.o"
  "CMakeFiles/fig8a_replication.dir/fig8a_replication.cc.o.d"
  "fig8a_replication"
  "fig8a_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
