file(REMOVE_RECURSE
  "CMakeFiles/abl_overlay_choice.dir/abl_overlay_choice.cc.o"
  "CMakeFiles/abl_overlay_choice.dir/abl_overlay_choice.cc.o.d"
  "abl_overlay_choice"
  "abl_overlay_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_overlay_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
