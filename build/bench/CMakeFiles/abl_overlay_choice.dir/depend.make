# Empty dependencies file for abl_overlay_choice.
# This may be replaced when dependencies are built.
