file(REMOVE_RECURSE
  "CMakeFiles/abl_replication_recall.dir/abl_replication_recall.cc.o"
  "CMakeFiles/abl_replication_recall.dir/abl_replication_recall.cc.o.d"
  "abl_replication_recall"
  "abl_replication_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_replication_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
