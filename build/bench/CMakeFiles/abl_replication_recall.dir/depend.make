# Empty dependencies file for abl_replication_recall.
# This may be replaced when dependencies are built.
