# Empty compiler generated dependencies file for fig10a_range_recall.
# This may be replaced when dependencies are built.
