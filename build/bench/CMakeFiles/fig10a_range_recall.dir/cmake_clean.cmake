file(REMOVE_RECURSE
  "CMakeFiles/fig10a_range_recall.dir/fig10a_range_recall.cc.o"
  "CMakeFiles/fig10a_range_recall.dir/fig10a_range_recall.cc.o.d"
  "fig10a_range_recall"
  "fig10a_range_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_range_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
