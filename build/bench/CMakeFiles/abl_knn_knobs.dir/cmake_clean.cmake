file(REMOVE_RECURSE
  "CMakeFiles/abl_knn_knobs.dir/abl_knn_knobs.cc.o"
  "CMakeFiles/abl_knn_knobs.dir/abl_knn_knobs.cc.o.d"
  "abl_knn_knobs"
  "abl_knn_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_knn_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
