# Empty compiler generated dependencies file for abl_knn_knobs.
# This may be replaced when dependencies are built.
