
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_knn_knobs.cc" "bench/CMakeFiles/abl_knn_knobs.dir/abl_knn_knobs.cc.o" "gcc" "bench/CMakeFiles/abl_knn_knobs.dir/abl_knn_knobs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hyperm/CMakeFiles/hyperm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/hyperm_can.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/hyperm_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/hyperm_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hyperm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hyperm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hyperm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyperm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vec/CMakeFiles/hyperm_vec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hyperm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
