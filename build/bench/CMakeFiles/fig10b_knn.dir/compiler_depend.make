# Empty compiler generated dependencies file for fig10b_knn.
# This may be replaced when dependencies are built.
