file(REMOVE_RECURSE
  "CMakeFiles/fig10b_knn.dir/fig10b_knn.cc.o"
  "CMakeFiles/fig10b_knn.dir/fig10b_knn.cc.o.d"
  "fig10b_knn"
  "fig10b_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
