file(REMOVE_RECURSE
  "CMakeFiles/abl_wavelet_choice.dir/abl_wavelet_choice.cc.o"
  "CMakeFiles/abl_wavelet_choice.dir/abl_wavelet_choice.cc.o.d"
  "abl_wavelet_choice"
  "abl_wavelet_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wavelet_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
