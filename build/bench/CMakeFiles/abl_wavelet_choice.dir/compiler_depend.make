# Empty compiler generated dependencies file for abl_wavelet_choice.
# This may be replaced when dependencies are built.
