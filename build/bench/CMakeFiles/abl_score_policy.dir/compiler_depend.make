# Empty compiler generated dependencies file for abl_score_policy.
# This may be replaced when dependencies are built.
