file(REMOVE_RECURSE
  "CMakeFiles/abl_score_policy.dir/abl_score_policy.cc.o"
  "CMakeFiles/abl_score_policy.dir/abl_score_policy.cc.o.d"
  "abl_score_policy"
  "abl_score_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_score_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
