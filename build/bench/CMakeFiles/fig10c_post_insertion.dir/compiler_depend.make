# Empty compiler generated dependencies file for fig10c_post_insertion.
# This may be replaced when dependencies are built.
