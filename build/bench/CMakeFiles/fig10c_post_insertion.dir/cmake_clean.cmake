file(REMOVE_RECURSE
  "CMakeFiles/fig10c_post_insertion.dir/fig10c_post_insertion.cc.o"
  "CMakeFiles/fig10c_post_insertion.dir/fig10c_post_insertion.cc.o.d"
  "fig10c_post_insertion"
  "fig10c_post_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_post_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
