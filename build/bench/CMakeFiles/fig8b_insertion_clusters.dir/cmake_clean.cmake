file(REMOVE_RECURSE
  "CMakeFiles/fig8b_insertion_clusters.dir/fig8b_insertion_clusters.cc.o"
  "CMakeFiles/fig8b_insertion_clusters.dir/fig8b_insertion_clusters.cc.o.d"
  "fig8b_insertion_clusters"
  "fig8b_insertion_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_insertion_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
