# Empty compiler generated dependencies file for fig8b_insertion_clusters.
# This may be replaced when dependencies are built.
