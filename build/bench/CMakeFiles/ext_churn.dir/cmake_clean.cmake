file(REMOVE_RECURSE
  "CMakeFiles/ext_churn.dir/ext_churn.cc.o"
  "CMakeFiles/ext_churn.dir/ext_churn.cc.o.d"
  "ext_churn"
  "ext_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
