# Empty compiler generated dependencies file for ext_churn.
# This may be replaced when dependencies are built.
