file(REMOVE_RECURSE
  "CMakeFiles/tab_c_sweep.dir/tab_c_sweep.cc.o"
  "CMakeFiles/tab_c_sweep.dir/tab_c_sweep.cc.o.d"
  "tab_c_sweep"
  "tab_c_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_c_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
