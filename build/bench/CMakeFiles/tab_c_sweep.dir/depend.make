# Empty dependencies file for tab_c_sweep.
# This may be replaced when dependencies are built.
