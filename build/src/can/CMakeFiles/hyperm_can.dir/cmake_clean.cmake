file(REMOVE_RECURSE
  "CMakeFiles/hyperm_can.dir/can_overlay.cc.o"
  "CMakeFiles/hyperm_can.dir/can_overlay.cc.o.d"
  "libhyperm_can.a"
  "libhyperm_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
