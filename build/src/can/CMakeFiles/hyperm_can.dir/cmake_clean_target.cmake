file(REMOVE_RECURSE
  "libhyperm_can.a"
)
