# Empty dependencies file for hyperm_can.
# This may be replaced when dependencies are built.
