file(REMOVE_RECURSE
  "libhyperm_common.a"
)
