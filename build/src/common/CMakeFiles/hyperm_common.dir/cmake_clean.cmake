file(REMOVE_RECURSE
  "CMakeFiles/hyperm_common.dir/math_util.cc.o"
  "CMakeFiles/hyperm_common.dir/math_util.cc.o.d"
  "CMakeFiles/hyperm_common.dir/rng.cc.o"
  "CMakeFiles/hyperm_common.dir/rng.cc.o.d"
  "CMakeFiles/hyperm_common.dir/status.cc.o"
  "CMakeFiles/hyperm_common.dir/status.cc.o.d"
  "libhyperm_common.a"
  "libhyperm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
