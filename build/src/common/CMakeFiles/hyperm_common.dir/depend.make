# Empty dependencies file for hyperm_common.
# This may be replaced when dependencies are built.
