file(REMOVE_RECURSE
  "libhyperm_data.a"
)
