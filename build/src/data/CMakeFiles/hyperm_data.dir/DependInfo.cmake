
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset_io.cc" "src/data/CMakeFiles/hyperm_data.dir/dataset_io.cc.o" "gcc" "src/data/CMakeFiles/hyperm_data.dir/dataset_io.cc.o.d"
  "/root/repo/src/data/histogram_generator.cc" "src/data/CMakeFiles/hyperm_data.dir/histogram_generator.cc.o" "gcc" "src/data/CMakeFiles/hyperm_data.dir/histogram_generator.cc.o.d"
  "/root/repo/src/data/markov_generator.cc" "src/data/CMakeFiles/hyperm_data.dir/markov_generator.cc.o" "gcc" "src/data/CMakeFiles/hyperm_data.dir/markov_generator.cc.o.d"
  "/root/repo/src/data/peer_assignment.cc" "src/data/CMakeFiles/hyperm_data.dir/peer_assignment.cc.o" "gcc" "src/data/CMakeFiles/hyperm_data.dir/peer_assignment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hyperm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/vec/CMakeFiles/hyperm_vec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hyperm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hyperm_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
