file(REMOVE_RECURSE
  "CMakeFiles/hyperm_data.dir/dataset_io.cc.o"
  "CMakeFiles/hyperm_data.dir/dataset_io.cc.o.d"
  "CMakeFiles/hyperm_data.dir/histogram_generator.cc.o"
  "CMakeFiles/hyperm_data.dir/histogram_generator.cc.o.d"
  "CMakeFiles/hyperm_data.dir/markov_generator.cc.o"
  "CMakeFiles/hyperm_data.dir/markov_generator.cc.o.d"
  "CMakeFiles/hyperm_data.dir/peer_assignment.cc.o"
  "CMakeFiles/hyperm_data.dir/peer_assignment.cc.o.d"
  "libhyperm_data.a"
  "libhyperm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
