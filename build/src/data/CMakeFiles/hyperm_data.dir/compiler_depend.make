# Empty compiler generated dependencies file for hyperm_data.
# This may be replaced when dependencies are built.
