file(REMOVE_RECURSE
  "CMakeFiles/hyperm_vec.dir/vector.cc.o"
  "CMakeFiles/hyperm_vec.dir/vector.cc.o.d"
  "libhyperm_vec.a"
  "libhyperm_vec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
