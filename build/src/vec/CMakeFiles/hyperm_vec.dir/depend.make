# Empty dependencies file for hyperm_vec.
# This may be replaced when dependencies are built.
