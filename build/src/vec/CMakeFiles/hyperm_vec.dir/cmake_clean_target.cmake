file(REMOVE_RECURSE
  "libhyperm_vec.a"
)
