file(REMOVE_RECURSE
  "CMakeFiles/hyperm_manet.dir/topology.cc.o"
  "CMakeFiles/hyperm_manet.dir/topology.cc.o.d"
  "libhyperm_manet.a"
  "libhyperm_manet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_manet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
