file(REMOVE_RECURSE
  "libhyperm_manet.a"
)
