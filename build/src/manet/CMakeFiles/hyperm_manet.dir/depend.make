# Empty dependencies file for hyperm_manet.
# This may be replaced when dependencies are built.
