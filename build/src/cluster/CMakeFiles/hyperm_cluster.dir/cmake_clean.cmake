file(REMOVE_RECURSE
  "CMakeFiles/hyperm_cluster.dir/kmeans.cc.o"
  "CMakeFiles/hyperm_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/hyperm_cluster.dir/metrics.cc.o"
  "CMakeFiles/hyperm_cluster.dir/metrics.cc.o.d"
  "CMakeFiles/hyperm_cluster.dir/sphere_cluster.cc.o"
  "CMakeFiles/hyperm_cluster.dir/sphere_cluster.cc.o.d"
  "libhyperm_cluster.a"
  "libhyperm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
