# Empty compiler generated dependencies file for hyperm_cluster.
# This may be replaced when dependencies are built.
