
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/hyperm_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/hyperm_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/metrics.cc" "src/cluster/CMakeFiles/hyperm_cluster.dir/metrics.cc.o" "gcc" "src/cluster/CMakeFiles/hyperm_cluster.dir/metrics.cc.o.d"
  "/root/repo/src/cluster/sphere_cluster.cc" "src/cluster/CMakeFiles/hyperm_cluster.dir/sphere_cluster.cc.o" "gcc" "src/cluster/CMakeFiles/hyperm_cluster.dir/sphere_cluster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vec/CMakeFiles/hyperm_vec.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hyperm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hyperm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
