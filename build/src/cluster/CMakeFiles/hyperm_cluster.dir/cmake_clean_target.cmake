file(REMOVE_RECURSE
  "libhyperm_cluster.a"
)
