file(REMOVE_RECURSE
  "libhyperm_overlay.a"
)
