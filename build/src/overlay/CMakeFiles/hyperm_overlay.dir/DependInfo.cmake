
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/gossip_overlay.cc" "src/overlay/CMakeFiles/hyperm_overlay.dir/gossip_overlay.cc.o" "gcc" "src/overlay/CMakeFiles/hyperm_overlay.dir/gossip_overlay.cc.o.d"
  "/root/repo/src/overlay/ring_overlay.cc" "src/overlay/CMakeFiles/hyperm_overlay.dir/ring_overlay.cc.o" "gcc" "src/overlay/CMakeFiles/hyperm_overlay.dir/ring_overlay.cc.o.d"
  "/root/repo/src/overlay/storage_metrics.cc" "src/overlay/CMakeFiles/hyperm_overlay.dir/storage_metrics.cc.o" "gcc" "src/overlay/CMakeFiles/hyperm_overlay.dir/storage_metrics.cc.o.d"
  "/root/repo/src/overlay/tree_overlay.cc" "src/overlay/CMakeFiles/hyperm_overlay.dir/tree_overlay.cc.o" "gcc" "src/overlay/CMakeFiles/hyperm_overlay.dir/tree_overlay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/hyperm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyperm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vec/CMakeFiles/hyperm_vec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hyperm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
