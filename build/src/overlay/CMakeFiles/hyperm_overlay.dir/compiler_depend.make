# Empty compiler generated dependencies file for hyperm_overlay.
# This may be replaced when dependencies are built.
