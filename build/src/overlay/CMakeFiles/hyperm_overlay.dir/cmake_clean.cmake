file(REMOVE_RECURSE
  "CMakeFiles/hyperm_overlay.dir/gossip_overlay.cc.o"
  "CMakeFiles/hyperm_overlay.dir/gossip_overlay.cc.o.d"
  "CMakeFiles/hyperm_overlay.dir/ring_overlay.cc.o"
  "CMakeFiles/hyperm_overlay.dir/ring_overlay.cc.o.d"
  "CMakeFiles/hyperm_overlay.dir/storage_metrics.cc.o"
  "CMakeFiles/hyperm_overlay.dir/storage_metrics.cc.o.d"
  "CMakeFiles/hyperm_overlay.dir/tree_overlay.cc.o"
  "CMakeFiles/hyperm_overlay.dir/tree_overlay.cc.o.d"
  "libhyperm_overlay.a"
  "libhyperm_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
