# Empty compiler generated dependencies file for hyperm_wavelet.
# This may be replaced when dependencies are built.
