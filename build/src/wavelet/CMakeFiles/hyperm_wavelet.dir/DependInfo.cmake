
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wavelet/haar.cc" "src/wavelet/CMakeFiles/hyperm_wavelet.dir/haar.cc.o" "gcc" "src/wavelet/CMakeFiles/hyperm_wavelet.dir/haar.cc.o.d"
  "/root/repo/src/wavelet/level.cc" "src/wavelet/CMakeFiles/hyperm_wavelet.dir/level.cc.o" "gcc" "src/wavelet/CMakeFiles/hyperm_wavelet.dir/level.cc.o.d"
  "/root/repo/src/wavelet/transform.cc" "src/wavelet/CMakeFiles/hyperm_wavelet.dir/transform.cc.o" "gcc" "src/wavelet/CMakeFiles/hyperm_wavelet.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vec/CMakeFiles/hyperm_vec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hyperm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
