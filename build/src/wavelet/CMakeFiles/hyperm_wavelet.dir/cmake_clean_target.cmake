file(REMOVE_RECURSE
  "libhyperm_wavelet.a"
)
