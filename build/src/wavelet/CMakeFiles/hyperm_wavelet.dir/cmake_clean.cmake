file(REMOVE_RECURSE
  "CMakeFiles/hyperm_wavelet.dir/haar.cc.o"
  "CMakeFiles/hyperm_wavelet.dir/haar.cc.o.d"
  "CMakeFiles/hyperm_wavelet.dir/level.cc.o"
  "CMakeFiles/hyperm_wavelet.dir/level.cc.o.d"
  "CMakeFiles/hyperm_wavelet.dir/transform.cc.o"
  "CMakeFiles/hyperm_wavelet.dir/transform.cc.o.d"
  "libhyperm_wavelet.a"
  "libhyperm_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
