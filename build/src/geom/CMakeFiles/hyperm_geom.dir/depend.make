# Empty dependencies file for hyperm_geom.
# This may be replaced when dependencies are built.
