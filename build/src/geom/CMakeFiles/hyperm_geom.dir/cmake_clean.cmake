file(REMOVE_RECURSE
  "CMakeFiles/hyperm_geom.dir/radius_estimator.cc.o"
  "CMakeFiles/hyperm_geom.dir/radius_estimator.cc.o.d"
  "CMakeFiles/hyperm_geom.dir/shapes.cc.o"
  "CMakeFiles/hyperm_geom.dir/shapes.cc.o.d"
  "CMakeFiles/hyperm_geom.dir/sphere_volume.cc.o"
  "CMakeFiles/hyperm_geom.dir/sphere_volume.cc.o.d"
  "libhyperm_geom.a"
  "libhyperm_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
