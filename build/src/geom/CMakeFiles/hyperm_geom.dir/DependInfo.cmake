
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/radius_estimator.cc" "src/geom/CMakeFiles/hyperm_geom.dir/radius_estimator.cc.o" "gcc" "src/geom/CMakeFiles/hyperm_geom.dir/radius_estimator.cc.o.d"
  "/root/repo/src/geom/shapes.cc" "src/geom/CMakeFiles/hyperm_geom.dir/shapes.cc.o" "gcc" "src/geom/CMakeFiles/hyperm_geom.dir/shapes.cc.o.d"
  "/root/repo/src/geom/sphere_volume.cc" "src/geom/CMakeFiles/hyperm_geom.dir/sphere_volume.cc.o" "gcc" "src/geom/CMakeFiles/hyperm_geom.dir/sphere_volume.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vec/CMakeFiles/hyperm_vec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hyperm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
