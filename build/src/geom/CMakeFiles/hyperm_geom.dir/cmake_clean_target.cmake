file(REMOVE_RECURSE
  "libhyperm_geom.a"
)
