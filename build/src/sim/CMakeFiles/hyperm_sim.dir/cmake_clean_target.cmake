file(REMOVE_RECURSE
  "libhyperm_sim.a"
)
