file(REMOVE_RECURSE
  "CMakeFiles/hyperm_sim.dir/dissemination.cc.o"
  "CMakeFiles/hyperm_sim.dir/dissemination.cc.o.d"
  "CMakeFiles/hyperm_sim.dir/simulator.cc.o"
  "CMakeFiles/hyperm_sim.dir/simulator.cc.o.d"
  "CMakeFiles/hyperm_sim.dir/stats.cc.o"
  "CMakeFiles/hyperm_sim.dir/stats.cc.o.d"
  "libhyperm_sim.a"
  "libhyperm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
