# Empty dependencies file for hyperm_sim.
# This may be replaced when dependencies are built.
