# Empty dependencies file for hyperm_core.
# This may be replaced when dependencies are built.
