file(REMOVE_RECURSE
  "libhyperm_core.a"
)
