file(REMOVE_RECURSE
  "CMakeFiles/hyperm_core.dir/baseline.cc.o"
  "CMakeFiles/hyperm_core.dir/baseline.cc.o.d"
  "CMakeFiles/hyperm_core.dir/eval.cc.o"
  "CMakeFiles/hyperm_core.dir/eval.cc.o.d"
  "CMakeFiles/hyperm_core.dir/flat_index.cc.o"
  "CMakeFiles/hyperm_core.dir/flat_index.cc.o.d"
  "CMakeFiles/hyperm_core.dir/key_mapper.cc.o"
  "CMakeFiles/hyperm_core.dir/key_mapper.cc.o.d"
  "CMakeFiles/hyperm_core.dir/network.cc.o"
  "CMakeFiles/hyperm_core.dir/network.cc.o.d"
  "CMakeFiles/hyperm_core.dir/peer.cc.o"
  "CMakeFiles/hyperm_core.dir/peer.cc.o.d"
  "CMakeFiles/hyperm_core.dir/score.cc.o"
  "CMakeFiles/hyperm_core.dir/score.cc.o.d"
  "libhyperm_core.a"
  "libhyperm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
