# Empty dependencies file for conference_share.
# This may be replaced when dependencies are built.
