file(REMOVE_RECURSE
  "CMakeFiles/conference_share.dir/conference_share.cpp.o"
  "CMakeFiles/conference_share.dir/conference_share.cpp.o.d"
  "conference_share"
  "conference_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conference_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
