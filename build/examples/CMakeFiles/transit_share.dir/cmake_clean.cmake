file(REMOVE_RECURSE
  "CMakeFiles/transit_share.dir/transit_share.cpp.o"
  "CMakeFiles/transit_share.dir/transit_share.cpp.o.d"
  "transit_share"
  "transit_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transit_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
