# Empty compiler generated dependencies file for transit_share.
# This may be replaced when dependencies are built.
