file(REMOVE_RECURSE
  "CMakeFiles/radius_estimator_test.dir/radius_estimator_test.cc.o"
  "CMakeFiles/radius_estimator_test.dir/radius_estimator_test.cc.o.d"
  "radius_estimator_test"
  "radius_estimator_test.pdb"
  "radius_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radius_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
