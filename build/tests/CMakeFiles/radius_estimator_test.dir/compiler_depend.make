# Empty compiler generated dependencies file for radius_estimator_test.
# This may be replaced when dependencies are built.
