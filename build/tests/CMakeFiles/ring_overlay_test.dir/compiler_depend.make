# Empty compiler generated dependencies file for ring_overlay_test.
# This may be replaced when dependencies are built.
