file(REMOVE_RECURSE
  "CMakeFiles/ring_overlay_test.dir/ring_overlay_test.cc.o"
  "CMakeFiles/ring_overlay_test.dir/ring_overlay_test.cc.o.d"
  "ring_overlay_test"
  "ring_overlay_test.pdb"
  "ring_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
