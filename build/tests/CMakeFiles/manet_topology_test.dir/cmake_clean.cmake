file(REMOVE_RECURSE
  "CMakeFiles/manet_topology_test.dir/manet_topology_test.cc.o"
  "CMakeFiles/manet_topology_test.dir/manet_topology_test.cc.o.d"
  "manet_topology_test"
  "manet_topology_test.pdb"
  "manet_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
