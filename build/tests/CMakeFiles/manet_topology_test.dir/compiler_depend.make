# Empty compiler generated dependencies file for manet_topology_test.
# This may be replaced when dependencies are built.
