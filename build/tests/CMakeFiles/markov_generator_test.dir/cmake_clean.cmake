file(REMOVE_RECURSE
  "CMakeFiles/markov_generator_test.dir/markov_generator_test.cc.o"
  "CMakeFiles/markov_generator_test.dir/markov_generator_test.cc.o.d"
  "markov_generator_test"
  "markov_generator_test.pdb"
  "markov_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
