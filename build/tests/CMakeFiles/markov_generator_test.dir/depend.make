# Empty dependencies file for markov_generator_test.
# This may be replaced when dependencies are built.
