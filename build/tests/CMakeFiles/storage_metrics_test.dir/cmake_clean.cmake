file(REMOVE_RECURSE
  "CMakeFiles/storage_metrics_test.dir/storage_metrics_test.cc.o"
  "CMakeFiles/storage_metrics_test.dir/storage_metrics_test.cc.o.d"
  "storage_metrics_test"
  "storage_metrics_test.pdb"
  "storage_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
