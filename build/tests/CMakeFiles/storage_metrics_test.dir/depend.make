# Empty dependencies file for storage_metrics_test.
# This may be replaced when dependencies are built.
