# Empty dependencies file for gossip_overlay_test.
# This may be replaced when dependencies are built.
