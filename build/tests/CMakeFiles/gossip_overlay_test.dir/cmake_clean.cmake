file(REMOVE_RECURSE
  "CMakeFiles/gossip_overlay_test.dir/gossip_overlay_test.cc.o"
  "CMakeFiles/gossip_overlay_test.dir/gossip_overlay_test.cc.o.d"
  "gossip_overlay_test"
  "gossip_overlay_test.pdb"
  "gossip_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
