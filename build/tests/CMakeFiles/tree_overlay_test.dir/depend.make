# Empty dependencies file for tree_overlay_test.
# This may be replaced when dependencies are built.
