file(REMOVE_RECURSE
  "CMakeFiles/tree_overlay_test.dir/tree_overlay_test.cc.o"
  "CMakeFiles/tree_overlay_test.dir/tree_overlay_test.cc.o.d"
  "tree_overlay_test"
  "tree_overlay_test.pdb"
  "tree_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
