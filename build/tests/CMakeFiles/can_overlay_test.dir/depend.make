# Empty dependencies file for can_overlay_test.
# This may be replaced when dependencies are built.
