file(REMOVE_RECURSE
  "CMakeFiles/can_overlay_test.dir/can_overlay_test.cc.o"
  "CMakeFiles/can_overlay_test.dir/can_overlay_test.cc.o.d"
  "can_overlay_test"
  "can_overlay_test.pdb"
  "can_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
