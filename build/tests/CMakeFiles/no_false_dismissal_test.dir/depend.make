# Empty dependencies file for no_false_dismissal_test.
# This may be replaced when dependencies are built.
