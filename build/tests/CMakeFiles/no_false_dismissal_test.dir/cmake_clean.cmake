file(REMOVE_RECURSE
  "CMakeFiles/no_false_dismissal_test.dir/no_false_dismissal_test.cc.o"
  "CMakeFiles/no_false_dismissal_test.dir/no_false_dismissal_test.cc.o.d"
  "no_false_dismissal_test"
  "no_false_dismissal_test.pdb"
  "no_false_dismissal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/no_false_dismissal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
