file(REMOVE_RECURSE
  "CMakeFiles/peer_assignment_test.dir/peer_assignment_test.cc.o"
  "CMakeFiles/peer_assignment_test.dir/peer_assignment_test.cc.o.d"
  "peer_assignment_test"
  "peer_assignment_test.pdb"
  "peer_assignment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
