# Empty dependencies file for peer_assignment_test.
# This may be replaced when dependencies are built.
