# Empty compiler generated dependencies file for key_mapper_test.
# This may be replaced when dependencies are built.
