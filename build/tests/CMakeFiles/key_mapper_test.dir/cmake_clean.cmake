file(REMOVE_RECURSE
  "CMakeFiles/key_mapper_test.dir/key_mapper_test.cc.o"
  "CMakeFiles/key_mapper_test.dir/key_mapper_test.cc.o.d"
  "key_mapper_test"
  "key_mapper_test.pdb"
  "key_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
