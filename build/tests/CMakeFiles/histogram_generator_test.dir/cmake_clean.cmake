file(REMOVE_RECURSE
  "CMakeFiles/histogram_generator_test.dir/histogram_generator_test.cc.o"
  "CMakeFiles/histogram_generator_test.dir/histogram_generator_test.cc.o.d"
  "histogram_generator_test"
  "histogram_generator_test.pdb"
  "histogram_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
