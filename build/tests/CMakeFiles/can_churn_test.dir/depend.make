# Empty dependencies file for can_churn_test.
# This may be replaced when dependencies are built.
