file(REMOVE_RECURSE
  "CMakeFiles/can_churn_test.dir/can_churn_test.cc.o"
  "CMakeFiles/can_churn_test.dir/can_churn_test.cc.o.d"
  "can_churn_test"
  "can_churn_test.pdb"
  "can_churn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
