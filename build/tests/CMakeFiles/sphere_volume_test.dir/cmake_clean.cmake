file(REMOVE_RECURSE
  "CMakeFiles/sphere_volume_test.dir/sphere_volume_test.cc.o"
  "CMakeFiles/sphere_volume_test.dir/sphere_volume_test.cc.o.d"
  "sphere_volume_test"
  "sphere_volume_test.pdb"
  "sphere_volume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
