# Empty compiler generated dependencies file for sphere_volume_test.
# This may be replaced when dependencies are built.
