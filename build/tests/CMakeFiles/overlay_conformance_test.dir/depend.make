# Empty dependencies file for overlay_conformance_test.
# This may be replaced when dependencies are built.
