file(REMOVE_RECURSE
  "CMakeFiles/overlay_conformance_test.dir/overlay_conformance_test.cc.o"
  "CMakeFiles/overlay_conformance_test.dir/overlay_conformance_test.cc.o.d"
  "overlay_conformance_test"
  "overlay_conformance_test.pdb"
  "overlay_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
