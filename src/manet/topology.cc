#include "manet/topology.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/check.h"

namespace hyperm::manet {
namespace {

// Hop distances from `start` by breadth-first search; -1 = unreachable.
std::vector<int> BfsHops(const std::vector<std::vector<int>>& neighbors, int start) {
  std::vector<int> hops(neighbors.size(), -1);
  std::deque<int> frontier;
  hops[static_cast<size_t>(start)] = 0;
  frontier.push_back(start);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop_front();
    for (int next : neighbors[static_cast<size_t>(node)]) {
      if (hops[static_cast<size_t>(next)] >= 0) continue;
      hops[static_cast<size_t>(next)] = hops[static_cast<size_t>(node)] + 1;
      frontier.push_back(next);
    }
  }
  return hops;
}

}  // namespace

Result<ManetTopology> ManetTopology::Generate(const TopologyOptions& options, Rng& rng) {
  if (options.num_nodes < 1) {
    return InvalidArgumentError("ManetTopology: num_nodes < 1");
  }
  if (options.field_size_m <= 0.0 || options.radio_range_m <= 0.0) {
    return InvalidArgumentError("ManetTopology: non-positive geometry");
  }
  ManetTopology topology;
  topology.options_ = options;
  for (int attempt = 0; attempt < options.max_placement_attempts; ++attempt) {
    topology.positions_.clear();
    topology.waypoints_.clear();
    for (int i = 0; i < options.num_nodes; ++i) {
      topology.positions_.push_back(
          {rng.Uniform(0.0, options.field_size_m), rng.Uniform(0.0, options.field_size_m)});
      topology.waypoints_.push_back(
          {rng.Uniform(0.0, options.field_size_m), rng.Uniform(0.0, options.field_size_m)});
    }
    topology.RebuildConnectivity();
    if (topology.connected()) return topology;
  }
  return FailedPreconditionError(
      "ManetTopology: no connected placement found (radio range too small?)");
}

Result<ManetTopology> ManetTopology::FromPositions(const TopologyOptions& options,
                                                   std::vector<Vector> positions) {
  if (positions.empty()) return InvalidArgumentError("FromPositions: no positions");
  if (options.field_size_m <= 0.0 || options.radio_range_m <= 0.0) {
    return InvalidArgumentError("FromPositions: non-positive geometry");
  }
  for (const Vector& p : positions) {
    if (p.size() != 2) return InvalidArgumentError("FromPositions: positions must be 2-D");
    if (p[0] < 0.0 || p[0] > options.field_size_m || p[1] < 0.0 ||
        p[1] > options.field_size_m) {
      return InvalidArgumentError("FromPositions: position outside the field");
    }
  }
  ManetTopology topology;
  topology.options_ = options;
  topology.options_.num_nodes = static_cast<int>(positions.size());
  topology.positions_ = std::move(positions);
  topology.waypoints_ = topology.positions_;
  topology.RebuildConnectivity();
  return topology;
}

void ManetTopology::RebuildConnectivity() {
  const size_t n = positions_.size();
  neighbors_.assign(n, {});
  const double range_sq = options_.radio_range_m * options_.radio_range_m;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (vec::SquaredDistance(positions_[i], positions_[j]) <= range_sq) {
        neighbors_[i].push_back(static_cast<int>(j));
        neighbors_[j].push_back(static_cast<int>(i));
      }
    }
  }
}

const Vector& ManetTopology::position(int node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return positions_[static_cast<size_t>(node)];
}

const std::vector<int>& ManetTopology::neighbors(int node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return neighbors_[static_cast<size_t>(node)];
}

int ManetTopology::PathHops(int from, int to) const {
  HM_CHECK_GE(from, 0);
  HM_CHECK_LT(from, num_nodes());
  HM_CHECK_GE(to, 0);
  HM_CHECK_LT(to, num_nodes());
  if (from == to) return 0;
  const std::vector<int> hops = BfsHops(neighbors_, from);
  const int h = hops[static_cast<size_t>(to)];
  return h >= 0 ? h : kUnreachableHops;
}

std::vector<int> ManetTopology::ShortestPath(int from, int to) const {
  HM_CHECK_GE(from, 0);
  HM_CHECK_LT(from, num_nodes());
  HM_CHECK_GE(to, 0);
  HM_CHECK_LT(to, num_nodes());
  if (from == to) return {from};
  // BFS with parent pointers; neighbours are stored in ascending id order,
  // so the first parent discovered is the deterministic tie-break.
  std::vector<int> parent(neighbors_.size(), -1);
  std::deque<int> frontier;
  parent[static_cast<size_t>(from)] = from;
  frontier.push_back(from);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop_front();
    if (node == to) break;
    for (int next : neighbors_[static_cast<size_t>(node)]) {
      if (parent[static_cast<size_t>(next)] >= 0) continue;
      parent[static_cast<size_t>(next)] = node;
      frontier.push_back(next);
    }
  }
  if (parent[static_cast<size_t>(to)] < 0) return {};
  std::vector<int> path;
  for (int node = to; node != from; node = parent[static_cast<size_t>(node)]) {
    path.push_back(node);
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

double ManetTopology::MeanPairwiseHops() const {
  const int n = num_nodes();
  if (n < 2) return 0.0;
  double total = 0.0;
  int pairs = 0;
  for (int i = 0; i < n; ++i) {
    const std::vector<int> hops = BfsHops(neighbors_, i);
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (hops[static_cast<size_t>(j)] < 0) continue;  // different radio island
      total += hops[static_cast<size_t>(j)];
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / pairs;
}

bool ManetTopology::connected() const {
  if (positions_.empty()) return false;
  const std::vector<int> hops = BfsHops(neighbors_, 0);
  return std::all_of(hops.begin(), hops.end(), [](int h) { return h >= 0; });
}

double ManetTopology::MeanLinkDistanceM() const {
  double total = 0.0;
  int links = 0;
  for (size_t i = 0; i < positions_.size(); ++i) {
    for (int j : neighbors_[i]) {
      if (static_cast<size_t>(j) <= i) continue;
      total += vec::Distance(positions_[i], positions_[static_cast<size_t>(j)]);
      ++links;
    }
  }
  return links == 0 ? 0.0 : total / links;
}

void ManetTopology::RandomWaypointStep(double max_step_m, Rng& rng) {
  HM_CHECK_GE(max_step_m, 0.0);
  for (size_t i = 0; i < positions_.size(); ++i) {
    Vector& pos = positions_[i];
    Vector& target = waypoints_[i];
    const double dist = vec::Distance(pos, target);
    if (dist <= max_step_m) {
      pos = target;
      target = {rng.Uniform(0.0, options_.field_size_m),
                rng.Uniform(0.0, options_.field_size_m)};
      continue;
    }
    for (size_t d = 0; d < 2; ++d) {
      pos[d] += (target[d] - pos[d]) / dist * max_step_m;
    }
  }
  RebuildConnectivity();
}

}  // namespace hyperm::manet
