#include "manet/topology.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/check.h"

namespace hyperm::manet {
namespace {

// Hop distances from `start` by breadth-first search; -1 = unreachable.
std::vector<int> BfsHops(const std::vector<std::vector<int>>& neighbors, int start) {
  std::vector<int> hops(neighbors.size(), -1);
  std::deque<int> frontier;
  hops[static_cast<size_t>(start)] = 0;
  frontier.push_back(start);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop_front();
    for (int next : neighbors[static_cast<size_t>(node)]) {
      if (hops[static_cast<size_t>(next)] >= 0) continue;
      hops[static_cast<size_t>(next)] = hops[static_cast<size_t>(node)] + 1;
      frontier.push_back(next);
    }
  }
  return hops;
}

}  // namespace

Result<ManetTopology> ManetTopology::Generate(const TopologyOptions& options, Rng& rng) {
  if (options.num_nodes < 1) {
    return InvalidArgumentError("ManetTopology: num_nodes < 1");
  }
  if (options.field_size_m <= 0.0 || options.radio_range_m <= 0.0) {
    return InvalidArgumentError("ManetTopology: non-positive geometry");
  }
  ManetTopology topology;
  topology.options_ = options;
  for (int attempt = 0; attempt < options.max_placement_attempts; ++attempt) {
    topology.positions_.clear();
    topology.waypoints_.clear();
    for (int i = 0; i < options.num_nodes; ++i) {
      topology.positions_.push_back(
          {rng.Uniform(0.0, options.field_size_m), rng.Uniform(0.0, options.field_size_m)});
      topology.waypoints_.push_back(
          {rng.Uniform(0.0, options.field_size_m), rng.Uniform(0.0, options.field_size_m)});
    }
    topology.RebuildConnectivity();
    if (topology.connected()) return topology;
  }
  return FailedPreconditionError(
      "ManetTopology: no connected placement found (radio range too small?)");
}

void ManetTopology::RebuildConnectivity() {
  const size_t n = positions_.size();
  neighbors_.assign(n, {});
  const double range_sq = options_.radio_range_m * options_.radio_range_m;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (vec::SquaredDistance(positions_[i], positions_[j]) <= range_sq) {
        neighbors_[i].push_back(static_cast<int>(j));
        neighbors_[j].push_back(static_cast<int>(i));
      }
    }
  }
}

const Vector& ManetTopology::position(int node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return positions_[static_cast<size_t>(node)];
}

const std::vector<int>& ManetTopology::neighbors(int node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return neighbors_[static_cast<size_t>(node)];
}

int ManetTopology::PathHops(int from, int to) const {
  HM_CHECK_GE(from, 0);
  HM_CHECK_LT(from, num_nodes());
  HM_CHECK_GE(to, 0);
  HM_CHECK_LT(to, num_nodes());
  if (from == to) return 0;
  const std::vector<int> hops = BfsHops(neighbors_, from);
  HM_CHECK_GE(hops[static_cast<size_t>(to)], 0) << "topology disconnected";
  return hops[static_cast<size_t>(to)];
}

double ManetTopology::MeanPairwiseHops() const {
  const int n = num_nodes();
  if (n < 2) return 0.0;
  double total = 0.0;
  int pairs = 0;
  for (int i = 0; i < n; ++i) {
    const std::vector<int> hops = BfsHops(neighbors_, i);
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      HM_CHECK_GE(hops[static_cast<size_t>(j)], 0) << "topology disconnected";
      total += hops[static_cast<size_t>(j)];
      ++pairs;
    }
  }
  return total / pairs;
}

bool ManetTopology::connected() const {
  if (positions_.empty()) return false;
  const std::vector<int> hops = BfsHops(neighbors_, 0);
  return std::all_of(hops.begin(), hops.end(), [](int h) { return h >= 0; });
}

double ManetTopology::MeanLinkDistanceM() const {
  double total = 0.0;
  int links = 0;
  for (size_t i = 0; i < positions_.size(); ++i) {
    for (int j : neighbors_[i]) {
      if (static_cast<size_t>(j) <= i) continue;
      total += vec::Distance(positions_[i], positions_[static_cast<size_t>(j)]);
      ++links;
    }
  }
  return links == 0 ? 0.0 : total / links;
}

void ManetTopology::RandomWaypointStep(double max_step_m, Rng& rng) {
  HM_CHECK_GE(max_step_m, 0.0);
  for (size_t i = 0; i < positions_.size(); ++i) {
    Vector& pos = positions_[i];
    Vector& target = waypoints_[i];
    const double dist = vec::Distance(pos, target);
    if (dist <= max_step_m) {
      pos = target;
      target = {rng.Uniform(0.0, options_.field_size_m),
                rng.Uniform(0.0, options_.field_size_m)};
      continue;
    }
    for (size_t d = 0; d < 2; ++d) {
      pos[d] += (target[d] - pos[d]) / dist * max_step_m;
    }
  }
  RebuildConnectivity();
}

}  // namespace hyperm::manet
