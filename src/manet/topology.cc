#include "manet/topology.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hyperm::manet {

Result<ManetTopology> ManetTopology::Generate(const TopologyOptions& options, Rng& rng) {
  if (options.num_nodes < 1) {
    return InvalidArgumentError("ManetTopology: num_nodes < 1");
  }
  if (options.field_size_m <= 0.0 || options.radio_range_m <= 0.0) {
    return InvalidArgumentError("ManetTopology: non-positive geometry");
  }
  if (options.min_range_multiplier <= 0.0 ||
      options.max_range_multiplier < options.min_range_multiplier) {
    return InvalidArgumentError("ManetTopology: bad range multipliers");
  }
  const bool directed = options.min_range_multiplier != 1.0 ||
                        options.max_range_multiplier != 1.0;
  ManetTopology topology;
  topology.options_ = options;
  topology.directed_ = directed;
  for (int attempt = 0; attempt < options.max_placement_attempts; ++attempt) {
    topology.positions_.clear();
    topology.waypoints_.clear();
    topology.range_mult_.clear();
    for (int i = 0; i < options.num_nodes; ++i) {
      topology.positions_.push_back(
          {rng.Uniform(0.0, options.field_size_m), rng.Uniform(0.0, options.field_size_m)});
      topology.waypoints_.push_back(
          {rng.Uniform(0.0, options.field_size_m), rng.Uniform(0.0, options.field_size_m)});
    }
    if (directed) {
      // Drawn only in directed mode, after the position loop, so the legacy
      // symmetric placement stream is bit-identical.
      for (int i = 0; i < options.num_nodes; ++i) {
        topology.range_mult_.push_back(rng.Uniform(
            options.min_range_multiplier, options.max_range_multiplier));
      }
    }
    topology.RebuildConnectivity();
    if (topology.connected()) return topology;
  }
  return FailedPreconditionError(
      "ManetTopology: no connected placement found (radio range too small?)");
}

Result<ManetTopology> ManetTopology::FromPositions(
    const TopologyOptions& options, std::vector<Vector> positions,
    std::vector<double> range_multipliers) {
  if (positions.empty()) return InvalidArgumentError("FromPositions: no positions");
  if (options.field_size_m <= 0.0 || options.radio_range_m <= 0.0) {
    return InvalidArgumentError("FromPositions: non-positive geometry");
  }
  for (const Vector& p : positions) {
    if (p.size() != 2) return InvalidArgumentError("FromPositions: positions must be 2-D");
    if (p[0] < 0.0 || p[0] > options.field_size_m || p[1] < 0.0 ||
        p[1] > options.field_size_m) {
      return InvalidArgumentError("FromPositions: position outside the field");
    }
  }
  if (!range_multipliers.empty()) {
    if (range_multipliers.size() != positions.size()) {
      return InvalidArgumentError(
          "FromPositions: one range multiplier per node (or none)");
    }
    for (double m : range_multipliers) {
      if (m <= 0.0) {
        return InvalidArgumentError("FromPositions: non-positive multiplier");
      }
    }
  }
  ManetTopology topology;
  topology.options_ = options;
  topology.options_.num_nodes = static_cast<int>(positions.size());
  topology.positions_ = std::move(positions);
  topology.waypoints_ = topology.positions_;
  topology.directed_ = !range_multipliers.empty();
  topology.range_mult_ = std::move(range_multipliers);
  topology.RebuildConnectivity();
  return topology;
}

double ManetTopology::CellSizeM() const {
  if (!directed_) return options_.radio_range_m;
  double max_mult = 0.0;
  for (double m : range_mult_) max_mult = std::max(max_mult, m);
  return options_.radio_range_m * std::max(max_mult, 1e-12);
}

int ManetTopology::CellOf(const Vector& position) const {
  const double cell = CellSizeM();
  int cx = static_cast<int>(position[0] / cell);
  int cy = static_cast<int>(position[1] / cell);
  cx = std::min(std::max(cx, 0), grid_dim_ - 1);
  cy = std::min(std::max(cy, 0), grid_dim_ - 1);
  return cy * grid_dim_ + cx;
}

void ManetTopology::RebuildGrid() {
  const size_t n = positions_.size();
  grid_dim_ = std::max(
      1, static_cast<int>(std::ceil(options_.field_size_m / CellSizeM())));
  cells_.assign(static_cast<size_t>(grid_dim_) * static_cast<size_t>(grid_dim_), {});
  node_cell_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int cell = CellOf(positions_[i]);
    node_cell_[i] = cell;
    cells_[static_cast<size_t>(cell)].push_back(static_cast<int>(i));
  }
}

void ManetTopology::UpdateGridAfterMove() {
  // Only nodes that crossed a cell boundary touch the grid; with mobility
  // steps a fraction of the cell size that is a small minority per tick.
  for (size_t i = 0; i < positions_.size(); ++i) {
    const int cell = CellOf(positions_[i]);
    if (cell == node_cell_[i]) continue;
    std::vector<int>& old_cell = cells_[static_cast<size_t>(node_cell_[i])];
    old_cell.erase(std::find(old_cell.begin(), old_cell.end(), static_cast<int>(i)));
    cells_[static_cast<size_t>(cell)].push_back(static_cast<int>(i));
    node_cell_[i] = cell;
  }
}

void ManetTopology::RecomputeNeighborLists() {
  const size_t n = positions_.size();
  if (neighbors_.size() != n) neighbors_.resize(n);
  const double base_range_sq = options_.radio_range_m * options_.radio_range_m;
  for (size_t i = 0; i < n; ++i) {
    std::vector<int>& list = neighbors_[i];
    list.clear();  // keeps the previous epoch's capacity
    if (list.capacity() == 0) list.reserve(16);
    // Out-neighbours: j is reachable from i iff dist <= i's transmit range
    // (the per-node multiplier is what makes links directed).
    double range_sq = base_range_sq;
    if (directed_) {
      const double r = options_.radio_range_m * range_mult_[i];
      range_sq = r * r;
    }
    const int cx = node_cell_[i] % grid_dim_;
    const int cy = node_cell_[i] / grid_dim_;
    const int x_lo = std::max(cx - 1, 0), x_hi = std::min(cx + 1, grid_dim_ - 1);
    const int y_lo = std::max(cy - 1, 0), y_hi = std::min(cy + 1, grid_dim_ - 1);
    for (int y = y_lo; y <= y_hi; ++y) {
      for (int x = x_lo; x <= x_hi; ++x) {
        for (int j : cells_[static_cast<size_t>(y * grid_dim_ + x)]) {
          if (static_cast<size_t>(j) == i) continue;
          if (vec::SquaredDistance(positions_[i], positions_[static_cast<size_t>(j)]) <=
              range_sq) {
            list.push_back(j);
          }
        }
      }
    }
    // Cell visit order is spatial, not by id; ascending ids are the BFS
    // tie-break contract, so restore them here.
    std::sort(list.begin(), list.end());
  }
  if (directed_) {
    // Invert the out-lists. Sources are visited in ascending id, so every
    // in-list comes out ascending without a sort.
    if (in_neighbors_.size() != n) in_neighbors_.resize(n);
    for (size_t i = 0; i < n; ++i) in_neighbors_[i].clear();
    for (size_t i = 0; i < n; ++i) {
      for (int j : neighbors_[i]) {
        in_neighbors_[static_cast<size_t>(j)].push_back(static_cast<int>(i));
      }
    }
  }
}

void ManetTopology::RebuildConnectivity() {
  RebuildGrid();
  RecomputeNeighborLists();
  ++epoch_;
  trees_.resize(positions_.size());
}

const Vector& ManetTopology::position(int node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return positions_[static_cast<size_t>(node)];
}

const std::vector<int>& ManetTopology::neighbors(int node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return neighbors_[static_cast<size_t>(node)];
}

const std::vector<int>& ManetTopology::in_neighbors(int node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  if (!directed_) return neighbors_[static_cast<size_t>(node)];
  return in_neighbors_[static_cast<size_t>(node)];
}

double ManetTopology::range_multiplier(int node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return directed_ ? range_mult_[static_cast<size_t>(node)] : 1.0;
}

const ManetTopology::SourceTree& ManetTopology::TreeFor(int from) const {
  SourceTree& tree = trees_[static_cast<size_t>(from)];
  if (tree.epoch == epoch_) {
    ++route_counters_.hits;
    return tree;
  }
  if (tree.epoch != 0) ++route_counters_.invalidations;
  ++route_counters_.misses;
  const size_t n = positions_.size();
  tree.parent.assign(n, -1);
  tree.hops.assign(n, -1);
  // Full BFS with an index-cursor frontier. Neighbours are stored ascending,
  // so the first parent discovered is the same deterministic tie-break the
  // historical early-exit per-pair BFS produced.
  std::vector<int> frontier;
  frontier.reserve(n);
  tree.parent[static_cast<size_t>(from)] = from;
  tree.hops[static_cast<size_t>(from)] = 0;
  frontier.push_back(from);
  for (size_t cursor = 0; cursor < frontier.size(); ++cursor) {
    const int node = frontier[cursor];
    const int next_hops = tree.hops[static_cast<size_t>(node)] + 1;
    for (int next : neighbors_[static_cast<size_t>(node)]) {
      if (tree.parent[static_cast<size_t>(next)] >= 0) continue;
      tree.parent[static_cast<size_t>(next)] = node;
      tree.hops[static_cast<size_t>(next)] = next_hops;
      frontier.push_back(next);
    }
  }
  tree.epoch = epoch_;
  return tree;
}

int ManetTopology::PathHops(int from, int to) const {
  HM_CHECK_GE(from, 0);
  HM_CHECK_LT(from, num_nodes());
  HM_CHECK_GE(to, 0);
  HM_CHECK_LT(to, num_nodes());
  if (from == to) return 0;
  const int h = TreeFor(from).hops[static_cast<size_t>(to)];
  return h >= 0 ? h : kUnreachableHops;
}

std::vector<int> ManetTopology::ShortestPath(int from, int to) const {
  std::vector<int> path;
  ShortestPathInto(from, to, path);
  return path;
}

void ManetTopology::ShortestPathInto(int from, int to,
                                     std::vector<int>& out) const {
  HM_CHECK_GE(from, 0);
  HM_CHECK_LT(from, num_nodes());
  HM_CHECK_GE(to, 0);
  HM_CHECK_LT(to, num_nodes());
  out.clear();
  if (from == to) {
    out.push_back(from);
    return;
  }
  const SourceTree& tree = TreeFor(from);
  if (tree.parent[static_cast<size_t>(to)] < 0) return;
  out.reserve(static_cast<size_t>(tree.hops[static_cast<size_t>(to)]) + 1);
  for (int node = to; node != from; node = tree.parent[static_cast<size_t>(node)]) {
    out.push_back(node);
  }
  out.push_back(from);
  std::reverse(out.begin(), out.end());
}

double ManetTopology::MeanPairwiseHops() const {
  const int n = num_nodes();
  if (n < 2) return 0.0;
  double total = 0.0;
  int pairs = 0;
  for (int i = 0; i < n; ++i) {
    const std::vector<int>& hops = TreeFor(i).hops;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (hops[static_cast<size_t>(j)] < 0) continue;  // different radio island
      total += hops[static_cast<size_t>(j)];
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / pairs;
}

int ManetTopology::SccLabelsInto(std::vector<int>& labels) const {
  // Iterative Kosaraju: forward DFS finish order over the out-lists, then
  // reverse-graph sweeps (in-lists) in reverse finish order. On a symmetric
  // graph both passes see the same edges, so components — and, after the
  // dense renumbering below, the labels themselves — match the undirected
  // BFS labeller exactly.
  const int n = num_nodes();
  labels.assign(static_cast<size_t>(n), -1);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<char> visited(static_cast<size_t>(n), 0);
  std::vector<std::pair<int, size_t>> stack;  // (node, next out-edge index)
  for (int start = 0; start < n; ++start) {
    if (visited[static_cast<size_t>(start)]) continue;
    visited[static_cast<size_t>(start)] = 1;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      const std::vector<int>& out = neighbors_[static_cast<size_t>(node)];
      if (edge < out.size()) {
        const int next = out[edge++];
        if (!visited[static_cast<size_t>(next)]) {
          visited[static_cast<size_t>(next)] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        order.push_back(node);
        stack.pop_back();
      }
    }
  }
  int raw_label = 0;
  std::vector<int> frontier;
  frontier.reserve(static_cast<size_t>(n));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (labels[static_cast<size_t>(*it)] >= 0) continue;
    labels[static_cast<size_t>(*it)] = raw_label;
    frontier.clear();
    frontier.push_back(*it);
    for (size_t cursor = 0; cursor < frontier.size(); ++cursor) {
      for (int prev : in_neighbors(frontier[cursor])) {
        if (labels[static_cast<size_t>(prev)] >= 0) continue;
        labels[static_cast<size_t>(prev)] = raw_label;
        frontier.push_back(prev);
      }
    }
    ++raw_label;
  }
  // Dense renumbering by ascending first occurrence — the historical
  // RelabelIslands contract shared with the undirected labeller.
  std::vector<int> remap(static_cast<size_t>(raw_label), -1);
  int next_label = 0;
  for (int i = 0; i < n; ++i) {
    int& label = labels[static_cast<size_t>(i)];
    if (remap[static_cast<size_t>(label)] < 0) {
      remap[static_cast<size_t>(label)] = next_label++;
    }
    label = remap[static_cast<size_t>(label)];
  }
  return next_label;
}

std::vector<int> ManetTopology::SccLabels() const {
  std::vector<int> labels;
  SccLabelsInto(labels);
  return labels;
}

const std::vector<int>& ManetTopology::island_labels() const {
  if (island_epoch_ == epoch_ && !islands_.empty()) return islands_;
  if (directed_) {
    num_islands_ = SccLabelsInto(islands_);
    island_epoch_ = epoch_;
    return islands_;
  }
  const int n = num_nodes();
  islands_.assign(static_cast<size_t>(n), -1);
  int label = 0;
  std::vector<int> frontier;
  frontier.reserve(static_cast<size_t>(n));
  for (int start = 0; start < n; ++start) {
    if (islands_[static_cast<size_t>(start)] >= 0) continue;
    islands_[static_cast<size_t>(start)] = label;
    frontier.clear();
    frontier.push_back(start);
    for (size_t cursor = 0; cursor < frontier.size(); ++cursor) {
      for (int next : neighbors_[static_cast<size_t>(frontier[cursor])]) {
        if (islands_[static_cast<size_t>(next)] >= 0) continue;
        islands_[static_cast<size_t>(next)] = label;
        frontier.push_back(next);
      }
    }
    ++label;
  }
  num_islands_ = label;
  island_epoch_ = epoch_;
  return islands_;
}

int ManetTopology::num_islands() const {
  island_labels();
  return num_islands_;
}

bool ManetTopology::SameIsland(int a, int b) const {
  HM_CHECK_GE(a, 0);
  HM_CHECK_LT(a, num_nodes());
  HM_CHECK_GE(b, 0);
  HM_CHECK_LT(b, num_nodes());
  const std::vector<int>& labels = island_labels();
  return labels[static_cast<size_t>(a)] == labels[static_cast<size_t>(b)];
}

bool ManetTopology::CanReach(int from, int to) const {
  if (!directed_) return SameIsland(from, to);
  // One-way links cross SCC boundaries, so a digraph needs the real
  // directed answer — served from the same per-source BFS tree cache the
  // routing layer uses.
  return PathHops(from, to) != kUnreachableHops;
}

int ManetTopology::CachedTreeCount() const {
  int fresh = 0;
  for (const SourceTree& tree : trees_) {
    if (tree.epoch == epoch_) ++fresh;
  }
  return fresh;
}

bool ManetTopology::connected() const {
  if (positions_.empty()) return false;
  return num_islands() == 1;
}

double ManetTopology::MeanLinkDistanceM() const {
  double total = 0.0;
  int links = 0;
  for (size_t i = 0; i < positions_.size(); ++i) {
    for (int j : neighbors_[i]) {
      // Symmetric graphs count each pair once; digraphs count each directed
      // link (an asymmetric link has no mirror to dedupe against).
      if (!directed_ && static_cast<size_t>(j) <= i) continue;
      total += vec::Distance(positions_[i], positions_[static_cast<size_t>(j)]);
      ++links;
    }
  }
  return links == 0 ? 0.0 : total / links;
}

void ManetTopology::RandomWaypointStep(double max_step_m, Rng& rng) {
  HM_CHECK_GE(max_step_m, 0.0);
  for (size_t i = 0; i < positions_.size(); ++i) {
    Vector& pos = positions_[i];
    Vector& target = waypoints_[i];
    const double dist = vec::Distance(pos, target);
    if (dist <= max_step_m) {
      pos = target;
      target = {rng.Uniform(0.0, options_.field_size_m),
                rng.Uniform(0.0, options_.field_size_m)};
      continue;
    }
    for (size_t d = 0; d < 2; ++d) {
      pos[d] += (target[d] - pos[d]) / dist * max_step_m;
    }
  }
  UpdateGridAfterMove();
  RecomputeNeighborLists();
  ++epoch_;
}

}  // namespace hyperm::manet
