// Physical MANET topology underneath the overlay.
//
// The paper evaluates Hyper-M purely in overlay hops; its motivating
// scenario, however, is a physical ad-hoc radio network (conference room,
// train car) where one overlay hop between two arbitrary peers costs a
// multi-hop radio path. This module supplies that missing substrate: node
// placement in a field, unit-disk connectivity, shortest-path hop metrics
// and random-waypoint mobility. Because CAN zone assignment is independent
// of geography, overlay neighbours are uniform random node pairs physically,
// so `MeanPairwiseHops()` is the exact expected physical cost of one overlay
// hop — the conversion factor the energy benches use.

#ifndef HYPERM_MANET_TOPOLOGY_H_
#define HYPERM_MANET_TOPOLOGY_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "vec/vector.h"

namespace hyperm::manet {

/// Physical deployment parameters.
struct TopologyOptions {
  int num_nodes = 50;
  double field_size_m = 200.0;   ///< square field side
  double radio_range_m = 50.0;   ///< unit-disk radio range
  int max_placement_attempts = 200;  ///< retries until a connected placement
};

/// Sentinel returned by PathHops when no radio path exists (the unit-disk
/// graph is split into islands — routine under mobility).
inline constexpr int kUnreachableHops = -1;

/// A static snapshot of node positions with unit-disk connectivity.
class ManetTopology {
 public:
  /// Samples uniform placements until the unit-disk graph is connected.
  /// Returns FailedPrecondition if no connected placement is found within
  /// the attempt budget (radio range too small for the field).
  static Result<ManetTopology> Generate(const TopologyOptions& options, Rng& rng);

  /// Builds a topology from explicit node positions (2-D, inside the field).
  /// Connectivity is NOT required — this is how tests and the channel layer
  /// construct deterministic disconnected layouts. Waypoints start at the
  /// node positions (nodes are stationary until RandomWaypointStep re-draws).
  static Result<ManetTopology> FromPositions(const TopologyOptions& options,
                                             std::vector<Vector> positions);

  /// Number of nodes.
  int num_nodes() const { return static_cast<int>(positions_.size()); }

  /// Position of `node` (2-D, meters).
  const Vector& position(int node) const;

  /// Physical radio neighbours of `node` (within radio range).
  const std::vector<int>& neighbors(int node) const;

  /// Shortest-path hop count between two nodes (0 for a == b), or
  /// kUnreachableHops when mobility has split them into different radio
  /// islands — callers treat that as "unreachable this tick".
  int PathHops(int from, int to) const;

  /// Node sequence of one shortest path from `from` to `to`, both endpoints
  /// included ({from} when from == to). Empty when no path exists. Ties are
  /// broken deterministically (BFS in ascending neighbour order).
  std::vector<int> ShortestPath(int from, int to) const;

  /// Mean hop count over all ordered *reachable* node pairs — the expected
  /// physical cost of one overlay hop (0 if no pair is reachable).
  double MeanPairwiseHops() const;

  /// True iff the connectivity graph is currently connected.
  bool connected() const;

  /// Mean Euclidean distance (m) of one radio transmission (adjacent pairs).
  double MeanLinkDistanceM() const;

  /// One random-waypoint mobility step: every node moves up to
  /// `max_step_m` toward its private waypoint (re-drawn when reached), then
  /// connectivity is recomputed. Low speeds model the paper's "limited
  /// mobility" sessions.
  void RandomWaypointStep(double max_step_m, Rng& rng);

 private:
  ManetTopology() = default;

  void RebuildConnectivity();

  TopologyOptions options_;
  std::vector<Vector> positions_;   // 2-D points
  std::vector<Vector> waypoints_;   // mobility targets
  std::vector<std::vector<int>> neighbors_;
};

}  // namespace hyperm::manet

#endif  // HYPERM_MANET_TOPOLOGY_H_
