// Physical MANET topology underneath the overlay.
//
// The paper evaluates Hyper-M purely in overlay hops; its motivating
// scenario, however, is a physical ad-hoc radio network (conference room,
// train car) where one overlay hop between two arbitrary peers costs a
// multi-hop radio path. This module supplies that missing substrate: node
// placement in a field, unit-disk connectivity, shortest-path hop metrics
// and random-waypoint mobility. Because CAN zone assignment is independent
// of geography, overlay neighbours are uniform random node pairs physically,
// so `MeanPairwiseHops()` is the exact expected physical cost of one overlay
// hop — the conversion factor the energy benches use.
//
// Scale-out design (DESIGN.md §13):
//  - Connectivity is rebuilt through a uniform-grid spatial hash (cell size
//    = radio range), so a rebuild costs O(n · k) for mean degree k instead
//    of the O(n²) pairwise scan. Neighbour lists stay in ascending-id order,
//    which keeps BFS tie-breaking — and every downstream result —
//    bit-identical to the brute-force implementation.
//  - Every connectivity rebuild bumps a monotonically increasing epoch.
//    Shortest-path queries are served from per-source BFS trees built
//    lazily and cached until the epoch moves on; island (connected
//    component) labels are cached the same way, so reachability checks are
//    O(1) between mobility ticks.
//
// Thread-safety: like the radio channel above it, the topology is
// single-threaded by design — the route/island caches mutate under const
// accessors and must only be touched from the simulator thread.

#ifndef HYPERM_MANET_TOPOLOGY_H_
#define HYPERM_MANET_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "vec/vector.h"

namespace hyperm::manet {

/// Physical deployment parameters.
struct TopologyOptions {
  int num_nodes = 50;
  double field_size_m = 200.0;   ///< square field side
  double radio_range_m = 50.0;   ///< unit-disk radio range
  int max_placement_attempts = 200;  ///< retries until a connected placement

  // Asymmetric radios (directed links): each node transmits to
  // radio_range_m scaled by a per-node multiplier drawn uniformly from
  // [min_range_multiplier, max_range_multiplier] on the placement stream.
  // A link a->b exists iff dist(a, b) <= range * multiplier(a), so unequal
  // multipliers make the connectivity graph a digraph (island labelling
  // becomes SCC-based, "connected" means strongly connected). The default
  // (1, 1) keeps the graph symmetric and draws nothing extra from the
  // placement stream — legacy streams stay bit-identical.
  double min_range_multiplier = 1.0;
  double max_range_multiplier = 1.0;
};

/// Sentinel returned by PathHops when no radio path exists (the unit-disk
/// graph is split into islands — routine under mobility).
inline constexpr int kUnreachableHops = -1;

/// Route-cache effectiveness totals. Plain counters (the manet layer sits
/// below obs in the dependency order); the radio channel forwards deltas
/// into the metrics registry as `channel.route_cache.*`.
struct RouteCacheCounters {
  uint64_t hits = 0;           ///< lookups served by a fresh cached tree
  uint64_t misses = 0;         ///< lookups that had to run a BFS
  uint64_t invalidations = 0;  ///< misses whose cached tree was epoch-stale
};

/// A static snapshot of node positions with unit-disk connectivity.
class ManetTopology {
 public:
  /// Samples uniform placements until the unit-disk graph is connected.
  /// Returns FailedPrecondition if no connected placement is found within
  /// the attempt budget (radio range too small for the field).
  static Result<ManetTopology> Generate(const TopologyOptions& options, Rng& rng);

  /// Builds a topology from explicit node positions (2-D, inside the field).
  /// Connectivity is NOT required — this is how tests and the channel layer
  /// construct deterministic disconnected layouts. Waypoints start at the
  /// node positions (nodes are stationary until RandomWaypointStep re-draws).
  /// `range_multipliers` (optional) gives each node an explicit transmit
  /// range factor: empty keeps the symmetric unit-disk graph; otherwise one
  /// positive entry per node makes links directed (see TopologyOptions).
  static Result<ManetTopology> FromPositions(
      const TopologyOptions& options, std::vector<Vector> positions,
      std::vector<double> range_multipliers = {});

  /// Number of nodes.
  int num_nodes() const { return static_cast<int>(positions_.size()); }

  /// Position of `node` (2-D, meters).
  const Vector& position(int node) const;

  /// Physical radio neighbours `node` can transmit *to* (out-neighbours on a
  /// digraph; within radio range), ascending id.
  const std::vector<int>& neighbors(int node) const;

  /// Nodes that can transmit *to* `node` (in-neighbours), ascending id.
  /// Identical to neighbors(node) on symmetric topologies.
  const std::vector<int>& in_neighbors(int node) const;

  /// False once per-node range multipliers make links directed.
  bool symmetric() const { return !directed_; }

  /// Transmit-range factor of `node` (1.0 on symmetric topologies).
  double range_multiplier(int node) const;

  /// Shortest-path hop count between two nodes (0 for a == b), or
  /// kUnreachableHops when mobility has split them into different radio
  /// islands — callers treat that as "unreachable this tick". Served from
  /// the per-source route cache (one BFS per source per epoch).
  int PathHops(int from, int to) const;

  /// Node sequence of one shortest path from `from` to `to`, both endpoints
  /// included ({from} when from == to). Empty when no path exists. Ties are
  /// broken deterministically (BFS in ascending neighbour order). Served
  /// from the per-source route cache.
  std::vector<int> ShortestPath(int from, int to) const;

  /// Allocation-free ShortestPath variant: clears `out` and fills it with
  /// the same node sequence. The transmit path calls this once per routed
  /// message, so it reuses the caller's buffer instead of returning a fresh
  /// vector.
  void ShortestPathInto(int from, int to, std::vector<int>& out) const;

  /// Mean hop count over all ordered *reachable* node pairs — the expected
  /// physical cost of one overlay hop (0 if no pair is reachable).
  double MeanPairwiseHops() const;

  /// True iff the connectivity graph is currently connected.
  bool connected() const;

  /// Mean Euclidean distance (m) of one radio transmission (adjacent pairs).
  double MeanLinkDistanceM() const;

  /// One random-waypoint mobility step: every node moves up to
  /// `max_step_m` toward its private waypoint (re-drawn when reached), then
  /// connectivity is recomputed (bumping the epoch). Low speeds model the
  /// paper's "limited mobility" sessions.
  void RandomWaypointStep(double max_step_m, Rng& rng);

  /// Monotonic counter bumped on every connectivity rebuild. Cached routes
  /// and island labels are valid exactly while this stays constant.
  uint64_t connectivity_epoch() const { return epoch_; }

  /// Island (connected-component) label per node, densely numbered from 0
  /// in ascending-node discovery order (the historical RelabelIslands
  /// contract). Lazily recomputed once per epoch.
  const std::vector<int>& island_labels() const;

  /// Number of distinct radio islands right now (1 when connected).
  int num_islands() const;

  /// True iff both nodes sit in the same radio island — O(1) between
  /// mobility ticks, the cheap pre-check that keeps unreachable drops free.
  /// On digraphs "same island" means the same SCC (mutually reachable).
  bool SameIsland(int a, int b) const;

  /// Directed-aware reachability: can a transmission starting at `from`
  /// reach `to`? Symmetric topologies answer via the O(1) island labels
  /// (exactly the legacy check); digraphs consult the cached BFS tree,
  /// because one-way paths cross SCC boundaries.
  bool CanReach(int from, int to) const;

  /// Strongly-connected-component label per node, computed fresh (no
  /// cache), densely numbered by ascending first occurrence — the same
  /// contract as island_labels(), which delegates here on digraphs. On a
  /// symmetric topology SCCs coincide with connected components, so this
  /// must equal island_labels() exactly (regression-tested).
  std::vector<int> SccLabels() const;

  /// Route-cache totals since construction (monotonic).
  const RouteCacheCounters& route_cache_counters() const { return route_counters_; }

  /// Number of cached per-source trees valid for the current epoch — what a
  /// connectivity rebuild is about to throw away.
  int CachedTreeCount() const;

 private:
  /// One cached BFS tree: parents + hop counts from a single source, tagged
  /// with the epoch it was built at (0 = never built; epochs start at 1).
  struct SourceTree {
    uint64_t epoch = 0;
    std::vector<int> parent;  // -1 = unreachable; parent[source] = source
    std::vector<int> hops;    // -1 = unreachable
  };

  ManetTopology() = default;

  void RebuildConnectivity();

  /// SCC labelling workhorse (iterative Kosaraju over the out/in lists);
  /// fills `labels` and returns the component count.
  int SccLabelsInto(std::vector<int>& labels) const;

  /// Grid cell edge: radio range scaled by the largest multiplier, so the
  /// 3x3 cell probe still covers the longest-range node.
  double CellSizeM() const;

  /// Rebuilds the spatial-hash grid from scratch (placement time).
  void RebuildGrid();
  /// Moves nodes between grid cells after a mobility step; only cells whose
  /// occupants changed are touched.
  void UpdateGridAfterMove();
  /// Recomputes every neighbour list from the grid (3×3 cell probe).
  void RecomputeNeighborLists();
  int CellOf(const Vector& position) const;

  /// Returns the cached BFS tree for `from`, building it if absent/stale.
  const SourceTree& TreeFor(int from) const;

  TopologyOptions options_;
  std::vector<Vector> positions_;   // 2-D points
  std::vector<Vector> waypoints_;   // mobility targets
  std::vector<std::vector<int>> neighbors_;  // out-neighbours on digraphs

  // Directed mode (per-node range multipliers). Both stay empty on
  // symmetric topologies: in_neighbors(n) then aliases neighbors(n).
  bool directed_ = false;
  std::vector<double> range_mult_;
  std::vector<std::vector<int>> in_neighbors_;

  // Spatial hash: cells_[cy * grid_dim_ + cx] lists the occupant node ids.
  int grid_dim_ = 1;
  std::vector<std::vector<int>> cells_;
  std::vector<int> node_cell_;  // current cell index per node

  // Epoch-tagged caches (mutable: filled lazily under const accessors on
  // the single simulator thread).
  uint64_t epoch_ = 0;
  mutable std::vector<SourceTree> trees_;
  mutable std::vector<int> islands_;
  mutable uint64_t island_epoch_ = 0;
  mutable int num_islands_ = 0;
  mutable RouteCacheCounters route_counters_;
};

}  // namespace hyperm::manet

#endif  // HYPERM_MANET_TOPOLOGY_H_
