// Hypersphere volume geometry (Section 4.2 of the paper).
//
// The peer-relevance score (Eq. 1) and the k-NN radius estimator (Eq. 8)
// both need the fraction of a data cluster's sphere that a query sphere
// covers. This header implements:
//  * unit-ball volumes,
//  * spherical-cap volume fractions — both the paper's even-dimension series
//    (Eq. 5) and a generic closed form via the regularized incomplete beta
//    function (valid for every d >= 1, cross-checked in tests),
//  * the two-sphere intersection fraction (Eqs. 6-7) with all degenerate
//    cases (disjoint, tangent, containment) handled exactly.

#ifndef HYPERM_GEOM_SPHERE_VOLUME_H_
#define HYPERM_GEOM_SPHERE_VOLUME_H_

namespace hyperm::geom {

/// Natural log of the volume of the unit ball in R^d (d >= 1).
double UnitBallLogVolume(int d);

/// Volume of a ball of radius r in R^d.
double BallVolume(int d, double r);

/// Fraction of a d-ball's volume lying in the spherical cap with half-angle
/// `alpha` at the center (alpha in [0, pi]; alpha = pi/2 gives exactly 1/2,
/// alpha = pi the whole ball). Uses the regularized incomplete beta closed
/// form; valid for every d >= 1.
double CapVolumeFraction(int d, double alpha);

/// The paper's Eq. 5 series for even d (alpha in [0, pi]). Provided for
/// fidelity and as a cross-check of CapVolumeFraction; the two agree to
/// ~1e-10 for even d.
double CapVolumeFractionEvenSeries(int d, double alpha);

/// The sine-power-integral form the paper omits "due to space constraints"
/// for odd d — implemented for every d >= 1 via the standard recurrence
///   S_d(a) = (-cos(a) sin^(d-1)(a) + (d-1) S_{d-2}(a)) / d
/// and Vol_cap/Vol_ball = Gamma(d/2+1) / (sqrt(pi) Gamma((d+1)/2)) * S_d(a).
/// Cross-checked against CapVolumeFraction for both parities in tests.
double CapVolumeFractionSineRecurrence(int d, double alpha);

/// Fraction of the volume of a sphere of radius `r` covered by a sphere of
/// radius `eps` whose center lies at distance `b` (Eqs. 6-7 generalized):
///
///   * 0 when the spheres are disjoint (b >= r + eps),
///   * 1 when the r-sphere is contained in the eps-sphere (b + r <= eps),
///   * (eps/r)^d when the eps-sphere is contained in the r-sphere,
///   * the two-cap lens volume over Vol(r) otherwise.
///
/// Requires d >= 1, r > 0, eps >= 0, b >= 0. Result is clamped to [0, 1].
double SphereIntersectionFraction(int d, double r, double eps, double b);

}  // namespace hyperm::geom

#endif  // HYPERM_GEOM_SPHERE_VOLUME_H_
