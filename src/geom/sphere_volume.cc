#include "geom/sphere_volume.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace hyperm::geom {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

double UnitBallLogVolume(int d) {
  HM_CHECK_GE(d, 1);
  return 0.5 * d * std::log(kPi) - LogGamma(0.5 * d + 1.0);
}

double BallVolume(int d, double r) {
  HM_CHECK_GE(r, 0.0);
  if (r == 0.0) return 0.0;
  return std::exp(UnitBallLogVolume(d) + d * std::log(r));
}

double CapVolumeFraction(int d, double alpha) {
  HM_CHECK_GE(d, 1);
  HM_CHECK_GE(alpha, -1e-12);
  HM_CHECK_LE(alpha, kPi + 1e-12);
  alpha = std::clamp(alpha, 0.0, kPi);
  if (alpha == 0.0) return 0.0;
  if (alpha == kPi) return 1.0;
  // For alpha <= pi/2 the cap fraction is (1/2) I_{sin^2 alpha}((d+1)/2, 1/2);
  // obtuse caps follow from symmetry: cap(alpha) = 1 - cap(pi - alpha).
  if (alpha > 0.5 * kPi) return 1.0 - CapVolumeFraction(d, kPi - alpha);
  const double s = std::sin(alpha);
  const double x = s * s;
  return 0.5 * RegularizedIncompleteBeta(0.5 * (d + 1), 0.5, x);
}

double CapVolumeFractionEvenSeries(int d, double alpha) {
  HM_CHECK_GE(d, 2);
  HM_CHECK_EQ(d % 2, 0);
  HM_CHECK_GE(alpha, -1e-12);
  HM_CHECK_LE(alpha, kPi + 1e-12);
  alpha = std::clamp(alpha, 0.0, kPi);
  // Eq. 5: (1/pi) * (alpha - cos(alpha) * sum_{i=0}^{(d-2)/2} c_i sin^{2i+1}(alpha))
  // with c_i = 2^{2i} (i!)^2 / (2i+1)!. Compute coefficients in log space to
  // stay stable for large d.
  const double sin_a = std::sin(alpha);
  const double cos_a = std::cos(alpha);
  double sum = 0.0;
  if (sin_a > 0.0) {
    const double log_sin = std::log(sin_a);
    for (int i = 0; i <= (d - 2) / 2; ++i) {
      const double log_coeff =
          2.0 * i * std::log(2.0) + 2.0 * LogFactorial(i) - LogFactorial(2 * i + 1);
      sum += std::exp(log_coeff + (2.0 * i + 1.0) * log_sin);
    }
  }
  return (alpha - cos_a * sum) / kPi;
}

double CapVolumeFractionSineRecurrence(int d, double alpha) {
  HM_CHECK_GE(d, 1);
  HM_CHECK_GE(alpha, -1e-12);
  HM_CHECK_LE(alpha, kPi + 1e-12);
  alpha = std::clamp(alpha, 0.0, kPi);
  // S_k = integral of sin^k over [0, alpha], built bottom-up from
  // S_0 = alpha and S_1 = 1 - cos(alpha).
  const double sin_a = std::sin(alpha);
  const double cos_a = std::cos(alpha);
  double s_even = alpha;           // S_0
  double s_odd = 1.0 - cos_a;      // S_1
  double integral = d >= 2 ? 0.0 : (d == 0 ? s_even : s_odd);
  for (int k = 2; k <= d; ++k) {
    double& prev = (k % 2 == 0) ? s_even : s_odd;
    prev = (-cos_a * std::pow(sin_a, k - 1) + (k - 1) * prev) / k;
    if (k == d) integral = prev;
  }
  if (d == 1) integral = s_odd;
  const double coefficient =
      std::exp(LogGamma(0.5 * d + 1.0) - 0.5 * std::log(kPi) - LogGamma(0.5 * (d + 1)));
  return std::clamp(coefficient * integral, 0.0, 1.0);
}

double SphereIntersectionFraction(int d, double r, double eps, double b) {
  HM_CHECK_GE(d, 1);
  HM_CHECK_GT(r, 0.0);
  HM_CHECK_GE(eps, 0.0);
  HM_CHECK_GE(b, 0.0);
  if (eps == 0.0) return 0.0;
  // Disjoint (or tangent) spheres share no volume.
  if (b >= r + eps) return 0.0;
  // Data sphere entirely inside the query sphere.
  if (b + r <= eps) return 1.0;
  // Query sphere entirely inside the data sphere.
  if (b + eps <= r) {
    return std::exp(d * (std::log(eps) - std::log(r)));
  }
  // Proper lens: two caps, one from each sphere, joined at the plane of the
  // intersection (d-2)-sphere. Law of cosines gives the half-angles.
  HM_CHECK_GT(b, 0.0);
  const double cos_alpha = std::clamp((b * b + r * r - eps * eps) / (2.0 * b * r), -1.0, 1.0);
  const double cos_beta = std::clamp((b * b + eps * eps - r * r) / (2.0 * b * eps), -1.0, 1.0);
  const double alpha = std::acos(cos_alpha);
  const double beta = std::acos(cos_beta);
  const double lens_over_vol_r =
      CapVolumeFraction(d, alpha) +
      CapVolumeFraction(d, beta) * std::exp(d * (std::log(eps) - std::log(r)));
  return std::clamp(lens_over_vol_r, 0.0, 1.0);
}

}  // namespace hyperm::geom
