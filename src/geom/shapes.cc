#include "geom/shapes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hyperm::geom {

bool Sphere::Contains(const Vector& p) const {
  return vec::SquaredDistance(center, p) <= radius * radius;
}

bool Sphere::Intersects(const Sphere& other) const {
  const double reach = radius + other.radius;
  return vec::SquaredDistance(center, other.center) <= reach * reach;
}

bool Box::ContainsHalfOpen(const Vector& p) const {
  HM_CHECK_EQ(p.size(), lo.size());
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < lo[i] || p[i] >= hi[i]) return false;
  }
  return true;
}

double Box::SquaredDistanceTo(const Vector& p) const {
  HM_CHECK_EQ(p.size(), lo.size());
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double clamped = std::clamp(p[i], lo[i], hi[i]);
    const double diff = p[i] - clamped;
    sum += diff * diff;
  }
  return sum;
}

bool Box::IntersectsSphere(const Sphere& sphere) const {
  return SquaredDistanceTo(sphere.center) <= sphere.radius * sphere.radius;
}

Vector Box::Center() const {
  Vector c(lo.size());
  for (size_t i = 0; i < lo.size(); ++i) c[i] = 0.5 * (lo[i] + hi[i]);
  return c;
}

double Box::Volume() const {
  double v = 1.0;
  for (size_t i = 0; i < lo.size(); ++i) v *= (hi[i] - lo[i]);
  return v;
}

}  // namespace hyperm::geom
