// Basic geometric shapes shared by the overlay and core modules.

#ifndef HYPERM_GEOM_SHAPES_H_
#define HYPERM_GEOM_SHAPES_H_

#include "vec/vector.h"

namespace hyperm::geom {

/// A hypersphere: the representation of both data clusters and range
/// queries throughout Hyper-M (Section 3.1).
struct Sphere {
  Vector center;
  double radius = 0.0;

  /// Dimensionality of the ambient space.
  size_t dim() const { return center.size(); }

  /// True iff `p` lies inside or on the sphere.
  bool Contains(const Vector& p) const;

  /// True iff the two spheres share at least one point.
  bool Intersects(const Sphere& other) const;
};

/// An axis-aligned box [lo, hi] (used for CAN zones).
struct Box {
  Vector lo;
  Vector hi;

  size_t dim() const { return lo.size(); }

  /// True iff `p` is inside (lo inclusive, hi exclusive — the half-open
  /// convention under which CAN zones exactly tile the key space).
  bool ContainsHalfOpen(const Vector& p) const;

  /// Squared Euclidean distance from `p` to the closed box (0 if inside).
  double SquaredDistanceTo(const Vector& p) const;

  /// True iff the closed box intersects the sphere.
  bool IntersectsSphere(const Sphere& sphere) const;

  /// Center point of the box.
  Vector Center() const;

  /// Product of side lengths.
  double Volume() const;
};

}  // namespace hyperm::geom

#endif  // HYPERM_GEOM_SHAPES_H_
