#include "geom/radius_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/sphere_volume.h"

namespace hyperm::geom {
namespace {

// Fraction of a (possibly degenerate) cluster covered by an eps-query whose
// center sits at distance b from the cluster centroid.
double CoveredFraction(int d, const ClusterView& c, double eps) {
  if (c.radius <= 0.0) {
    // A point cluster is either fully covered or not at all.
    return c.center_distance <= eps ? 1.0 : 0.0;
  }
  return SphereIntersectionFraction(d, c.radius, eps, c.center_distance);
}

}  // namespace

double ExpectedItems(int d, const std::vector<ClusterView>& clusters, double eps) {
  HM_CHECK_GE(eps, 0.0);
  double expected = 0.0;
  for (const ClusterView& c : clusters) {
    expected += CoveredFraction(d, c, eps) * c.items;
  }
  return expected;
}

Result<double> SolveRadiusForCount(int d, const std::vector<ClusterView>& clusters,
                                   double k, const RadiusSolveOptions& options) {
  if (clusters.empty()) {
    return InvalidArgumentError("SolveRadiusForCount: no clusters");
  }
  if (k <= 0.0) {
    return InvalidArgumentError("SolveRadiusForCount: k must be positive");
  }
  double total_items = 0.0;
  double hi = 0.0;
  for (const ClusterView& c : clusters) {
    HM_CHECK_GE(c.radius, 0.0);
    HM_CHECK_GE(c.center_distance, 0.0);
    HM_CHECK_GT(c.items, 0);
    total_items += c.items;
    hi = std::fmax(hi, c.center_distance + c.radius);
  }
  if (k > total_items) {
    return OutOfRangeError("SolveRadiusForCount: k exceeds reachable items");
  }
  // E(0) = 0 (clusters whose centroid coincides with the query contribute 0
  // volume at eps=0 unless they are point clusters at distance 0; in that
  // rare case E(0) may already exceed k and eps=0 is the answer).
  double lo = 0.0;
  double f_lo = ExpectedItems(d, clusters, lo) - k;
  if (f_lo >= 0.0) return 0.0;
  double f_hi = ExpectedItems(d, clusters, hi) - k;
  if (f_hi < 0.0) {
    // Numerical slack: at eps=hi every cluster is fully covered, so f_hi
    // should be >= 0; treat tiny negatives as converged.
    if (f_hi > -options.tolerance) return hi;
    return OutOfRangeError("SolveRadiusForCount: target not bracketed");
  }

  // Safeguarded Newton: propose a Newton step from the bracket midpoint's
  // numerical derivative; accept it only if it stays inside the bracket,
  // otherwise bisect. The bracket [lo, hi] always satisfies f(lo)<0<=f(hi).
  double eps = 0.5 * (lo + hi);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const double f = ExpectedItems(d, clusters, eps) - k;
    if (std::fabs(f) <= options.tolerance || (hi - lo) < 1e-12 * (1.0 + hi)) {
      return eps;
    }
    if (f < 0.0) {
      lo = eps;
    } else {
      hi = eps;
    }
    // Numerical derivative over a step proportional to the bracket width.
    const double h = std::fmax(1e-9, 1e-4 * (hi - lo));
    const double f_plus = ExpectedItems(d, clusters, eps + h) - k;
    const double df = (f_plus - f) / h;
    double next;
    if (df > 1e-12) {
      next = eps - f / df;
      if (next <= lo || next >= hi) next = 0.5 * (lo + hi);
    } else {
      next = 0.5 * (lo + hi);
    }
    eps = next;
  }
  return eps;
}

}  // namespace hyperm::geom
