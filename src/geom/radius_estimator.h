// Inversion of the "query radius -> expected retrieved items" model (Eq. 8).
//
// Given the published cluster summaries reachable in one wavelet subspace,
// the expected number of items a range query of radius eps retrieves is
//
//   E(eps) = sum_c SphereIntersectionFraction(d, r_c, eps, b_c) * items_c
//
// which is continuous and non-decreasing in eps. The k-NN heuristic (Fig. 5,
// step 2) needs the inverse: the radius that yields an expected count of k.
// The paper notes the equation "does not have an analytical solution" and
// solves it numerically (Newton); we use a safeguarded Newton iteration that
// falls back to bisection, which is robust to the flat regions E(eps)
// exhibits when clusters are far apart.

#ifndef HYPERM_GEOM_RADIUS_ESTIMATOR_H_
#define HYPERM_GEOM_RADIUS_ESTIMATOR_H_

#include <vector>

#include "common/result.h"

namespace hyperm::geom {

/// One published cluster as seen from a fixed query point: its radius, the
/// distance from the query point to its centroid, and its item count.
struct ClusterView {
  double radius = 0.0;           ///< cluster sphere radius (>= 0)
  double center_distance = 0.0;  ///< distance from query to centroid (>= 0)
  int items = 0;                 ///< number of data items summarised (> 0)
};

/// Expected number of items retrieved by a range query of radius `eps`
/// against `clusters` in a d-dimensional space (Eq. 8 left-hand side).
/// Point clusters (radius 0) count fully once eps reaches them.
double ExpectedItems(int d, const std::vector<ClusterView>& clusters, double eps);

/// Options for SolveRadiusForCount.
struct RadiusSolveOptions {
  double tolerance = 1e-3;   ///< acceptable |E(eps) - k| (in items)
  int max_iterations = 200;  ///< Newton + bisection iteration budget
};

/// Finds eps with ExpectedItems(eps) ~= k.
///
/// Returns:
///  * OutOfRange if k exceeds the total number of items in `clusters`
///    (the caller should then use the maximal radius / contact everyone),
///  * InvalidArgument on empty input or non-positive k,
///  * otherwise the smallest bracketed solution found.
Result<double> SolveRadiusForCount(int d, const std::vector<ClusterView>& clusters,
                                   double k, const RadiusSolveOptions& options = {});

}  // namespace hyperm::geom

#endif  // HYPERM_GEOM_RADIUS_ESTIMATOR_H_
