#include "can/can_overlay.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace hyperm::can {

using overlay::InsertReceipt;
using overlay::NodeId;
using overlay::NodeStorage;
using overlay::PublishedCluster;
using overlay::RangeQueryResult;

namespace {

// Fixed per-message header: source, destination, type, ids.
constexpr uint64_t kHeaderBytes = 16;

}  // namespace

Result<std::unique_ptr<CanOverlay>> CanOverlay::Build(size_t dim, int num_nodes,
                                                      sim::NetworkStats* stats,
                                                      Rng& rng) {
  if (dim < 1) return InvalidArgumentError("CanOverlay: dim must be >= 1");
  if (num_nodes < 1) return InvalidArgumentError("CanOverlay: need >= 1 node");
  HM_CHECK(stats != nullptr);
  std::unique_ptr<CanOverlay> overlay(new CanOverlay(dim, stats));
  // The bootstrap node owns the whole cube.
  Node first;
  first.zone.lo.assign(dim, 0.0);
  first.zone.hi.assign(dim, 1.0);
  overlay->nodes_.push_back(std::move(first));
  for (int i = 1; i < num_nodes; ++i) {
    HM_RETURN_IF_ERROR(overlay->Join(rng));
  }
  return overlay;
}

Status CanOverlay::Join(Rng& rng) {
  // The newcomer picks a random point and routes to its owner through a
  // random bootstrap contact (it knows one active node already in the
  // network).
  Vector point(dim_);
  for (double& x : point) x = rng.NextDouble();
  NodeId bootstrap = static_cast<NodeId>(rng.NextIndex(nodes_.size()));
  while (!nodes_[static_cast<size_t>(bootstrap)].active) {
    bootstrap = static_cast<NodeId>(rng.NextIndex(nodes_.size()));
  }
  HM_ASSIGN_OR_RETURN(RouteResult route,
                      Route(point, bootstrap, sim::TrafficClass::kJoin, KeyMessageBytes()));
  if (!route.delivered) {
    return UnavailableError("Join: route to join point lost in transit");
  }
  const NodeId owner = route.destination;
  const NodeId fresh = SplitZone(owner, point);
  // Split handshake: owner transfers half its zone (and state) to the
  // newcomer, then both notify the affected neighbours.
  stats_->RecordHop(sim::TrafficClass::kJoin, ClusterMessageBytes());
  const size_t notified =
      nodes_[static_cast<size_t>(owner)].neighbors.size() +
      nodes_[static_cast<size_t>(fresh)].neighbors.size();
  for (size_t i = 0; i < notified; ++i) {
    stats_->RecordHop(sim::TrafficClass::kJoin, KeyMessageBytes());
  }
  return OkStatus();
}

NodeId CanOverlay::SplitZone(NodeId owner, const Vector& point) {
  Node& old_node = nodes_[static_cast<size_t>(owner)];
  HM_CHECK(old_node.zone.ContainsHalfOpen(point));
  // Split along the longest side (keeps zones close to cubical, which is the
  // practical variant of CAN's cyclic dimension ordering).
  size_t split_dim = 0;
  double longest = -1.0;
  for (size_t i = 0; i < dim_; ++i) {
    const double side = old_node.zone.hi[i] - old_node.zone.lo[i];
    if (side > longest) {
      longest = side;
      split_dim = i;
    }
  }
  const double mid = 0.5 * (old_node.zone.lo[split_dim] + old_node.zone.hi[split_dim]);
  HM_OBS_COUNTER_ADD("can.zone_splits", 1);

  Node fresh;
  fresh.zone = old_node.zone;
  if (point[split_dim] < mid) {
    // Newcomer takes the lower half.
    fresh.zone.hi[split_dim] = mid;
    old_node.zone.lo[split_dim] = mid;
  } else {
    fresh.zone.lo[split_dim] = mid;
    old_node.zone.hi[split_dim] = mid;
  }
  const NodeId fresh_id = static_cast<NodeId>(nodes_.size());

  // Re-home stored clusters: each stays with every half its sphere overlaps.
  std::vector<PublishedCluster> kept;
  for (PublishedCluster& cluster : old_node.stored) {
    if (fresh.zone.IntersectsSphere(cluster.sphere)) fresh.stored.push_back(cluster);
    if (nodes_[static_cast<size_t>(owner)].zone.IntersectsSphere(cluster.sphere)) {
      kept.push_back(std::move(cluster));
    }
  }
  nodes_[static_cast<size_t>(owner)].stored = std::move(kept);

  // Rebuild neighbour sets of the two halves from the owner's old set, then
  // fix up the reverse edges.
  std::vector<NodeId> candidates = nodes_[static_cast<size_t>(owner)].neighbors;
  nodes_.push_back(std::move(fresh));
  Node& old_ref = nodes_[static_cast<size_t>(owner)];
  Node& new_ref = nodes_.back();

  old_ref.neighbors.clear();
  for (NodeId n : candidates) {
    Node& other = nodes_[static_cast<size_t>(n)];
    auto& list = other.neighbors;
    list.erase(std::remove(list.begin(), list.end(), owner), list.end());
    if (Adjacent(old_ref.zone, other.zone)) {
      old_ref.neighbors.push_back(n);
      list.push_back(owner);
    }
    if (Adjacent(new_ref.zone, other.zone)) {
      new_ref.neighbors.push_back(n);
      list.push_back(fresh_id);
    }
  }
  HM_CHECK(Adjacent(old_ref.zone, new_ref.zone));
  old_ref.neighbors.push_back(fresh_id);
  new_ref.neighbors.push_back(owner);
  return fresh_id;
}

bool CanOverlay::Adjacent(const geom::Box& a, const geom::Box& b) {
  HM_CHECK_EQ(a.dim(), b.dim());
  bool abuts = false;
  for (size_t i = 0; i < a.dim(); ++i) {
    const bool touch = (a.hi[i] == b.lo[i]) || (b.hi[i] == a.lo[i]);
    const double overlap = std::fmin(a.hi[i], b.hi[i]) - std::fmax(a.lo[i], b.lo[i]);
    if (touch && overlap == 0.0) {
      if (abuts) return false;  // touching in two dims => only a corner/edge
      abuts = true;
    } else if (overlap <= 0.0) {
      return false;  // separated in dimension i
    }
  }
  return abuts;
}

Vector CanOverlay::ClampKey(const Vector& key) const {
  HM_CHECK_EQ(key.size(), dim_);
  Vector clamped = key;
  for (double& x : clamped) {
    x = std::clamp(x, 0.0, std::nextafter(1.0, 0.0));
  }
  return clamped;
}

uint64_t CanOverlay::KeyMessageBytes() const {
  return kHeaderBytes + 8 * static_cast<uint64_t>(dim_);
}

uint64_t CanOverlay::ClusterMessageBytes() const {
  // key + sphere (center, radius) + owner/count/id.
  return kHeaderBytes + 16 * static_cast<uint64_t>(dim_) + 24;
}

NodeId CanOverlay::OwnerOf(const Vector& key) const {
  const Vector clamped = ClampKey(key);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].active) continue;
    if (nodes_[i].zone.ContainsHalfOpen(clamped)) return static_cast<NodeId>(i);
  }
  return overlay::kInvalidNode;  // unreachable on a consistent partition
}

net::HopResult CanOverlay::SendMessage(net::MessageType type, NodeId src,
                                       NodeId dst, uint64_t bytes,
                                       sim::TrafficClass cls) {
  if (transport_ == nullptr) {
    stats_->RecordHop(cls, bytes);
    return net::HopResult{true, 0.0};
  }
  net::Message message;
  message.type = type;
  message.src = src;
  message.dst = dst;
  message.bytes = bytes;
  message.cls = cls;
  return transport_->SendHop(message);
}

Result<RouteResult> CanOverlay::Route(const Vector& key, NodeId origin,
                                      sim::TrafficClass cls, uint64_t message_bytes,
                                      net::MessageType type, int max_detours) {
  if (origin < 0 || origin >= num_nodes() ||
      !nodes_[static_cast<size_t>(origin)].active) {
    return InvalidArgumentError("Route: bad origin node");
  }
  const Vector target = ClampKey(key);
  RouteResult result;
  NodeId current = origin;
  // Greedy descent over zone-to-target distance. A target lying exactly on a
  // zone boundary gives several zones a closed-box distance of zero, so pure
  // greedy could oscillate between them; two safeguards prevent that:
  // deliver directly when a neighbour owns the target (half-open test), and
  // prefer zones this message has not traversed yet.
  //
  // With a detour budget, neighbours whose forward failed (or that the
  // transport knows are unreachable) go into `dead` and the next-closest one
  // is tried; a zone whose viable neighbours are exhausted is itself marked
  // dead and the walk backs out along `stack` — bounded depth-first search
  // ordered by greedy preference, degenerating to the classic single-path
  // walk at budget 0.
  std::unordered_set<NodeId> visited;
  std::unordered_set<NodeId> dead;
  std::vector<NodeId> stack;
  visited.insert(current);
  stack.push_back(current);
  result.trail.push_back(current);
  int detours_left = max_detours;
  const int ttl = 4 * num_nodes() + 16;
  while (!nodes_[static_cast<size_t>(current)].zone.ContainsHalfOpen(target)) {
    if (result.hops > ttl) return InternalError("Route: TTL exceeded (topology bug)");
    NodeId best = overlay::kInvalidNode;
    double best_sq = std::numeric_limits<double>::max();
    bool best_visited = true;
    for (NodeId n : nodes_[static_cast<size_t>(current)].neighbors) {
      if (dead.contains(n)) continue;
      if (nodes_[static_cast<size_t>(n)].zone.ContainsHalfOpen(target)) {
        best = n;
        best_visited = false;
        break;
      }
      const double sq = nodes_[static_cast<size_t>(n)].zone.SquaredDistanceTo(target);
      const bool seen = visited.contains(n);
      // Unvisited beats visited; within a group, smaller distance wins.
      if ((seen == best_visited && sq < best_sq) || (!seen && best_visited)) {
        best_sq = sq;
        best = n;
        best_visited = seen;
      }
    }
    if (best == overlay::kInvalidNode) {
      // Every neighbour of this zone is dead — a pocket the greedy walk can
      // only leave the way it came (possible only once detours emptied the
      // candidate list; a consistent topology always has neighbours).
      if (detours_left <= 0 || stack.size() < 2) {
        result.delivered = false;
        if (result.outcome == net::DeliveryOutcome::kDelivered) {
          result.outcome = net::DeliveryOutcome::kLostUnreachable;
        }
        return result;
      }
      dead.insert(current);
      stack.pop_back();
      current = stack.back();
      result.trail.push_back(current);
      --detours_left;
      ++result.detours;
      continue;
    }
    if (max_detours > 0 && best_visited) {
      // Every live candidate has already been traversed: greedy is cycling
      // inside a pocket (e.g. two island-mates whose other neighbours are all
      // dead would bounce between each other until the TTL). Back out
      // DFS-style instead of re-walking old ground; budget 0 keeps the
      // classic revisit-tolerant walk.
      if (detours_left <= 0 || stack.size() < 2) {
        result.delivered = false;
        if (result.outcome == net::DeliveryOutcome::kDelivered) {
          result.outcome = net::DeliveryOutcome::kLostUnreachable;
        }
        return result;
      }
      dead.insert(current);
      stack.pop_back();
      current = stack.back();
      result.trail.push_back(current);
      --detours_left;
      ++result.detours;
      continue;
    }
    if (detours_left > 0 && transport_ != nullptr &&
        !transport_->ReachableHint(current, best)) {
      // The transport already knows this forward cannot arrive (crashed peer,
      // partition window, different radio island): spend budget, not airtime.
      dead.insert(best);
      result.outcome = net::DeliveryOutcome::kLostUnreachable;
      --detours_left;
      ++result.detours;
      continue;
    }
    const net::HopResult hop = SendMessage(type, current, best, message_bytes, cls);
    result.latency_ms += hop.latency_ms;
    ++result.hops;
    if (!hop.delivered) {
      result.outcome = hop.outcome;
      if (detours_left <= 0) {
        // Retries exhausted mid-route: the message dies here. The walk is not
        // an error — the caller decides what an undelivered route means.
        result.delivered = false;
        return result;
      }
      dead.insert(best);
      --detours_left;
      ++result.detours;
      continue;
    }
    current = best;
    visited.insert(current);
    stack.push_back(current);
    result.trail.push_back(current);
  }
  result.destination = current;
  result.outcome = net::DeliveryOutcome::kDelivered;
  HM_OBS_HISTOGRAM("can.route_hops", obs::Buckets::Exponential(1, 2.0, 12),
                   result.hops);
  return result;
}

Result<InsertReceipt> CanOverlay::Insert(const PublishedCluster& cluster, NodeId origin) {
  if (cluster.sphere.center.size() != dim_) {
    return InvalidArgumentError("Insert: dimensionality mismatch");
  }
  if (cluster.sphere.radius < 0.0) {
    return InvalidArgumentError("Insert: negative radius");
  }
  HM_ASSIGN_OR_RETURN(RouteResult route,
                      Route(cluster.sphere.center, origin, sim::TrafficClass::kInsert,
                            ClusterMessageBytes(), net::MessageType::kInsert));
  InsertReceipt receipt;
  receipt.routing_hops = route.hops;
  receipt.latency_ms = route.latency_ms;
  if (!route.delivered) {
    // The publication never reached the centroid owner; nothing is stored.
    receipt.delivered = false;
    return receipt;
  }

  // Re-publication of an already-stored cluster id (soft-state refresh)
  // supersedes the entry in place instead of duplicating it; ids are unique
  // per publication otherwise, so first insertion is a plain append.
  const auto store_at = [this, &cluster](NodeId node) {
    auto& stored = nodes_[static_cast<size_t>(node)].stored;
    for (PublishedCluster& existing : stored) {
      if (existing.cluster_id == cluster.cluster_id) {
        existing = cluster;
        return;
      }
    }
    stored.push_back(cluster);
  };

  if (!replicate_spheres_) {
    store_at(route.destination);
    return receipt;
  }

  // Replicate into every zone the sphere overlaps, flooding outward from the
  // centroid owner through the neighbour graph (a connected region, since
  // the sphere is connected and zones tile the space). A lost replication
  // message prunes that branch, but the target stays unvisited so another
  // flood path may still reach it.
  std::unordered_set<NodeId> visited;
  std::deque<NodeId> frontier;
  visited.insert(route.destination);
  frontier.push_back(route.destination);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    store_at(node);
    for (NodeId n : nodes_[static_cast<size_t>(node)].neighbors) {
      if (visited.contains(n)) continue;
      if (!nodes_[static_cast<size_t>(n)].zone.IntersectsSphere(cluster.sphere)) continue;
      const net::HopResult hop =
          SendMessage(net::MessageType::kReplicate, node, n, ClusterMessageBytes(),
                      sim::TrafficClass::kReplicate);
      if (!hop.delivered) continue;
      visited.insert(n);
      frontier.push_back(n);
      ++receipt.replicas;
    }
  }
  HM_OBS_HISTOGRAM("can.insert_replicas", obs::Buckets::Exponential(1, 2.0, 12),
                   receipt.replicas);
  return receipt;
}

Result<RangeQueryResult> CanOverlay::RangeQuery(const geom::Sphere& query,
                                                NodeId origin) {
  if (query.center.size() != dim_) {
    return InvalidArgumentError("RangeQuery: dimensionality mismatch");
  }
  if (query.radius < 0.0) {
    return InvalidArgumentError("RangeQuery: negative radius");
  }
  HM_ASSIGN_OR_RETURN(RouteResult route, Route(query.center, origin,
                                               sim::TrafficClass::kQuery,
                                               KeyMessageBytes(),
                                               net::MessageType::kRoute,
                                               route_detours_));
  RangeQueryResult result;
  result.routing_hops = route.hops;
  result.latency_ms = route.latency_ms;
  result.route_detours = route.detours;
  result.outcome = route.outcome;
  if (!route.delivered) {
    // The query died on the way to the flood start; no node evaluated it.
    result.delivered = false;
    return result;
  }
  result.entry_node = route.destination;
  FloodFrom(query, route.destination, &result);
  return result;
}

Result<RangeQueryResult> CanOverlay::RangeQueryVia(const geom::Sphere& query,
                                                   NodeId origin,
                                                   NodeId entry_hint) {
  if (query.center.size() != dim_) {
    return InvalidArgumentError("RangeQueryVia: dimensionality mismatch");
  }
  if (query.radius < 0.0) {
    return InvalidArgumentError("RangeQueryVia: negative radius");
  }
  if (origin < 0 || origin >= num_nodes() ||
      !nodes_[static_cast<size_t>(origin)].active) {
    return InvalidArgumentError("RangeQueryVia: bad origin node");
  }
  RangeQueryResult result;
  if (entry_hint < 0 || entry_hint >= num_nodes() ||
      !nodes_[static_cast<size_t>(entry_hint)].active) {
    // The mined hint went stale (node left the overlay): report undelivered
    // without spending airtime so the caller falls back to the plain walk.
    result.delivered = false;
    result.outcome = net::DeliveryOutcome::kLostUnreachable;
    return result;
  }
  if (entry_hint != origin) {
    // One direct overlay message to the mined entry — the transport still
    // pays the true multi-radio-hop cost, but the greedy zone walk (one
    // message per zone crossed) is skipped entirely.
    const net::HopResult hop =
        SendMessage(net::MessageType::kRoute, origin, entry_hint,
                    KeyMessageBytes(), sim::TrafficClass::kQuery);
    result.routing_hops = 1;
    result.latency_ms = hop.latency_ms;
    result.outcome = hop.outcome;
    if (!hop.delivered) {
      result.delivered = false;
      return result;
    }
  }
  NodeId entry = entry_hint;
  if (!nodes_[static_cast<size_t>(entry)].zone.ContainsHalfOpen(
          ClampKey(query.center))) {
    // The hint does not own this query's center (the miner's cell straddles a
    // zone border): resume the greedy walk from the hint. The flood below
    // still starts at the true zone owner, so recall is unaffected either way.
    HM_ASSIGN_OR_RETURN(RouteResult route, Route(query.center, entry_hint,
                                                 sim::TrafficClass::kQuery,
                                                 KeyMessageBytes(),
                                                 net::MessageType::kRoute,
                                                 route_detours_));
    result.routing_hops += route.hops;
    result.latency_ms += route.latency_ms;
    result.route_detours = route.detours;
    result.outcome = route.outcome;
    if (!route.delivered) {
      result.delivered = false;
      return result;
    }
    entry = route.destination;
  }
  result.entry_node = entry;
  FloodFrom(query, entry, &result);
  return result;
}

void CanOverlay::FloodFrom(const geom::Sphere& query, NodeId entry,
                           RangeQueryResult* result) {
  std::unordered_set<NodeId> visited;
  std::unordered_set<uint64_t> seen_clusters;
  std::deque<NodeId> frontier;
  // Flood branches run concurrently: a node's answer arrives when the chain
  // of flood edges reaching it completes, and the query completes when the
  // slowest branch does.
  std::unordered_map<NodeId, double> arrival;
  visited.insert(entry);
  frontier.push_back(entry);
  arrival[entry] = result->latency_ms;
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    ++result->nodes_visited;
    for (const PublishedCluster& cluster : nodes_[static_cast<size_t>(node)].stored) {
      if (!cluster.sphere.Intersects(query)) continue;
      if (!seen_clusters.insert(cluster.cluster_id).second) continue;
      result->matches.push_back(cluster);
    }
    for (NodeId n : nodes_[static_cast<size_t>(node)].neighbors) {
      if (visited.contains(n)) continue;
      if (!nodes_[static_cast<size_t>(n)].zone.IntersectsSphere(query)) continue;
      const net::HopResult hop =
          SendMessage(net::MessageType::kQueryFlood, node, n, KeyMessageBytes(),
                      sim::TrafficClass::kQuery);
      if (!hop.delivered) continue;
      visited.insert(n);
      frontier.push_back(n);
      ++result->flood_hops;
      const double at = arrival[node] + hop.latency_ms;
      arrival[n] = at;
      result->latency_ms = std::max(result->latency_ms, at);
    }
  }
  HM_OBS_HISTOGRAM("can.flood_nodes_visited", obs::Buckets::Exponential(1, 2.0, 12),
                   result->nodes_visited);
}

std::vector<NodeStorage> CanOverlay::StorageDistribution() const {
  std::vector<NodeStorage> out;
  out.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    NodeStorage s;
    s.node = static_cast<NodeId>(i);
    s.clusters = static_cast<int>(nodes_[i].stored.size());
    for (const PublishedCluster& c : nodes_[i].stored) s.items += c.items;
    out.push_back(s);
  }
  return out;
}

void CanOverlay::ClearStorage() {
  for (Node& node : nodes_) node.stored.clear();
}

int CanOverlay::RemoveByOwner(int owner_peer) {
  int removed = 0;
  for (Node& node : nodes_) {
    auto& stored = node.stored;
    const auto end = std::remove_if(
        stored.begin(), stored.end(),
        [owner_peer](const PublishedCluster& c) { return c.owner_peer == owner_peer; });
    removed += static_cast<int>(std::distance(end, stored.end()));
    stored.erase(end, stored.end());
  }
  return removed;
}

int CanOverlay::ExpireBefore(double now) {
  int removed = 0;
  for (Node& node : nodes_) {
    auto& stored = node.stored;
    const auto end = std::remove_if(
        stored.begin(), stored.end(),
        [now](const PublishedCluster& c) { return c.expires_at < now; });
    removed += static_cast<int>(std::distance(end, stored.end()));
    stored.erase(end, stored.end());
  }
  return removed;
}

int CanOverlay::ClearNode(NodeId node) {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  Node& n = nodes_[static_cast<size_t>(node)];
  const int lost = static_cast<int>(n.stored.size());
  n.stored.clear();
  return lost;
}

const geom::Box& CanOverlay::zone(NodeId node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return nodes_[static_cast<size_t>(node)].zone;
}

const std::vector<NodeId>& CanOverlay::neighbors(NodeId node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return nodes_[static_cast<size_t>(node)].neighbors;
}

const std::vector<PublishedCluster>& CanOverlay::stored(NodeId node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return nodes_[static_cast<size_t>(node)].stored;
}

bool CanOverlay::active(NodeId node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return nodes_[static_cast<size_t>(node)].active;
}

int CanOverlay::num_active_nodes() const {
  int count = 0;
  for (const Node& node : nodes_) count += node.active ? 1 : 0;
  return count;
}

bool CanOverlay::Mergeable(const geom::Box& a, const geom::Box& b, geom::Box* merged) {
  HM_CHECK_EQ(a.dim(), b.dim());
  // Siblings differ in exactly one dimension, where one's hi equals the
  // other's lo; all other extents are identical.
  int differing = -1;
  for (size_t i = 0; i < a.dim(); ++i) {
    if (a.lo[i] == b.lo[i] && a.hi[i] == b.hi[i]) continue;
    if (differing >= 0) return false;  // differ in two dimensions
    const bool abuts = (a.hi[i] == b.lo[i]) || (b.hi[i] == a.lo[i]);
    if (!abuts) return false;
    differing = static_cast<int>(i);
  }
  if (differing < 0) return false;  // identical boxes (cannot happen)
  if (merged != nullptr) {
    merged->lo = a.lo;
    merged->hi = a.hi;
    const auto d = static_cast<size_t>(differing);
    merged->lo[d] = std::fmin(a.lo[d], b.lo[d]);
    merged->hi[d] = std::fmax(a.hi[d], b.hi[d]);
  }
  return true;
}

void CanOverlay::RebuildNeighborLists() {
  for (Node& node : nodes_) node.neighbors.clear();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].active) continue;
    for (size_t j = i + 1; j < nodes_.size(); ++j) {
      if (!nodes_[j].active) continue;
      if (Adjacent(nodes_[i].zone, nodes_[j].zone)) {
        nodes_[i].neighbors.push_back(static_cast<NodeId>(j));
        nodes_[j].neighbors.push_back(static_cast<NodeId>(i));
      }
    }
  }
}

namespace {

// Union of two cluster lists, deduplicated by cluster id.
std::vector<PublishedCluster> MergeStored(std::vector<PublishedCluster> a,
                                          const std::vector<PublishedCluster>& b) {
  std::unordered_set<uint64_t> seen;
  for (const PublishedCluster& c : a) seen.insert(c.cluster_id);
  for (const PublishedCluster& c : b) {
    if (seen.insert(c.cluster_id).second) a.push_back(c);
  }
  return a;
}

}  // namespace

Result<overlay::NodeId> CanOverlay::AddNode(Rng& rng) {
  HM_RETURN_IF_ERROR(Join(rng));
  return static_cast<NodeId>(nodes_.size() - 1);
}

Status CanOverlay::Leave(NodeId node) {
  if (node < 0 || node >= num_nodes() || !nodes_[static_cast<size_t>(node)].active) {
    return FailedPreconditionError("Leave: node is not active");
  }
  if (num_active_nodes() <= 1) {
    return FailedPreconditionError("Leave: cannot remove the last node");
  }
  Node& leaving = nodes_[static_cast<size_t>(node)];
  const geom::Box departed = leaving.zone;
  std::vector<PublishedCluster> orphaned = std::move(leaving.stored);
  const std::vector<NodeId> old_neighbors = std::move(leaving.neighbors);
  leaving.active = false;
  leaving.stored.clear();
  leaving.neighbors.clear();

  // Preferred takeover: a neighbour whose zone merges with the departed one
  // into a single rectangle (the zones are split siblings).
  NodeId absorber = overlay::kInvalidNode;
  geom::Box merged;
  for (NodeId n : old_neighbors) {
    if (!nodes_[static_cast<size_t>(n)].active) continue;
    if (Mergeable(nodes_[static_cast<size_t>(n)].zone, departed, &merged)) {
      absorber = n;
      break;
    }
  }
  size_t notified = old_neighbors.size();
  if (absorber != overlay::kInvalidNode) {
    Node& a = nodes_[static_cast<size_t>(absorber)];
    a.zone = merged;
    a.stored = MergeStored(std::move(a.stored), orphaned);
  } else {
    // No direct merge: free one node elsewhere. The partition is always the
    // leaf set of a binary space partition, so a mergeable sibling pair
    // exists; merge it into one node and hand the departed zone to the other.
    NodeId first = overlay::kInvalidNode;
    NodeId second = overlay::kInvalidNode;
    geom::Box pair_merged;
    for (size_t i = 0; i < nodes_.size() && first == overlay::kInvalidNode; ++i) {
      if (!nodes_[i].active) continue;
      for (size_t j = i + 1; j < nodes_.size(); ++j) {
        if (!nodes_[j].active) continue;
        if (Mergeable(nodes_[i].zone, nodes_[j].zone, &pair_merged)) {
          first = static_cast<NodeId>(i);
          second = static_cast<NodeId>(j);
          break;
        }
      }
    }
    HM_CHECK_NE(first, overlay::kInvalidNode)
        << "partition invariant violated: no mergeable sibling pair";
    Node& a = nodes_[static_cast<size_t>(first)];
    Node& b = nodes_[static_cast<size_t>(second)];
    a.zone = pair_merged;
    a.stored = MergeStored(std::move(a.stored), b.stored);
    b.zone = departed;
    b.stored = std::move(orphaned);
    notified += a.neighbors.size() + b.neighbors.size();
  }
  RebuildNeighborLists();

  // Maintenance traffic: one state handover plus neighbour notifications.
  stats_->RecordHop(sim::TrafficClass::kJoin, ClusterMessageBytes());
  for (size_t i = 0; i < notified; ++i) {
    stats_->RecordHop(sim::TrafficClass::kJoin, KeyMessageBytes());
  }
  return OkStatus();
}

}  // namespace hyperm::can
