// CAN: Content-Addressable Network overlay (Ratnasamy et al., SIGCOMM'01),
// the overlay used for all of the paper's experiments.
//
// The key space is the half-open unit cube [0,1)^dim, partitioned into one
// rectangular zone per node. Nodes join by routing to the owner of a random
// point, which splits its zone in half along its longest side and hands the
// half containing the join point to the newcomer. Routing is greedy through
// neighbouring zones toward the target key.
//
// Differences from the original paper'd CAN, both deliberate:
//  * the key space is *bounded*, not a torus — Hyper-M indexes bounded
//    feature coordinates, for which wraparound adjacency is meaningless;
//  * zero-size keys are generalized to spheres: a published cluster is
//    stored at its centroid's owner and *replicated* into every other zone
//    its sphere overlaps, which is exactly the Fig. 6 requirement that range
//    queries never miss a cluster straddling a zone border.

#ifndef HYPERM_CAN_CAN_OVERLAY_H_
#define HYPERM_CAN_CAN_OVERLAY_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geom/shapes.h"
#include "net/transport.h"
#include "overlay/overlay.h"
#include "sim/stats.h"
#include "vec/vector.h"

namespace hyperm::can {

/// Outcome of one greedy routing walk.
struct RouteResult {
  overlay::NodeId destination = overlay::kInvalidNode;
  int hops = 0;

  /// False when an unreliable transport exhausted its retries on some hop;
  /// `destination` is then kInvalidNode. Always true without a transport.
  bool delivered = true;
  double latency_ms = 0.0;  ///< accumulated per-hop link latency

  /// Every zone the message occupied, in visit order, starting at the origin.
  /// A backtracked walk re-records the zone it retreats to, so the trail is
  /// the message's true path, not just the surviving route.
  std::vector<overlay::NodeId> trail;

  /// Detour budget spent: failed forwards retried via an alternate neighbour,
  /// hint-skipped doomed neighbours, and dead-end pocket backtracks.
  int detours = 0;

  /// Cause of the walk's fate (kDelivered iff `delivered`).
  net::DeliveryOutcome outcome = net::DeliveryOutcome::kDelivered;
};

/// CAN overlay implementation. Construct with Build().
class CanOverlay : public overlay::Overlay {
 public:
  /// Bootstraps a CAN of `num_nodes` nodes over [0,1)^dim.
  ///
  /// Join traffic (routing to the join point, split handshake, neighbour
  /// notifications) is recorded into `stats` under TrafficClass::kJoin.
  /// `stats` must outlive the overlay; `rng` drives join-point selection.
  /// Returns InvalidArgument for dim < 1 or num_nodes < 1.
  static Result<std::unique_ptr<CanOverlay>> Build(size_t dim, int num_nodes,
                                                   sim::NetworkStats* stats, Rng& rng);

  // Overlay interface -------------------------------------------------------
  size_t dim() const override { return dim_; }
  int num_nodes() const override { return static_cast<int>(nodes_.size()); }
  Result<overlay::InsertReceipt> Insert(const overlay::PublishedCluster& cluster,
                                        overlay::NodeId origin) override;
  Result<overlay::RangeQueryResult> RangeQuery(const geom::Sphere& query,
                                               overlay::NodeId origin) override;
  Result<overlay::RangeQueryResult> RangeQueryVia(const geom::Sphere& query,
                                                  overlay::NodeId origin,
                                                  overlay::NodeId entry_hint) override;
  std::vector<overlay::NodeStorage> StorageDistribution() const override;
  void ClearStorage() override;
  int RemoveByOwner(int owner_peer) override;
  void set_replicate_spheres(bool enabled) override { replicate_spheres_ = enabled; }
  void set_transport(net::Transport* transport) override { transport_ = transport; }
  void set_route_detours(int budget) override { route_detours_ = budget; }
  int ExpireBefore(double now) override;
  int ClearNode(overlay::NodeId node) override;

  // Introspection (tests, experiments) --------------------------------------

  /// The zone owned by `node`.
  const geom::Box& zone(overlay::NodeId node) const;

  /// Neighbour list of `node` (zones adjacent to its own).
  const std::vector<overlay::NodeId>& neighbors(overlay::NodeId node) const;

  /// Exact owner of `key` by zone scan — the routing test oracle.
  /// `key` is clamped into [0,1) per dimension first.
  overlay::NodeId OwnerOf(const Vector& key) const;

  /// Greedy-routes from `origin` toward `key`, sending one message of
  /// `message_bytes` under `cls` per forward (through the transport when one
  /// is set, else straight into NetworkStats).
  ///
  /// With `max_detours` == 0 (the default) a transport-level delivery failure
  /// ends the walk with result.delivered == false (Ok status) — the classic
  /// single-path greedy walk. A positive budget buys k-alternative routing:
  /// a failed (or hint-unreachable) best neighbour is marked dead and the
  /// next-closest one tried instead, backtracking out of a zone whose viable
  /// neighbours are exhausted; each alternate forward, hint skip or backtrack
  /// costs one unit of budget. Fails with Internal if the walk exceeds its
  /// TTL (cannot happen on a consistent topology).
  Result<RouteResult> Route(const Vector& key, overlay::NodeId origin,
                            sim::TrafficClass cls, uint64_t message_bytes,
                            net::MessageType type = net::MessageType::kRoute,
                            int max_detours = 0);

  /// Clusters currently stored at `node` (including replicas).
  const std::vector<overlay::PublishedCluster>& stored(overlay::NodeId node) const;

  /// A new node joins the running overlay through the standard CAN
  /// protocol (route to a random point, split the owner's zone). Returns
  /// the new node's id. Join traffic is recorded under kJoin.
  Result<overlay::NodeId> AddNode(Rng& rng);

  /// Node departure with zone takeover (the second half of the CAN
  /// protocol). The departed zone is absorbed by a mergeable neighbour when
  /// one exists; otherwise the deepest sibling-leaf pair elsewhere in the
  /// partition is merged to free one node, which then adopts the departed
  /// zone verbatim — so every remaining node keeps exactly one rectangular
  /// zone and the active zones always tile the cube. Stored clusters are
  /// re-homed to the new owners. Maintenance traffic is recorded under
  /// TrafficClass::kJoin.
  ///
  /// Returns FailedPrecondition when `node` is already inactive or is the
  /// last active node.
  Status Leave(overlay::NodeId node);

  /// True iff `node` still owns a zone.
  bool active(overlay::NodeId node) const;

  /// Number of active (zone-owning) nodes.
  int num_active_nodes() const;

 private:
  struct Node {
    geom::Box zone;
    std::vector<overlay::NodeId> neighbors;
    std::vector<overlay::PublishedCluster> stored;
    bool active = true;
  };

  CanOverlay(size_t dim, sim::NetworkStats* stats) : dim_(dim), stats_(stats) {}

  /// Adds one node via the CAN join protocol.
  Status Join(Rng& rng);

  /// Splits `owner`'s zone, giving the half containing `point` to a new node.
  overlay::NodeId SplitZone(overlay::NodeId owner, const Vector& point);

  /// True iff boxes a and b share a (dim-1)-dimensional face.
  static bool Adjacent(const geom::Box& a, const geom::Box& b);

  /// True iff the union of a and b is a box (they are split siblings);
  /// writes the union into `merged` when so.
  static bool Mergeable(const geom::Box& a, const geom::Box& b, geom::Box* merged);

  /// Recomputes every active node's neighbour list from scratch (O(N^2);
  /// used after the non-local zone handover of Leave).
  void RebuildNeighborLists();

  /// Assigns `zone` to `node`, re-homing `clusters` into every overlapping
  /// active zone's store.
  void AdoptZone(overlay::NodeId node, const geom::Box& zone,
                 std::vector<overlay::PublishedCluster> clusters);

  /// Clamps a key into [0,1)^dim.
  Vector ClampKey(const Vector& key) const;

  /// Bytes of a routing message carrying only a key.
  uint64_t KeyMessageBytes() const;

  /// Bytes of a message carrying a published cluster.
  uint64_t ClusterMessageBytes() const;

  /// Sends one overlay message: through `transport_` when set, else the
  /// direct RecordHop the overlay has always done (delivered, zero latency).
  net::HopResult SendMessage(net::MessageType type, overlay::NodeId src,
                             overlay::NodeId dst, uint64_t bytes,
                             sim::TrafficClass cls);

  /// Zone-flood stage shared by RangeQuery/RangeQueryVia: BFS outward from
  /// `entry` over zones intersecting `query`, accumulating matches and
  /// per-branch arrival times into `result` (whose latency_ms on entry is the
  /// time the flood starts).
  void FloodFrom(const geom::Sphere& query, overlay::NodeId entry,
                 overlay::RangeQueryResult* result);

  size_t dim_;
  sim::NetworkStats* stats_;      // not owned
  net::Transport* transport_ = nullptr;  // not owned; nullptr = direct stats
  bool replicate_spheres_ = true;
  int route_detours_ = 0;  // query-routing detour budget (set_route_detours)
  std::vector<Node> nodes_;
};

}  // namespace hyperm::can

#endif  // HYPERM_CAN_CAN_OVERLAY_H_
