// Wavelet level descriptors.
//
// Hyper-M publishes summaries into one overlay per wavelet subspace. A
// subspace ("level") is either the final approximation A or a detail space
// D_l; this header names those subspaces, projects vectors into them, and
// encodes the Theorem 3.1 radius-contraction law.

#ifndef HYPERM_WAVELET_LEVEL_H_
#define HYPERM_WAVELET_LEVEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "wavelet/haar.h"

namespace hyperm::wavelet {

/// Identifies one wavelet subspace of a d = 2^m dimensional data space.
struct Level {
  enum class Kind {
    kApproximation,  ///< the 1-dimensional final approximation A
    kDetail,         ///< detail space D_index of dimension 2^index
  };

  Kind kind = Kind::kApproximation;
  int index = 0;  ///< detail index l (ignored for the approximation)

  /// The approximation level A.
  static Level Approximation() { return Level{Kind::kApproximation, 0}; }

  /// The detail level D_l.
  static Level Detail(int l) { return Level{Kind::kDetail, l}; }

  /// Dimensionality of this subspace: 1 for A, 2^index for D_index.
  size_t dim() const {
    return kind == Kind::kApproximation ? 1 : (size_t{1} << index);
  }

  /// "A" or "D0", "D1", ...
  std::string name() const;

  friend bool operator==(const Level& a, const Level& b) {
    return a.kind == b.kind && (a.kind == Kind::kApproximation || a.index == b.index);
  }
};

/// The subspace vector of `pyramid` at `level`. Fatal if the level does not
/// exist in the pyramid.
const Vector& Project(const Pyramid& pyramid, const Level& level);

/// Theorem 3.1 contraction factor: a sphere of radius r in the original
/// d-dimensional space (d = 2^m) maps inside a sphere of radius
/// `r * RadiusScale(m, level)` in the level subspace.
///
/// For A and D_0 the factor is 2^(-m/2); for D_l it is 2^(-(m - l)/2).
double RadiusScale(int num_detail_levels, const Level& level);

/// The subspaces Hyper-M uses with `num_layers` overlays:
/// {A, D_0, D_1, ..., D_{num_layers-2}} (the paper's default of four layers
/// yields A, D_0, D_1, D_2). Requires 1 <= num_layers <= m + 1.
std::vector<Level> DefaultLevels(int num_detail_levels, int num_layers);

}  // namespace hyperm::wavelet

#endif  // HYPERM_WAVELET_LEVEL_H_
