#include "wavelet/haar.h"

#include <utility>

#include "common/check.h"
#include "common/math_util.h"

namespace hyperm::wavelet {

HaarStep DecomposeStep(const Vector& x) {
  HM_CHECK(!x.empty());
  HM_CHECK_EQ(x.size() % 2, 0u);
  const size_t n = x.size() / 2;
  HaarStep step;
  step.approximation.resize(n);
  step.detail.resize(n);
  for (size_t k = 0; k < n; ++k) {
    step.approximation[k] = (x[2 * k] + x[2 * k + 1]) / 2.0;
    step.detail[k] = (x[2 * k] - x[2 * k + 1]) / 2.0;
  }
  return step;
}

Vector ReconstructStep(const Vector& approximation, const Vector& detail) {
  HM_CHECK_EQ(approximation.size(), detail.size());
  Vector x(2 * approximation.size());
  for (size_t k = 0; k < approximation.size(); ++k) {
    x[2 * k] = approximation[k] + detail[k];
    x[2 * k + 1] = approximation[k] - detail[k];
  }
  return x;
}

Result<Pyramid> Decompose(const Vector& x) {
  if (x.empty() || !IsPowerOfTwo(static_cast<int64_t>(x.size()))) {
    return InvalidArgumentError("Decompose requires a power-of-two dimensionality");
  }
  const int m = Log2Exact(static_cast<int64_t>(x.size()));
  Pyramid pyramid;
  pyramid.details.resize(static_cast<size_t>(m));
  Vector current = x;
  // Step from fine to coarse: the detail produced when the approximation has
  // length 2^l (after the step) is D_l.
  for (int l = m - 1; l >= 0; --l) {
    HaarStep step = DecomposeStep(current);
    pyramid.details[static_cast<size_t>(l)] = std::move(step.detail);
    current = std::move(step.approximation);
  }
  pyramid.approximation = std::move(current);
  HM_CHECK_EQ(pyramid.approximation.size(), 1u);
  return pyramid;
}

Vector Reconstruct(const Pyramid& pyramid) {
  Vector current = pyramid.approximation;
  for (const Vector& detail : pyramid.details) {
    current = ReconstructStep(current, detail);
  }
  return current;
}

Vector PadToPowerOfTwo(const Vector& x) {
  HM_CHECK(!x.empty());
  const auto target = static_cast<size_t>(NextPowerOfTwo(static_cast<int64_t>(x.size())));
  Vector padded = x;
  padded.resize(target, 0.0);
  return padded;
}

}  // namespace hyperm::wavelet
