// Averaging Haar Discrete Wavelet Transform.
//
// Hyper-M uses the *averaging* convention from the paper: one decomposition
// step maps a vector x of even length 2n to
//
//   A[k] = (x[2k] + x[2k+1]) / 2      (approximation)
//   D[k] = (x[2k] - x[2k+1]) / 2      (detail)
//
// and is inverted exactly by x[2k] = A[k] + D[k], x[2k+1] = A[k] - D[k].
// Under this convention a sphere of radius r in the input space maps inside a
// sphere of radius r / sqrt(2) in each output space (Theorem 3.1), so after
// (log2 d - l) steps the level-l radius is r / sqrt(2^(log2 d - l)).

#ifndef HYPERM_WAVELET_HAAR_H_
#define HYPERM_WAVELET_HAAR_H_

#include <vector>

#include "common/result.h"
#include "vec/vector.h"

namespace hyperm::wavelet {

/// Result of one averaging-Haar step on an even-length vector.
struct HaarStep {
  Vector approximation;  ///< pairwise averages, length n
  Vector detail;         ///< pairwise half-differences, length n
};

/// Applies one decomposition step. Fatal if x has odd or zero length.
HaarStep DecomposeStep(const Vector& x);

/// Inverts one step. Fatal if the parts differ in length.
Vector ReconstructStep(const Vector& approximation, const Vector& detail);

/// Full multiresolution decomposition of a power-of-two-length vector.
///
/// For d = 2^m the pyramid holds the final 1-dimensional approximation `A`
/// and details `D_0 .. D_{m-1}` ordered coarse to fine; `D_l` has length 2^l.
struct Pyramid {
  Vector approximation;         ///< A: length 1
  std::vector<Vector> details;  ///< details[l] = D_l, length 2^l

  /// Number of detail levels (= log2 of the original dimensionality).
  int num_detail_levels() const { return static_cast<int>(details.size()); }

  /// The original dimensionality 2^num_detail_levels().
  size_t original_dim() const { return size_t{1} << details.size(); }
};

/// Fully decomposes `x`. Returns InvalidArgument unless x.size() is a power
/// of two >= 1 (use PadToPowerOfTwo first for other sizes).
Result<Pyramid> Decompose(const Vector& x);

/// Exact inverse of Decompose.
Vector Reconstruct(const Pyramid& pyramid);

/// Returns `x` zero-padded on the right to the next power of two.
Vector PadToPowerOfTwo(const Vector& x);

}  // namespace hyperm::wavelet

#endif  // HYPERM_WAVELET_HAAR_H_
