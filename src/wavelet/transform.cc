#include "wavelet/transform.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/math_util.h"

namespace hyperm::wavelet {
namespace {

const double kSqrt2 = std::sqrt(2.0);
const double kSqrt3 = std::sqrt(3.0);

// Daubechies-4 scaling coefficients (orthonormal).
const double kD4H[4] = {
    (1.0 + kSqrt3) / (4.0 * kSqrt2),
    (3.0 + kSqrt3) / (4.0 * kSqrt2),
    (3.0 - kSqrt3) / (4.0 * kSqrt2),
    (1.0 - kSqrt3) / (4.0 * kSqrt2),
};
// Wavelet coefficients: g_i = (-1)^i h_{3-i}.
const double kD4G[4] = {kD4H[3], -kD4H[2], kD4H[1], -kD4H[0]};

HaarStep HaarOrthonormalStep(const Vector& x) {
  HM_CHECK(!x.empty());
  HM_CHECK_EQ(x.size() % 2, 0u);
  const size_t n = x.size() / 2;
  HaarStep step;
  step.approximation.resize(n);
  step.detail.resize(n);
  for (size_t k = 0; k < n; ++k) {
    step.approximation[k] = (x[2 * k] + x[2 * k + 1]) / kSqrt2;
    step.detail[k] = (x[2 * k] - x[2 * k + 1]) / kSqrt2;
  }
  return step;
}

Vector HaarOrthonormalInverse(const Vector& a, const Vector& d) {
  HM_CHECK_EQ(a.size(), d.size());
  Vector x(2 * a.size());
  for (size_t k = 0; k < a.size(); ++k) {
    x[2 * k] = (a[k] + d[k]) / kSqrt2;
    x[2 * k + 1] = (a[k] - d[k]) / kSqrt2;
  }
  return x;
}

HaarStep Daubechies4Step(const Vector& x) {
  HM_CHECK(!x.empty());
  HM_CHECK_EQ(x.size() % 2, 0u);
  const size_t n = x.size();
  // The 4-tap filter needs at least 4 samples; below that the orthonormal
  // Haar step is the canonical degenerate case.
  if (n < 4) return HaarOrthonormalStep(x);
  HaarStep step;
  step.approximation.resize(n / 2);
  step.detail.resize(n / 2);
  for (size_t k = 0; k < n / 2; ++k) {
    double a = 0.0, d = 0.0;
    for (size_t i = 0; i < 4; ++i) {
      const double v = x[(2 * k + i) % n];  // periodic boundary
      a += kD4H[i] * v;
      d += kD4G[i] * v;
    }
    step.approximation[k] = a;
    step.detail[k] = d;
  }
  return step;
}

Vector Daubechies4Inverse(const Vector& a, const Vector& d) {
  HM_CHECK_EQ(a.size(), d.size());
  const size_t n = 2 * a.size();
  if (n < 4) return HaarOrthonormalInverse(a, d);
  // The forward transform is orthogonal, so the inverse is its transpose:
  // x[j] += h[i] * a[k] + g[i] * d[k] for every (k, i) with (2k+i) mod n == j.
  Vector x(n, 0.0);
  for (size_t k = 0; k < a.size(); ++k) {
    for (size_t i = 0; i < 4; ++i) {
      const size_t j = (2 * k + i) % n;
      x[j] += kD4H[i] * a[k] + kD4G[i] * d[k];
    }
  }
  return x;
}

}  // namespace

std::string WaveletKindName(WaveletKind kind) {
  switch (kind) {
    case WaveletKind::kHaarAveraging:
      return "haar-averaging";
    case WaveletKind::kHaarOrthonormal:
      return "haar-orthonormal";
    case WaveletKind::kDaubechies4:
      return "daubechies-4";
  }
  return "unknown";
}

HaarStep DecomposeStepWith(WaveletKind kind, const Vector& x) {
  switch (kind) {
    case WaveletKind::kHaarAveraging:
      return DecomposeStep(x);
    case WaveletKind::kHaarOrthonormal:
      return HaarOrthonormalStep(x);
    case WaveletKind::kDaubechies4:
      return Daubechies4Step(x);
  }
  return DecomposeStep(x);
}

Vector ReconstructStepWith(WaveletKind kind, const Vector& approximation,
                           const Vector& detail) {
  switch (kind) {
    case WaveletKind::kHaarAveraging:
      return ReconstructStep(approximation, detail);
    case WaveletKind::kHaarOrthonormal:
      return HaarOrthonormalInverse(approximation, detail);
    case WaveletKind::kDaubechies4:
      return Daubechies4Inverse(approximation, detail);
  }
  return ReconstructStep(approximation, detail);
}

Result<Pyramid> DecomposeWith(WaveletKind kind, const Vector& x) {
  if (x.empty() || !IsPowerOfTwo(static_cast<int64_t>(x.size()))) {
    return InvalidArgumentError("DecomposeWith requires a power-of-two dimensionality");
  }
  const int m = Log2Exact(static_cast<int64_t>(x.size()));
  Pyramid pyramid;
  pyramid.details.resize(static_cast<size_t>(m));
  Vector current = x;
  for (int l = m - 1; l >= 0; --l) {
    HaarStep step = DecomposeStepWith(kind, current);
    pyramid.details[static_cast<size_t>(l)] = std::move(step.detail);
    current = std::move(step.approximation);
  }
  pyramid.approximation = std::move(current);
  return pyramid;
}

Vector ReconstructWith(WaveletKind kind, const Pyramid& pyramid) {
  Vector current = pyramid.approximation;
  for (const Vector& detail : pyramid.details) {
    current = ReconstructStepWith(kind, current, detail);
  }
  return current;
}

double RadiusScaleFor(WaveletKind kind, int num_detail_levels, const Level& level) {
  if (kind == WaveletKind::kHaarAveraging) {
    return RadiusScale(num_detail_levels, level);
  }
  // Orthonormal transforms are isometries of the full space; an individual
  // subspace never expands distances, so 1 is a sound (if loose) factor.
  return 1.0;
}

}  // namespace hyperm::wavelet
