// Wavelet families beyond the paper's averaging Haar.
//
// The paper proves Theorem 3.1 for the averaging Haar convention and notes
// that "similar, though more laborious proofs can be done for other
// wavelets". This header provides the transform family abstraction:
//
//  * kHaarAveraging  — the paper's convention; radius contracts by
//    2^(-steps/2) (Theorem 3.1), giving the tightest per-level query radii.
//  * kHaarOrthonormal — Haar with 1/sqrt(2) normalisation. The transform is
//    an isometry, so each level's pairwise distance is bounded by the full
//    distance: the safe radius scale is 1 per level (looser thresholds, but
//    the pyramid preserves energy exactly).
//  * kDaubechies4    — the 4-tap Daubechies orthonormal wavelet with
//    periodic boundary handling; smoother basis, same isometry bound.
//
// All three produce the same Pyramid shape, so the rest of the stack is
// agnostic to the choice.

#ifndef HYPERM_WAVELET_TRANSFORM_H_
#define HYPERM_WAVELET_TRANSFORM_H_

#include <string>

#include "common/result.h"
#include "wavelet/haar.h"
#include "wavelet/level.h"

namespace hyperm::wavelet {

/// Supported wavelet families.
enum class WaveletKind {
  kHaarAveraging,   ///< the paper's convention (default)
  kHaarOrthonormal, ///< energy-preserving Haar
  kDaubechies4,     ///< 4-tap Daubechies, periodic boundary
};

/// Human-readable family name.
std::string WaveletKindName(WaveletKind kind);

/// One decomposition step of the chosen family (input length must be even
/// and >= 2; Daubechies-4 additionally requires length >= 4, falling back to
/// orthonormal Haar below that).
HaarStep DecomposeStepWith(WaveletKind kind, const Vector& x);

/// Inverse of DecomposeStepWith.
Vector ReconstructStepWith(WaveletKind kind, const Vector& approximation,
                           const Vector& detail);

/// Full pyramid decomposition with the chosen family. Same contract as
/// haar.h's Decompose.
Result<Pyramid> DecomposeWith(WaveletKind kind, const Vector& x);

/// Exact inverse of DecomposeWith.
Vector ReconstructWith(WaveletKind kind, const Pyramid& pyramid);

/// Sound per-level radius contraction factor for the family: a sphere of
/// radius r maps inside radius `r * RadiusScaleFor(...)` in the subspace.
/// Averaging Haar uses the tight Theorem 3.1 factor; the orthonormal
/// families use the isometry bound of 1.
double RadiusScaleFor(WaveletKind kind, int num_detail_levels, const Level& level);

}  // namespace hyperm::wavelet

#endif  // HYPERM_WAVELET_TRANSFORM_H_
