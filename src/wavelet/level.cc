#include "wavelet/level.h"

#include <cmath>

#include "common/check.h"

namespace hyperm::wavelet {

std::string Level::name() const {
  if (kind == Kind::kApproximation) return "A";
  return "D" + std::to_string(index);
}

const Vector& Project(const Pyramid& pyramid, const Level& level) {
  if (level.kind == Level::Kind::kApproximation) {
    return pyramid.approximation;
  }
  HM_CHECK_GE(level.index, 0);
  HM_CHECK_LT(level.index, pyramid.num_detail_levels());
  return pyramid.details[static_cast<size_t>(level.index)];
}

double RadiusScale(int num_detail_levels, const Level& level) {
  HM_CHECK_GE(num_detail_levels, 0);
  // Number of averaging steps separating the level from the original space.
  int steps;
  if (level.kind == Level::Kind::kApproximation) {
    steps = num_detail_levels;
  } else {
    HM_CHECK_GE(level.index, 0);
    HM_CHECK_LT(level.index, num_detail_levels);
    steps = num_detail_levels - level.index;
  }
  return std::pow(2.0, -0.5 * steps);
}

std::vector<Level> DefaultLevels(int num_detail_levels, int num_layers) {
  HM_CHECK_GE(num_layers, 1);
  HM_CHECK_LE(num_layers, num_detail_levels + 1);
  std::vector<Level> levels;
  levels.reserve(static_cast<size_t>(num_layers));
  levels.push_back(Level::Approximation());
  for (int l = 0; l + 1 < num_layers; ++l) {
    levels.push_back(Level::Detail(l));
  }
  return levels;
}

}  // namespace hyperm::wavelet
