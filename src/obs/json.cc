#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace hyperm::obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    *out += "null";
    return;
  }
  const double rounded = std::nearbyint(value);
  if (rounded == value && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(rounded));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void AppendNewlineIndent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

// Recursive-descent parser over [pos, text.size()).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    HM_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters after document");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      HM_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json(std::move(s));
    }
    if (ConsumeLiteral("true")) return Json(true);
    if (ConsumeLiteral("false")) return Json(false);
    if (ConsumeLiteral("null")) return Json();
    return ParseNumber();
  }

  Result<Json> ParseNumber() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return Error("invalid value");
    pos_ += static_cast<size_t>(end - start);
    return Json(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode (BMP only; the exporter never emits surrogates).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseArray() {
    if (!Consume('[')) return Error("expected array");
    Json array = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      HM_ASSIGN_OR_RETURN(Json value, ParseValue());
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    if (!Consume('{')) return Error("expected object");
    Json object = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      HM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      HM_ASSIGN_OR_RETURN(Json value, ParseValue());
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

void Json::Append(Json value) {
  HM_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

void Json::Set(const std::string& key, Json value) {
  HM_CHECK(type_ == Type::kObject);
  object_[key] = std::move(value);
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out->push_back(',');
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        item.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        AppendEscaped(out, key);
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        value.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace hyperm::obs
