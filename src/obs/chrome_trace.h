// Chrome trace-event exporter for the flight recorder (event_log.h).
//
// Produces the JSON object format of the Trace Event spec, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing:
//
//   - one "thread" track per peer (tid = peer id + 1) plus a "sim" track
//     (tid 0) for global mobility / soft-state events,
//   - "X" complete slices for radio airtime and queue waits,
//   - async "b"/"e" pairs spanning each query and each probe round,
//   - "s"/"f" flow events following a delivered message from its source
//     peer's track to its destination peer's track,
//   - "C" counter events for every ring-buffered time series,
//   - "i" instants for drops (cause-tagged), dead letters, island changes,
//     crashes/rejoins and soft-state sweeps.
//
// Timestamps are simulated time: ts = sim_ms * 1000 (the format wants
// microseconds), so one trace millisecond is one simulated millisecond.
// Events are emitted sorted by ts; ValidateChromeTrace() checks that plus
// flow/async pairing and is shared by the unit test and the check_trace
// bench-fixture tool.

#ifndef HYPERM_OBS_CHROME_TRACE_H_
#define HYPERM_OBS_CHROME_TRACE_H_

#include <string>

#include "common/status.h"
#include "obs/event_log.h"
#include "obs/json.h"

namespace hyperm::obs {

/// Builds the full trace document ({"traceEvents": [...], ...}) from the
/// log's events and time series. Flows are only emitted for messages whose
/// send and delivery both survived buffer saturation, so the output always
/// validates even from a truncated log.
Json ChromeTraceFromLog(const EventLog& log);

/// Serializes ChromeTraceFromLog(log) to `path`. False on I/O failure.
bool WriteChromeTrace(const std::string& path, const EventLog& log);

/// Structural well-formedness check: traceEvents array present, required
/// fields per phase, timestamps non-decreasing, non-negative "X" durations,
/// every flow start ("s") matched by exactly one finish ("f") and every
/// async begin ("b") by an end ("e") per (cat, id).
Status ValidateChromeTrace(const Json& doc);

}  // namespace hyperm::obs

#endif  // HYPERM_OBS_CHROME_TRACE_H_
