// QueryTimeline: replays a flight-recorder log (event_log.h) into a
// per-query, per-level history — plan, probe rounds, every message exchange
// with its per-attempt drop causes, heal-window re-issues, and the final
// per-level lattice outcome.
//
// The reconstruction trusts only the causal ids and the record order of the
// log, never the live network objects; the flight-recorder test uses it to
// prove that the event log alone tells a partitioned query's complete story
// (ISSUE 6 acceptance). ValidateCausalChain() then checks the chain has no
// gaps: every probe round is issue/outcome-bracketed, every message has a
// send and a terminal event with consecutively numbered attempts, every
// drop carries a cause, and levels reach a final fate.

#ifndef HYPERM_OBS_TIMELINE_H_
#define HYPERM_OBS_TIMELINE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "obs/event_log.h"

namespace hyperm::obs {

/// One logical message exchange (a transport SendHop call): the kMsgSend
/// plus every per-attempt event that followed under the same msg_id.
struct MessageTrace {
  int64_t msg_id = -1;
  int32_t src = -1;
  int32_t dst = -1;
  int64_t type = 0;        ///< net::MessageType (from the kMsgSend aux)
  double send_ms = 0.0;
  uint64_t bytes = 0;
  /// kMsgDrop / kMsgDeliver / kMsgDuplicate / kMsgDeadLetter, record order.
  std::vector<Event> attempts;
  bool delivered = false;
  int32_t final_cause = -1;  ///< DeliveryCause of the terminal event
};

/// One issue of a level probe: round 0 is the initial fan-out, rounds >= 1
/// are heal-window re-issues.
struct ProbeRound {
  int32_t attempt = -1;      ///< reissue round index
  double issue_ms = 0.0;
  double outcome_ms = -1.0;  ///< -1 while un-closed (a causal-chain gap)
  bool closed = false;
  int32_t fate = -1;         ///< LevelDelivery of this round
  double latency_ms = 0.0;
  std::vector<MessageTrace> messages;
};

/// Everything that happened to one wavelet level of one query.
struct LevelTrace {
  int32_t level = -1;
  std::vector<ProbeRound> rounds;
  bool has_final = false;
  int32_t final_fate = -1;  ///< merged LevelDelivery (kLevelFinal)
  int64_t reissues = 0;     ///< re-issues the executor merged in
};

/// The reconstructed life of one query.
struct QueryTimeline {
  int64_t query_id = -1;
  int32_t querying_peer = -1;
  double plan_ms = -1.0;
  double done_ms = -1.0;
  int64_t levels_planned = 0;
  int64_t results = -1;            ///< kQueryDone aux, -1 when absent
  std::vector<LevelTrace> levels;  ///< ascending level id
  /// Message exchanges under the query but outside any level probe
  /// (retrieve request/response traffic).
  std::vector<MessageTrace> retrievals;
  std::vector<Event> heal_waits;
  size_t total_events = 0;  ///< log events attributed to this query
};

/// Replays `events` (full log, record order) into the timeline of
/// `query_id`. Fails when the log holds no kQueryPlan for that id or when
/// an event is structurally impossible to attach (e.g. a probe outcome for
/// a level that never opened a round).
Result<QueryTimeline> ReconstructQueryTimeline(const std::vector<Event>& events,
                                               int64_t query_id);

/// Verifies the causal chain is complete: plan precedes done, every planned
/// level is present with >= 1 round, rounds are issue/outcome-bracketed with
/// consecutive attempt numbers, every message has a terminal event with
/// consecutive tx attempts and cause-tagged drops, re-issued levels saw a
/// heal wait, and every level reached a final fate consistent with its last
/// round.
Status ValidateCausalChain(const QueryTimeline& timeline);

/// All query ids with a kQueryPlan in the log, in record order.
std::vector<int64_t> QueryIdsInLog(const std::vector<Event>& events);

}  // namespace hyperm::obs

#endif  // HYPERM_OBS_TIMELINE_H_
