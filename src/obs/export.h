// JSON / CSV exporters for metrics snapshots and span traces.
//
// Every bench binary writes one machine-readable report next to its text
// table so perf trajectories can be tracked across commits (the BENCH_*.json
// series). Report schema (schema_version 1, documented in DESIGN.md):
//
//   {
//     "schema_version": 1,
//     "run_meta":  { "bench": "...", "scale": "...", ...free-form strings },
//     "metrics": {
//       "counters":   { name: integer, ... },
//       "gauges":     { name: number, ... },
//       "histograms": { name: { "edges": [...], "counts": [...],
//                               "underflow": n, "overflow": n, "count": n,
//                               "sum": x, "min": x, "max": x,
//                               "p50": x, "p95": x, "p99": x }, ... }
//     },
//     "spans": [ { "id": n, "parent": n, "depth": n, "name": "...",
//                  "start_us": x, "dur_us": x }, ... ],
//     "dropped_spans": n,
//     "dropped_events": n
//   }
//
// p50/p95/p99 are bucket-interpolated quantiles (HistogramSnapshot::Quantile)
// and dropped_events is the flight recorder's saturation count; both are
// additive to schema 1 (MetricsFromJson ignores unknown histogram keys).

#ifndef HYPERM_OBS_EXPORT_H_
#define HYPERM_OBS_EXPORT_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperm::obs {

/// Identifies one bench/experiment run in its exported report.
struct RunMeta {
  std::string bench;             ///< binary / experiment name
  std::string scale = "default"; ///< "default" or "paper"
  std::map<std::string, std::string> extra;  ///< free-form key/values
};

inline constexpr int kReportSchemaVersion = 1;

/// Builds the full report document. `dropped_spans`/`dropped_events` record
/// tracer and flight-recorder buffer saturation at snapshot time.
Json ReportToJson(const RunMeta& meta, const MetricsSnapshot& metrics,
                  const std::vector<SpanRecord>& spans, uint64_t dropped_spans = 0,
                  uint64_t dropped_events = 0);

/// Inverse of the metrics part of ReportToJson; accepts either a full report
/// document or just its "metrics" object. Used by merge tooling and the
/// round-trip tests.
Result<MetricsSnapshot> MetricsFromJson(const Json& json);

/// Flat CSV views (header line included): `kind,name,value` for scalars with
/// histograms flattened to count/sum/mean/min/max rows, and one row per span.
std::string MetricsToCsv(const MetricsSnapshot& metrics);
std::string SpansToCsv(const std::vector<SpanRecord>& spans);

/// Serializes and writes the report (pretty-printed JSON) to `path`.
Status WriteReportFile(const std::string& path, const RunMeta& meta,
                       const MetricsSnapshot& metrics,
                       const std::vector<SpanRecord>& spans,
                       uint64_t dropped_spans = 0, uint64_t dropped_events = 0);

/// Convenience: snapshot the global registry + tracer + event log and write
/// the report (saturation counts included).
Status WriteGlobalReport(const std::string& path, const RunMeta& meta);

}  // namespace hyperm::obs

#endif  // HYPERM_OBS_EXPORT_H_
