#include "obs/timeline.h"

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace hyperm::obs {
namespace {

std::string Describe(const Event& e) {
  return std::string(EventKindName(e.kind)) + " @" + std::to_string(e.sim_ms) +
         "ms level=" + std::to_string(e.level) +
         " msg=" + std::to_string(e.msg_id);
}

// Where a message trace lives inside the timeline being built.
struct MsgLoc {
  int level_idx = -1;  // -1: timeline.retrievals, else index into levels
  size_t round_idx = 0;
  size_t msg_idx = 0;
};

MessageTrace* Locate(QueryTimeline* t, const MsgLoc& loc) {
  if (loc.level_idx < 0) return &t->retrievals[loc.msg_idx];
  return &t->levels[static_cast<size_t>(loc.level_idx)]
              .rounds[loc.round_idx]
              .messages[loc.msg_idx];
}

}  // namespace

Result<QueryTimeline> ReconstructQueryTimeline(const std::vector<Event>& events,
                                               int64_t query_id) {
  QueryTimeline t;
  t.query_id = query_id;

  std::map<int32_t, size_t> level_idx;   // level id -> index into t.levels
  std::map<int32_t, bool> round_open;    // level id -> has an un-closed round
  std::map<int64_t, MsgLoc> msg_loc;     // msg id -> where its trace lives

  auto level_slot = [&](int32_t level) -> size_t {
    auto it = level_idx.find(level);
    if (it != level_idx.end()) return it->second;
    LevelTrace lt;
    lt.level = level;
    t.levels.push_back(lt);
    level_idx.emplace(level, t.levels.size() - 1);
    return t.levels.size() - 1;
  };

  for (const Event& e : events) {
    if (e.query_id != query_id) continue;
    ++t.total_events;
    switch (e.kind) {
      case EventKind::kQueryPlan: {
        if (t.plan_ms >= 0.0) {
          return InternalError("duplicate query_plan for query " +
                               std::to_string(query_id));
        }
        t.plan_ms = e.sim_ms;
        t.querying_peer = e.src;
        t.levels_planned = e.aux;
        break;
      }
      case EventKind::kProbeIssue: {
        const size_t li = level_slot(e.level);
        if (round_open[e.level]) {
          return InternalError("probe_issue while a round is open: " +
                               Describe(e));
        }
        ProbeRound round;
        round.attempt = e.attempt;
        round.issue_ms = e.sim_ms;
        t.levels[li].rounds.push_back(round);
        round_open[e.level] = true;
        break;
      }
      case EventKind::kProbeOutcome: {
        auto it = level_idx.find(e.level);
        if (it == level_idx.end() || !round_open[e.level]) {
          return InternalError("probe_outcome without an open round: " +
                               Describe(e));
        }
        ProbeRound& round = t.levels[it->second].rounds.back();
        round.outcome_ms = e.sim_ms;
        round.closed = true;
        round.fate = e.cause;
        round.latency_ms = e.value;
        round_open[e.level] = false;
        break;
      }
      case EventKind::kHealWait: {
        t.heal_waits.push_back(e);
        break;
      }
      case EventKind::kLevelFinal: {
        const size_t li = level_slot(e.level);
        t.levels[li].has_final = true;
        t.levels[li].final_fate = e.cause;
        t.levels[li].reissues = e.aux;
        break;
      }
      case EventKind::kQueryDone: {
        t.done_ms = e.sim_ms;
        t.results = e.aux;
        break;
      }
      case EventKind::kMsgSend: {
        if (msg_loc.count(e.msg_id) != 0) {
          return InternalError("duplicate msg_send for msg " +
                               std::to_string(e.msg_id));
        }
        MessageTrace m;
        m.msg_id = e.msg_id;
        m.src = e.src;
        m.dst = e.dst;
        m.type = e.aux;
        m.send_ms = e.sim_ms;
        m.bytes = static_cast<uint64_t>(e.value);
        MsgLoc loc;
        if (e.level >= 0) {
          auto it = level_idx.find(e.level);
          if (it == level_idx.end() || !round_open[e.level]) {
            return InternalError("probe message outside an open round: " +
                                 Describe(e));
          }
          loc.level_idx = static_cast<int>(it->second);
          loc.round_idx = t.levels[it->second].rounds.size() - 1;
          auto& msgs = t.levels[it->second].rounds.back().messages;
          loc.msg_idx = msgs.size();
          msgs.push_back(m);
        } else {
          loc.msg_idx = t.retrievals.size();
          t.retrievals.push_back(m);
        }
        msg_loc.emplace(e.msg_id, loc);
        break;
      }
      case EventKind::kMsgDeliver:
      case EventKind::kMsgDrop:
      case EventKind::kMsgDuplicate:
      case EventKind::kMsgDeadLetter: {
        auto it = msg_loc.find(e.msg_id);
        if (it == msg_loc.end()) {
          return InternalError("message event before msg_send: " + Describe(e));
        }
        MessageTrace* m = Locate(&t, it->second);
        m->attempts.push_back(e);
        if (e.kind == EventKind::kMsgDeliver) {
          m->delivered = true;
          m->final_cause = 0;
        } else if (e.kind == EventKind::kMsgDeadLetter) {
          m->final_cause = e.cause;
        }
        break;
      }
      default:
        // Channel / mobility / soft-state events attributed to this query
        // are context, not chain links; counted in total_events only.
        break;
    }
  }

  if (t.plan_ms < 0.0) {
    return NotFoundError("no query_plan event for query " +
                         std::to_string(query_id));
  }
  return t;
}

namespace {

Status ValidateMessage(const MessageTrace& m, const char* where) {
  const std::string tag =
      std::string(where) + " msg " + std::to_string(m.msg_id);
  if (m.msg_id < 0) return InternalError(tag + ": unset msg_id");
  int expected_attempt = 0;
  bool terminal = false;
  for (const Event& e : m.attempts) {
    if (e.kind == EventKind::kMsgDuplicate) continue;
    if (terminal) {
      return InternalError(tag + ": event after terminal outcome");
    }
    switch (e.kind) {
      case EventKind::kMsgDrop:
        if (e.attempt != expected_attempt) {
          return InternalError(tag + ": attempt gap (saw " +
                               std::to_string(e.attempt) + ", expected " +
                               std::to_string(expected_attempt) + ")");
        }
        if (e.cause <= 0) return InternalError(tag + ": drop without a cause");
        ++expected_attempt;
        break;
      case EventKind::kMsgDeliver:
        if (e.attempt != expected_attempt) {
          return InternalError(tag + ": delivery attempt gap");
        }
        terminal = true;
        break;
      case EventKind::kMsgDeadLetter:
        if (expected_attempt == 0) {
          return InternalError(tag + ": dead letter without any attempt");
        }
        if (e.cause <= 0) {
          return InternalError(tag + ": dead letter without a cause");
        }
        terminal = true;
        break;
      default:
        return InternalError(tag + ": foreign event in attempt list");
    }
  }
  if (!terminal) {
    return InternalError(tag + ": no terminal outcome (deliver/dead letter)");
  }
  if (m.delivered && m.final_cause != 0) {
    return InternalError(tag + ": delivered but cause != delivered");
  }
  return OkStatus();
}

}  // namespace

Status ValidateCausalChain(const QueryTimeline& t) {
  const std::string tag = "query " + std::to_string(t.query_id);
  if (t.plan_ms < 0.0) return InternalError(tag + ": no plan event");
  if (t.done_ms < 0.0) return InternalError(tag + ": no done event");
  if (t.done_ms + 1e-9 < t.plan_ms) {
    return InternalError(tag + ": done precedes plan");
  }
  if (static_cast<int64_t>(t.levels.size()) != t.levels_planned) {
    return InternalError(tag + ": planned " + std::to_string(t.levels_planned) +
                         " levels, observed " + std::to_string(t.levels.size()));
  }
  bool any_reissue = false;
  for (const LevelTrace& level : t.levels) {
    const std::string ltag = tag + " level " + std::to_string(level.level);
    if (level.rounds.empty()) return InternalError(ltag + ": no probe rounds");
    for (size_t r = 0; r < level.rounds.size(); ++r) {
      const ProbeRound& round = level.rounds[r];
      const std::string rtag = ltag + " round " + std::to_string(r);
      if (round.attempt != static_cast<int32_t>(r)) {
        return InternalError(rtag + ": reissue round numbering gap");
      }
      if (!round.closed) return InternalError(rtag + ": issue without outcome");
      if (round.fate < 0) return InternalError(rtag + ": outcome without fate");
      if (round.outcome_ms + 1e-9 < round.issue_ms) {
        return InternalError(rtag + ": outcome precedes issue");
      }
      for (const MessageTrace& m : round.messages) {
        HM_RETURN_IF_ERROR(ValidateMessage(m, rtag.c_str()));
        if (m.send_ms + 1e-9 < round.issue_ms ||
            (round.closed && m.send_ms > round.outcome_ms + 1e-9)) {
          return InternalError(rtag + " msg " + std::to_string(m.msg_id) +
                               ": sent outside its probe round");
        }
      }
    }
    if (level.rounds.size() > 1) any_reissue = true;
    if (!level.has_final) return InternalError(ltag + ": no final outcome");
    if (level.final_fate < 0) return InternalError(ltag + ": final without fate");
    if (level.reissues != static_cast<int64_t>(level.rounds.size()) - 1) {
      return InternalError(ltag + ": reissue count disagrees with rounds");
    }
  }
  if (any_reissue && t.heal_waits.empty()) {
    return InternalError(tag + ": re-issued levels but no heal wait recorded");
  }
  for (const MessageTrace& m : t.retrievals) {
    HM_RETURN_IF_ERROR(ValidateMessage(m, (tag + " retrieval").c_str()));
  }
  return OkStatus();
}

std::vector<int64_t> QueryIdsInLog(const std::vector<Event>& events) {
  std::vector<int64_t> ids;
  for (const Event& e : events) {
    if (e.kind == EventKind::kQueryPlan) ids.push_back(e.query_id);
  }
  return ids;
}

}  // namespace hyperm::obs
