// Lightweight span tracer + the HM_OBS_* instrumentation macros.
//
// A span is a named, timed phase; spans nest (Build -> per-peer publish,
// query -> per-layer routing), forming the trace tree the JSON exporter
// ships next to the metrics. The tracer keeps a bounded in-memory buffer
// (spans beyond the capacity are counted, not stored) so long sweeps cannot
// exhaust memory.
//
// Span naming convention (DESIGN.md "Observability"): slash-separated path
// segments mirroring the pipeline, e.g. `build`, `build/publish`,
// `query/range`, `query/layer0`.
//
// Compile-time kill switch: defining HYPERM_OBS_DISABLED (or configuring
// with -DHYPERM_OBS_DISABLED=ON) turns every HM_OBS_* macro into a no-op
// that does not evaluate its arguments; the Tracer/MetricsRegistry classes
// stay available so exporters and tests still compile.

#ifndef HYPERM_OBS_TRACE_H_
#define HYPERM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hyperm::obs {

/// One recorded (possibly still open) span.
struct SpanRecord {
  std::string name;
  int32_t id = -1;
  int32_t parent = -1;     ///< index of the enclosing span, -1 for roots
  int32_t depth = 0;       ///< 0 for roots
  double start_us = 0.0;   ///< offset from the tracer's epoch (last Reset)
  double duration_us = -1.0;  ///< -1 while the span is open
};

/// Records nested spans into a bounded buffer. Single-threaded by design
/// (matches the simulator); spans must be ended in LIFO order, which the
/// ScopedSpan RAII guard guarantees.
class Tracer {
 public:
  Tracer();

  /// Opens a span nested under the innermost open span. Returns the span id,
  /// or -1 when the buffer is full (the span is counted in dropped()).
  int Begin(std::string name);

  /// Closes the span (no-op for id < 0). Must be the innermost open span.
  void End(int id);

  /// Records an already-finished span of the given duration, nested under the
  /// innermost open span. This is how parallel fan-outs keep the trace tree
  /// deterministic: workers measure their own wall time, and the orchestrating
  /// thread records one completed span per task at fan-in, in task order.
  /// Returns the span id, or -1 when the buffer is full.
  int AddCompleted(std::string name, double duration_us);

  /// All recorded spans in start order. Open spans have duration_us == -1.
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Spans not recorded because the buffer was full.
  uint64_t dropped() const { return dropped_; }

  /// Nesting depth of the innermost open span + 1 (0 when idle).
  int open_depth() const { return static_cast<int>(open_.size()); }

  /// Clears all spans, re-anchors the epoch, resets the dropped counter.
  /// Must not be called while spans are open.
  void Reset();

  /// Buffer capacity; once reached, new spans are dropped (default 4096).
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  size_t capacity() const { return capacity_; }

  /// The process-wide tracer the HM_OBS_SPAN macro records into.
  static Tracer& Global();

 private:
  double NowUs() const;

  std::vector<SpanRecord> spans_;
  std::vector<int> open_;  // ids of currently open spans, outermost first
  size_t capacity_ = 4096;
  uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII guard opening a span for the current scope.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, Tracer& tracer = Tracer::Global())
      : tracer_(&tracer), id_(tracer.Begin(std::move(name))) {}
  ~ScopedSpan() { tracer_->End(id_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  int id_;
};

/// RAII timer observing its scope's wall-clock duration (us) into a
/// histogram — per-unit timing without one span per unit.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hyperm::obs

// Instrumentation macros ------------------------------------------------------
//
// All record into the global registry/tracer and cache the metric handle in a
// function-local static (registrations are permanent, so handles survive
// MetricsRegistry::Reset). Under HYPERM_OBS_DISABLED every macro expands to
// a no-op that does not evaluate its arguments.

#define HM_OBS_CONCAT_INNER_(a, b) a##b
#define HM_OBS_CONCAT_(a, b) HM_OBS_CONCAT_INNER_(a, b)

#ifndef HYPERM_OBS_DISABLED

/// Opens a span covering the rest of the enclosing scope.
#define HM_OBS_SPAN(name) \
  ::hyperm::obs::ScopedSpan HM_OBS_CONCAT_(hm_obs_span_, __LINE__)((name))

/// Records an already-finished span of `duration_us` microseconds (measured
/// elsewhere, e.g. by a pool worker) under the innermost open span.
#define HM_OBS_SPAN_COMPLETED(name, duration_us) \
  ((void)::hyperm::obs::Tracer::Global().AddCompleted((name), (duration_us)))

/// counter `name` += delta.
#define HM_OBS_COUNTER_ADD(name, delta)                                 \
  do {                                                                  \
    static ::hyperm::obs::Counter& hm_obs_c =                           \
        ::hyperm::obs::MetricsRegistry::Global().GetCounter((name));    \
    hm_obs_c.Add(static_cast<uint64_t>(delta));                         \
  } while (0)

/// gauge `name` = value.
#define HM_OBS_GAUGE_SET(name, value)                                   \
  do {                                                                  \
    static ::hyperm::obs::Gauge& hm_obs_g =                             \
        ::hyperm::obs::MetricsRegistry::Global().GetGauge((name));      \
    hm_obs_g.Set(static_cast<double>(value));                           \
  } while (0)

/// histogram `name` (bucket layout fixed on first use) observes value.
#define HM_OBS_HISTOGRAM(name, buckets, value)                          \
  do {                                                                  \
    static ::hyperm::obs::Histogram& hm_obs_h =                         \
        ::hyperm::obs::MetricsRegistry::Global().GetHistogram((name),   \
                                                             (buckets)); \
    hm_obs_h.Observe(static_cast<double>(value));                       \
  } while (0)

/// histogram `name` observes `value` `n` times (one lock; see
/// Histogram::ObserveN for the bit-identity contract).
#define HM_OBS_HISTOGRAM_N(name, buckets, value, n)                      \
  do {                                                                   \
    static ::hyperm::obs::Histogram& hm_obs_hn =                         \
        ::hyperm::obs::MetricsRegistry::Global().GetHistogram((name),    \
                                                             (buckets)); \
    hm_obs_hn.ObserveN(static_cast<double>(value),                       \
                       static_cast<uint64_t>(n));                        \
  } while (0)

/// Observes the wall-clock duration (us) of the rest of the enclosing scope
/// into histogram `name`.
#define HM_OBS_TIMER(name, buckets)                                     \
  static ::hyperm::obs::Histogram& HM_OBS_CONCAT_(hm_obs_th_, __LINE__) = \
      ::hyperm::obs::MetricsRegistry::Global().GetHistogram((name), (buckets)); \
  ::hyperm::obs::ScopedTimer HM_OBS_CONCAT_(hm_obs_timer_, __LINE__)(   \
      HM_OBS_CONCAT_(hm_obs_th_, __LINE__))

#else  // HYPERM_OBS_DISABLED

#define HM_OBS_SPAN(name) ((void)0)
#define HM_OBS_SPAN_COMPLETED(name, duration_us) ((void)0)
#define HM_OBS_COUNTER_ADD(name, delta) ((void)0)
#define HM_OBS_GAUGE_SET(name, value) ((void)0)
#define HM_OBS_HISTOGRAM(name, buckets, value) ((void)0)
#define HM_OBS_HISTOGRAM_N(name, buckets, value, n) ((void)0)
#define HM_OBS_TIMER(name, buckets) ((void)0)

#endif  // HYPERM_OBS_DISABLED

#endif  // HYPERM_OBS_TRACE_H_
