#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace hyperm::obs {

Buckets Buckets::Linear(double lo, double hi, int n) {
  HM_CHECK_GT(n, 0);
  HM_CHECK_LT(lo, hi);
  Buckets b;
  b.edges.reserve(static_cast<size_t>(n) + 1);
  const double width = (hi - lo) / n;
  for (int i = 0; i <= n; ++i) b.edges.push_back(lo + width * i);
  return b;
}

Buckets Buckets::Exponential(double lo, double factor, int n) {
  HM_CHECK_GT(n, 0);
  HM_CHECK_GT(lo, 0.0);
  HM_CHECK_GT(factor, 1.0);
  Buckets b;
  b.edges.reserve(static_cast<size_t>(n) + 1);
  double edge = lo;
  for (int i = 0; i <= n; ++i) {
    b.edges.push_back(edge);
    edge *= factor;
  }
  return b;
}

Buckets Buckets::Explicit(std::vector<double> edges) {
  HM_CHECK_GE(edges.size(), 2u);
  for (size_t i = 1; i < edges.size(); ++i) HM_CHECK_LT(edges[i - 1], edges[i]);
  Buckets b;
  b.edges = std::move(edges);
  return b;
}

Histogram::Histogram(const Buckets& buckets) {
  HM_CHECK_GE(buckets.edges.size(), 2u);
  snap_.edges = buckets.edges;
  snap_.counts.assign(snap_.edges.size() - 1, 0);
}

void Histogram::Observe(double value) { ObserveN(value, 1); }

void Histogram::ObserveN(double value, uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (value < snap_.edges.front()) {
    snap_.underflow += n;
  } else if (value >= snap_.edges.back()) {
    snap_.overflow += n;
  } else {
    // First edge strictly greater than value; the bucket is the one before.
    const auto it = std::upper_bound(snap_.edges.begin(), snap_.edges.end(), value);
    snap_.counts[static_cast<size_t>(it - snap_.edges.begin()) - 1] += n;
  }
  snap_.count += n;
  snap_.sum += value * static_cast<double>(n);
  snap_.min = std::min(snap_.min, value);
  snap_.max = std::max(snap_.max, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snap_;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snap_.count;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(snap_.counts.begin(), snap_.counts.end(), uint64_t{0});
  snap_.underflow = 0;
  snap_.overflow = 0;
  snap_.count = 0;
  snap_.sum = 0.0;
  snap_.min = std::numeric_limits<double>::infinity();
  snap_.max = -std::numeric_limits<double>::infinity();
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  double cum = static_cast<double>(underflow);
  if (rank <= cum) return min;  // target lands below the first edge
  for (size_t i = 0; i < counts.size(); ++i) {
    const double bucket = static_cast<double>(counts[i]);
    if (bucket > 0.0 && rank <= cum + bucket) {
      const double lo = edges[i];
      const double hi = edges[i + 1];
      const double estimate = lo + (hi - lo) * (rank - cum) / bucket;
      // Observations cluster inside [min, max] even when the bucket is wider.
      return std::min(max, std::max(min, estimate));
    }
    cum += bucket;
  }
  return max;  // target lands in the overflow bucket
}

bool MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  bool ok = true;
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, theirs] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, theirs);
      continue;
    }
    HistogramSnapshot& mine = it->second;
    if (mine.edges != theirs.edges) {
      ok = false;  // incompatible layouts: keep ours, flag the conflict
      // Callers historically ignored the return value, silently dropping the
      // other run's data; the counter makes the conflict visible in every
      // exported report. Registered lazily so conflict-free runs don't grow
      // a new metric.
      MetricsRegistry::Global().GetCounter("obs.merge_mismatch").Add(1);
      continue;
    }
    for (size_t i = 0; i < mine.counts.size(); ++i) mine.counts[i] += theirs.counts[i];
    mine.underflow += theirs.underflow;
    mine.overflow += theirs.overflow;
    mine.count += theirs.count;
    mine.sum += theirs.sum;
    mine.min = std::min(mine.min, theirs.min);
    mine.max = std::max(mine.max, theirs.max);
  }
  return ok;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, const Buckets& buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(buckets);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) snap.counters[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) snap.gauges[name] = gauge->value();
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace hyperm::obs
