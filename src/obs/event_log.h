// Sim-time flight recorder: a bounded, deterministic log of structured
// events stamped in *simulated* time and linked by causal ids
// (query id -> level probe -> message id -> transmission attempt).
//
// The span tracer (trace.h) answers "where did wall-clock time go"; the
// event log answers "what happened to query 17's level 3 at t=1480 ms of
// simulated time, and why was its message dropped". Events carry a
// subsystem tag, a drop-cause payload and three causal ids that the
// timeline reconstruction API (timeline.h) replays into a per-query,
// per-level history.
//
// Determinism contract (DESIGN.md §12): events are recorded only from the
// orchestrating thread — Arm() captures the calling thread as the owner and
// Record()/context scopes become no-ops on any other thread. All hooks sit
// on serially-executed simulator-driven paths (the unreliable transport,
// the radio channel, the query executor's serial fan-out), so the log is
// bit-identical at 1 and 8 pool threads. The buffer is bounded; overflowing
// events are counted in dropped(), never stored.
//
// Compile-time kill switch: HYPERM_OBS_DISABLED turns every HM_OBS_* hook
// below into a no-op that does not evaluate its arguments, exactly like the
// trace.h macros. The classes stay available for exporters and tests.

#ifndef HYPERM_OBS_EVENT_LOG_H_
#define HYPERM_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"  // for HM_OBS_CONCAT_

namespace hyperm::obs {

/// What happened. Grouped by subsystem (see SubsystemOf).
enum class EventKind : int32_t {
  // hyperm query engine (query planner / executor / network query API)
  kQueryPlan = 0,   ///< plan emitted; src=querying peer, aux=#level probes
  kProbeIssue,      ///< one level probe issued; attempt=reissue round
  kProbeOutcome,    ///< level probe finished; cause=LevelDelivery, value=latency
  kHealWait,        ///< executor parks for the heal window; value=window ms
  kLevelFinal,      ///< merged per-level outcome; cause=LevelDelivery, aux=reissues
  kQueryDone,       ///< query finished; aux=result count
  // net transport (unreliable mode only; reliable mode stays uninstrumented)
  kMsgSend,         ///< logical message enters SendHop; aux=MessageType, value=bytes
  kMsgDeliver,      ///< delivered; attempt=tx attempt, value=accumulated latency ms
  kMsgDrop,         ///< one attempt lost; cause=DeliveryCause, value=retry wait ms
  kMsgDuplicate,    ///< spurious duplicate transmission after delivery
  kMsgDeadLetter,   ///< retries exhausted; cause=last DeliveryCause
  // radio channel
  kTxQueueWait,     ///< hop waited for a busy air interface; value=wait ms
  kTxAirtime,       ///< one hop's airtime; value=tx ms, aux=busy neighbors
  kTxUnreachable,   ///< src/dst on different islands; one hop charged to the void
  // mobility
  kMobilityTick,    ///< mobility epoch; aux=island count
  kIslandChange,    ///< island count changed; value=old count, aux=new count
  // soft state / fault plan
  kPeerCrash,       ///< peer crashed (summaries lost); src=peer, aux=items lost
  kPeerRejoin,      ///< peer rejoined; src=peer
  kSummariesExpired,///< TTL sweep; aux=#summaries expired
  kRepublishRound,  ///< periodic republish; aux=#summaries pushed
  // radio route cache (appended to keep earlier kinds' numeric values stable)
  kRouteCacheBuild,      ///< BFS trees built for a transmit; src/dst=message, aux=#builds
  kRouteCacheInvalidate, ///< mobility dropped cached trees; value=#trees dropped
  // supernode backbone (src/backbone; appended)
  kBackboneElect,    ///< CDS election settled; value=greedy rounds, aux=#supernodes
  kBackboneReport,   ///< member summary report delivered; src=member, dst=supernode, aux=#clusters
  kBackboneDigest,   ///< digest exchanged between CDS neighbors; src/dst=supernodes, value=bytes
  kBackboneProbe,    ///< backbone probe verdict; cause 0=served 1=fallback, value=latency, aux=#descended
  kBackboneDecision, ///< per-domain verdict; src=supernode, cause 0=descend 1=prune 2=stale-descend, aux=#matches
  // serving subsystem (src/serve; appended)
  kServeAdmit,       ///< arrival admitted; src=querying peer, value=dispatch lag ms
  kServeShed,        ///< arrival shed; src=querying peer, cause=ShedCauseName, value=backlog ms
  kServeCacheHit,    ///< result cache answered locally; src=querying peer, aux=#items
  kServeShortcut,    ///< mined shortcut attempted; cause 0=hit 1=stale, dst=entry node, value=latency
  // CSMA/CA MAC + distributed routing (src/channel mac + src/route; appended)
  kMacDefer,         ///< carrier-sense deferral; src=node, value=defer ms, aux=busy neighbors
  kMacCollision,     ///< collision detected; src=node, dst=receiver, attempt=tx attempt, value=backoff ms
  kRouteDiscover,    ///< route discovery round; src=origin, dst=target, cause 0=found 1=failed, value=control ms, aux=#control frames
  kRouteError,       ///< link break + RERR; src=detecting node, dst=lost next hop, aux=#routes invalidated
};

/// Which layer of the stack emitted the event.
enum class Subsystem : int32_t {
  kQuery = 0, kNet, kChannel, kMobility, kSoftState, kBackbone, kServe, kRoute
};

const char* EventKindName(EventKind kind);
Subsystem SubsystemOf(EventKind kind);
const char* SubsystemName(Subsystem subsystem);

/// Names for the `cause` payload of kMsg* events. The values mirror
/// net::DeliveryOutcome numerically (obs sits below net in the dependency
/// order, so the enum itself cannot appear here); a static_assert at the
/// instrumentation site in transport.cc keeps the two in sync.
const char* DeliveryCauseName(int32_t cause);

/// Names for the `cause` payload of probe/level events; mirrors
/// hyperm::core::LevelDelivery (static_assert in query_plan.cc).
const char* LevelFateName(int32_t fate);

/// Names for the `cause` payload of kServeShed events; mirrors
/// serve::ShedCause numerically (static_assert in engine.cc — obs sits below
/// serve in the dependency order, like DeliveryCauseName above).
const char* ShedCauseName(int32_t cause);

/// Names for the per-cause MAC accounting (kMacDefer/kMacCollision events and
/// the channel.mac.* counters); mirrors channel::MacCause numerically
/// (static_assert in mac.cc — obs sits below channel, like the above).
const char* MacCauseName(int32_t cause);

/// One flight-recorder event. Plain data, no strings: ~64 bytes, cheap to
/// buffer in bulk. `-1` means "unset"; Record() fills unset causal ids from
/// the ambient context scopes. Field order matters at call sites (C++20
/// designated initializers must follow declaration order).
struct Event {
  double sim_ms = 0.0;    ///< simulated time (0 when no simulator is attached)
  EventKind kind = EventKind::kQueryPlan;
  int64_t query_id = -1;  ///< causal id: which query (see HM_OBS_QUERY_SCOPE)
  int32_t level = -1;     ///< causal id: which wavelet level / layer probe
  int64_t msg_id = -1;    ///< causal id: which logical message exchange
  int32_t attempt = -1;   ///< tx attempt (kMsg*) or reissue round (probes)
  int32_t src = -1;       ///< peer / node id
  int32_t dst = -1;       ///< peer / node id
  int32_t cause = -1;     ///< DeliveryCause or LevelFate payload (kind-specific)
  double value = 0.0;     ///< kind-specific scalar (ms, bytes, ...)
  int64_t aux = 0;        ///< kind-specific extra (counts, MessageType, ...)
};

/// Fixed-capacity ring of (sim_ms, value) samples; once full the oldest
/// sample is overwritten. total() keeps counting so exporters can tell how
/// much history was shed.
class TimeSeries {
 public:
  struct Point {
    double sim_ms = 0.0;
    double value = 0.0;
  };

  explicit TimeSeries(size_t capacity = 1024)
      : capacity_(capacity > 0 ? capacity : 1) {}

  void Sample(double sim_ms, double value);

  /// Samples ever taken (>= Points().size()).
  uint64_t total() const { return total_; }
  size_t capacity() const { return capacity_; }

  /// Retained samples, oldest first.
  std::vector<Point> Points() const;

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  size_t head_ = 0;  // insertion slot once the ring is full
  std::vector<Point> ring_;
};

/// The flight recorder. Single-writer by contract: Arm() captures the
/// calling thread as the owner, and every mutating entry point (Record, the
/// context scopes, Series sampling) silently no-ops on other threads — pool
/// workers touching an instrumented path record nothing, which is exactly
/// what keeps the log deterministic across thread counts.
class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 18;

  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Starts recording; the calling thread becomes the owner. Arming twice
  /// re-anchors the owner thread (and keeps already-recorded events).
  void Arm(size_t capacity = kDefaultCapacity);

  /// Stops recording; buffered events and series stay readable.
  void Disarm();

  /// True when armed *and* called from the owner thread. This is the hot
  /// gate the HM_OBS_EVENT macro checks before evaluating its arguments.
  bool enabled() const {
    return armed_.load(std::memory_order_acquire) &&
           std::this_thread::get_id() == owner_;
  }
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Appends one event (owner thread only). Unset (-1) causal ids are
  /// filled from the ambient context scopes. Past capacity the event is
  /// counted in dropped() and discarded.
  void Record(Event event);

  /// All retained events, in record order.
  const std::vector<Event>& events() const { return events_; }

  /// Events discarded because the buffer was full.
  uint64_t dropped() const { return dropped_; }

  size_t capacity() const { return capacity_; }

  /// Named ring-buffered time series (created on first use). Sampling via
  /// HM_OBS_SERIES goes through enabled() like events.
  TimeSeries& Series(const std::string& name, size_t capacity = 1024);
  const std::map<std::string, TimeSeries>& series() const { return series_; }

  /// Fresh causal ids. Deterministic: only ever drawn on the owner thread
  /// behind enabled() checks, in program order.
  int64_t NextQueryId() { return next_query_id_++; }
  int64_t NextMessageId() { return next_msg_id_++; }

  /// Ambient causal context (set by the Scoped* guards below).
  int64_t context_query() const { return ctx_query_; }
  int32_t context_level() const { return ctx_level_; }
  int64_t context_msg() const { return ctx_msg_; }

  /// Clears events, series, dropped count, context and id counters, and
  /// disarms. The next Arm() starts a fresh log.
  void Reset();

  /// The process-wide log the HM_OBS_EVENT / HM_OBS_SERIES macros feed.
  static EventLog& Global();

 private:
  friend class ScopedQueryContext;
  friend class ScopedLevelContext;
  friend class ScopedMessageContext;

  std::atomic<bool> armed_{false};
  std::thread::id owner_{};
  size_t capacity_ = kDefaultCapacity;
  uint64_t dropped_ = 0;
  std::vector<Event> events_;
  std::map<std::string, TimeSeries> series_;
  int64_t next_query_id_ = 0;
  int64_t next_msg_id_ = 0;
  int64_t ctx_query_ = -1;
  int32_t ctx_level_ = -1;
  int64_t ctx_msg_ = -1;
};

/// RAII guards installing one causal id into the ambient context for the
/// enclosing scope. No-ops off the owner thread (a worker constructing one
/// neither reads nor writes the context).
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(int64_t query_id, EventLog& log = EventLog::Global())
      : log_(&log), active_(log.enabled()) {
    if (active_) {
      saved_ = log_->ctx_query_;
      log_->ctx_query_ = query_id;
    }
  }
  ~ScopedQueryContext() {
    if (active_) log_->ctx_query_ = saved_;
  }
  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  EventLog* log_;
  bool active_;
  int64_t saved_ = -1;
};

class ScopedLevelContext {
 public:
  explicit ScopedLevelContext(int32_t level, EventLog& log = EventLog::Global())
      : log_(&log), active_(log.enabled()) {
    if (active_) {
      saved_ = log_->ctx_level_;
      log_->ctx_level_ = level;
    }
  }
  ~ScopedLevelContext() {
    if (active_) log_->ctx_level_ = saved_;
  }
  ScopedLevelContext(const ScopedLevelContext&) = delete;
  ScopedLevelContext& operator=(const ScopedLevelContext&) = delete;

 private:
  EventLog* log_;
  bool active_;
  int32_t saved_ = -1;
};

class ScopedMessageContext {
 public:
  explicit ScopedMessageContext(int64_t msg_id, EventLog& log = EventLog::Global())
      : log_(&log), active_(log.enabled()) {
    if (active_) {
      saved_ = log_->ctx_msg_;
      log_->ctx_msg_ = msg_id;
    }
  }
  ~ScopedMessageContext() {
    if (active_) log_->ctx_msg_ = saved_;
  }
  ScopedMessageContext(const ScopedMessageContext&) = delete;
  ScopedMessageContext& operator=(const ScopedMessageContext&) = delete;

 private:
  EventLog* log_;
  bool active_;
  int64_t saved_ = -1;
};

/// Clears all three ambient causal ids for the enclosing scope. Installed at
/// the top of scheduled simulator callbacks (mobility ticks, republish and
/// expiry sweeps): those can fire while a query's heal-window RunUntil is
/// on the stack, and their events must not be attributed to that query.
class ScopedRootContext {
 public:
  explicit ScopedRootContext(EventLog& log = EventLog::Global())
      : query_(-1, log), level_(-1, log), msg_(-1, log) {}

 private:
  ScopedQueryContext query_;
  ScopedLevelContext level_;
  ScopedMessageContext msg_;
};

/// JSONL exporter: one compact, key-sorted JSON object per event (schema in
/// DESIGN.md §12), then one trailer line `{"dropped_events":n,"events":n}`.
/// Byte-stable for identical logs — the 1-vs-8-thread determinism test
/// compares these strings directly.
std::string EventsToJsonl(const std::vector<Event>& events, uint64_t dropped);

/// Serializes EventsToJsonl(log.events(), log.dropped()) to `path`.
/// Returns false on I/O failure.
bool WriteEventsJsonl(const std::string& path, const EventLog& log);

}  // namespace hyperm::obs

// Flight-recorder hooks -------------------------------------------------------
//
// All feed EventLog::Global(). The enabled() gate runs before argument
// evaluation, so an un-armed log costs one atomic load per hook. Under
// HYPERM_OBS_DISABLED every hook compiles to a no-op that does not evaluate
// its arguments (scope macros still declare their id variable, as -1).

#ifndef HYPERM_OBS_DISABLED

/// Records one event. Arguments are designated initializers for obs::Event,
/// in declaration order, e.g.
///   HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kMsgSend, .src = 3);
#define HM_OBS_EVENT(...)                                                   \
  do {                                                                      \
    ::hyperm::obs::EventLog& hm_obs_el = ::hyperm::obs::EventLog::Global(); \
    if (hm_obs_el.enabled())                                                \
      hm_obs_el.Record(::hyperm::obs::Event{__VA_ARGS__});                  \
  } while (0)

/// Samples (sim_ms, value) into the named ring-buffered time series.
#define HM_OBS_SERIES(name, sim_ms, value)                                  \
  do {                                                                      \
    ::hyperm::obs::EventLog& hm_obs_el = ::hyperm::obs::EventLog::Global(); \
    if (hm_obs_el.enabled())                                                \
      hm_obs_el.Series((name)).Sample((sim_ms), (value));                   \
  } while (0)

/// Declares `const int64_t var` holding a fresh query id (-1 when the log is
/// off) and installs it as the ambient query context for this scope.
#define HM_OBS_QUERY_SCOPE(var)                                             \
  const int64_t var = ::hyperm::obs::EventLog::Global().enabled()           \
                          ? ::hyperm::obs::EventLog::Global().NextQueryId() \
                          : int64_t{-1};                                    \
  ::hyperm::obs::ScopedQueryContext HM_OBS_CONCAT_(hm_obs_qctx_, __LINE__)(var)

/// Installs `level` as the ambient level context for this scope.
#define HM_OBS_LEVEL_SCOPE(level)                                  \
  ::hyperm::obs::ScopedLevelContext HM_OBS_CONCAT_(                \
      hm_obs_lctx_, __LINE__)(static_cast<int32_t>(level))

/// Clears the ambient causal context for this scope (scheduled simulator
/// callbacks that must not inherit the interrupted query's ids).
#define HM_OBS_ROOT_SCOPE() \
  ::hyperm::obs::ScopedRootContext HM_OBS_CONCAT_(hm_obs_rctx_, __LINE__)

/// Declares `const int64_t var` holding a fresh message id (-1 when the log
/// is off) and installs it as the ambient message context for this scope.
#define HM_OBS_MSG_SCOPE(var)                                                 \
  const int64_t var = ::hyperm::obs::EventLog::Global().enabled()             \
                          ? ::hyperm::obs::EventLog::Global().NextMessageId() \
                          : int64_t{-1};                                      \
  ::hyperm::obs::ScopedMessageContext HM_OBS_CONCAT_(hm_obs_mctx_, __LINE__)(var)

#else  // HYPERM_OBS_DISABLED

#define HM_OBS_EVENT(...) ((void)0)
#define HM_OBS_SERIES(name, sim_ms, value) ((void)0)
#define HM_OBS_ROOT_SCOPE() ((void)0)
#define HM_OBS_QUERY_SCOPE(var) \
  const int64_t var = -1;       \
  (void)var
#define HM_OBS_LEVEL_SCOPE(level) ((void)0)
#define HM_OBS_MSG_SCOPE(var) \
  const int64_t var = -1;     \
  (void)var

#endif  // HYPERM_OBS_DISABLED

#endif  // HYPERM_OBS_EVENT_LOG_H_
