// Minimal JSON document model: build, serialize, parse.
//
// Just enough JSON for the observability exports — objects keep their keys
// sorted (std::map) so every report serializes deterministically, numbers
// are doubles (with integral values printed without a fraction), and the
// parser is a small recursive-descent reader for the exporter's own output
// plus the bench-smoke schema checker. Not a general-purpose library: no
// streaming, no \u surrogate pairs beyond the BMP, no configurable limits.

#ifndef HYPERM_OBS_JSON_H_
#define HYPERM_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace hyperm::obs {

/// One JSON value (null / bool / number / string / array / object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : type_(Type::kNumber), number_(value) {}
  Json(int64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(uint64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return array_; }
  const std::map<std::string, Json>& members() const { return object_; }

  /// Array append (value must be an array).
  void Append(Json value);

  /// Object member set (value must be an object).
  void Set(const std::string& key, Json value);

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

  /// Serializes the value. indent < 0: compact one-line output; otherwise
  /// pretty-printed with `indent` spaces per nesting level.
  std::string Dump(int indent = -1) const;

  /// Parses a complete JSON document (rejects trailing garbage).
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace hyperm::obs

#endif  // HYPERM_OBS_JSON_H_
