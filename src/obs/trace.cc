#include "obs/trace.h"

#include <utility>

#include "common/check.h"

namespace hyperm::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Tracer::Begin(std::string name) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return -1;
  }
  const int id = static_cast<int>(spans_.size());
  SpanRecord span;
  span.name = std::move(name);
  span.id = id;
  span.parent = open_.empty() ? -1 : static_cast<int32_t>(open_.back());
  span.depth = static_cast<int32_t>(open_.size());
  span.start_us = NowUs();
  spans_.push_back(std::move(span));
  open_.push_back(id);
  return id;
}

void Tracer::End(int id) {
  if (id < 0) return;  // dropped at Begin
  HM_CHECK(!open_.empty()) << "End without matching Begin";
  HM_CHECK_EQ(open_.back(), id) << "spans must close in LIFO order";
  open_.pop_back();
  SpanRecord& span = spans_[static_cast<size_t>(id)];
  span.duration_us = NowUs() - span.start_us;
}

int Tracer::AddCompleted(std::string name, double duration_us) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return -1;
  }
  const int id = static_cast<int>(spans_.size());
  SpanRecord span;
  span.name = std::move(name);
  span.id = id;
  span.parent = open_.empty() ? -1 : static_cast<int32_t>(open_.back());
  span.depth = static_cast<int32_t>(open_.size());
  span.start_us = NowUs() - duration_us;
  span.duration_us = duration_us;
  spans_.push_back(std::move(span));
  return id;
}

void Tracer::Reset() {
  HM_CHECK(open_.empty()) << "Reset with open spans";
  spans_.clear();
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace hyperm::obs
