#include "obs/event_log.h"

#include <cstdio>

#include "obs/json.h"

namespace hyperm::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kQueryPlan: return "query_plan";
    case EventKind::kProbeIssue: return "probe_issue";
    case EventKind::kProbeOutcome: return "probe_outcome";
    case EventKind::kHealWait: return "heal_wait";
    case EventKind::kLevelFinal: return "level_final";
    case EventKind::kQueryDone: return "query_done";
    case EventKind::kMsgSend: return "msg_send";
    case EventKind::kMsgDeliver: return "msg_deliver";
    case EventKind::kMsgDrop: return "msg_drop";
    case EventKind::kMsgDuplicate: return "msg_duplicate";
    case EventKind::kMsgDeadLetter: return "msg_dead_letter";
    case EventKind::kTxQueueWait: return "tx_queue_wait";
    case EventKind::kTxAirtime: return "tx_airtime";
    case EventKind::kTxUnreachable: return "tx_unreachable";
    case EventKind::kMobilityTick: return "mobility_tick";
    case EventKind::kIslandChange: return "island_change";
    case EventKind::kPeerCrash: return "peer_crash";
    case EventKind::kPeerRejoin: return "peer_rejoin";
    case EventKind::kSummariesExpired: return "summaries_expired";
    case EventKind::kRepublishRound: return "republish_round";
    case EventKind::kRouteCacheBuild: return "route_cache_build";
    case EventKind::kRouteCacheInvalidate: return "route_cache_invalidate";
    case EventKind::kBackboneElect: return "backbone_elect";
    case EventKind::kBackboneReport: return "backbone_report";
    case EventKind::kBackboneDigest: return "backbone_digest";
    case EventKind::kBackboneProbe: return "backbone_probe";
    case EventKind::kBackboneDecision: return "backbone_decision";
    case EventKind::kServeAdmit: return "serve_admit";
    case EventKind::kServeShed: return "serve_shed";
    case EventKind::kServeCacheHit: return "serve_cache_hit";
    case EventKind::kServeShortcut: return "serve_shortcut";
    case EventKind::kMacDefer: return "mac_defer";
    case EventKind::kMacCollision: return "mac_collision";
    case EventKind::kRouteDiscover: return "route_discover";
    case EventKind::kRouteError: return "route_error";
  }
  return "unknown";
}

Subsystem SubsystemOf(EventKind kind) {
  switch (kind) {
    case EventKind::kQueryPlan:
    case EventKind::kProbeIssue:
    case EventKind::kProbeOutcome:
    case EventKind::kHealWait:
    case EventKind::kLevelFinal:
    case EventKind::kQueryDone:
      return Subsystem::kQuery;
    case EventKind::kMsgSend:
    case EventKind::kMsgDeliver:
    case EventKind::kMsgDrop:
    case EventKind::kMsgDuplicate:
    case EventKind::kMsgDeadLetter:
      return Subsystem::kNet;
    case EventKind::kTxQueueWait:
    case EventKind::kTxAirtime:
    case EventKind::kTxUnreachable:
    case EventKind::kRouteCacheBuild:
    case EventKind::kRouteCacheInvalidate:
    case EventKind::kMacDefer:
    case EventKind::kMacCollision:
      return Subsystem::kChannel;
    case EventKind::kRouteDiscover:
    case EventKind::kRouteError:
      return Subsystem::kRoute;
    case EventKind::kMobilityTick:
    case EventKind::kIslandChange:
      return Subsystem::kMobility;
    case EventKind::kPeerCrash:
    case EventKind::kPeerRejoin:
    case EventKind::kSummariesExpired:
    case EventKind::kRepublishRound:
      return Subsystem::kSoftState;
    case EventKind::kBackboneElect:
    case EventKind::kBackboneReport:
    case EventKind::kBackboneDigest:
    case EventKind::kBackboneProbe:
    case EventKind::kBackboneDecision:
      return Subsystem::kBackbone;
    case EventKind::kServeAdmit:
    case EventKind::kServeShed:
    case EventKind::kServeCacheHit:
    case EventKind::kServeShortcut:
      return Subsystem::kServe;
  }
  return Subsystem::kQuery;
}

const char* SubsystemName(Subsystem subsystem) {
  switch (subsystem) {
    case Subsystem::kQuery: return "query";
    case Subsystem::kNet: return "net";
    case Subsystem::kChannel: return "channel";
    case Subsystem::kMobility: return "mobility";
    case Subsystem::kSoftState: return "softstate";
    case Subsystem::kBackbone: return "backbone";
    case Subsystem::kServe: return "serve";
    case Subsystem::kRoute: return "route";
  }
  return "unknown";
}

const char* DeliveryCauseName(int32_t cause) {
  switch (cause) {
    case 0: return "delivered";
    case 1: return "loss";
    case 2: return "down";
    case 3: return "partition";
    case 4: return "unreachable";
    case 5: return "mac";
    default: return "unknown";
  }
}

const char* LevelFateName(int32_t fate) {
  switch (fate) {
    case 0: return "delivered";
    case 1: return "detoured";
    case 2: return "deferred";
    case 3: return "lost";
    default: return "unknown";
  }
}

const char* ShedCauseName(int32_t cause) {
  switch (cause) {
    case 0: return "tx_backlog";
    case 1: return "dispatch_lag";
    default: return "unknown";
  }
}

const char* MacCauseName(int32_t cause) {
  switch (cause) {
    case 0: return "deferrals";
    case 1: return "collisions";
    case 2: return "retransmits";
    case 3: return "drops_retry_limit";
    default: return "unknown";
  }
}

void TimeSeries::Sample(double sim_ms, double value) {
  if (ring_.size() < capacity_) {
    ring_.push_back(Point{sim_ms, value});
  } else {
    ring_[head_] = Point{sim_ms, value};
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TimeSeries::Point> TimeSeries::Points() const {
  std::vector<Point> out;
  out.reserve(ring_.size());
  // Oldest first: once the ring wrapped, head_ is the oldest slot.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void EventLog::Arm(size_t capacity) {
  owner_ = std::this_thread::get_id();
  capacity_ = capacity > 0 ? capacity : 1;
  events_.reserve(events_.size() < capacity_ ? capacity_ : events_.size());
  armed_.store(true, std::memory_order_release);
}

void EventLog::Disarm() { armed_.store(false, std::memory_order_release); }

void EventLog::Record(Event event) {
  if (!enabled()) return;
  if (event.query_id < 0) event.query_id = ctx_query_;
  if (event.level < 0) event.level = ctx_level_;
  if (event.msg_id < 0) event.msg_id = ctx_msg_;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

TimeSeries& EventLog::Series(const std::string& name, size_t capacity) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(capacity)).first;
  }
  return it->second;
}

void EventLog::Reset() {
  armed_.store(false, std::memory_order_release);
  owner_ = std::thread::id{};
  capacity_ = kDefaultCapacity;
  dropped_ = 0;
  events_.clear();
  events_.shrink_to_fit();
  series_.clear();
  next_query_id_ = 0;
  next_msg_id_ = 0;
  ctx_query_ = -1;
  ctx_level_ = -1;
  ctx_msg_ = -1;
}

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();  // leaked: alive for exit-time writers
  return *log;
}

std::string EventsToJsonl(const std::vector<Event>& events, uint64_t dropped) {
  std::string out;
  out.reserve(events.size() * 96 + 64);
  for (const Event& e : events) {
    Json obj = Json::Object();
    obj.Set("attempt", Json(e.attempt));
    obj.Set("aux", Json(e.aux));
    obj.Set("cause", Json(e.cause));
    obj.Set("dst", Json(e.dst));
    obj.Set("kind", Json(EventKindName(e.kind)));
    obj.Set("level", Json(e.level));
    obj.Set("msg_id", Json(e.msg_id));
    obj.Set("query_id", Json(e.query_id));
    obj.Set("sim_ms", Json(e.sim_ms));
    obj.Set("src", Json(e.src));
    obj.Set("sub", Json(SubsystemName(SubsystemOf(e.kind))));
    obj.Set("value", Json(e.value));
    out += obj.Dump(-1);
    out.push_back('\n');
  }
  Json trailer = Json::Object();
  trailer.Set("dropped_events", Json(dropped));
  trailer.Set("events", Json(static_cast<uint64_t>(events.size())));
  out += trailer.Dump(-1);
  out.push_back('\n');
  return out;
}

bool WriteEventsJsonl(const std::string& path, const EventLog& log) {
  const std::string text = EventsToJsonl(log.events(), log.dropped());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  return written == text.size() && close_rc == 0;
}

}  // namespace hyperm::obs
