// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// The paper's whole argument is quantitative (hops per publication, recall
// per contact budget, load spread), so every subsystem reports what it does
// through one process-wide registry instead of ad-hoc printf accounting.
// Metrics are registered on first use and never removed, so handles stay
// valid for the life of the process; Reset() zeroes values but keeps the
// registrations (cached handles in hot paths survive a reset).
//
// Naming convention (see DESIGN.md "Observability"): lowercase dotted paths,
// `subsystem.quantity[_unit]` — e.g. `can.route_hops`, `kmeans.wall_us`,
// `net.bytes_per_message`.
//
// Thread-safety: registration is mutex-guarded, counter/gauge updates are
// relaxed atomics and histogram updates take a per-histogram mutex, so pool
// workers (common/thread_pool.h) may bump metrics concurrently. Metric
// *values* stay deterministic across thread counts as long as concurrent
// observations are integer-valued (integer sums commute exactly in double);
// wall-clock timings are nondeterministic run to run anyway. The span
// tracer (trace.h) remains single-threaded — only the orchestrating thread
// may open spans.
//
// Use the HM_OBS_* macros from trace.h in instrumented code — they cache the
// handle in a function-local static and compile to nothing under
// HYPERM_OBS_DISABLED.

#ifndef HYPERM_OBS_METRICS_H_
#define HYPERM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hyperm::obs {

/// Monotone event count. Thread-safe (relaxed atomic).
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. Thread-safe (relaxed atomic).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a histogram: ascending edges e0 < e1 < ... < en define
/// n inner buckets [e_i, e_{i+1}) plus an underflow (< e0) and an overflow
/// (>= en) bucket, so no observation is ever lost.
struct Buckets {
  std::vector<double> edges;

  /// n equal-width buckets spanning [lo, hi].
  static Buckets Linear(double lo, double hi, int n);

  /// Edges lo, lo*factor, lo*factor^2, ... (n+1 edges, n buckets).
  static Buckets Exponential(double lo, double factor, int n);

  /// Caller-supplied ascending edges.
  static Buckets Explicit(std::vector<double> edges);
};

/// Immutable copy of a histogram's state (see Histogram::Snapshot).
struct HistogramSnapshot {
  std::vector<double> edges;
  std::vector<uint64_t> counts;  ///< inner buckets, size = edges.size() - 1
  uint64_t underflow = 0;
  uint64_t overflow = 0;
  uint64_t count = 0;  ///< total observations (inner + under + over)
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket containing the target rank, clamped to the observed [min, max].
  /// Ranks landing in the underflow bucket report min, in the overflow
  /// bucket max. 0 for an empty histogram — a sentinel the caller must gate
  /// on count itself; the JSON exporter surfaces p50/p95/p99 through this
  /// but omits the keys entirely when count == 0.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram with explicit underflow/overflow buckets.
/// Thread-safe: observations and snapshots take a per-histogram mutex.
class Histogram {
 public:
  explicit Histogram(const Buckets& buckets);

  void Observe(double value);

  /// Records `n` observations of the same value under one lock — the hot
  /// transmit path batches its per-hop observations per message. For
  /// integer-valued `value` (all batched call sites) the resulting snapshot
  /// is bit-identical to `n` repeated Observe calls: count/bucket updates
  /// are integers, and `sum += value * n` lands on the same exact double as
  /// `n` exact integer additions while the sum stays below 2^53.
  void ObserveN(double value, uint64_t n);

  HistogramSnapshot Snapshot() const;
  uint64_t count() const;
  void Reset();

 private:
  mutable std::mutex mu_;   // guards snap_
  HistogramSnapshot snap_;  // doubles as live state
};

/// Point-in-time copy of a whole registry; the unit of export and merging.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Element-wise accumulation (counters add, gauges take the other's value,
  /// histograms add per-bucket). Histograms present in both snapshots must
  /// share bucket edges; mismatching entries keep this snapshot's value,
  /// bump the global `obs.merge_mismatch` counter (registered lazily, only
  /// on the first conflict) and make Merge return false — callers that
  /// ignore the return value still leave an audit trail in exported reports.
  bool Merge(const MetricsSnapshot& other);

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Total number of named metrics of all three kinds.
  size_t size() const {
    return counters.size() + gauges.size() + histograms.size();
  }
};

/// Registry of named metrics. Handles returned by the Get* methods are
/// stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. A histogram's bucket layout is fixed
  /// by the first registration; later callers get the existing instance
  /// regardless of the buckets they pass.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name, const Buckets& buckets);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every value but keeps all registrations (handles stay valid).
  void Reset();

  /// The process-wide registry every HM_OBS_* macro records into.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mutex_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hyperm::obs

#endif  // HYPERM_OBS_METRICS_H_
