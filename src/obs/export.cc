#include "obs/export.h"

#include <cstdio>
#include <sstream>

namespace hyperm::obs {
namespace {

Json HistogramToJson(const HistogramSnapshot& h) {
  Json out = Json::Object();
  Json edges = Json::Array();
  for (double e : h.edges) edges.Append(Json(e));
  out.Set("edges", std::move(edges));
  Json counts = Json::Array();
  for (uint64_t c : h.counts) counts.Append(Json(c));
  out.Set("counts", std::move(counts));
  out.Set("underflow", Json(h.underflow));
  out.Set("overflow", Json(h.overflow));
  out.Set("count", Json(h.count));
  out.Set("sum", Json(h.sum));
  // An empty histogram has min=+inf/max=-inf, which JSON cannot carry; 0 is
  // the conventional empty value (count==0 disambiguates).
  out.Set("min", Json(h.count == 0 ? 0.0 : h.min));
  out.Set("max", Json(h.count == 0 ? 0.0 : h.max));
  // Tail quantiles (bucket interpolation); mean alone hides tail latency.
  // An empty histogram has no quantiles at all — Quantile() returns 0 there,
  // and writing that 0 would pollute p99 fields downstream (a dashboard
  // cannot tell "no samples" from "instant"), so the keys are omitted
  // entirely (count==0 is the marker; HistogramFromJson never reads them).
  if (h.count > 0) {
    out.Set("p50", Json(h.Quantile(0.50)));
    out.Set("p95", Json(h.Quantile(0.95)));
    out.Set("p99", Json(h.Quantile(0.99)));
  }
  return out;
}

Result<HistogramSnapshot> HistogramFromJson(const Json& json) {
  if (!json.is_object()) return InvalidArgumentError("histogram: not an object");
  HistogramSnapshot h;
  const Json* edges = json.Find("edges");
  const Json* counts = json.Find("counts");
  if (edges == nullptr || !edges->is_array() || counts == nullptr ||
      !counts->is_array()) {
    return InvalidArgumentError("histogram: missing edges/counts arrays");
  }
  for (const Json& e : edges->items()) {
    if (!e.is_number()) return InvalidArgumentError("histogram: non-numeric edge");
    h.edges.push_back(e.as_number());
  }
  for (const Json& c : counts->items()) {
    if (!c.is_number()) return InvalidArgumentError("histogram: non-numeric count");
    h.counts.push_back(static_cast<uint64_t>(c.as_number()));
  }
  if (h.edges.size() != h.counts.size() + 1) {
    return InvalidArgumentError("histogram: edges/counts size mismatch");
  }
  const auto number_field = [&json](const char* key, double fallback) {
    const Json* v = json.Find(key);
    return v != nullptr && v->is_number() ? v->as_number() : fallback;
  };
  h.underflow = static_cast<uint64_t>(number_field("underflow", 0));
  h.overflow = static_cast<uint64_t>(number_field("overflow", 0));
  h.count = static_cast<uint64_t>(number_field("count", 0));
  h.sum = number_field("sum", 0.0);
  if (h.count == 0) {
    h.min = std::numeric_limits<double>::infinity();
    h.max = -std::numeric_limits<double>::infinity();
  } else {
    h.min = number_field("min", 0.0);
    h.max = number_field("max", 0.0);
  }
  return h;
}

}  // namespace

Json ReportToJson(const RunMeta& meta, const MetricsSnapshot& metrics,
                  const std::vector<SpanRecord>& spans, uint64_t dropped_spans,
                  uint64_t dropped_events) {
  Json report = Json::Object();
  report.Set("schema_version", Json(kReportSchemaVersion));

  Json run_meta = Json::Object();
  run_meta.Set("bench", Json(meta.bench));
  run_meta.Set("scale", Json(meta.scale));
  for (const auto& [key, value] : meta.extra) run_meta.Set(key, Json(value));
  report.Set("run_meta", std::move(run_meta));

  Json counters = Json::Object();
  for (const auto& [name, value] : metrics.counters) counters.Set(name, Json(value));
  Json gauges = Json::Object();
  for (const auto& [name, value] : metrics.gauges) gauges.Set(name, Json(value));
  Json histograms = Json::Object();
  for (const auto& [name, h] : metrics.histograms) {
    histograms.Set(name, HistogramToJson(h));
  }
  Json metrics_json = Json::Object();
  metrics_json.Set("counters", std::move(counters));
  metrics_json.Set("gauges", std::move(gauges));
  metrics_json.Set("histograms", std::move(histograms));
  report.Set("metrics", std::move(metrics_json));

  Json spans_json = Json::Array();
  for (const SpanRecord& span : spans) {
    Json s = Json::Object();
    s.Set("id", Json(static_cast<int>(span.id)));
    s.Set("parent", Json(static_cast<int>(span.parent)));
    s.Set("depth", Json(static_cast<int>(span.depth)));
    s.Set("name", Json(span.name));
    s.Set("start_us", Json(span.start_us));
    s.Set("dur_us", Json(span.duration_us));
    spans_json.Append(std::move(s));
  }
  report.Set("spans", std::move(spans_json));
  report.Set("dropped_spans", Json(dropped_spans));
  // Flight-recorder saturation (event_log.h); check_report warns when a
  // report was produced from a saturated buffer.
  report.Set("dropped_events", Json(dropped_events));
  return report;
}

Result<MetricsSnapshot> MetricsFromJson(const Json& json) {
  const Json* metrics = json.Find("metrics");
  if (metrics == nullptr) metrics = &json;  // accept a bare metrics object
  if (!metrics->is_object()) return InvalidArgumentError("metrics: not an object");
  MetricsSnapshot snap;
  if (const Json* counters = metrics->Find("counters"); counters != nullptr) {
    if (!counters->is_object()) return InvalidArgumentError("counters: not an object");
    for (const auto& [name, value] : counters->members()) {
      if (!value.is_number()) return InvalidArgumentError("counter: not a number");
      snap.counters[name] = static_cast<uint64_t>(value.as_number());
    }
  }
  if (const Json* gauges = metrics->Find("gauges"); gauges != nullptr) {
    if (!gauges->is_object()) return InvalidArgumentError("gauges: not an object");
    for (const auto& [name, value] : gauges->members()) {
      if (!value.is_number()) return InvalidArgumentError("gauge: not a number");
      snap.gauges[name] = value.as_number();
    }
  }
  if (const Json* histograms = metrics->Find("histograms"); histograms != nullptr) {
    if (!histograms->is_object()) {
      return InvalidArgumentError("histograms: not an object");
    }
    for (const auto& [name, value] : histograms->members()) {
      HM_ASSIGN_OR_RETURN(HistogramSnapshot h, HistogramFromJson(value));
      snap.histograms[name] = std::move(h);
    }
  }
  return snap;
}

std::string MetricsToCsv(const MetricsSnapshot& metrics) {
  std::ostringstream os;
  os << "kind,name,value\n";
  for (const auto& [name, value] : metrics.counters) {
    os << "counter," << name << "," << value << "\n";
  }
  for (const auto& [name, value] : metrics.gauges) {
    os << "gauge," << name << "," << value << "\n";
  }
  for (const auto& [name, h] : metrics.histograms) {
    os << "histogram_count," << name << "," << h.count << "\n";
    os << "histogram_sum," << name << "," << h.sum << "\n";
    os << "histogram_mean," << name << "," << h.mean() << "\n";
    if (h.count > 0) {
      os << "histogram_min," << name << "," << h.min << "\n";
      os << "histogram_max," << name << "," << h.max << "\n";
    }
  }
  return os.str();
}

std::string SpansToCsv(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "id,parent,depth,name,start_us,dur_us\n";
  for (const SpanRecord& span : spans) {
    os << span.id << "," << span.parent << "," << span.depth << "," << span.name
       << "," << span.start_us << "," << span.duration_us << "\n";
  }
  return os.str();
}

Status WriteReportFile(const std::string& path, const RunMeta& meta,
                       const MetricsSnapshot& metrics,
                       const std::vector<SpanRecord>& spans, uint64_t dropped_spans,
                       uint64_t dropped_events) {
  const std::string text =
      ReportToJson(meta, metrics, spans, dropped_spans, dropped_events).Dump(2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return InternalError("cannot open report file: " + path);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fputc('\n', f) != EOF;
  if (std::fclose(f) != 0 || written != text.size() || !flushed) {
    return InternalError("short write to report file: " + path);
  }
  return OkStatus();
}

Status WriteGlobalReport(const std::string& path, const RunMeta& meta) {
  return WriteReportFile(path, meta, MetricsRegistry::Global().Snapshot(),
                         Tracer::Global().spans(), Tracer::Global().dropped(),
                         EventLog::Global().dropped());
}

}  // namespace hyperm::obs
