#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace hyperm::obs {
namespace {

constexpr int kPid = 0;

// Track (tid) layout: 0 is the global "sim" track, peer n lives on n + 1.
int32_t TrackOf(int32_t node) { return node >= 0 ? node + 1 : 0; }

Json BaseEvent(const char* ph, const std::string& name, const char* cat,
               int32_t tid, double ts_us) {
  Json e = Json::Object();
  e.Set("ph", Json(ph));
  e.Set("name", Json(name));
  e.Set("cat", Json(cat));
  e.Set("pid", Json(kPid));
  e.Set("tid", Json(tid));
  e.Set("ts", Json(ts_us));
  return e;
}

Json Instant(const std::string& name, const char* cat, int32_t tid,
             double ts_us) {
  Json e = BaseEvent("i", name, cat, tid, ts_us);
  e.Set("s", Json("t"));  // thread-scoped instant
  return e;
}

// Unique async id per (query, level, reissue round); queries themselves use
// their raw id on a separate category, so the spaces cannot collide.
int64_t ProbeAsyncId(int64_t query_id, int32_t level, int32_t attempt) {
  return (query_id * 64 + level) * 16 + attempt;
}

std::string ProbeName(int64_t query_id, int32_t level, int32_t attempt) {
  std::string name = "q";
  name += std::to_string(query_id);
  name += " L";
  name += std::to_string(level);
  name += " r";
  name += std::to_string(attempt);
  return name;
}

}  // namespace

Json ChromeTraceFromLog(const EventLog& log) {
  const std::vector<Event>& events = log.events();

  // Paired phases ("s"/"f" flows, "b"/"e" asyncs) are only drawn when both
  // endpoints are in the buffer, so a saturated log still exports a
  // well-formed trace: flows need send + deliver, query spans need
  // plan + done, probe spans need issue + outcome.
  std::set<int64_t> delivered_msgs;
  std::set<int64_t> sent_msgs;
  std::set<int64_t> planned_queries;
  std::set<int64_t> complete_queries;
  std::set<int64_t> issued_probes;
  std::set<int64_t> complete_probes;
  for (const Event& e : events) {
    if (e.kind == EventKind::kMsgSend) sent_msgs.insert(e.msg_id);
    if (e.kind == EventKind::kMsgDeliver && sent_msgs.count(e.msg_id) != 0) {
      delivered_msgs.insert(e.msg_id);
    }
    if (e.kind == EventKind::kQueryPlan) planned_queries.insert(e.query_id);
    if (e.kind == EventKind::kQueryDone &&
        planned_queries.count(e.query_id) != 0) {
      complete_queries.insert(e.query_id);
    }
    if (e.kind == EventKind::kProbeIssue) {
      issued_probes.insert(ProbeAsyncId(e.query_id, e.level, e.attempt));
    }
    if (e.kind == EventKind::kProbeOutcome &&
        issued_probes.count(ProbeAsyncId(e.query_id, e.level, e.attempt)) !=
            0) {
      complete_probes.insert(ProbeAsyncId(e.query_id, e.level, e.attempt));
    }
  }

  std::vector<Json> out;
  out.reserve(events.size() + 64);
  std::set<int32_t> tracks;
  tracks.insert(0);

  for (const Event& e : events) {
    const double ts = e.sim_ms * 1000.0;
    const int32_t tid = TrackOf(e.src);
    tracks.insert(tid);
    switch (e.kind) {
      case EventKind::kQueryPlan: {
        if (complete_queries.count(e.query_id) == 0) {
          out.push_back(Instant("plan q" + std::to_string(e.query_id), "query",
                                tid, ts));
          break;
        }
        Json b = BaseEvent("b", "query " + std::to_string(e.query_id), "query",
                           tid, ts);
        b.Set("id", Json(e.query_id));
        out.push_back(std::move(b));
        break;
      }
      case EventKind::kQueryDone: {
        if (complete_queries.count(e.query_id) == 0) {
          out.push_back(Instant("done q" + std::to_string(e.query_id), "query",
                                tid, ts));
          break;
        }
        Json end = BaseEvent("e", "query " + std::to_string(e.query_id),
                             "query", tid, ts);
        end.Set("id", Json(e.query_id));
        out.push_back(std::move(end));
        break;
      }
      case EventKind::kProbeIssue: {
        const int64_t pid_key = ProbeAsyncId(e.query_id, e.level, e.attempt);
        if (complete_probes.count(pid_key) == 0) {
          out.push_back(Instant(
              "issue " + ProbeName(e.query_id, e.level, e.attempt), "probe",
              tid, ts));
          break;
        }
        Json b = BaseEvent("b", ProbeName(e.query_id, e.level, e.attempt),
                           "probe", tid, ts);
        b.Set("id", Json(pid_key));
        out.push_back(std::move(b));
        break;
      }
      case EventKind::kProbeOutcome: {
        const int64_t pid_key = ProbeAsyncId(e.query_id, e.level, e.attempt);
        if (complete_probes.count(pid_key) == 0) {
          out.push_back(Instant(
              "outcome " + ProbeName(e.query_id, e.level, e.attempt), "probe",
              tid, ts));
          break;
        }
        Json end = BaseEvent("e", ProbeName(e.query_id, e.level, e.attempt),
                             "probe", tid, ts);
        end.Set("id", Json(pid_key));
        Json args = Json::Object();
        args.Set("fate", Json(LevelFateName(e.cause)));
        args.Set("latency_ms", Json(e.value));
        end.Set("args", std::move(args));
        out.push_back(std::move(end));
        break;
      }
      case EventKind::kHealWait: {
        out.push_back(Instant("heal_wait " + std::to_string(e.value) + "ms",
                              "query", tid, ts));
        break;
      }
      case EventKind::kLevelFinal: {
        out.push_back(Instant("level " + std::to_string(e.level) + " final:" +
                                  LevelFateName(e.cause),
                              "query", tid, ts));
        break;
      }
      case EventKind::kMsgSend: {
        if (delivered_msgs.count(e.msg_id) != 0) {
          Json s = BaseEvent("s", "msg " + std::to_string(e.msg_id), "msg",
                             tid, ts);
          s.Set("id", Json(e.msg_id));
          out.push_back(std::move(s));
        } else {
          out.push_back(
              Instant("send msg " + std::to_string(e.msg_id), "msg", tid, ts));
        }
        break;
      }
      case EventKind::kMsgDeliver: {
        const int32_t dst_tid = TrackOf(e.dst);
        tracks.insert(dst_tid);
        if (delivered_msgs.count(e.msg_id) != 0) {
          Json f = BaseEvent("f", "msg " + std::to_string(e.msg_id), "msg",
                             dst_tid, ts);
          f.Set("id", Json(e.msg_id));
          f.Set("bp", Json("e"));
          out.push_back(std::move(f));
        }
        break;
      }
      case EventKind::kMsgDrop: {
        out.push_back(Instant(std::string("drop:") + DeliveryCauseName(e.cause),
                              "msg", tid, ts));
        break;
      }
      case EventKind::kMsgDuplicate: {
        out.push_back(Instant("duplicate", "msg", tid, ts));
        break;
      }
      case EventKind::kMsgDeadLetter: {
        out.push_back(
            Instant(std::string("dead_letter:") + DeliveryCauseName(e.cause),
                    "msg", tid, ts));
        break;
      }
      case EventKind::kTxQueueWait: {
        Json x = BaseEvent("X", "queue_wait", "channel", tid, ts);
        x.Set("dur", Json(e.value * 1000.0));
        out.push_back(std::move(x));
        break;
      }
      case EventKind::kTxAirtime: {
        Json x = BaseEvent("X", "tx", "channel", tid, ts);
        x.Set("dur", Json(e.value * 1000.0));
        Json args = Json::Object();
        args.Set("busy_neighbors", Json(e.aux));
        x.Set("args", std::move(args));
        out.push_back(std::move(x));
        break;
      }
      case EventKind::kTxUnreachable: {
        out.push_back(Instant("unreachable", "channel", tid, ts));
        break;
      }
      case EventKind::kMobilityTick: {
        Json c = BaseEvent("C", "islands", "mobility", 0, ts);
        Json args = Json::Object();
        args.Set("value", Json(e.aux));
        c.Set("args", std::move(args));
        out.push_back(std::move(c));
        break;
      }
      case EventKind::kIslandChange: {
        out.push_back(Instant("islands " + std::to_string(e.value) + "->" +
                                  std::to_string(e.aux),
                              "mobility", 0, ts));
        break;
      }
      case EventKind::kPeerCrash: {
        out.push_back(Instant("crash", "softstate", tid, ts));
        break;
      }
      case EventKind::kPeerRejoin: {
        out.push_back(Instant("rejoin", "softstate", tid, ts));
        break;
      }
      case EventKind::kSummariesExpired: {
        out.push_back(Instant("expired " + std::to_string(e.aux), "softstate",
                              0, ts));
        break;
      }
      case EventKind::kRepublishRound: {
        out.push_back(Instant("republish " + std::to_string(e.aux),
                              "softstate", 0, ts));
        break;
      }
      case EventKind::kRouteCacheBuild: {
        out.push_back(Instant("route_build x" + std::to_string(e.aux),
                              "channel", tid, ts));
        break;
      }
      case EventKind::kRouteCacheInvalidate: {
        out.push_back(Instant(
            "route_invalidate " + std::to_string(static_cast<int64_t>(e.value)),
            "mobility", 0, ts));
        break;
      }
      case EventKind::kBackboneElect: {
        out.push_back(Instant("cds_elect sn=" + std::to_string(e.aux),
                              "backbone", 0, ts));
        break;
      }
      case EventKind::kBackboneReport: {
        out.push_back(Instant("bb_report", "backbone", tid, ts));
        break;
      }
      case EventKind::kBackboneDigest: {
        out.push_back(Instant("digest->" + std::to_string(e.dst), "backbone",
                              tid, ts));
        break;
      }
      case EventKind::kBackboneProbe: {
        out.push_back(Instant(e.cause == 0 ? "bb_serve" : "bb_fallback",
                              "backbone", tid, ts));
        break;
      }
      case EventKind::kBackboneDecision: {
        out.push_back(Instant(e.cause == 1   ? "bb_prune"
                              : e.cause == 2 ? "bb_stale_descend"
                                             : "bb_descend",
                              "backbone", tid, ts));
        break;
      }
      case EventKind::kServeAdmit: {
        out.push_back(Instant("admit", "serve", tid, ts));
        break;
      }
      case EventKind::kServeShed: {
        out.push_back(Instant(std::string("shed:") + ShedCauseName(e.cause),
                              "serve", tid, ts));
        break;
      }
      case EventKind::kServeCacheHit: {
        out.push_back(Instant("cache_hit x" + std::to_string(e.aux), "serve",
                              tid, ts));
        break;
      }
      case EventKind::kServeShortcut: {
        out.push_back(Instant(e.cause == 0 ? "shortcut->" + std::to_string(e.dst)
                                           : "shortcut_stale",
                              "serve", tid, ts));
        break;
      }
      case EventKind::kMacDefer: {
        Json x = BaseEvent("X", "mac_defer", "channel", tid, ts);
        x.Set("dur", Json(e.value * 1000.0));
        Json args = Json::Object();
        args.Set("busy_neighbors", Json(e.aux));
        x.Set("args", std::move(args));
        out.push_back(std::move(x));
        break;
      }
      case EventKind::kMacCollision: {
        out.push_back(Instant("collision a" + std::to_string(e.attempt) +
                                  "->" + std::to_string(e.dst),
                              "channel", tid, ts));
        break;
      }
      case EventKind::kRouteDiscover: {
        out.push_back(Instant((e.cause == 0 ? "rreq->" : "rreq_fail->") +
                                  std::to_string(e.dst) + " x" +
                                  std::to_string(e.aux),
                              "route", tid, ts));
        break;
      }
      case EventKind::kRouteError: {
        out.push_back(Instant("rerr !" + std::to_string(e.dst) + " x" +
                                  std::to_string(e.aux),
                              "route", tid, ts));
        break;
      }
    }
  }

  // Ring-buffered time series become counter tracks.
  for (const auto& [name, series] : log.series()) {
    for (const TimeSeries::Point& p : series.Points()) {
      Json c = BaseEvent("C", name, "series", 0, p.sim_ms * 1000.0);
      Json args = Json::Object();
      args.Set("value", Json(p.value));
      c.Set("args", std::move(args));
      out.push_back(std::move(c));
    }
  }

  // The viewer sorts internally but the acceptance contract (and diff
  // friendliness) wants ts-sorted output; stable to preserve record order
  // at equal simulated instants.
  std::stable_sort(out.begin(), out.end(), [](const Json& a, const Json& b) {
    return a.Find("ts")->as_number() < b.Find("ts")->as_number();
  });

  Json trace_events = Json::Array();
  // Track-name metadata first (ts-less "M" events).
  Json pname = Json::Object();
  pname.Set("ph", Json("M"));
  pname.Set("name", Json("process_name"));
  pname.Set("pid", Json(kPid));
  Json pargs = Json::Object();
  pargs.Set("name", Json("hyperm-sim"));
  pname.Set("args", std::move(pargs));
  trace_events.Append(std::move(pname));
  for (int32_t tid : tracks) {
    Json m = Json::Object();
    m.Set("ph", Json("M"));
    m.Set("name", Json("thread_name"));
    m.Set("pid", Json(kPid));
    m.Set("tid", Json(tid));
    Json args = Json::Object();
    args.Set("name",
             Json(tid == 0 ? std::string("sim")
                           : "peer " + std::to_string(tid - 1)));
    m.Set("args", std::move(args));
    trace_events.Append(std::move(m));
  }
  for (Json& e : out) trace_events.Append(std::move(e));

  Json doc = Json::Object();
  doc.Set("displayTimeUnit", Json("ms"));
  doc.Set("traceEvents", std::move(trace_events));
  Json meta = Json::Object();
  meta.Set("dropped_events", Json(log.dropped()));
  meta.Set("recorded_events", Json(static_cast<uint64_t>(events.size())));
  doc.Set("otherData", std::move(meta));
  return doc;
}

bool WriteChromeTrace(const std::string& path, const EventLog& log) {
  const std::string text = ChromeTraceFromLog(log).Dump(-1);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool nl = std::fputc('\n', f) != EOF;
  const int close_rc = std::fclose(f);
  return written == text.size() && nl && close_rc == 0;
}

Status ValidateChromeTrace(const Json& doc) {
  if (!doc.is_object()) return InvalidArgumentError("trace root not an object");
  const Json* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return InvalidArgumentError("missing traceEvents array");
  }
  double last_ts = -1.0;
  // (cat, id) -> open count, for "s"/"f" flows and "b"/"e" async pairs.
  std::map<std::pair<std::string, int64_t>, int> open_flows;
  std::map<std::pair<std::string, int64_t>, int> open_asyncs;
  size_t index = 0;
  for (const Json& e : events->items()) {
    const std::string where = "traceEvents[" + std::to_string(index++) + "]";
    if (!e.is_object()) return InvalidArgumentError(where + ": not an object");
    const Json* ph = e.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return InvalidArgumentError(where + ": missing ph");
    }
    const std::string& phase = ph->as_string();
    const Json* name = e.Find("name");
    if (name == nullptr || !name->is_string()) {
      return InvalidArgumentError(where + ": missing name");
    }
    if (phase == "M") continue;  // metadata carries no timestamp
    const Json* ts = e.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return InvalidArgumentError(where + ": missing ts");
    }
    if (ts->as_number() < last_ts) {
      return InvalidArgumentError(where + ": timestamps not sorted");
    }
    last_ts = ts->as_number();
    const Json* tid = e.Find("tid");
    if (tid == nullptr || !tid->is_number()) {
      return InvalidArgumentError(where + ": missing tid");
    }
    if (phase == "X") {
      const Json* dur = e.Find("dur");
      if (dur == nullptr || !dur->is_number() || dur->as_number() < 0.0) {
        return InvalidArgumentError(where + ": X event needs dur >= 0");
      }
    } else if (phase == "s" || phase == "f" || phase == "b" || phase == "e") {
      const Json* cat = e.Find("cat");
      const Json* id = e.Find("id");
      if (cat == nullptr || !cat->is_string() || id == nullptr ||
          !id->is_number()) {
        return InvalidArgumentError(where + ": paired event needs cat and id");
      }
      const std::pair<std::string, int64_t> key(
          cat->as_string(), static_cast<int64_t>(id->as_number()));
      auto& open = (phase == "s" || phase == "f") ? open_flows : open_asyncs;
      if (phase == "s" || phase == "b") {
        ++open[key];
      } else {
        auto it = open.find(key);
        if (it == open.end() || it->second <= 0) {
          return InvalidArgumentError(where + ": " + phase +
                                      " without a matching start (cat=" +
                                      key.first +
                                      " id=" + std::to_string(key.second) + ")");
        }
        --it->second;
      }
    } else if (phase == "i") {
      const Json* scope = e.Find("s");
      if (scope == nullptr || !scope->is_string()) {
        return InvalidArgumentError(where + ": instant needs a scope");
      }
    } else if (phase != "C") {
      return InvalidArgumentError(where + ": unexpected phase '" + phase + "'");
    }
  }
  for (const auto& [key, count] : open_flows) {
    if (count != 0) {
      return InvalidArgumentError("unpaired flow (cat=" + key.first +
                                  " id=" + std::to_string(key.second) + ")");
    }
  }
  for (const auto& [key, count] : open_asyncs) {
    if (count != 0) {
      return InvalidArgumentError("unpaired async event (cat=" + key.first +
                                  " id=" + std::to_string(key.second) + ")");
    }
  }
  return OkStatus();
}

}  // namespace hyperm::obs
