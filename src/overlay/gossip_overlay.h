// An unstructured (Gnutella-style) overlay baseline.
//
// Hyper-M is built for *structured* overlays, but its home platform
// (BestPeer, Section 2) "can switch smoothly between structured and
// unstructured overlay". This implementation makes the comparison concrete:
// peers form a random k-regular-ish graph, publication is free (summaries
// stay at their publisher — there is no key space), and queries flood the
// neighbourhood with a TTL. The trade-off it exposes in the ablation bench:
// zero insertion hops against query cost that grows with the flood horizon,
// and *no* completeness guarantee — a TTL too small for the graph's
// diameter silently loses answers, which is exactly why the paper builds on
// structured overlays.

#ifndef HYPERM_OVERLAY_GOSSIP_OVERLAY_H_
#define HYPERM_OVERLAY_GOSSIP_OVERLAY_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "overlay/overlay.h"
#include "sim/stats.h"

namespace hyperm::overlay {

/// Unstructured flooding overlay; see file comment.
class GossipOverlay : public Overlay {
 public:
  /// Builds a connected random graph of `num_nodes` nodes with ~`degree`
  /// links each (a ring backbone plus random chords, the standard connected
  /// construction). `ttl` bounds query floods; a negative ttl means
  /// unbounded (full network flood).
  static Result<std::unique_ptr<GossipOverlay>> Build(size_t dim, int num_nodes,
                                                      int degree, int ttl,
                                                      sim::NetworkStats* stats,
                                                      Rng& rng);

  size_t dim() const override { return dim_; }
  int num_nodes() const override { return static_cast<int>(links_.size()); }
  Result<InsertReceipt> Insert(const PublishedCluster& cluster, NodeId origin) override;
  Result<RangeQueryResult> RangeQuery(const geom::Sphere& query, NodeId origin) override;
  std::vector<NodeStorage> StorageDistribution() const override;
  void ClearStorage() override;
  int RemoveByOwner(int owner_peer) override;
  /// No key space, no zones: replication is meaningless here (no-op).
  void set_replicate_spheres(bool /*enabled*/) override {}

  /// The flood TTL in use (-1 = unbounded).
  int ttl() const { return ttl_; }

  /// Physical links of `node`.
  const std::vector<NodeId>& links(NodeId node) const;

 private:
  GossipOverlay(size_t dim, int ttl, sim::NetworkStats* stats)
      : dim_(dim), ttl_(ttl), stats_(stats) {}

  size_t dim_;
  int ttl_;
  sim::NetworkStats* stats_;  // not owned
  std::vector<std::vector<NodeId>> links_;
  std::vector<std::vector<PublishedCluster>> stored_;
};

}  // namespace hyperm::overlay

#endif  // HYPERM_OVERLAY_GOSSIP_OVERLAY_H_
