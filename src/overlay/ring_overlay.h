// A 1-dimensional Chord-style ring overlay.
//
// Hyper-M's approximation level A and detail level D_0 are 1-dimensional,
// so a plain ring with finger tables indexes them just as well as a 1-D CAN.
// This implementation exists to demonstrate the paper's claim that Hyper-M
// is overlay-agnostic (Section 5) and backs the overlay-choice ablation.
//
// Nodes own half-open arcs of [0,1). Routing uses successor links plus
// power-of-two fingers (O(log N) hops); interval queries walk successor
// links across the covered arcs.

#ifndef HYPERM_OVERLAY_RING_OVERLAY_H_
#define HYPERM_OVERLAY_RING_OVERLAY_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "overlay/overlay.h"
#include "sim/stats.h"

namespace hyperm::overlay {

/// Chord-like ring over [0,1). See file comment.
class RingOverlay : public Overlay {
 public:
  /// Builds a ring of `num_nodes` nodes with arc boundaries drawn from `rng`
  /// via the same split-on-join process CAN uses in one dimension. Join
  /// traffic is recorded under TrafficClass::kJoin.
  static Result<std::unique_ptr<RingOverlay>> Build(int num_nodes,
                                                    sim::NetworkStats* stats, Rng& rng);

  size_t dim() const override { return 1; }
  int num_nodes() const override { return static_cast<int>(arc_start_.size()); }
  Result<InsertReceipt> Insert(const PublishedCluster& cluster, NodeId origin) override;
  Result<RangeQueryResult> RangeQuery(const geom::Sphere& query, NodeId origin) override;
  std::vector<NodeStorage> StorageDistribution() const override;
  void ClearStorage() override;
  int RemoveByOwner(int owner_peer) override;
  void set_replicate_spheres(bool enabled) override { replicate_spheres_ = enabled; }

  /// Owner of scalar key `x` (clamped into [0,1)).
  NodeId OwnerOf(double x) const;

  /// Start of the arc owned by ring-position `node`.
  double arc_start(NodeId node) const { return arc_start_[static_cast<size_t>(node)]; }

 private:
  explicit RingOverlay(sim::NetworkStats* stats) : stats_(stats) {}

  void BuildFingers();

  /// Greedy finger routing from `origin` to the owner of `x`; one recorded
  /// hop per forward.
  NodeId RouteTo(double x, NodeId origin, sim::TrafficClass cls, uint64_t bytes,
                 int* hops);

  // Node i (in ring order) owns [arc_start_[i], arc_start_[i+1]) with the
  // last node owning up to 1.0.
  std::vector<double> arc_start_;                 // sorted, arc_start_[0] == 0
  std::vector<std::vector<NodeId>> fingers_;      // per node: successor + 2^-j jumps
  std::vector<std::vector<PublishedCluster>> stored_;
  sim::NetworkStats* stats_;  // not owned
  bool replicate_spheres_ = true;
};

}  // namespace hyperm::overlay

#endif  // HYPERM_OVERLAY_RING_OVERLAY_H_
