#include "overlay/gossip_overlay.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/check.h"

namespace hyperm::overlay {
namespace {

constexpr uint64_t kQueryBytes = 48;  // header + sphere (small dims)

}  // namespace

Result<std::unique_ptr<GossipOverlay>> GossipOverlay::Build(size_t dim, int num_nodes,
                                                            int degree, int ttl,
                                                            sim::NetworkStats* stats,
                                                            Rng& rng) {
  if (dim < 1) return InvalidArgumentError("GossipOverlay: dim must be >= 1");
  if (num_nodes < 1) return InvalidArgumentError("GossipOverlay: need >= 1 node");
  if (degree < 2) return InvalidArgumentError("GossipOverlay: degree must be >= 2");
  HM_CHECK(stats != nullptr);
  std::unique_ptr<GossipOverlay> overlay(new GossipOverlay(dim, ttl, stats));
  overlay->links_.resize(static_cast<size_t>(num_nodes));
  overlay->stored_.resize(static_cast<size_t>(num_nodes));

  auto linked = [&](NodeId a, NodeId b) {
    const auto& list = overlay->links_[static_cast<size_t>(a)];
    return std::find(list.begin(), list.end(), b) != list.end();
  };
  auto link = [&](NodeId a, NodeId b) {
    if (a == b || linked(a, b)) return;
    overlay->links_[static_cast<size_t>(a)].push_back(b);
    overlay->links_[static_cast<size_t>(b)].push_back(a);
    // Each new link is a handshake.
    stats->RecordHop(sim::TrafficClass::kJoin, 32);
  };

  // Ring backbone guarantees connectivity; random chords provide the
  // small-world shortcuts unstructured networks rely on.
  for (int i = 0; i + 1 < num_nodes; ++i) link(i, i + 1);
  if (num_nodes > 2) link(num_nodes - 1, 0);
  for (int i = 0; i < num_nodes; ++i) {
    while (static_cast<int>(overlay->links_[static_cast<size_t>(i)].size()) < degree &&
           num_nodes > degree) {
      link(i, static_cast<NodeId>(rng.NextIndex(static_cast<uint64_t>(num_nodes))));
    }
  }
  return overlay;
}

Result<InsertReceipt> GossipOverlay::Insert(const PublishedCluster& cluster,
                                            NodeId origin) {
  if (cluster.sphere.center.size() != dim_) {
    return InvalidArgumentError("GossipOverlay::Insert: dimensionality mismatch");
  }
  if (origin < 0 || origin >= num_nodes()) {
    return InvalidArgumentError("GossipOverlay::Insert: bad origin");
  }
  // No key space: the summary simply stays with its publisher. That is the
  // whole attraction of unstructured overlays (publication is free)...
  stored_[static_cast<size_t>(origin)].push_back(cluster);
  return InsertReceipt{};
}

Result<RangeQueryResult> GossipOverlay::RangeQuery(const geom::Sphere& query,
                                                   NodeId origin) {
  if (query.center.size() != dim_) {
    return InvalidArgumentError("GossipOverlay::RangeQuery: dimensionality mismatch");
  }
  if (origin < 0 || origin >= num_nodes()) {
    return InvalidArgumentError("GossipOverlay::RangeQuery: bad origin");
  }
  // ...and this is the price: queries must flood blindly.
  RangeQueryResult result;
  std::unordered_set<NodeId> visited{origin};
  std::unordered_set<uint64_t> seen;
  std::deque<std::pair<NodeId, int>> frontier{{origin, 0}};
  while (!frontier.empty()) {
    const auto [node, depth] = frontier.front();
    frontier.pop_front();
    ++result.nodes_visited;
    for (const PublishedCluster& cluster : stored_[static_cast<size_t>(node)]) {
      if (!cluster.sphere.Intersects(query)) continue;
      if (!seen.insert(cluster.cluster_id).second) continue;
      result.matches.push_back(cluster);
    }
    if (ttl_ >= 0 && depth >= ttl_) continue;
    for (NodeId next : links_[static_cast<size_t>(node)]) {
      if (!visited.insert(next).second) continue;
      frontier.emplace_back(next, depth + 1);
      ++result.flood_hops;
      stats_->RecordHop(sim::TrafficClass::kQuery, kQueryBytes);
    }
  }
  return result;
}

std::vector<NodeStorage> GossipOverlay::StorageDistribution() const {
  std::vector<NodeStorage> out;
  out.reserve(stored_.size());
  for (size_t i = 0; i < stored_.size(); ++i) {
    NodeStorage s;
    s.node = static_cast<NodeId>(i);
    s.clusters = static_cast<int>(stored_[i].size());
    for (const PublishedCluster& c : stored_[i]) s.items += c.items;
    out.push_back(s);
  }
  return out;
}

void GossipOverlay::ClearStorage() {
  for (auto& bucket : stored_) bucket.clear();
}

int GossipOverlay::RemoveByOwner(int owner_peer) {
  int removed = 0;
  for (auto& bucket : stored_) {
    const auto end = std::remove_if(
        bucket.begin(), bucket.end(),
        [owner_peer](const PublishedCluster& c) { return c.owner_peer == owner_peer; });
    removed += static_cast<int>(std::distance(end, bucket.end()));
    bucket.erase(end, bucket.end());
  }
  return removed;
}

const std::vector<NodeId>& GossipOverlay::links(NodeId node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return links_[static_cast<size_t>(node)];
}

}  // namespace hyperm::overlay
