// Overlay-agnostic indexing interface.
//
// Hyper-M "has been designed independent of the underlying peer-to-peer
// overlays ... so long as they can support multi-dimensional indexing"
// (Section 5). This interface is that seam: the core publishes cluster
// spheres into, and range-queries against, any `Overlay` implementation.
// CAN (src/can) is the paper's evaluation overlay; RingOverlay (this module)
// is a 1-dimensional Chord-style alternative used in ablations.
//
// Key-space convention: every overlay indexes the half-open unit cube
// [0,1)^dim. The caller (hyperm core) maps wavelet coordinates into this
// cube with a *uniform* per-level scale so spheres stay spheres and volume
// *fractions* — all the scoring math needs — are preserved exactly.

#ifndef HYPERM_OVERLAY_OVERLAY_H_
#define HYPERM_OVERLAY_OVERLAY_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "geom/shapes.h"
#include "net/transport.h"
#include "sim/stats.h"

namespace hyperm::overlay {

/// Overlay node handle (index into the overlay's node table).
using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

/// A cluster summary as published into an overlay: its sphere in the
/// normalized key space plus enough metadata to score and fetch from the
/// owning application peer.
struct PublishedCluster {
  geom::Sphere sphere;      ///< centroid + radius in [0,1)^dim key space
  int owner_peer = -1;      ///< application peer holding the summarized items
  int items = 0;            ///< number of items the cluster summarizes
  uint64_t cluster_id = 0;  ///< globally unique id (dedupes replicas)

  /// Soft state: simulated time after which the summary may be garbage
  /// collected (owners republish to refresh it). Infinity = never expires,
  /// the behavior of every pre-soft-state publication.
  double expires_at = std::numeric_limits<double>::infinity();
};

/// Cost receipt for one publication.
struct InsertReceipt {
  int routing_hops = 0;  ///< greedy hops from origin to the centroid owner
  int replicas = 0;      ///< additional zones the sphere was replicated into

  /// False when an unreliable transport lost the publication before it
  /// reached the centroid owner (always true on reliable transports).
  bool delivered = true;
  double latency_ms = 0.0;  ///< accumulated link latency along the route
};

/// Result of a range query.
struct RangeQueryResult {
  std::vector<PublishedCluster> matches;  ///< deduplicated intersecting clusters
  int routing_hops = 0;                   ///< hops to reach the query center owner
  int flood_hops = 0;                     ///< zone-flood edges traversed
  int nodes_visited = 0;                  ///< overlay nodes that evaluated the query

  /// False when the unreliable transport lost the initial routing phase; the
  /// flood never started and `matches` is empty.
  bool delivered = true;
  double latency_ms = 0.0;  ///< time until the slowest flood branch answered

  /// Cause of the routing phase's fate (kDelivered iff `delivered`). Lets the
  /// query executor tell transient failures (partition, island split — worth
  /// deferring and re-issuing) from dead ends (loss, crashed peer).
  net::DeliveryOutcome outcome = net::DeliveryOutcome::kDelivered;

  /// Alternate-neighbour forwards the routing phase took around unreachable
  /// next hops (0 unless the overlay's detour budget is set and was needed).
  int route_detours = 0;

  /// Node the zone flood started from — the owner of the query center's zone
  /// (kInvalidNode when the routing phase never delivered). Zone assignments
  /// are static after Build, so this is a stable "who serves queries landing
  /// here" association; the serving layer's shortcut miner feeds on it.
  NodeId entry_node = kInvalidNode;
};

/// Per-node storage snapshot (drives the Fig. 9 distribution analysis).
struct NodeStorage {
  NodeId node = kInvalidNode;
  int clusters = 0;  ///< replicas count individually
  int items = 0;     ///< sum of items over stored clusters (with replicas)
};

/// A structured P2P overlay indexing the unit cube.
///
/// Implementations record their traffic in the NetworkStats passed at
/// construction; all operations are deterministic given the build RNG.
class Overlay {
 public:
  virtual ~Overlay() = default;

  /// Key-space dimensionality.
  virtual size_t dim() const = 0;

  /// Number of nodes in the overlay.
  virtual int num_nodes() const = 0;

  /// Publishes `cluster` starting from node `origin`. The sphere is stored
  /// at the zone owning its centroid and replicated into every other zone it
  /// overlaps (Fig. 6: otherwise queries landing in a neighbouring zone
  /// would miss it).
  virtual Result<InsertReceipt> Insert(const PublishedCluster& cluster, NodeId origin) = 0;

  /// Returns all stored clusters whose sphere intersects `query`, flooding
  /// outward from the zone owning the query center.
  virtual Result<RangeQueryResult> RangeQuery(const geom::Sphere& query,
                                              NodeId origin) = 0;

  /// RangeQuery via a mined entry hint: `origin` first contacts `entry_hint`
  /// directly (one overlay message instead of the greedy multi-hop walk) and
  /// the walk resumes from there — usually zero hops, because the hint *is*
  /// the query center's zone owner for a repeated query. Fail-soft and
  /// recall-preserving by construction: the flood still starts at the true
  /// zone owner, and any failure on the hinted path reports undelivered so
  /// the caller can fall back to the plain RangeQuery. Default: hint ignored.
  virtual Result<RangeQueryResult> RangeQueryVia(const geom::Sphere& query,
                                                 NodeId origin,
                                                 NodeId entry_hint) {
    (void)entry_hint;
    return RangeQuery(query, origin);
  }

  /// Current storage load of every node.
  virtual std::vector<NodeStorage> StorageDistribution() const = 0;

  /// Removes all stored clusters (keeps the topology).
  virtual void ClearStorage() = 0;

  /// Removes every stored cluster published by `owner_peer` (replicas
  /// included); returns the number of stored entries erased. Supports
  /// re-publication after a peer's local collection changed.
  virtual int RemoveByOwner(int owner_peer) = 0;

  /// Enables/disables sphere replication into overlapping zones. ON by
  /// default; turning it OFF recreates the Fig. 6 failure mode (queries
  /// landing in a neighbouring zone miss border-straddling clusters) and
  /// exists for the replication ablation bench.
  virtual void set_replicate_spheres(bool enabled) = 0;

  /// Routes all overlay traffic through `transport` (not owned; may be
  /// nullptr to restore direct stats recording). Default: ignored —
  /// overlays without transport support keep their inline accounting.
  virtual void set_transport(net::Transport* transport) { (void)transport; }

  /// k-alternative greedy routing budget for *query* routing: when the best
  /// next hop is unreachable the walk may try up to `budget` alternate
  /// neighbours (backtracking out of dead-end pockets) before declaring the
  /// query lost. 0 (the default) keeps the classic single-path greedy walk;
  /// publication routing always stays single-path. Default: ignored —
  /// overlays without a routed query phase have nothing to detour.
  virtual void set_route_detours(int budget) { (void)budget; }

  /// Soft state: erases every stored summary with expires_at < `now` and
  /// returns the number of entries erased. Default: no soft state, 0.
  virtual int ExpireBefore(double now) { (void)now; return 0; }

  /// Crash support: wipes `node`'s volatile summary storage (the node keeps
  /// its zone and stays routable) and returns the number of entries lost.
  /// Default: no crash support, 0.
  virtual int ClearNode(NodeId node) { (void)node; return 0; }
};

}  // namespace hyperm::overlay

#endif  // HYPERM_OVERLAY_OVERLAY_H_
