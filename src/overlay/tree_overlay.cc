#include "overlay/tree_overlay.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "common/check.h"
#include "obs/trace.h"

namespace hyperm::overlay {

Result<std::unique_ptr<TreeOverlay>> TreeOverlay::Build(size_t dim, int num_nodes,
                                                        sim::NetworkStats* stats,
                                                        Rng& rng) {
  if (dim < 1) return InvalidArgumentError("TreeOverlay: dim must be >= 1");
  if (num_nodes < 1) return InvalidArgumentError("TreeOverlay: need >= 1 node");
  HM_CHECK(stats != nullptr);
  std::unique_ptr<TreeOverlay> overlay(new TreeOverlay(dim, stats));

  TreeNode root;
  root.box.lo.assign(dim, 0.0);
  root.box.hi.assign(dim, 1.0);
  overlay->tree_.push_back(root);

  // Grow to num_nodes leaves by splitting a shallowest leaf each round
  // (keeps the tree balanced); the split dimension cycles with depth.
  std::vector<int> leaves{0};
  while (static_cast<int>(leaves.size()) < num_nodes) {
    // Shallowest leaf; ties broken by insertion order for determinism.
    size_t pick = 0;
    for (size_t i = 1; i < leaves.size(); ++i) {
      if (overlay->tree_[static_cast<size_t>(leaves[i])].depth <
          overlay->tree_[static_cast<size_t>(leaves[pick])].depth) {
        pick = i;
      }
    }
    const int parent_index = leaves[pick];
    leaves.erase(leaves.begin() + static_cast<long>(pick));

    TreeNode parent_copy = overlay->tree_[static_cast<size_t>(parent_index)];
    const size_t split_dim = static_cast<size_t>(parent_copy.depth) % dim;
    const double mid =
        0.5 * (parent_copy.box.lo[split_dim] + parent_copy.box.hi[split_dim]);

    TreeNode left = parent_copy;
    left.parent = parent_index;
    left.depth = parent_copy.depth + 1;
    left.box.hi[split_dim] = mid;
    TreeNode right = parent_copy;
    right.parent = parent_index;
    right.depth = parent_copy.depth + 1;
    right.box.lo[split_dim] = mid;

    const int left_index = static_cast<int>(overlay->tree_.size());
    overlay->tree_.push_back(left);
    const int right_index = static_cast<int>(overlay->tree_.size());
    overlay->tree_.push_back(right);
    overlay->tree_[static_cast<size_t>(parent_index)].left = left_index;
    overlay->tree_[static_cast<size_t>(parent_index)].right = right_index;
    leaves.push_back(left_index);
    leaves.push_back(right_index);
    // Split handshake between the splitting peer and the newcomer.
    stats->RecordHop(sim::TrafficClass::kJoin, overlay->ClusterMessageBytes());
  }

  // Assign leaves to overlay nodes in random order (peers arrive in an
  // arbitrary sequence).
  rng.Shuffle(leaves);
  overlay->leaf_of_node_.resize(leaves.size());
  overlay->stored_.resize(leaves.size());
  for (size_t node = 0; node < leaves.size(); ++node) {
    overlay->leaf_of_node_[node] = leaves[node];
    overlay->tree_[static_cast<size_t>(leaves[node])].owner = static_cast<NodeId>(node);
  }
  return overlay;
}

int TreeOverlay::LeafIndexOf(const Vector& key) const {
  HM_CHECK_EQ(key.size(), dim_);
  Vector clamped = key;
  const double max_key = std::nextafter(1.0, 0.0);
  for (double& x : clamped) x = std::clamp(x, 0.0, max_key);
  int index = 0;
  while (tree_[static_cast<size_t>(index)].left >= 0) {
    const TreeNode& node = tree_[static_cast<size_t>(index)];
    index = tree_[static_cast<size_t>(node.left)].box.ContainsHalfOpen(clamped)
                ? node.left
                : node.right;
  }
  return index;
}

NodeId TreeOverlay::OwnerOf(const Vector& key) const {
  return tree_[static_cast<size_t>(LeafIndexOf(key))].owner;
}

const geom::Box& TreeOverlay::region(NodeId node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return tree_[static_cast<size_t>(leaf_of_node_[static_cast<size_t>(node)])].box;
}

int TreeOverlay::depth(NodeId node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, num_nodes());
  return tree_[static_cast<size_t>(leaf_of_node_[static_cast<size_t>(node)])].depth;
}

void TreeOverlay::Charge(sim::TrafficClass cls, int hops, uint64_t bytes) {
  for (int i = 0; i < hops; ++i) stats_->RecordHop(cls, bytes);
}

int TreeOverlay::TreeDistance(int leaf_a, int leaf_b) const {
  int a = leaf_a, b = leaf_b;
  int distance = 0;
  while (a != b) {
    const int depth_a = tree_[static_cast<size_t>(a)].depth;
    const int depth_b = tree_[static_cast<size_t>(b)].depth;
    if (depth_a >= depth_b) {
      a = tree_[static_cast<size_t>(a)].parent;
    } else {
      b = tree_[static_cast<size_t>(b)].parent;
    }
    ++distance;
  }
  return distance;
}

std::vector<int> TreeOverlay::CollectOverlappingLeaves(const geom::Sphere& sphere,
                                                       int entry_leaf,
                                                       int* edges) const {
  // Ascend from the entry leaf to the lowest ancestor whose box contains the
  // whole overlap region (conservatively: the lowest ancestor that the
  // sphere does not escape, or the root).
  int cover = entry_leaf;
  int ascent = 0;
  while (tree_[static_cast<size_t>(cover)].parent >= 0) {
    const geom::Box& box = tree_[static_cast<size_t>(cover)].box;
    // The box covers the query iff no point of the sphere lies outside it;
    // approximate with the bounding check center +- radius inside box.
    bool covers = true;
    for (size_t i = 0; i < dim_ && covers; ++i) {
      const double c = sphere.center[i];
      if (c - sphere.radius < box.lo[i] || c + sphere.radius > box.hi[i]) {
        covers = false;
      }
    }
    if (covers) break;
    cover = tree_[static_cast<size_t>(cover)].parent;
    ++ascent;
  }

  // Pruned descent from the covering ancestor.
  std::vector<int> overlapping;
  int descent_edges = 0;
  std::deque<int> frontier{cover};
  while (!frontier.empty()) {
    const int index = frontier.front();
    frontier.pop_front();
    const TreeNode& node = tree_[static_cast<size_t>(index)];
    if (!node.box.IntersectsSphere(sphere)) continue;
    if (node.left < 0) {
      overlapping.push_back(index);
      continue;
    }
    frontier.push_back(node.left);
    frontier.push_back(node.right);
    descent_edges += 2;
  }
  if (edges != nullptr) *edges = ascent + descent_edges;
  return overlapping;
}

Result<InsertReceipt> TreeOverlay::Insert(const PublishedCluster& cluster,
                                          NodeId origin) {
  if (cluster.sphere.center.size() != dim_) {
    return InvalidArgumentError("TreeOverlay::Insert: dimensionality mismatch");
  }
  if (cluster.sphere.radius < 0.0) {
    return InvalidArgumentError("TreeOverlay::Insert: negative radius");
  }
  if (origin < 0 || origin >= num_nodes()) {
    return InvalidArgumentError("TreeOverlay::Insert: bad origin");
  }
  InsertReceipt receipt;
  const int origin_leaf = leaf_of_node_[static_cast<size_t>(origin)];
  const int target_leaf = LeafIndexOf(cluster.sphere.center);
  receipt.routing_hops = TreeDistance(origin_leaf, target_leaf);
  Charge(sim::TrafficClass::kInsert, receipt.routing_hops, ClusterMessageBytes());
  HM_OBS_HISTOGRAM("tree.route_hops", obs::Buckets::Exponential(1, 2.0, 12),
                   receipt.routing_hops);

  const NodeId target = tree_[static_cast<size_t>(target_leaf)].owner;
  stored_[static_cast<size_t>(target)].push_back(cluster);
  if (!replicate_spheres_) return receipt;

  int edges = 0;
  const std::vector<int> leaves =
      CollectOverlappingLeaves(cluster.sphere, target_leaf, &edges);
  for (int leaf : leaves) {
    const NodeId owner = tree_[static_cast<size_t>(leaf)].owner;
    if (owner == target) continue;
    stored_[static_cast<size_t>(owner)].push_back(cluster);
    ++receipt.replicas;
  }
  Charge(sim::TrafficClass::kReplicate, edges, ClusterMessageBytes());
  return receipt;
}

Result<RangeQueryResult> TreeOverlay::RangeQuery(const geom::Sphere& query,
                                                 NodeId origin) {
  if (query.center.size() != dim_) {
    return InvalidArgumentError("TreeOverlay::RangeQuery: dimensionality mismatch");
  }
  if (query.radius < 0.0) {
    return InvalidArgumentError("TreeOverlay::RangeQuery: negative radius");
  }
  if (origin < 0 || origin >= num_nodes()) {
    return InvalidArgumentError("TreeOverlay::RangeQuery: bad origin");
  }
  RangeQueryResult result;
  const int origin_leaf = leaf_of_node_[static_cast<size_t>(origin)];
  const int entry_leaf = LeafIndexOf(query.center);
  result.routing_hops = TreeDistance(origin_leaf, entry_leaf);
  Charge(sim::TrafficClass::kQuery, result.routing_hops, KeyMessageBytes());

  int edges = 0;
  const std::vector<int> leaves = CollectOverlappingLeaves(query, entry_leaf, &edges);
  result.flood_hops = edges;
  Charge(sim::TrafficClass::kQuery, edges, KeyMessageBytes());
  HM_OBS_HISTOGRAM("tree.query_flood_edges", obs::Buckets::Exponential(1, 2.0, 12),
                   edges);

  std::unordered_set<uint64_t> seen;
  for (int leaf : leaves) {
    const NodeId owner = tree_[static_cast<size_t>(leaf)].owner;
    ++result.nodes_visited;
    for (const PublishedCluster& cluster : stored_[static_cast<size_t>(owner)]) {
      if (!cluster.sphere.Intersects(query)) continue;
      if (!seen.insert(cluster.cluster_id).second) continue;
      result.matches.push_back(cluster);
    }
  }
  return result;
}

std::vector<NodeStorage> TreeOverlay::StorageDistribution() const {
  std::vector<NodeStorage> out;
  out.reserve(stored_.size());
  for (size_t i = 0; i < stored_.size(); ++i) {
    NodeStorage s;
    s.node = static_cast<NodeId>(i);
    s.clusters = static_cast<int>(stored_[i].size());
    for (const PublishedCluster& c : stored_[i]) s.items += c.items;
    out.push_back(s);
  }
  return out;
}

void TreeOverlay::ClearStorage() {
  for (auto& bucket : stored_) bucket.clear();
}

int TreeOverlay::RemoveByOwner(int owner_peer) {
  int removed = 0;
  for (auto& bucket : stored_) {
    const auto end = std::remove_if(
        bucket.begin(), bucket.end(),
        [owner_peer](const PublishedCluster& c) { return c.owner_peer == owner_peer; });
    removed += static_cast<int>(std::distance(end, bucket.end()));
    bucket.erase(end, bucket.end());
  }
  return removed;
}

}  // namespace hyperm::overlay
