// A balanced space-partitioning tree overlay (BATON/VBI-tree flavour).
//
// The paper claims Hyper-M "could be implemented on top of BATON, VBI-tree,
// CAN or any peer-to-peer overlay ... so long as they can support
// multi-dimensional indexing" (Section 5). This overlay is the
// tree-structured member of that family: the key cube is partitioned into
// one rectangular region per peer by recursive midpoint splits, and messages
// travel along tree edges (child <-> parent), giving O(log N) routing
// instead of CAN's O(d N^(1/d)) neighbour walk.
//
// Peers own the leaves; interior tree nodes are routing state replicated at
// the peers of their subtrees (BATON's "virtual peer" view), so traversing
// one tree edge costs one overlay hop.

#ifndef HYPERM_OVERLAY_TREE_OVERLAY_H_
#define HYPERM_OVERLAY_TREE_OVERLAY_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "overlay/overlay.h"
#include "sim/stats.h"

namespace hyperm::overlay {

/// Balanced BSP-tree overlay; see file comment.
class TreeOverlay : public Overlay {
 public:
  /// Builds a tree with `num_nodes` leaves over [0,1)^dim by repeatedly
  /// midpoint-splitting the largest leaf (cycling the split dimension).
  /// Construction messages (one per split handshake) land under
  /// TrafficClass::kJoin.
  static Result<std::unique_ptr<TreeOverlay>> Build(size_t dim, int num_nodes,
                                                    sim::NetworkStats* stats, Rng& rng);

  size_t dim() const override { return dim_; }
  int num_nodes() const override { return static_cast<int>(leaf_of_node_.size()); }
  Result<InsertReceipt> Insert(const PublishedCluster& cluster, NodeId origin) override;
  Result<RangeQueryResult> RangeQuery(const geom::Sphere& query, NodeId origin) override;
  std::vector<NodeStorage> StorageDistribution() const override;
  void ClearStorage() override;
  int RemoveByOwner(int owner_peer) override;
  void set_replicate_spheres(bool enabled) override { replicate_spheres_ = enabled; }

  /// The region owned by `node`.
  const geom::Box& region(NodeId node) const;

  /// Tree depth of `node`'s leaf (root = 0).
  int depth(NodeId node) const;

  /// Exact owner of `key` by tree descent (also the routing destination).
  NodeId OwnerOf(const Vector& key) const;

 private:
  struct TreeNode {
    geom::Box box;
    int parent = -1;
    int left = -1;    // tree-node index; -1 for leaves
    int right = -1;
    int depth = 0;
    NodeId owner = kInvalidNode;  // valid for leaves only
  };

  TreeOverlay(size_t dim, sim::NetworkStats* stats) : dim_(dim), stats_(stats) {}

  /// Tree-node index of the leaf owning `key` (clamped into the cube).
  int LeafIndexOf(const Vector& key) const;

  /// Records `hops` message transmissions of `bytes` each under `cls`.
  void Charge(sim::TrafficClass cls, int hops, uint64_t bytes);

  /// Hops along tree edges between two leaves (via their lowest common
  /// ancestor).
  int TreeDistance(int leaf_a, int leaf_b) const;

  /// Visits every leaf whose region intersects `sphere`, starting from the
  /// leaf owning the (clamped) sphere center; returns the leaves and the
  /// number of tree edges traversed (ascent to the covering ancestor plus
  /// the pruned descent).
  std::vector<int> CollectOverlappingLeaves(const geom::Sphere& sphere,
                                            int entry_leaf, int* edges) const;

  uint64_t KeyMessageBytes() const { return 16 + 8 * static_cast<uint64_t>(dim_); }
  uint64_t ClusterMessageBytes() const {
    return 16 + 16 * static_cast<uint64_t>(dim_) + 24;
  }

  size_t dim_;
  sim::NetworkStats* stats_;  // not owned
  bool replicate_spheres_ = true;
  std::vector<TreeNode> tree_;           // tree_[0] is the root
  std::vector<int> leaf_of_node_;        // overlay node -> its leaf tree-index
  std::vector<std::vector<PublishedCluster>> stored_;  // per overlay node
};

}  // namespace hyperm::overlay

#endif  // HYPERM_OVERLAY_TREE_OVERLAY_H_
