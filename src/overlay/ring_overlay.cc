#include "overlay/ring_overlay.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "obs/trace.h"

namespace hyperm::overlay {
namespace {

constexpr uint64_t kKeyBytes = 24;       // header + scalar key
constexpr uint64_t kClusterBytes = 56;   // header + sphere + metadata

double ClampKey(double x) {
  return std::clamp(x, 0.0, std::nextafter(1.0, 0.0));
}

}  // namespace

Result<std::unique_ptr<RingOverlay>> RingOverlay::Build(int num_nodes,
                                                        sim::NetworkStats* stats,
                                                        Rng& rng) {
  if (num_nodes < 1) return InvalidArgumentError("RingOverlay: need >= 1 node");
  HM_CHECK(stats != nullptr);
  std::unique_ptr<RingOverlay> ring(new RingOverlay(stats));
  ring->arc_start_.push_back(0.0);
  for (int i = 1; i < num_nodes; ++i) {
    // Join: route to the owner of a random key, split its arc in half.
    const double point = rng.NextDouble();
    ring->BuildFingers();
    int hops = 0;
    const NodeId bootstrap = static_cast<NodeId>(rng.NextIndex(ring->arc_start_.size()));
    const NodeId owner =
        ring->RouteTo(point, bootstrap, sim::TrafficClass::kJoin, kKeyBytes, &hops);
    const size_t idx = static_cast<size_t>(owner);
    const double lo = ring->arc_start_[idx];
    const double hi =
        idx + 1 < ring->arc_start_.size() ? ring->arc_start_[idx + 1] : 1.0;
    const double mid = 0.5 * (lo + hi);
    ring->arc_start_.insert(ring->arc_start_.begin() + static_cast<long>(idx) + 1, mid);
    // Split handshake.
    stats->RecordHop(sim::TrafficClass::kJoin, kClusterBytes);
  }
  ring->stored_.assign(ring->arc_start_.size(), {});
  ring->BuildFingers();
  return ring;
}

void RingOverlay::BuildFingers() {
  const int n = static_cast<int>(arc_start_.size());
  fingers_.assign(static_cast<size_t>(n), {});
  for (int i = 0; i < n; ++i) {
    auto& f = fingers_[static_cast<size_t>(i)];
    // Successor and predecessor in ring order.
    f.push_back((i + 1) % n);
    f.push_back((i + n - 1) % n);
    // Fingers at key offsets 1/2, 1/4, ... around the ring.
    const double start = arc_start_[static_cast<size_t>(i)];
    for (double offset = 0.5; offset > 1.0 / (2.0 * n); offset *= 0.5) {
      double key = start + offset;
      if (key >= 1.0) key -= 1.0;
      const NodeId target = OwnerOf(key);
      if (target != static_cast<NodeId>(i)) f.push_back(target);
    }
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
}

NodeId RingOverlay::OwnerOf(double x) const {
  const double key = ClampKey(x);
  // arc_start_ is sorted; the owner is the last start <= key.
  auto it = std::upper_bound(arc_start_.begin(), arc_start_.end(), key);
  HM_CHECK(it != arc_start_.begin());
  return static_cast<NodeId>(std::distance(arc_start_.begin(), it) - 1);
}

NodeId RingOverlay::RouteTo(double x, NodeId origin, sim::TrafficClass cls,
                            uint64_t bytes, int* hops) {
  const double key = ClampKey(x);
  const int n = static_cast<int>(arc_start_.size());
  auto ring_distance = [&](NodeId node) {
    // Clockwise distance from the node's arc start to the key.
    double d = key - arc_start_[static_cast<size_t>(node)];
    if (d < 0.0) d += 1.0;
    return d;
  };
  NodeId current = origin;
  const NodeId target = OwnerOf(key);
  int ttl = 4 * n + 16;
  while (current != target) {
    HM_CHECK_GT(ttl--, 0) << "RingOverlay routing TTL exceeded";
    // Forward to the finger minimizing the remaining clockwise distance
    // without overshooting (classic Chord rule); predecessor link covers the
    // rare wrap case.
    NodeId best = fingers_[static_cast<size_t>(current)].front();
    double best_d = ring_distance(best);
    for (NodeId f : fingers_[static_cast<size_t>(current)]) {
      const double d = ring_distance(f);
      if (d < best_d) {
        best_d = d;
        best = f;
      }
    }
    current = best;
    ++(*hops);
    stats_->RecordHop(cls, bytes);
  }
  return current;
}

Result<InsertReceipt> RingOverlay::Insert(const PublishedCluster& cluster,
                                          NodeId origin) {
  if (cluster.sphere.center.size() != 1) {
    return InvalidArgumentError("RingOverlay::Insert: dim must be 1");
  }
  if (origin < 0 || origin >= num_nodes()) {
    return InvalidArgumentError("RingOverlay::Insert: bad origin");
  }
  InsertReceipt receipt;
  const double center = cluster.sphere.center[0];
  const NodeId owner = RouteTo(center, origin, sim::TrafficClass::kInsert,
                               kClusterBytes, &receipt.routing_hops);
  HM_OBS_HISTOGRAM("ring.route_hops", obs::Buckets::Exponential(1, 2.0, 12),
                   receipt.routing_hops);
  stored_[static_cast<size_t>(owner)].push_back(cluster);
  if (!replicate_spheres_) return receipt;
  // Replicate along successor/predecessor links over the covered interval
  // [center - r, center + r] clipped to [0,1).
  const double lo = std::max(0.0, center - cluster.sphere.radius);
  const double hi = std::min(std::nextafter(1.0, 0.0), center + cluster.sphere.radius);
  const NodeId first = OwnerOf(lo);
  const NodeId last = OwnerOf(hi);
  for (NodeId node = first; node <= last; ++node) {
    if (node == owner) continue;
    stored_[static_cast<size_t>(node)].push_back(cluster);
    ++receipt.replicas;
    stats_->RecordHop(sim::TrafficClass::kReplicate, kClusterBytes);
  }
  return receipt;
}

Result<RangeQueryResult> RingOverlay::RangeQuery(const geom::Sphere& query,
                                                 NodeId origin) {
  if (query.center.size() != 1) {
    return InvalidArgumentError("RingOverlay::RangeQuery: dim must be 1");
  }
  if (origin < 0 || origin >= num_nodes()) {
    return InvalidArgumentError("RingOverlay::RangeQuery: bad origin");
  }
  RangeQueryResult result;
  const double center = query.center[0];
  const NodeId entry = RouteTo(center, origin, sim::TrafficClass::kQuery, kKeyBytes,
                               &result.routing_hops);
  const double lo = std::max(0.0, center - query.radius);
  const double hi = std::min(std::nextafter(1.0, 0.0), center + query.radius);
  const NodeId first = OwnerOf(lo);
  const NodeId last = OwnerOf(hi);
  std::unordered_set<uint64_t> seen;
  for (NodeId node = first; node <= last; ++node) {
    ++result.nodes_visited;
    if (node != entry) {
      ++result.flood_hops;
      stats_->RecordHop(sim::TrafficClass::kQuery, kKeyBytes);
    }
    for (const PublishedCluster& cluster : stored_[static_cast<size_t>(node)]) {
      if (!cluster.sphere.Intersects(query)) continue;
      if (!seen.insert(cluster.cluster_id).second) continue;
      result.matches.push_back(cluster);
    }
  }
  HM_OBS_HISTOGRAM("ring.query_nodes_visited", obs::Buckets::Exponential(1, 2.0, 12),
                   result.nodes_visited);
  return result;
}

std::vector<NodeStorage> RingOverlay::StorageDistribution() const {
  std::vector<NodeStorage> out;
  out.reserve(stored_.size());
  for (size_t i = 0; i < stored_.size(); ++i) {
    NodeStorage s;
    s.node = static_cast<NodeId>(i);
    s.clusters = static_cast<int>(stored_[i].size());
    for (const PublishedCluster& c : stored_[i]) s.items += c.items;
    out.push_back(s);
  }
  return out;
}

void RingOverlay::ClearStorage() {
  for (auto& bucket : stored_) bucket.clear();
}

int RingOverlay::RemoveByOwner(int owner_peer) {
  int removed = 0;
  for (auto& bucket : stored_) {
    const auto end = std::remove_if(
        bucket.begin(), bucket.end(),
        [owner_peer](const PublishedCluster& c) { return c.owner_peer == owner_peer; });
    removed += static_cast<int>(std::distance(end, bucket.end()));
    bucket.erase(end, bucket.end());
  }
  return removed;
}

}  // namespace hyperm::overlay
