// Load-distribution metrics over per-node storage snapshots (Section 5.3).
//
// The paper's Fig. 9 argues that the orthogonality of the wavelet subspaces
// spreads data across the network without explicit balancing. These metrics
// quantify a snapshot: how many nodes hold data, how concentrated the load
// is (Gini), and the extremes.

#ifndef HYPERM_OVERLAY_STORAGE_METRICS_H_
#define HYPERM_OVERLAY_STORAGE_METRICS_H_

#include <vector>

#include "overlay/overlay.h"

namespace hyperm::overlay {

/// Summary of one StorageDistribution snapshot (item counts).
struct LoadSummary {
  int nodes = 0;               ///< nodes in the snapshot
  int holders = 0;             ///< nodes with at least one item
  int max_items = 0;           ///< heaviest node
  double mean_items_on_holders = 0.0;
  double gini = 0.0;           ///< 0 = perfectly even, -> 1 = one node has all
};

/// Computes the summary of `storage` (item counts; replicas included).
LoadSummary SummarizeLoad(const std::vector<NodeStorage>& storage);

/// Gini coefficient of arbitrary non-negative values (0 when empty or all
/// zero).
double GiniCoefficient(std::vector<double> values);

}  // namespace hyperm::overlay

#endif  // HYPERM_OVERLAY_STORAGE_METRICS_H_
