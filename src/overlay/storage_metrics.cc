#include "overlay/storage_metrics.h"

#include <algorithm>

namespace hyperm::overlay {

double GiniCoefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cumulative = 0.0;
  double weighted = 0.0;
  const double n = static_cast<double>(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    cumulative += values[i];
    weighted += (2.0 * (static_cast<double>(i) + 1.0) - n - 1.0) * values[i];
  }
  if (cumulative <= 0.0) return 0.0;
  return weighted / (n * cumulative);
}

LoadSummary SummarizeLoad(const std::vector<NodeStorage>& storage) {
  LoadSummary summary;
  summary.nodes = static_cast<int>(storage.size());
  std::vector<double> items;
  items.reserve(storage.size());
  for (const NodeStorage& s : storage) {
    items.push_back(static_cast<double>(s.items));
    if (s.items > 0) {
      ++summary.holders;
      summary.mean_items_on_holders += s.items;
      summary.max_items = std::max(summary.max_items, s.items);
    }
  }
  if (summary.holders > 0) summary.mean_items_on_holders /= summary.holders;
  summary.gini = GiniCoefficient(std::move(items));
  return summary;
}

}  // namespace hyperm::overlay
