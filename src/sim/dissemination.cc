#include "sim/dissemination.h"

#include <algorithm>

#include "common/check.h"
#include "obs/trace.h"

namespace hyperm::sim {

double ParallelMakespanMs(const std::vector<uint64_t>& per_peer_hops,
                          double avg_bytes_per_hop, const LinkModel& link) {
  HM_CHECK_GE(avg_bytes_per_hop, 0.0);
  HM_OBS_SPAN("dissemination/makespan");
  for (uint64_t hops : per_peer_hops) {
    HM_OBS_HISTOGRAM("dissemination.peer_publication_hops",
                     obs::Buckets::Exponential(1, 2.0, 16), hops);
  }
  const double hop_ms = link.HopMs(avg_bytes_per_hop);
  Simulator simulator;
  double makespan = 0.0;
  for (uint64_t hops : per_peer_hops) {
    simulator.ScheduleAfter(static_cast<double>(hops) * hop_ms,
                            [&makespan, &simulator] {
                              makespan = std::max(makespan, simulator.now());
                            });
  }
  simulator.Run();
  HM_OBS_GAUGE_SET("dissemination.makespan_ms", makespan);
  return makespan;
}

double AverageInsertBytesPerHop(const NetworkStats& stats) {
  const uint64_t hops =
      stats.hops(TrafficClass::kInsert) + stats.hops(TrafficClass::kReplicate);
  if (hops == 0) return 0.0;
  const uint64_t bytes =
      stats.bytes(TrafficClass::kInsert) + stats.bytes(TrafficClass::kReplicate);
  return static_cast<double>(bytes) / static_cast<double>(hops);
}

}  // namespace hyperm::sim
