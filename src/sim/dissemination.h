// Parallel-dissemination timing model.
//
// Peers publish their summaries concurrently; the overlay is usable once the
// slowest peer finishes (the makespan). A hop's duration is the radio's
// fixed per-packet overhead plus serialisation time for the payload — the
// detail that decides the paper's headline: Hyper-M ships tens-of-bytes
// summaries where per-item CAN publication ships whole feature vectors.

#ifndef HYPERM_SIM_DISSEMINATION_H_
#define HYPERM_SIM_DISSEMINATION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/stats.h"

namespace hyperm::sim {

/// Radio link timing parameters (defaults: bluetooth-class, ~1 Mbit/s).
struct LinkModel {
  double hop_overhead_ms = 5.0;         ///< fixed per-transmission latency
  double bandwidth_bytes_per_ms = 125.0;  ///< serialisation rate

  /// Duration of one hop carrying `bytes` of payload. A non-positive
  /// bandwidth (misconfiguration) is clamped to a minimal positive rate so
  /// the result stays finite instead of dividing by zero.
  double HopMs(double bytes) const {
    return hop_overhead_ms +
           bytes / std::max(bandwidth_bytes_per_ms, kMinBandwidthBytesPerMs);
  }

  /// Clamp floor applied by HopMs when bandwidth_bytes_per_ms <= 0.
  static constexpr double kMinBandwidthBytesPerMs = 1e-9;
};

/// Makespan (ms) of peers transmitting `per_peer_hops[i]` hops each of
/// average size `avg_bytes_per_hop`, all starting at t=0 and pipelining
/// their own messages sequentially. Executed on a Simulator so the event
/// accounting matches the rest of the framework.
double ParallelMakespanMs(const std::vector<uint64_t>& per_peer_hops,
                          double avg_bytes_per_hop, const LinkModel& link = {});

/// Average payload bytes per hop of the insert-path traffic classes
/// (kInsert + kReplicate) recorded in `stats`; 0 when nothing was inserted.
double AverageInsertBytesPerHop(const NetworkStats& stats);

}  // namespace hyperm::sim

#endif  // HYPERM_SIM_DISSEMINATION_H_
