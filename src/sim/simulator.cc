#include "sim/simulator.h"

#include <utility>

#include "common/check.h"

namespace hyperm::sim {

void Simulator::ScheduleAfter(TimeMs delay, std::function<void()> fn) {
  HM_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(TimeMs when, std::function<void()> fn) {
  HM_CHECK_GE(when, now_);
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t count = 0;
  while (!queue_.empty()) {
    if (max_events != 0 && count >= max_events) break;
    // priority_queue::top returns const&; the function object must be moved
    // out before pop, so copy the POD parts and steal the callable.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++count;
    ++executed_;
    event.fn();
  }
  return count;
}

uint64_t Simulator::RunUntil(TimeMs until) {
  HM_CHECK_GE(until, now_);
  uint64_t count = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++count;
    ++executed_;
    event.fn();
  }
  now_ = until;
  return count;
}

}  // namespace hyperm::sim
