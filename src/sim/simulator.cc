#include "sim/simulator.h"

#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace hyperm::sim {

void Simulator::ScheduleAfter(TimeMs delay, std::function<void()> fn) {
  HM_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(TimeMs when, std::function<void()> fn) {
  HM_CHECK_GE(when, now_);
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulator::ScheduleKeyedAfter(uint64_t key, TimeMs delay,
                                   std::function<void()> fn) {
  HM_CHECK_GE(delay, 0.0);
  const uint64_t gen = ++keyed_gen_[key];
  // The heap entry captures its generation; by fire time a newer
  // ScheduleKeyedAfter (or CancelKeyed) may have bumped the map entry, in
  // which case this firing is a superseded no-op.
  queue_.push(Event{now_ + delay, next_seq_++,
                    [this, key, gen, fn = std::move(fn)]() {
                      auto it = keyed_gen_.find(key);
                      if (it == keyed_gen_.end() || it->second != gen) {
                        ++coalesced_;
                        HM_OBS_COUNTER_ADD("sim.coalesced", 1);
                        return;
                      }
                      fn();
                    }});
}

void Simulator::CancelKeyed(uint64_t key) {
  auto it = keyed_gen_.find(key);
  if (it != keyed_gen_.end()) ++it->second;
}

void Simulator::ExtractBatch(std::vector<Event>* batch, bool bounded,
                             TimeMs until, uint64_t limit) {
  batch->clear();
  if (queue_.empty()) return;
  const TimeMs tick = queue_.top().time;
  if (bounded && tick > until) return;
  while (!queue_.empty() && queue_.top().time == tick) {
    if (limit != 0 && batch->size() >= limit) break;
    // priority_queue::top returns const&; the function object must be moved
    // out before pop, so copy the POD parts and steal the callable.
    batch->push_back(std::move(const_cast<Event&>(queue_.top())));
    queue_.pop();
  }
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t count = 0;
  // The batch lives on the stack, not in a member: an event callback may
  // schedule new events (pushing into queue_) without invalidating the
  // in-flight batch. New same-tick events carry a larger seq than every
  // batched event, so running the batch to completion before re-extracting
  // preserves the exact (time, seq) total order of one-at-a-time dispatch.
  std::vector<Event> batch;
  while (!queue_.empty()) {
    if (max_events != 0 && count >= max_events) break;
    const uint64_t limit = max_events == 0 ? 0 : max_events - count;
    ExtractBatch(&batch, /*bounded=*/false, 0.0, limit);
    for (Event& event : batch) {
      now_ = event.time;
      ++count;
      ++executed_;
      event.fn();
    }
  }
  return count;
}

uint64_t Simulator::RunUntil(TimeMs until) {
  HM_CHECK_GE(until, now_);
  uint64_t count = 0;
  std::vector<Event> batch;
  while (!queue_.empty() && queue_.top().time <= until) {
    ExtractBatch(&batch, /*bounded=*/true, until, 0);
    for (Event& event : batch) {
      now_ = event.time;
      ++count;
      ++executed_;
      event.fn();
    }
  }
  now_ = until;
  return count;
}

}  // namespace hyperm::sim
