#include "sim/stats.h"

#include <sstream>

#include "common/check.h"
#include "obs/trace.h"

namespace hyperm::sim {
namespace {

size_t Index(TrafficClass cls) {
  const auto i = static_cast<size_t>(cls);
  HM_CHECK_LT(i, static_cast<size_t>(TrafficClass::kCount_));
  return i;
}

}  // namespace

std::string TrafficClassName(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kJoin:
      return "join";
    case TrafficClass::kInsert:
      return "insert";
    case TrafficClass::kReplicate:
      return "replicate";
    case TrafficClass::kQuery:
      return "query";
    case TrafficClass::kRetrieve:
      return "retrieve";
    case TrafficClass::kCount_:
      break;
  }
  return "unknown";
}

NetworkStats::NetworkStats(const NetworkStats& other) : model_(other.model_) {
  *this = other;
}

NetworkStats& NetworkStats::operator=(const NetworkStats& other) {
  if (this == &other) return *this;
  model_ = other.model_;
  for (size_t i = 0; i < kNumClasses; ++i) {
    hops_[i].store(other.hops_[i].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    bytes_[i].store(other.bytes_[i].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    energy_nj_[i].store(other.energy_nj_[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }
  queries_served_.store(other.queries_served_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return *this;
}

void NetworkStats::RecordHop(TrafficClass cls, uint64_t bytes) {
  RecordHops(cls, bytes, 1);
}

void NetworkStats::RecordHops(TrafficClass cls, uint64_t bytes, uint64_t count) {
  if (count == 0) return;
  const size_t i = Index(cls);
  hops_[i].fetch_add(count, std::memory_order_relaxed);
  bytes_[i].fetch_add(bytes * count, std::memory_order_relaxed);
  const double delta_nj =
      model_.HopEnergyNanojoules(bytes) * static_cast<double>(count);
  double current = energy_nj_[i].load(std::memory_order_relaxed);
  while (!energy_nj_[i].compare_exchange_weak(current, current + delta_nj,
                                              std::memory_order_relaxed)) {
  }
  HM_OBS_COUNTER_ADD("net.hops", count);
  HM_OBS_HISTOGRAM_N("net.bytes_per_message",
                     obs::Buckets::Exponential(16, 2.0, 16), bytes, count);
}

uint64_t NetworkStats::hops(TrafficClass cls) const {
  return hops_[Index(cls)].load(std::memory_order_relaxed);
}

uint64_t NetworkStats::total_hops() const {
  uint64_t total = 0;
  for (const auto& h : hops_) total += h.load(std::memory_order_relaxed);
  return total;
}

uint64_t NetworkStats::bytes(TrafficClass cls) const {
  return bytes_[Index(cls)].load(std::memory_order_relaxed);
}

uint64_t NetworkStats::total_bytes() const {
  uint64_t total = 0;
  for (const auto& b : bytes_) total += b.load(std::memory_order_relaxed);
  return total;
}

double NetworkStats::energy_millijoules(TrafficClass cls) const {
  return energy_nj_[Index(cls)].load(std::memory_order_relaxed) * 1e-6;
}

double NetworkStats::total_energy_millijoules() const {
  double total = 0.0;
  for (const auto& e : energy_nj_) total += e.load(std::memory_order_relaxed);
  return total * 1e-6;
}

void NetworkStats::Reset() {
  for (auto& h : hops_) h.store(0, std::memory_order_relaxed);
  for (auto& b : bytes_) b.store(0, std::memory_order_relaxed);
  for (auto& e : energy_nj_) e.store(0.0, std::memory_order_relaxed);
  queries_served_.store(0, std::memory_order_relaxed);
}

void NetworkStats::Merge(const NetworkStats& other) {
  for (size_t i = 0; i < kNumClasses; ++i) {
    hops_[i].fetch_add(other.hops_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    bytes_[i].fetch_add(other.bytes_[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    const double delta = other.energy_nj_[i].load(std::memory_order_relaxed);
    double current = energy_nj_[i].load(std::memory_order_relaxed);
    while (!energy_nj_[i].compare_exchange_weak(current, current + delta,
                                                std::memory_order_relaxed)) {
    }
  }
  queries_served_.fetch_add(other.queries_served_.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
}

std::string NetworkStats::Summary() const {
  std::ostringstream os;
  os << "hops=" << total_hops() << " bytes=" << total_bytes()
     << " energy_mJ=" << total_energy_millijoules()
     << " served=" << queries_served();
  for (size_t i = 0; i < kNumClasses; ++i) {
    const uint64_t h = hops_[i].load(std::memory_order_relaxed);
    if (h == 0) continue;
    os << " " << TrafficClassName(static_cast<TrafficClass>(i)) << "=" << h << "/"
       << bytes_[i].load(std::memory_order_relaxed) << "B";
  }
  return os.str();
}

}  // namespace hyperm::sim
