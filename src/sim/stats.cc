#include "sim/stats.h"

#include <sstream>

#include "common/check.h"
#include "obs/trace.h"

namespace hyperm::sim {
namespace {

size_t Index(TrafficClass cls) {
  const auto i = static_cast<size_t>(cls);
  HM_CHECK_LT(i, static_cast<size_t>(TrafficClass::kCount_));
  return i;
}

}  // namespace

std::string TrafficClassName(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kJoin:
      return "join";
    case TrafficClass::kInsert:
      return "insert";
    case TrafficClass::kReplicate:
      return "replicate";
    case TrafficClass::kQuery:
      return "query";
    case TrafficClass::kRetrieve:
      return "retrieve";
    case TrafficClass::kCount_:
      break;
  }
  return "unknown";
}

void NetworkStats::RecordHop(TrafficClass cls, uint64_t bytes) {
  const size_t i = Index(cls);
  hops_[i] += 1;
  bytes_[i] += bytes;
  energy_nj_[i] += model_.HopEnergyNanojoules(bytes);
  HM_OBS_COUNTER_ADD("net.hops", 1);
  HM_OBS_HISTOGRAM("net.bytes_per_message", obs::Buckets::Exponential(16, 2.0, 16),
                   bytes);
}

uint64_t NetworkStats::hops(TrafficClass cls) const { return hops_[Index(cls)]; }

uint64_t NetworkStats::total_hops() const {
  uint64_t total = 0;
  for (uint64_t h : hops_) total += h;
  return total;
}

uint64_t NetworkStats::bytes(TrafficClass cls) const { return bytes_[Index(cls)]; }

uint64_t NetworkStats::total_bytes() const {
  uint64_t total = 0;
  for (uint64_t b : bytes_) total += b;
  return total;
}

double NetworkStats::energy_millijoules(TrafficClass cls) const {
  return energy_nj_[Index(cls)] * 1e-6;
}

double NetworkStats::total_energy_millijoules() const {
  double total = 0.0;
  for (double e : energy_nj_) total += e;
  return total * 1e-6;
}

void NetworkStats::Reset() {
  hops_.fill(0);
  bytes_.fill(0);
  energy_nj_.fill(0.0);
  queries_served_ = 0;
}

void NetworkStats::Merge(const NetworkStats& other) {
  for (size_t i = 0; i < kNumClasses; ++i) {
    hops_[i] += other.hops_[i];
    bytes_[i] += other.bytes_[i];
    energy_nj_[i] += other.energy_nj_[i];
  }
  queries_served_ += other.queries_served_;
}

std::string NetworkStats::Summary() const {
  std::ostringstream os;
  os << "hops=" << total_hops() << " bytes=" << total_bytes()
     << " energy_mJ=" << total_energy_millijoules()
     << " served=" << queries_served_;
  for (size_t i = 0; i < kNumClasses; ++i) {
    if (hops_[i] == 0) continue;
    os << " " << TrafficClassName(static_cast<TrafficClass>(i)) << "=" << hops_[i]
       << "/" << bytes_[i] << "B";
  }
  return os.str();
}

}  // namespace hyperm::sim
