// Discrete-event network simulator.
//
// The paper evaluates Hyper-M on a simulated CAN: "we simulated the parallel
// behavior of a peer-to-peer network with a scheduler class and an event
// queue. Every message generated in the network is sent to the event queue.
// Periodically, parallel execution is simulated by emptying the queue."
// This module is that scheduler: a time-ordered event queue with
// deterministic FIFO tie-breaking, on top of which the overlay modules build
// message passing.

#ifndef HYPERM_SIM_SIMULATOR_H_
#define HYPERM_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hyperm::sim {

/// Simulated time in milliseconds.
using TimeMs = double;

/// A deterministic discrete-event scheduler.
///
/// Events scheduled for the same instant fire in scheduling order. The clock
/// only advances inside Run()/RunUntil().
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimeMs now() const { return now_; }

  /// Schedules `fn` to run `delay` (>= 0) after the current time.
  void ScheduleAfter(TimeMs delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `when` (>= now()).
  void ScheduleAt(TimeMs when, std::function<void()> fn);

  /// Drains the queue completely; returns the number of events executed.
  /// `max_events` guards against runaway feedback loops (0 = unlimited).
  uint64_t Run(uint64_t max_events = 0);

  /// Executes events with time <= `until`, then sets the clock to `until`.
  /// Returns the number of events executed.
  uint64_t RunUntil(TimeMs until);

  /// Number of pending events.
  size_t pending() const { return queue_.size(); }

  /// Total events executed since construction.
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    TimeMs time;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimeMs now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace hyperm::sim

#endif  // HYPERM_SIM_SIMULATOR_H_
