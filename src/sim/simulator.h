// Discrete-event network simulator.
//
// The paper evaluates Hyper-M on a simulated CAN: "we simulated the parallel
// behavior of a peer-to-peer network with a scheduler class and an event
// queue. Every message generated in the network is sent to the event queue.
// Periodically, parallel execution is simulated by emptying the queue."
// This module is that scheduler: a time-ordered event queue with
// deterministic FIFO tie-breaking, on top of which the overlay modules build
// message passing.

#ifndef HYPERM_SIM_SIMULATOR_H_
#define HYPERM_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace hyperm::sim {

/// Simulated time in milliseconds.
using TimeMs = double;

/// A deterministic discrete-event scheduler.
///
/// Events scheduled for the same instant fire in scheduling order. The clock
/// only advances inside Run()/RunUntil().
///
/// Dispatch drains all events sharing a timestamp in one heap batch: the
/// same-tick prefix is extracted once (one sift-down per event, no
/// re-comparison against later timestamps) and executed in seq order.
/// Because events scheduled *during* a batch always receive a larger seq
/// than every extracted event, the observable execution order is identical
/// to one-at-a-time dispatch. Constraint: scheduled callbacks must not call
/// Run()/RunUntil() re-entrantly (nothing in the tree does — heal-window
/// waits run from the driving thread between events).
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimeMs now() const { return now_; }

  /// Schedules `fn` to run `delay` (>= 0) after the current time.
  void ScheduleAfter(TimeMs delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `when` (>= now()).
  void ScheduleAt(TimeMs when, std::function<void()> fn);

  /// Schedules `fn` under a coalescing key: at most one live callback per
  /// key. Re-scheduling a key supersedes any still-pending callback for it —
  /// the stale heap entry fires as a no-op (lazy deletion, counted in
  /// coalesced()). This is the idiom for per-peer refresh timers where a
  /// state change should reset the pending timer instead of stacking a
  /// duplicate.
  void ScheduleKeyedAfter(uint64_t key, TimeMs delay, std::function<void()> fn);

  /// Drops the pending keyed callback for `key` (if any) without running it.
  void CancelKeyed(uint64_t key);

  /// Drains the queue completely; returns the number of events executed.
  /// `max_events` guards against runaway feedback loops (0 = unlimited).
  uint64_t Run(uint64_t max_events = 0);

  /// Executes events with time <= `until`, then sets the clock to `until`.
  /// Returns the number of events executed.
  uint64_t RunUntil(TimeMs until);

  /// Number of pending events (superseded keyed timers still count until
  /// their heap slot drains).
  size_t pending() const { return queue_.size(); }

  /// Total events executed since construction (keyed no-op firings are not
  /// executions).
  uint64_t executed() const { return executed_; }

  /// Superseded or cancelled keyed callbacks that drained as no-ops.
  uint64_t coalesced() const { return coalesced_; }

 private:
  struct Event {
    TimeMs time;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Moves every event sharing the earliest timestamp (or <= `until` when
  /// bounded) into `batch`, up to `limit` events (0 = unlimited).
  void ExtractBatch(std::vector<Event>* batch, bool bounded, TimeMs until,
                    uint64_t limit);

  TimeMs now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t coalesced_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  // Generation per coalescing key; a keyed heap entry only runs if it still
  // carries the latest generation for its key.
  std::unordered_map<uint64_t, uint64_t> keyed_gen_;
};

}  // namespace hyperm::sim

#endif  // HYPERM_SIM_SIMULATOR_H_
