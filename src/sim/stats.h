// Network traffic accounting and the first-order radio energy model.
//
// Every overlay hop is one radio transmission (one send + one receive). The
// MANET motivation of the paper is energy: publishing hundreds of items per
// peer is "simply too energy and time consuming", so insertion-cost
// experiments report hops, bytes and estimated radio energy side by side.

#ifndef HYPERM_SIM_STATS_H_
#define HYPERM_SIM_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace hyperm::sim {

/// Why a message was sent; lets experiments split setup cost from query cost.
enum class TrafficClass {
  kJoin = 0,    ///< overlay construction (node joins, zone splits)
  kInsert,      ///< summary/item publication routing
  kReplicate,   ///< sphere replication into overlapping zones
  kQuery,       ///< query routing and zone flooding
  kRetrieve,    ///< actual data transfer from owner peers
  kCount_,      // sentinel
};

/// Human-readable class name ("join", "insert", ...).
std::string TrafficClassName(TrafficClass cls);

/// First-order radio model (values in the range of classic sensor-network
/// models: ~50 nJ/byte electronics on both ends plus amplifier cost on tx).
struct RadioEnergyModel {
  double tx_nanojoule_per_byte = 80.0;
  double rx_nanojoule_per_byte = 50.0;
  double per_message_nanojoule = 2000.0;  ///< fixed header/packet overhead

  /// Energy (nJ) consumed network-wide by one hop carrying `bytes` of payload
  /// (sender tx + receiver rx + fixed overhead on both radios).
  double HopEnergyNanojoules(uint64_t bytes) const {
    return (tx_nanojoule_per_byte + rx_nanojoule_per_byte) * static_cast<double>(bytes) +
           2.0 * per_message_nanojoule;
  }
};

/// Accumulates hop/byte/energy counters per traffic class.
///
/// Thread-safe: counters are relaxed atomics, so pool workers routing
/// concurrent layer tasks may RecordHop into a shared instance. Totals stay
/// deterministic across thread counts because hop/byte increments are
/// integers and — under the default RadioEnergyModel — the per-hop energy
/// addends are integer-valued nanojoules, so the double sums commute exactly.
class NetworkStats {
 public:
  NetworkStats() = default;
  explicit NetworkStats(RadioEnergyModel model) : model_(model) {}

  // Copyable (relaxed snapshot of the counters); many call sites pass
  // NetworkStats by value when aggregating multi-run results.
  NetworkStats(const NetworkStats& other);
  NetworkStats& operator=(const NetworkStats& other);

  /// Records one hop (one physical transmission) of `bytes` payload.
  void RecordHop(TrafficClass cls, uint64_t bytes);

  /// Records `count` hops of identical payload size in one accounting
  /// update — the radio channel batches a multi-hop route's bookkeeping per
  /// message instead of per hop. Totals are bit-identical to `count`
  /// RecordHop calls under the integer-nanojoule contract documented on the
  /// class (the energy addend `count * delta` equals `count` exact integer
  /// additions while the running sum stays below 2^53).
  void RecordHops(TrafficClass cls, uint64_t bytes, uint64_t count);

  /// Bumps the served-query counter (range/k-NN/point queries answered).
  void RecordQueryServed() { queries_served_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }

  /// Hops recorded for one class / all classes.
  uint64_t hops(TrafficClass cls) const;
  uint64_t total_hops() const;

  /// Bytes carried for one class / all classes.
  uint64_t bytes(TrafficClass cls) const;
  uint64_t total_bytes() const;

  /// Estimated radio energy in millijoules.
  double energy_millijoules(TrafficClass cls) const;
  double total_energy_millijoules() const;

  /// Zeroes every counter (per-class traffic and queries_served alike).
  void Reset();

  /// Accumulates another run's counters into this one (per-class hops,
  /// bytes, energy, queries_served). The multi-run benches aggregate their
  /// per-deployment stats through this.
  void Merge(const NetworkStats& other);

  /// One-line summary for experiment logs: totals, served queries, then
  /// per-class `name=hops/bytesB` for every class with traffic.
  std::string Summary() const;

 private:
  static constexpr size_t kNumClasses = static_cast<size_t>(TrafficClass::kCount_);
  RadioEnergyModel model_;
  std::array<std::atomic<uint64_t>, kNumClasses> hops_{};
  std::array<std::atomic<uint64_t>, kNumClasses> bytes_{};
  std::array<std::atomic<double>, kNumClasses> energy_nj_{};
  std::atomic<uint64_t> queries_served_{0};
};

}  // namespace hyperm::sim

#endif  // HYPERM_SIM_STATS_H_
