// Dense real-valued vectors and the distance/norm kernels used throughout
// Hyper-M. Feature vectors (colour histograms, tone histograms, synthetic
// traces) are plain `std::vector<double>` values; this header provides the
// vocabulary operations on them.

#ifndef HYPERM_VEC_VECTOR_H_
#define HYPERM_VEC_VECTOR_H_

#include <cstddef>
#include <vector>

namespace hyperm {

/// A dense feature vector. Dimensionality is the size().
using Vector = std::vector<double>;

namespace vec {

/// Element-wise a + b. Requires equal dimensionality.
Vector Add(const Vector& a, const Vector& b);

/// Element-wise a - b. Requires equal dimensionality.
Vector Sub(const Vector& a, const Vector& b);

/// s * a.
Vector Scale(const Vector& a, double s);

/// In-place a += b. Requires equal dimensionality.
void AddInPlace(Vector& a, const Vector& b);

/// In-place a *= s.
void ScaleInPlace(Vector& a, double s);

/// Inner product. Requires equal dimensionality.
double Dot(const Vector& a, const Vector& b);

/// Squared Euclidean norm.
double SquaredNorm(const Vector& a);

/// Euclidean norm.
double Norm(const Vector& a);

/// Squared Euclidean distance. Requires equal dimensionality.
double SquaredDistance(const Vector& a, const Vector& b);

/// Euclidean (L2) distance. Requires equal dimensionality.
double Distance(const Vector& a, const Vector& b);

/// Manhattan (L1) distance. Requires equal dimensionality.
double L1Distance(const Vector& a, const Vector& b);

/// Chebyshev (L-infinity) distance. Requires equal dimensionality.
double LinfDistance(const Vector& a, const Vector& b);

/// Arithmetic mean of `points` (all of equal dimensionality; non-empty).
Vector Mean(const std::vector<Vector>& points);

/// Normalizes `a` to unit L1 mass in place; no-op on the zero vector.
void NormalizeL1InPlace(Vector& a);

}  // namespace vec

/// Per-dimension axis-aligned bounds of a point set; used to map wavelet
/// coordinates into the CAN key torus.
struct Bounds {
  Vector lo;  ///< per-dimension minimum
  Vector hi;  ///< per-dimension maximum

  /// Dimensionality covered (lo and hi always have equal size).
  size_t dim() const { return lo.size(); }

  /// Bounds of an empty set over `dim` dimensions: lo=+inf style sentinel is
  /// avoided; instead this returns [0,1]^dim, the identity mapping.
  static Bounds Unit(size_t dim);

  /// Tight bounds of `points` (non-empty, equal dimensionality).
  static Bounds Of(const std::vector<Vector>& points);

  /// Grows this to also cover `p`.
  void Extend(const Vector& p);

  /// Expands every side by `margin * (hi-lo)` (and by an absolute epsilon on
  /// degenerate zero-width dimensions) so boundary points map strictly inside.
  void Inflate(double margin);

  /// True iff p lies inside (component-wise, inclusive).
  bool Contains(const Vector& p) const;
};

}  // namespace hyperm

#endif  // HYPERM_VEC_VECTOR_H_
