#include "vec/matrix.h"

#include "common/check.h"

namespace hyperm::vec {

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  Matrix m;
  if (rows.empty()) return m;
  m.Reserve(rows.size(), rows.front().size());
  for (const Vector& r : rows) m.AppendRow(r);
  return m;
}

void Matrix::AppendRow(const Vector& values) {
  if (rows_ == 0) {
    cols_ = values.size();
    stride_ = values.size();
  }
  HM_CHECK_EQ(values.size(), cols_);
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void SquaredDistanceBatch(const double* rows, size_t num_rows, size_t stride,
                          const double* query, size_t dim, double* out) {
  HM_CHECK(dim <= stride || num_rows == 0);
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const double* a0 = rows + (r + 0) * stride;
    const double* a1 = rows + (r + 1) * stride;
    const double* a2 = rows + (r + 2) * stride;
    const double* a3 = rows + (r + 3) * stride;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      const double q = query[j];
      const double d0 = a0[j] - q;
      const double d1 = a1[j] - q;
      const double d2 = a2[j] - q;
      const double d3 = a3[j] - q;
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < num_rows; ++r) {
    const double* a = rows + r * stride;
    double sum = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      const double diff = a[j] - query[j];
      sum += diff * diff;
    }
    out[r] = sum;
  }
}

void SquaredDistanceBatch(const Matrix& m, const Vector& query, double* out) {
  HM_CHECK_EQ(query.size(), m.empty() ? query.size() : m.cols());
  SquaredDistanceBatch(m.data(), m.rows(), m.stride(), query.data(),
                       query.size(), out);
}

}  // namespace hyperm::vec
