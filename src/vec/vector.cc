#include "vec/vector.h"

#include <cmath>

#include "common/check.h"

namespace hyperm {
namespace vec {

Vector Add(const Vector& a, const Vector& b) {
  HM_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  HM_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void AddInPlace(Vector& a, const Vector& b) {
  HM_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void ScaleInPlace(Vector& a, double s) {
  for (double& x : a) x *= s;
}

double Dot(const Vector& a, const Vector& b) {
  HM_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double SquaredNorm(const Vector& a) { return Dot(a, a); }

double Norm(const Vector& a) { return std::sqrt(SquaredNorm(a)); }

double SquaredDistance(const Vector& a, const Vector& b) {
  HM_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

double Distance(const Vector& a, const Vector& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double L1Distance(const Vector& a, const Vector& b) {
  HM_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double LinfDistance(const Vector& a, const Vector& b) {
  HM_CHECK_EQ(a.size(), b.size());
  double max = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max = std::fmax(max, std::fabs(a[i] - b[i]));
  }
  return max;
}

Vector Mean(const std::vector<Vector>& points) {
  HM_CHECK(!points.empty());
  Vector mean(points.front().size(), 0.0);
  for (const Vector& p : points) AddInPlace(mean, p);
  ScaleInPlace(mean, 1.0 / static_cast<double>(points.size()));
  return mean;
}

void NormalizeL1InPlace(Vector& a) {
  double mass = 0.0;
  for (double x : a) mass += std::fabs(x);
  if (mass > 0.0) ScaleInPlace(a, 1.0 / mass);
}

}  // namespace vec

Bounds Bounds::Unit(size_t dim) {
  Bounds b;
  b.lo.assign(dim, 0.0);
  b.hi.assign(dim, 1.0);
  return b;
}

Bounds Bounds::Of(const std::vector<Vector>& points) {
  HM_CHECK(!points.empty());
  Bounds b;
  b.lo = points.front();
  b.hi = points.front();
  for (size_t i = 1; i < points.size(); ++i) b.Extend(points[i]);
  return b;
}

void Bounds::Extend(const Vector& p) {
  HM_CHECK_EQ(p.size(), lo.size());
  for (size_t i = 0; i < p.size(); ++i) {
    lo[i] = std::fmin(lo[i], p[i]);
    hi[i] = std::fmax(hi[i], p[i]);
  }
}

void Bounds::Inflate(double margin) {
  HM_CHECK_GE(margin, 0.0);
  constexpr double kMinWidth = 1e-9;
  for (size_t i = 0; i < lo.size(); ++i) {
    double pad = margin * (hi[i] - lo[i]);
    if (pad < kMinWidth) pad = kMinWidth;
    lo[i] -= pad;
    hi[i] += pad;
  }
}

bool Bounds::Contains(const Vector& p) const {
  HM_CHECK_EQ(p.size(), lo.size());
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < lo[i] || p[i] > hi[i]) return false;
  }
  return true;
}

}  // namespace hyperm
