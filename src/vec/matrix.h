// Flat SoA storage for sets of equal-dimension feature vectors, plus the
// blocked distance kernels that run over them.
//
// `std::vector<Vector>` scatters every row behind its own heap allocation;
// the scan-heavy hot paths (k-means assignment, flat-oracle range search,
// peer-local scoring) pay a pointer chase and a cache miss per row. Matrix
// keeps all rows in one contiguous row-major float64 buffer with a fixed
// stride, and SquaredDistanceBatch streams it with several independent
// accumulator chains.
//
// Bit-identity contract: for every row, SquaredDistanceBatch accumulates
// (row[j] - query[j])² over ascending j into a single running sum — exactly
// the operation order of vec::SquaredDistance — so replacing a per-Vector
// scan with a batch call cannot change any result, only its speed. Blocking
// happens across rows (independent sums), never within one row.

#ifndef HYPERM_VEC_MATRIX_H_
#define HYPERM_VEC_MATRIX_H_

#include <cstddef>
#include <vector>

#include "vec/vector.h"

namespace hyperm::vec {

/// Contiguous row-major float64 matrix. Rows are appended once and then
/// scanned; the column count is fixed by the first row.
class Matrix {
 public:
  Matrix() = default;

  /// `rows` zero-filled rows of `cols` columns.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), stride_(cols), data_(rows * cols, 0.0) {}

  /// Copies `rows` (all of equal dimensionality) into flat storage.
  static Matrix FromRows(const std::vector<Vector>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Doubles between consecutive row starts (== cols(); kept distinct so
  /// padded layouts stay representable).
  size_t stride() const { return stride_; }
  bool empty() const { return rows_ == 0; }

  double* row(size_t r) { return data_.data() + r * stride_; }
  const double* row(size_t r) const { return data_.data() + r * stride_; }
  const double* data() const { return data_.data(); }

  /// Appends one row. The first row fixes cols(); later rows must match.
  void AppendRow(const Vector& values);

  /// Pre-allocates storage for `rows` rows of `cols` columns.
  void Reserve(size_t rows, size_t cols) { data_.reserve(rows * cols); }

  /// Copies row `r` back out as a Vector.
  Vector RowVector(size_t r) const {
    return Vector(row(r), row(r) + cols_);
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  std::vector<double> data_;
};

/// out[r] = squared Euclidean distance from row r of [rows, stride] to
/// `query` (`dim` doubles, dim <= stride). Each row's sum is bit-identical
/// to vec::SquaredDistance on the same values; rows are processed in blocks
/// of four with independent accumulators for instruction-level parallelism.
void SquaredDistanceBatch(const double* rows, size_t num_rows, size_t stride,
                          const double* query, size_t dim, double* out);

/// Matrix convenience overload; `out` must hold m.rows() doubles.
void SquaredDistanceBatch(const Matrix& m, const Vector& query, double* out);

}  // namespace hyperm::vec

#endif  // HYPERM_VEC_MATRIX_H_
