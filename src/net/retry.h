// Link-layer ack/retry (ARQ) policy.
//
// MANET radios already retransmit at the MAC layer (802.11 link-level ARQ);
// this is the knob set for that mechanism as the transport models it: a
// sender waits `timeout_ms` for the ack, retransmits with exponential
// backoff capped at `max_timeout_ms`, and gives up after `max_attempts`
// physical transmissions — the message then counts as a dead letter. Every
// retransmission costs real radio energy and real latency, which is exactly
// the retry-traffic axis the fault benches sweep.
//
// The policy has two timeout modes. Static (the default) uses the fixed
// `timeout_ms` base. Adaptive derives the base from a Jacobson-style
// per-destination RTT estimate (srtt/rttvar EWMAs, RFC 6298 shape): under a
// congested channel the observed RTT inflates with queue depth, and a static
// timeout either fires spuriously (wasting energy on premature retransmits)
// or waits far too long. The static mode is bit-identical to the pre-adaptive
// behavior; adaptive is opt-in per NetOptions.

#ifndef HYPERM_NET_RETRY_H_
#define HYPERM_NET_RETRY_H_

namespace hyperm::net {

/// Ack/retry configuration for one link-level exchange.
struct RetryPolicy {
  bool enabled = true;        ///< false: single attempt, loss is final
  int max_attempts = 4;       ///< total physical transmissions (>= 1)
  double timeout_ms = 20.0;   ///< ack wait before the first retransmission
  double backoff = 2.0;       ///< timeout multiplier per further attempt (>= 1)
  double max_timeout_ms = 160.0;  ///< backoff cap

  // Adaptive mode (off by default; the static path is bit-identical when
  // off). The ack-timeout base becomes srtt + rttvar_mult * rttvar of the
  // destination's observed RTTs, floored at min_timeout_ms; `timeout_ms`
  // still seeds destinations with no samples yet.
  bool adaptive = false;
  double rtt_gain = 0.125;      ///< srtt EWMA gain (Jacobson alpha)
  double rttvar_gain = 0.25;    ///< rttvar EWMA gain (Jacobson beta)
  double rttvar_mult = 4.0;     ///< timeout = srtt + rttvar_mult * rttvar
  double min_timeout_ms = 5.0;  ///< hard floor on the adaptive timeout
};

/// Jacobson/Karels RTT estimator for one destination: smoothed RTT plus a
/// mean-deviation estimate, so jitter widens the timeout instead of causing
/// spurious retransmissions.
class RttEstimator {
 public:
  /// Folds one observed RTT sample into the estimate. First sample: srtt =
  /// rtt, rttvar = rtt / 2 (RFC 6298 §2.2); later samples use the policy's
  /// EWMA gains (§2.3).
  void Observe(double rtt_ms, const RetryPolicy& policy);

  /// Ack-timeout base derived from the estimate: srtt + rttvar_mult * rttvar,
  /// never below min_timeout_ms. Falls back to the static timeout_ms (also
  /// floored) before the first sample.
  double TimeoutMs(const RetryPolicy& policy) const;

  bool has_sample() const { return has_sample_; }
  double srtt_ms() const { return srtt_; }
  double rttvar_ms() const { return rttvar_; }

 private:
  bool has_sample_ = false;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
};

/// Ack-timeout (ms) charged for failed attempt number `attempt` (0-based):
/// timeout_ms * backoff^attempt, capped at max_timeout_ms.
double RetryDelayMs(const RetryPolicy& policy, int attempt);

/// Adaptive variant: the estimator's timeout replaces the static base, then
/// the same backoff/cap schedule applies. The min_timeout_ms floor holds for
/// every attempt.
double AdaptiveRetryDelayMs(const RetryPolicy& policy, const RttEstimator& estimator,
                            int attempt);

/// Physical transmissions the policy allows per message (>= 1).
int MaxAttempts(const RetryPolicy& policy);

}  // namespace hyperm::net

#endif  // HYPERM_NET_RETRY_H_
