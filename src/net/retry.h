// Link-layer ack/retry (ARQ) policy.
//
// MANET radios already retransmit at the MAC layer (802.11 link-level ARQ);
// this is the knob set for that mechanism as the transport models it: a
// sender waits `timeout_ms` for the ack, retransmits with exponential
// backoff capped at `max_timeout_ms`, and gives up after `max_attempts`
// physical transmissions — the message then counts as a dead letter. Every
// retransmission costs real radio energy and real latency, which is exactly
// the retry-traffic axis the fault benches sweep.

#ifndef HYPERM_NET_RETRY_H_
#define HYPERM_NET_RETRY_H_

namespace hyperm::net {

/// Ack/retry configuration for one link-level exchange.
struct RetryPolicy {
  bool enabled = true;        ///< false: single attempt, loss is final
  int max_attempts = 4;       ///< total physical transmissions (>= 1)
  double timeout_ms = 20.0;   ///< ack wait before the first retransmission
  double backoff = 2.0;       ///< timeout multiplier per further attempt (>= 1)
  double max_timeout_ms = 160.0;  ///< backoff cap
};

/// Ack-timeout (ms) charged for failed attempt number `attempt` (0-based):
/// timeout_ms * backoff^attempt, capped at max_timeout_ms.
double RetryDelayMs(const RetryPolicy& policy, int attempt);

/// Physical transmissions the policy allows per message (>= 1).
int MaxAttempts(const RetryPolicy& policy);

}  // namespace hyperm::net

#endif  // HYPERM_NET_RETRY_H_
