#include "net/transport.h"

#include "common/check.h"
#include "common/rng.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace hyperm::net {

// The flight recorder's cause payload mirrors DeliveryOutcome numerically
// (obs cannot include this header); keep the two enums in lockstep.
static_assert(static_cast<int>(DeliveryOutcome::kDelivered) == 0);
static_assert(static_cast<int>(DeliveryOutcome::kLostLoss) == 1);
static_assert(static_cast<int>(DeliveryOutcome::kLostDown) == 2);
static_assert(static_cast<int>(DeliveryOutcome::kLostPartition) == 3);
static_assert(static_cast<int>(DeliveryOutcome::kLostUnreachable) == 4);
static_assert(static_cast<int>(DeliveryOutcome::kLostMac) == 5);

ReliableTransport::ReliableTransport(sim::NetworkStats* stats,
                                     const sim::LinkModel& link)
    : stats_(stats), link_(link) {
  HM_CHECK(stats != nullptr);
}

HopResult ReliableTransport::SendHop(const Message& message) {
  // Exactly the RecordHop call the overlays used to make inline — no obs
  // metrics on this path, so reliable-mode runs stay bit-identical to the
  // pre-transport code (metrics snapshots included).
  stats_->RecordHop(message.cls, message.bytes);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  return HopResult{true, link_.HopMs(message.bytes)};
}

UnreliableTransport::UnreliableTransport(sim::Simulator* sim,
                                         sim::NetworkStats* stats,
                                         FaultState* state,
                                         const NetOptions& options)
    : sim_(sim),
      stats_(stats),
      state_(state),
      plan_(options.faults),
      retry_(options.retry),
      link_(options.link),
      msg_streams_(options.seed) {
  HM_CHECK(sim != nullptr);
  HM_CHECK(stats != nullptr);
  HM_CHECK(state != nullptr);
  if (retry_.adaptive) {
    rtt_.resize(static_cast<size_t>(state->num_peers()));
  }
}

const RttEstimator* UnreliableTransport::rtt_estimator(int peer) const {
  if (peer < 0 || static_cast<size_t>(peer) >= rtt_.size()) return nullptr;
  return &rtt_[static_cast<size_t>(peer)];
}

double UnreliableTransport::RetryWaitMs(int dst, int attempt) const {
  if (!retry_.adaptive) return RetryDelayMs(retry_, attempt);
  if (dst < 0 || static_cast<size_t>(dst) >= rtt_.size()) {
    return AdaptiveRetryDelayMs(retry_, RttEstimator{}, attempt);
  }
  return AdaptiveRetryDelayMs(retry_, rtt_[static_cast<size_t>(dst)], attempt);
}

bool UnreliableTransport::ReachableHint(int src, int dst) const {
  if (!state_->up(src) || !state_->up(dst)) return false;
  if (!state_->Connected(src, dst, sim_->now())) return false;
  if (channel_ != nullptr && !channel_->Reachable(src, dst)) return false;
  return true;
}

HopResult UnreliableTransport::SendHop(const Message& message) {
  HopResult result;
  // Flight recorder: one exchange id per logical send; the channel hooks
  // fired inside Transmit() inherit it through the ambient message context.
  HM_OBS_MSG_SCOPE(hm_obs_msg_id);
  HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kMsgSend,
               .src = message.src, .dst = message.dst,
               .value = static_cast<double>(message.bytes),
               .aux = static_cast<int64_t>(message.type));
  const int attempts = MaxAttempts(retry_);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    // One independent randomness stream per physical transmission: the draw
    // sequence depends only on (seed, issue order), never on timing.
    Rng draw = msg_streams_.Next();
    // The radio transmits — energy and traffic are spent — before fate
    // (crash, partition, loss) decides whether anything arrives. With a
    // physical channel the attempt is one queued transmission per radio hop
    // of the current shortest path (the channel records the traffic); the
    // free-channel model charges exactly one hop.
    double air_ms = 0.0;
    bool geo_reachable = true;
    bool mac_dropped = false;
    if (channel_ != nullptr) {
      const ChannelTransmission tx = channel_->Transmit(message, sim_->now());
      counters_.messages_sent += static_cast<uint64_t>(tx.radio_hops);
      HM_OBS_COUNTER_ADD("net.messages", tx.radio_hops);
      air_ms = tx.latency_ms;
      geo_reachable = tx.reachable;
      mac_dropped = tx.mac_dropped;
    } else {
      stats_->RecordHop(message.cls, message.bytes);
      ++counters_.messages_sent;
      HM_OBS_COUNTER_ADD("net.messages", 1);
      air_ms = link_.HopMs(message.bytes);
    }
    if (attempt > 0) {
      ++counters_.retries;
      HM_OBS_COUNTER_ADD("net.retries", 1);
    }

    bool lost = false;
    if (!state_->up(message.src) || !state_->up(message.dst)) {
      ++counters_.dropped_down;
      HM_OBS_COUNTER_ADD("net.dropped_down", 1);
      result.outcome = DeliveryOutcome::kLostDown;
      lost = true;
    } else if (!state_->Connected(message.src, message.dst, sim_->now())) {
      ++counters_.dropped_partition;
      HM_OBS_COUNTER_ADD("net.dropped_partition", 1);
      result.outcome = DeliveryOutcome::kLostPartition;
      lost = true;
    } else if (!geo_reachable) {
      ++counters_.dropped_unreachable;
      HM_OBS_COUNTER_ADD("net.dropped_unreachable", 1);
      result.outcome = DeliveryOutcome::kLostUnreachable;
      lost = true;
    } else if (mac_dropped) {
      // The channel's MAC exhausted its retry limit on some hop: the frame
      // is gone regardless of the end-to-end loss draw. Checked before the
      // Bernoulli so legacy-MAC runs (never mac_dropped) keep an identical
      // randomness stream.
      ++counters_.dropped_mac;
      HM_OBS_COUNTER_ADD("net.dropped_mac", 1);
      result.outcome = DeliveryOutcome::kLostMac;
      lost = true;
    } else if (draw.Bernoulli(plan_.loss_rate)) {
      ++counters_.dropped_loss;
      HM_OBS_COUNTER_ADD("net.dropped_loss", 1);
      result.outcome = DeliveryOutcome::kLostLoss;
      lost = true;
    }

    if (!lost) {
      double hop_ms = air_ms;
      if (plan_.jitter_ms > 0.0) hop_ms += draw.Uniform(0.0, plan_.jitter_ms);
      if (retry_.adaptive && message.dst >= 0 &&
          static_cast<size_t>(message.dst) < rtt_.size()) {
        // The delivered exchange is the RTT sample — jitter included, so the
        // timeout widens with the variance it actually observes.
        rtt_[static_cast<size_t>(message.dst)].Observe(hop_ms, retry_);
      }
      result.delivered = true;
      result.outcome = DeliveryOutcome::kDelivered;
      result.latency_ms += hop_ms;
      HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kMsgDeliver,
                   .attempt = attempt, .src = message.src, .dst = message.dst,
                   .cause = 0, .value = result.latency_ms);
      if (draw.Bernoulli(plan_.duplicate_rate)) {
        // A spurious second copy reaches the receiver: the duplicate burnt
        // air time and energy but carries no new information.
        if (channel_ != nullptr) {
          const ChannelTransmission dup = channel_->Transmit(message, sim_->now());
          counters_.messages_sent += static_cast<uint64_t>(dup.radio_hops);
        } else {
          stats_->RecordHop(message.cls, message.bytes);
          ++counters_.messages_sent;
        }
        ++counters_.duplicates;
        HM_OBS_COUNTER_ADD("net.duplicates", 1);
        HM_OBS_EVENT(.sim_ms = sim_->now(),
                     .kind = obs::EventKind::kMsgDuplicate, .attempt = attempt,
                     .src = message.src, .dst = message.dst);
      }
      return result;
    }
    // The sender learns of the failure only by ack timeout; the wait is real
    // latency whether or not another attempt follows.
    const double wait_ms = RetryWaitMs(message.dst, attempt);
    HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kMsgDrop,
                 .attempt = attempt, .src = message.src, .dst = message.dst,
                 .cause = static_cast<int32_t>(result.outcome),
                 .value = wait_ms);
    result.latency_ms += wait_ms;
  }
  ++counters_.dead_letters;
  HM_OBS_COUNTER_ADD("net.dead_letters", 1);
  HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kMsgDeadLetter,
               .attempt = attempts - 1, .src = message.src, .dst = message.dst,
               .cause = static_cast<int32_t>(result.outcome),
               .value = result.latency_ms);
  return result;
}

}  // namespace hyperm::net
