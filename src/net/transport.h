// Message-level transport between overlay nodes / application peers.
//
// Every overlay hop in the system — greedy routing forwards, replication and
// query flood edges, retrieve requests and responses — is one typed message
// with a payload byte size, sent through a Transport. Two implementations:
//
//  * ReliableTransport — the default. Synchronous, infallible, zero
//    machinery: SendHop records the hop into NetworkStats exactly as the
//    overlays did before this layer existed, so all results, traffic counts
//    and obs metrics stay bit-identical to the pre-transport code paths.
//
//  * UnreliableTransport — the MANET model. Each physical transmission can
//    be lost, duplicated, blocked by a partition, or addressed to a crashed
//    peer (per a seeded FaultPlan); deliveries take LinkModel time plus
//    seeded jitter; a link-level ack/retry policy (RetryPolicy) retransmits
//    with exponential backoff until delivery or the dead-letter budget is
//    exhausted. Per-message randomness derives from MixSeed(seed, msg_id),
//    never from wall clock or scheduling, so runs are deterministic.
//
// The unreliable transport is deliberately single-threaded (message ids are
// consumed in call order); callers fan queries out serially when
// `reliable()` is false. The reliable transport is thread-safe (it only
// touches the atomic NetworkStats counters).

#ifndef HYPERM_NET_TRANSPORT_H_
#define HYPERM_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/seed_stream.h"
#include "net/fault_plan.h"
#include "net/retry.h"
#include "sim/dissemination.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace hyperm::net {

/// What a message carries; drives per-type accounting in the fault benches.
enum class MessageType {
  kRoute = 0,         ///< greedy routing forward (key only)
  kInsert,            ///< cluster summary publication
  kReplicate,         ///< sphere replication into an overlapping zone
  kQueryFlood,        ///< range-query flood edge
  kRetrieveRequest,   ///< direct item request to an owner peer
  kRetrieveResponse,  ///< items shipped back to the querier
  kControl,           ///< maintenance (unpublish, handshakes)
};

/// One message between two peers (overlay node ids == application peer ids).
struct Message {
  MessageType type = MessageType::kControl;
  int src = -1;
  int dst = -1;
  uint64_t bytes = 0;             ///< payload size (drives latency + energy)
  sim::TrafficClass cls = sim::TrafficClass::kQuery;  ///< accounting class
};

/// Why a message exchange ended the way it did. `kDelivered` pairs with
/// HopResult::delivered == true; the four loss causes mirror the
/// TransportCounters drop classes and let callers distinguish *transient*
/// failures a heal window can fix (partition, unreachable island) from dead
/// ends (random loss after all retries, crashed peer).
enum class DeliveryOutcome {
  kDelivered = 0,     ///< the exchange completed
  kLostLoss,          ///< every attempt fell to the loss_rate draw
  kLostDown,          ///< src or dst was crashed on the last attempt
  kLostPartition,     ///< a scripted partition separated the pair
  kLostUnreachable,   ///< no physical radio path (geometry-derived island)
  kLostMac,           ///< dropped mid-path by the MAC's retry limit
};

/// Outcome of one (possibly retried) message exchange.
struct HopResult {
  bool delivered = false;
  double latency_ms = 0.0;  ///< serialisation + jitter + ack-timeout waits

  /// Cause of the final attempt's fate; kDelivered iff `delivered`.
  DeliveryOutcome outcome = DeliveryOutcome::kDelivered;
};

/// Running totals a transport exposes for benches and tests. The reliable
/// transport leaves everything but messages_sent at zero.
struct TransportCounters {
  uint64_t messages_sent = 0;   ///< physical transmissions (retries included)
  uint64_t retries = 0;         ///< retransmissions after an ack timeout
  uint64_t dead_letters = 0;    ///< messages never delivered
  uint64_t duplicates = 0;      ///< spurious second deliveries
  uint64_t dropped_loss = 0;    ///< transmissions lost to the loss_rate draw
  uint64_t dropped_down = 0;    ///< transmissions to/from a crashed peer
  uint64_t dropped_partition = 0;  ///< transmissions across a scripted partition
  uint64_t dropped_unreachable = 0;  ///< no physical radio path (geometry-derived
                                     ///< partition; PhysicalChannel runs only)
  uint64_t dropped_mac = 0;  ///< frames lost to the MAC retry limit mid-path
                             ///< (CSMA/CA channel runs only)
};

/// One physical transmission attempt as costed by a PhysicalChannel.
struct ChannelTransmission {
  double latency_ms = 0.0;  ///< queue waits + serialisation along the path
  int radio_hops = 0;       ///< physical radio transmissions charged to stats
  bool reachable = true;    ///< false: no radio path existed; only the local
                            ///< transmission was charged
  bool mac_dropped = false;  ///< a route existed but the MAC exhausted its
                             ///< retries on one hop; the frame never arrived
};

/// The physical radio substrate beneath an UnreliableTransport. When
/// installed (set_channel), it replaces the free-channel LinkModel latency:
/// each overlay-hop attempt becomes one queued transmission per radio hop of
/// the current shortest physical path, and peers in different radio islands
/// are unreachable — partitions *emerge* from geometry instead of FaultPlan
/// literals. Implementations record per-radio-hop traffic into NetworkStats
/// themselves and must be deterministic given their seed.
class PhysicalChannel {
 public:
  virtual ~PhysicalChannel() = default;

  /// True iff a physical radio path currently exists between the two peers.
  virtual bool Reachable(int src, int dst) const = 0;

  /// Performs (and charges) one physical transmission attempt of `message`
  /// starting at simulated time `now`. Unreachable destinations still cost
  /// one local transmission — the radio cannot know the path is gone.
  virtual ChannelTransmission Transmit(const Message& message, sim::TimeMs now) = 0;
};

/// Abstract message transport. See file comment for the two implementations.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one message, applying the implementation's delivery model.
  /// Traffic (hops/bytes/energy) is recorded into NetworkStats per physical
  /// transmission, whether or not it is delivered — radios burn energy on
  /// lost packets too.
  virtual HopResult SendHop(const Message& message) = 0;

  /// True when delivery is synchronous and infallible (the bit-identical
  /// legacy behavior). Callers may parallelize sends only when true.
  virtual bool reliable() const = 0;

  /// Availability of `peer` right now (always true for reliable transports).
  virtual bool peer_up(int peer) const { return peer >= 0; }

  /// Best-effort reachability hint: false when the transport already *knows*
  /// a send from `src` to `dst` cannot be delivered right now (crashed peer,
  /// active partition window, different radio island). True is not a delivery
  /// promise — losses and retries still apply. Reliable transports always
  /// return true. Detour routing consults this to skip doomed neighbours
  /// without burning a transmission.
  virtual bool ReachableHint(int src, int dst) const {
    (void)src;
    (void)dst;
    return true;
  }

  /// Current simulated time (0 for transports without a simulator).
  virtual sim::TimeMs now() const { return 0.0; }

  /// Snapshot of the transport's running totals.
  virtual TransportCounters counters() const = 0;
};

/// Default transport: synchronous, infallible, stats-only. SendHop performs
/// exactly the NetworkStats::RecordHop call the overlays used to make
/// inline, so every downstream number is unchanged.
class ReliableTransport : public Transport {
 public:
  explicit ReliableTransport(sim::NetworkStats* stats,
                             const sim::LinkModel& link = {});

  HopResult SendHop(const Message& message) override;
  bool reliable() const override { return true; }
  TransportCounters counters() const override {
    TransportCounters snapshot;
    snapshot.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    return snapshot;
  }

 private:
  sim::NetworkStats* stats_;  // not owned
  sim::LinkModel link_;
  // Atomic because reliable sends run concurrently on pool workers (query
  // layer fan-out); everything else in TransportCounters stays zero here.
  std::atomic<uint64_t> messages_sent_{0};
};

/// Unreliable-transport configuration (one member of HyperMOptions).
struct NetOptions {
  /// false: ReliableTransport, today's exact behavior. true: the MANET model
  /// below, driven by a per-network sim::Simulator.
  bool unreliable = false;
  FaultPlan faults;
  RetryPolicy retry;
  sim::LinkModel link;
  uint64_t seed = 0x6e657221;  ///< per-message randomness stream seed

  // Soft state: published summaries expire after ttl and owners republish
  // periodically, so the index self-heals after crashes. 0 disables either.
  double summary_ttl_ms = 0.0;
  double republish_period_ms = 0.0;
  double expiry_sweep_period_ms = 0.0;  ///< 0: summary_ttl_ms / 2
};

/// The MANET transport: seeded loss/duplication/jitter, crash & partition
/// awareness via FaultState, link-level ARQ per RetryPolicy. Single-threaded.
class UnreliableTransport : public Transport {
 public:
  /// `sim`, `stats` and `state` must outlive the transport.
  UnreliableTransport(sim::Simulator* sim, sim::NetworkStats* stats,
                      FaultState* state, const NetOptions& options);

  HopResult SendHop(const Message& message) override;
  bool reliable() const override { return false; }
  bool peer_up(int peer) const override { return state_->up(peer); }
  bool ReachableHint(int src, int dst) const override;
  sim::TimeMs now() const override { return sim_->now(); }
  TransportCounters counters() const override { return counters_; }

  /// Installs the physical radio substrate (not owned; must outlive the
  /// transport; nullptr restores the free-channel LinkModel). With a channel,
  /// per-attempt latency and traffic come from queued multi-hop radio paths
  /// and geometry decides reachability; without one, behavior is bit-identical
  /// to the pre-channel transport.
  void set_channel(PhysicalChannel* channel) { channel_ = channel; }

  /// Read access to one destination's RTT estimator (adaptive mode only;
  /// nullptr otherwise or for out-of-range peers). For tests and benches.
  const RttEstimator* rtt_estimator(int peer) const;

 private:
  /// Ack-timeout wait charged for failed attempt `attempt` toward `dst` —
  /// static schedule, or the destination's Jacobson estimate when adaptive.
  double RetryWaitMs(int dst, int attempt) const;

  sim::Simulator* sim_;       // not owned
  sim::NetworkStats* stats_;  // not owned
  FaultState* state_;         // not owned
  PhysicalChannel* channel_ = nullptr;  // not owned; optional
  FaultPlan plan_;
  RetryPolicy retry_;
  sim::LinkModel link_;
  SeedStream msg_streams_;  // one independent Rng per physical transmission
  TransportCounters counters_;
  std::vector<RttEstimator> rtt_;  // per destination; adaptive mode only
};

}  // namespace hyperm::net

#endif  // HYPERM_NET_TRANSPORT_H_
