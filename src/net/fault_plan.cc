#include "net/fault_plan.h"

#include "common/check.h"

namespace hyperm::net {

Status FaultPlan::Validate(int num_peers) const {
  if (loss_rate < 0.0 || loss_rate > 1.0) {
    return InvalidArgumentError("FaultPlan: loss_rate outside [0,1]");
  }
  if (duplicate_rate < 0.0 || duplicate_rate > 1.0) {
    return InvalidArgumentError("FaultPlan: duplicate_rate outside [0,1]");
  }
  if (jitter_ms < 0.0) return InvalidArgumentError("FaultPlan: negative jitter");
  for (const PeerEvent& event : peer_events) {
    if (event.at_ms < 0.0) {
      return InvalidArgumentError("FaultPlan: peer event at negative time");
    }
    if (event.peer < 0 || event.peer >= num_peers) {
      return InvalidArgumentError("FaultPlan: peer event for unknown peer");
    }
  }
  for (const Partition& partition : partitions) {
    if (partition.start_ms < 0.0 || partition.end_ms < partition.start_ms) {
      return InvalidArgumentError("FaultPlan: bad partition window");
    }
    for (int peer : partition.group) {
      if (peer < 0 || peer >= num_peers) {
        return InvalidArgumentError("FaultPlan: partition member out of range");
      }
    }
  }
  return OkStatus();
}

FaultState::FaultState(int num_peers, const FaultPlan& plan)
    : up_(static_cast<size_t>(num_peers), 1) {
  partitions_.reserve(plan.partitions.size());
  for (const Partition& partition : plan.partitions) {
    ActivePartition active;
    active.start_ms = partition.start_ms;
    active.end_ms = partition.end_ms;
    active.in_group.assign(static_cast<size_t>(num_peers), 0);
    for (int peer : partition.group) {
      HM_CHECK_GE(peer, 0);
      HM_CHECK_LT(peer, num_peers);
      active.in_group[static_cast<size_t>(peer)] = 1;
    }
    partitions_.push_back(std::move(active));
  }
}

bool FaultState::up(int peer) const {
  if (peer < 0 || static_cast<size_t>(peer) >= up_.size()) return false;
  return up_[static_cast<size_t>(peer)] != 0;
}

void FaultState::SetUp(int peer, bool is_up) {
  HM_CHECK_GE(peer, 0);
  HM_CHECK_LT(static_cast<size_t>(peer), up_.size());
  up_[static_cast<size_t>(peer)] = is_up ? 1 : 0;
}

bool FaultState::Connected(int a, int b, sim::TimeMs now) const {
  for (const ActivePartition& partition : partitions_) {
    if (now < partition.start_ms || now >= partition.end_ms) continue;
    const bool a_in = a >= 0 && static_cast<size_t>(a) < partition.in_group.size() &&
                      partition.in_group[static_cast<size_t>(a)] != 0;
    const bool b_in = b >= 0 && static_cast<size_t>(b) < partition.in_group.size() &&
                      partition.in_group[static_cast<size_t>(b)] != 0;
    if (a_in != b_in) return false;
  }
  return true;
}

}  // namespace hyperm::net
