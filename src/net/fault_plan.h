// Fault injection plan for the unreliable transport.
//
// The paper's setting is a MANET (conference room, train car): radio links
// drop and duplicate packets, peers crash mid-query and come back, and the
// room can split into radio islands. A FaultPlan is the declarative, seeded
// description of those faults for one simulated run — per-message loss and
// duplication probabilities, a timed crash/rejoin schedule, and timed
// partitions — so every experiment is reproducible from (plan, seed) alone.
//
// FaultState is the live view the transport consults per message: which
// peers are currently up (crash events are applied by scheduled simulator
// callbacks, because a crash has side effects — the node's volatile summary
// store is wiped) and whether two peers are connected at a given instant
// (partitions are pure time-window predicates, evaluated on demand).

#ifndef HYPERM_NET_FAULT_PLAN_H_
#define HYPERM_NET_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"

namespace hyperm::net {

/// One peer availability transition: at `at_ms`, `peer` goes down (crash,
/// losing its volatile overlay storage) or comes back up (rejoin, empty).
struct PeerEvent {
  sim::TimeMs at_ms = 0.0;
  int peer = -1;
  bool up = false;  ///< false = crash, true = rejoin
};

/// A network partition: during [start_ms, end_ms) no message crosses between
/// `group` and its complement. Peers inside a group communicate normally.
struct Partition {
  sim::TimeMs start_ms = 0.0;
  sim::TimeMs end_ms = 0.0;
  std::vector<int> group;
};

/// Declarative fault schedule for one run. Default-constructed plans inject
/// nothing (but still route messages through the unreliable machinery).
struct FaultPlan {
  double loss_rate = 0.0;       ///< P(one physical transmission is lost)
  double duplicate_rate = 0.0;  ///< P(a delivered message arrives twice)
  double jitter_ms = 0.0;       ///< uniform [0, jitter_ms) added per delivery
  std::vector<PeerEvent> peer_events;
  std::vector<Partition> partitions;

  /// Structural validation: probabilities in [0,1], jitter >= 0, events and
  /// partition windows at non-negative times, peer ids in [0, num_peers).
  Status Validate(int num_peers) const;
};

/// Live fault state consulted by the transport on every physical send.
/// Crash/rejoin transitions are pushed in by scheduled events (SetUp);
/// partition membership is evaluated against the plan's time windows.
class FaultState {
 public:
  FaultState(int num_peers, const FaultPlan& plan);

  /// True iff `peer` is currently up. Out-of-range peers are reported down.
  bool up(int peer) const;

  /// Applies one crash/rejoin transition (called by scheduled fault events).
  void SetUp(int peer, bool up);

  /// True iff a message from `a` to `b` is not blocked by a partition active
  /// at `now`. Peer availability is checked separately via up().
  bool Connected(int a, int b, sim::TimeMs now) const;

  int num_peers() const { return static_cast<int>(up_.size()); }

 private:
  struct ActivePartition {
    sim::TimeMs start_ms;
    sim::TimeMs end_ms;
    std::vector<char> in_group;  // indexed by peer id
  };

  std::vector<char> up_;
  std::vector<ActivePartition> partitions_;
};

}  // namespace hyperm::net

#endif  // HYPERM_NET_FAULT_PLAN_H_
