#include "net/retry.h"

#include <algorithm>

namespace hyperm::net {

double RetryDelayMs(const RetryPolicy& policy, int attempt) {
  double delay = policy.timeout_ms;
  for (int i = 0; i < attempt; ++i) {
    delay *= policy.backoff;
    if (delay >= policy.max_timeout_ms) return policy.max_timeout_ms;
  }
  return std::min(delay, policy.max_timeout_ms);
}

int MaxAttempts(const RetryPolicy& policy) {
  if (!policy.enabled) return 1;
  return std::max(1, policy.max_attempts);
}

}  // namespace hyperm::net
