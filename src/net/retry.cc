#include "net/retry.h"

#include <algorithm>
#include <cmath>

namespace hyperm::net {
namespace {

// Shared backoff schedule: base * backoff^attempt, capped at max_timeout_ms.
double BackoffDelayMs(const RetryPolicy& policy, double base, int attempt) {
  double delay = base;
  for (int i = 0; i < attempt; ++i) {
    delay *= policy.backoff;
    if (delay >= policy.max_timeout_ms) return policy.max_timeout_ms;
  }
  return std::min(delay, policy.max_timeout_ms);
}

}  // namespace

void RttEstimator::Observe(double rtt_ms, const RetryPolicy& policy) {
  rtt_ms = std::max(rtt_ms, 0.0);
  if (!has_sample_) {
    srtt_ = rtt_ms;
    rttvar_ = rtt_ms / 2.0;
    has_sample_ = true;
    return;
  }
  rttvar_ = (1.0 - policy.rttvar_gain) * rttvar_ +
            policy.rttvar_gain * std::abs(srtt_ - rtt_ms);
  srtt_ = (1.0 - policy.rtt_gain) * srtt_ + policy.rtt_gain * rtt_ms;
}

double RttEstimator::TimeoutMs(const RetryPolicy& policy) const {
  const double base =
      has_sample_ ? srtt_ + policy.rttvar_mult * rttvar_ : policy.timeout_ms;
  return std::max(base, policy.min_timeout_ms);
}

double RetryDelayMs(const RetryPolicy& policy, int attempt) {
  return BackoffDelayMs(policy, policy.timeout_ms, attempt);
}

double AdaptiveRetryDelayMs(const RetryPolicy& policy, const RttEstimator& estimator,
                            int attempt) {
  const double delay = BackoffDelayMs(policy, estimator.TimeoutMs(policy), attempt);
  return std::max(delay, policy.min_timeout_ms);
}

int MaxAttempts(const RetryPolicy& policy) {
  if (!policy.enabled) return 1;
  return std::max(1, policy.max_attempts);
}

}  // namespace hyperm::net
