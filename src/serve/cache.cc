#include "serve/cache.h"

#include <utility>

#include "common/check.h"

namespace hyperm::serve {

ResultCache::ResultCache(int num_peers, const CacheOptions& options)
    : options_(options), per_peer_(static_cast<size_t>(num_peers)) {
  HM_CHECK_GE(num_peers, 1);
}

const std::vector<core::ItemId>* ResultCache::Lookup(int peer,
                                                     uint64_t signature,
                                                     uint64_t epoch,
                                                     double now_ms) {
  if (!options_.enabled) return nullptr;
  HM_CHECK_GE(peer, 0);
  HM_CHECK_LT(static_cast<size_t>(peer), per_peer_.size());
  auto& table = per_peer_[static_cast<size_t>(peer)];
  const auto it = table.find(signature);
  if (it == table.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.fill_epoch != epoch) {
    table.erase(it);
    ++stats_.epoch_invalidations;
    ++stats_.misses;
    return nullptr;
  }
  if (options_.ttl_ms > 0.0 && now_ms >= it->second.expires_at) {
    table.erase(it);
    ++stats_.ttl_expirations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second.items;
}

void ResultCache::Fill(int peer, uint64_t signature, uint64_t epoch,
                       double now_ms, std::vector<core::ItemId> items) {
  if (!options_.enabled) return;
  HM_CHECK_GE(peer, 0);
  HM_CHECK_LT(static_cast<size_t>(peer), per_peer_.size());
  Entry& entry = per_peer_[static_cast<size_t>(peer)][signature];
  entry.fill_epoch = epoch;
  entry.expires_at =
      options_.ttl_ms > 0.0 ? now_ms + options_.ttl_ms : 0.0;
  entry.items = std::move(items);
  ++stats_.fills;
}

void ResultCache::Clear() {
  for (auto& table : per_peer_) table.clear();
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& table : per_peer_) total += table.size();
  return total;
}

}  // namespace hyperm::serve
