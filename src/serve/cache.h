// Per-peer query-result cache, keyed by canonical plan signature.
//
// A cached answer is valid only while the network state that produced it is:
// every entry records the network's summary_epoch at fill time and the
// engine passes the current epoch into Lookup, so ANY answer-relevant change
// (post-creation insert, republish, crash wipe, rejoin, TTL expiry, the
// republish tick that repairs wiped state) invalidates every older entry at
// once — cached answers never outlive the summaries they were computed from
// (DESIGN.md section 15 gives the full coherence argument). A soft-state TTL
// rides along as defence in depth, mirroring the overlay's own
// summary-expiry model.
//
// Hits are answered locally at zero airtime: no probes, no retrieves, no
// radio transmissions — the whole point of the serving layer under heavy
// skewed load.

#ifndef HYPERM_SERVE_CACHE_H_
#define HYPERM_SERVE_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hyperm/peer.h"
#include "serve/options.h"

namespace hyperm::serve {

/// Running cache totals (per ResultCache instance).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          ///< lookups with no usable entry (any reason)
  uint64_t fills = 0;
  uint64_t epoch_invalidations = 0;  ///< entries dropped on an epoch mismatch
  uint64_t ttl_expirations = 0;      ///< entries dropped past their TTL
};

/// One cache per querying peer, each mapping PlanSignature -> answer ids.
/// Single-threaded like the serving engine that owns it.
class ResultCache {
 public:
  ResultCache(int num_peers, const CacheOptions& options);

  /// Returns the cached answer for (peer, signature), or nullptr on a miss.
  /// `epoch` is the network's current summary_epoch and `now_ms` the current
  /// simulated time; an entry filled under an older epoch or past its TTL is
  /// erased on the spot (counted as an invalidation/expiration AND a miss).
  /// The pointer is valid until the next Fill on the same peer.
  const std::vector<core::ItemId>* Lookup(int peer, uint64_t signature,
                                          uint64_t epoch, double now_ms);

  /// Stores an answer computed entirely under `epoch` (the engine only calls
  /// this when the epoch did not change across the query's execution —
  /// otherwise the answer may already mix pre- and post-change state).
  void Fill(int peer, uint64_t signature, uint64_t epoch, double now_ms,
            std::vector<core::ItemId> items);

  /// Drops every entry (tests; a crash of the caching peer itself would do
  /// this in a deployment — the cache is volatile soft state).
  void Clear();

  const CacheStats& stats() const { return stats_; }
  bool enabled() const { return options_.enabled; }

  /// Live entries across all peers (O(peers); tests / gauges).
  size_t size() const;

 private:
  struct Entry {
    uint64_t fill_epoch = 0;
    double expires_at = 0.0;
    std::vector<core::ItemId> items;
  };

  CacheOptions options_;
  std::vector<std::unordered_map<uint64_t, Entry>> per_peer_;
  CacheStats stats_;
};

}  // namespace hyperm::serve

#endif  // HYPERM_SERVE_CACHE_H_
