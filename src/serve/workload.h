// Open-loop workload generation: Zipf-skewed query popularity over a fixed
// template population, Poisson arrival times, uniform querying peers.
//
// The whole schedule is materialized up front by one sequential pass over a
// single seeded RNG stream, so it is a pure function of (options, num_peers):
// byte-identical across runs, host thread counts and network configurations.
// Scheduling arrivals independently of completions is what makes the load
// open-loop — a saturated network cannot slow the arrival process down, it
// can only fall behind it (EXPERIMENTS.md discusses why the closed-loop
// alternative hides the saturation knee).

#ifndef HYPERM_SERVE_WORKLOAD_H_
#define HYPERM_SERVE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "serve/options.h"
#include "vec/vector.h"

namespace hyperm::serve {

/// One member of the query population. Templates carry full-dimensional
/// centers; the engine compiles them into plans at dispatch time.
struct QueryTemplate {
  Vector center;
  bool knn = false;      ///< k-NN template (else range)
  double epsilon = 0.0;  ///< range templates
  int k = 0;             ///< k-NN templates
};

/// One scheduled query arrival.
struct Arrival {
  double t_ms = 0.0;      ///< scheduled (open-loop) arrival time
  int template_id = 0;    ///< index into the template population
  int querying_peer = 0;  ///< peer the query enters the network at
};

/// Deterministic Zipf(s) sampler over ranks 0..n-1 by CDF inversion:
/// P(rank i) proportional to 1 / (i + 1)^s. s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s);

  /// Draws one rank (binary search over the precomputed CDF; one uniform
  /// variate per draw).
  int Sample(Rng& rng) const;

  /// Exact probability of rank i — tests compare empirical frequencies
  /// against this.
  double Probability(int i) const;

  int n() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // inclusive prefix sums, cdf_.back() == 1.0
};

/// Materializes the full arrival schedule for `options` over `num_peers`
/// peers: Poisson arrival times (exponential inter-arrival gaps at
/// offered_qps), Zipf-ranked template ids, uniform querying peers — all
/// drawn in arrival order from one Rng(MixSeed(seed, "arrivals")) stream.
/// Sorted by time by construction.
std::vector<Arrival> GenerateArrivals(const WorkloadOptions& options,
                                      int num_peers);

/// FNV-1a digest over the schedule's raw bytes (exact double bits). Two
/// schedules digest equal iff they are byte-identical — the determinism
/// tests and cross-thread-count checks key on this.
uint64_t ScheduleDigest(const std::vector<Arrival>& schedule);

/// Builds the template population from candidate query centers (typically
/// dataset items): template i centers on centers[(i * 17) % centers.size()]
/// (the bench suite's standard decorrelating stride). The first
/// round(range_fraction * num_templates) templates are range queries at
/// `range_epsilon`; the rest are k-NN at `knn_k`.
std::vector<QueryTemplate> MakeTemplates(const std::vector<Vector>& centers,
                                         const WorkloadOptions& workload,
                                         double range_epsilon, int knn_k);

}  // namespace hyperm::serve

#endif  // HYPERM_SERVE_WORKLOAD_H_
