#include "serve/shortcuts.h"

#include <cmath>

#include "common/check.h"

namespace hyperm::serve {

ShortcutMiner::ShortcutMiner(const ShortcutOptions& options)
    : options_(options) {
  HM_CHECK_GE(options.cells_per_dim, 1);
  HM_CHECK_GE(options.window, 1);
  HM_CHECK_GE(options.promote_threshold, 1);
}

uint64_t ShortcutMiner::CellOf(int layer,
                               const geom::Sphere& key_sphere) const {
  uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<uint64_t>(layer));
  const double cells = static_cast<double>(options_.cells_per_dim);
  for (double c : key_sphere.center) {
    // Keys live in [0,1); clamp anyway so an out-of-range center cannot
    // index a phantom cell differently across platforms.
    double clamped = c;
    if (clamped < 0.0) clamped = 0.0;
    if (clamped > 1.0) clamped = 1.0;
    int cell = static_cast<int>(std::floor(clamped * cells));
    if (cell >= options_.cells_per_dim) cell = options_.cells_per_dim - 1;
    mix(static_cast<uint64_t>(cell));
  }
  return h;
}

overlay::NodeId ShortcutMiner::EntryHint(int layer,
                                         const geom::Sphere& key_sphere) {
  if (!options_.enabled) return overlay::kInvalidNode;
  const auto it = promoted_.find(CellOf(layer, key_sphere));
  if (it == promoted_.end()) return overlay::kInvalidNode;
  ++stats_.hints;
  return it->second;
}

void ShortcutMiner::Observe(int layer, const geom::Sphere& key_sphere,
                            overlay::NodeId entry_node, bool delivered,
                            bool via_shortcut) {
  if (!options_.enabled) return;
  const uint64_t cell = CellOf(layer, key_sphere);
  if (via_shortcut && !delivered) {
    // Stale hint: the association is wrong *now*. Demote it and scrub its
    // in-window support — without the scrub the stale pair's old support
    // would re-promote it on the very next delivered observation.
    ++stats_.stale;
    const auto it = promoted_.find(cell);
    if (it != promoted_.end()) {
      const overlay::NodeId dead = it->second;
      promoted_.erase(it);
      ++stats_.demotions;
      auto counts = counts_.find(cell);
      if (counts != counts_.end()) counts->second.erase(dead);
      for (auto& slot : window_) {
        if (slot.first == cell && slot.second == dead) {
          slot.second = overlay::kInvalidNode;  // tombstone
        }
      }
    }
    return;
  }
  if (!delivered || entry_node == overlay::kInvalidNode) return;
  if (via_shortcut) ++stats_.hits;
  ++stats_.observations;
  window_.emplace_back(cell, entry_node);
  const int support = ++counts_[cell][entry_node];
  if (window_.size() > static_cast<size_t>(options_.window)) {
    const auto [old_cell, old_entry] = window_.front();
    window_.pop_front();
    if (old_entry != overlay::kInvalidNode) {
      auto counts = counts_.find(old_cell);
      if (counts != counts_.end()) {
        auto entry = counts->second.find(old_entry);
        if (entry != counts->second.end() && --entry->second <= 0) {
          counts->second.erase(entry);
        }
        if (counts->second.empty()) counts_.erase(counts);
      }
    }
  }
  if (support >= options_.promote_threshold) {
    auto [it, inserted] = promoted_.emplace(cell, entry_node);
    if (inserted || it->second != entry_node) {
      it->second = entry_node;
      ++stats_.promotions;
    }
  }
}

}  // namespace hyperm::serve
