// ServeEngine: drives one HyperMNetwork through an open-loop query workload
// with admission control, per-peer result caching and mined shortcut routes.
//
// The engine owns the serving loop on the network's driving thread (the
// per-network sim::Simulator forbids re-entrant Run from callbacks, so
// arrivals are dispatched by AdvanceTo-ing the clock to each scheduled time,
// never from scheduled callbacks). Per arrival, in order:
//
//   1. advance simulated time to the arrival (a late dispatch — the previous
//      query's airtime pushed the clock past the arrival — records its lag),
//   2. admission: shed when the radio transmit queues or the dispatch lag
//      are past their watermarks. A shed is never silent — it emits a
//      kServeShed event with its ShedCause and bumps serve.shed.<cause>,
//   3. result cache: a hit answers locally at zero airtime,
//   4. miss: execute through the network's planned query path (which
//      consults the shortcut miner), then fill the cache iff the summary
//      epoch did not change under the query.
//
// Time-to-answer is billed from the *scheduled* arrival time — dispatch lag
// plus simulated query latency — so a saturated network cannot hide its
// queueing delay the way a closed-loop harness would (coordinated omission;
// see EXPERIMENTS.md).

#ifndef HYPERM_SERVE_ENGINE_H_
#define HYPERM_SERVE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "hyperm/network.h"
#include "serve/cache.h"
#include "serve/options.h"
#include "serve/shortcuts.h"
#include "serve/workload.h"

namespace hyperm::serve {

/// Why an arrival was shed. Numbering mirrors obs::ShedCauseName (a
/// static_assert in engine.cc pins the correspondence) so flight-recorder
/// events and these counters can never drift apart.
enum class ShedCause : int32_t {
  kTxBacklog = 0,    ///< radio transmit-queue backlog past the watermark
  kDispatchLag = 1,  ///< the serving loop itself fell too far behind
};

/// Human-readable cause name (same table the flight recorder uses).
const char* ShedCauseName(ShedCause cause);

/// Outcome of one serving run.
struct ServeStats {
  uint64_t offered = 0;    ///< arrivals in the schedule
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t shed_tx_backlog = 0;
  uint64_t shed_dispatch_lag = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;  ///< admitted, cache enabled, had to execute
  uint64_t completed = 0;     ///< answered (from cache or the network)
  uint64_t failed = 0;        ///< network execution returned an error status
  uint64_t deadline_met = 0;  ///< completed within deadline_ms
  double duration_ms = 0.0;   ///< the workload's configured span

  /// Per-completed-query time-to-answer (scheduled arrival -> answer),
  /// sorted ascending after Run returns.
  std::vector<double> t2a_ms;

  /// Empirical time-to-answer quantile (0 when nothing completed — gate on
  /// completed, like the obs histograms).
  double Quantile(double q) const;

  /// Deadline-met queries per offered-load second — the goodput the bench
  /// ladder reports.
  double goodput_qps() const {
    return duration_ms > 0.0
               ? static_cast<double>(deadline_met) * 1000.0 / duration_ms
               : 0.0;
  }

  double shed_rate() const {
    return offered > 0
               ? static_cast<double>(shed) / static_cast<double>(offered)
               : 0.0;
  }
};

/// Per-completed-query hook (recall evaluation in benches/tests). Runs on
/// the serving thread, after the query's accounting has been recorded.
using CompletionHook = std::function<void(
    const Arrival& arrival, const std::vector<core::ItemId>& items,
    bool cache_hit, double t2a_ms)>;

/// One serving session over a borrowed network. Constructing the engine
/// installs its shortcut miner on the network (when shortcuts.enabled);
/// destruction uninstalls it. Single-threaded, like the simulator it drives.
class ServeEngine {
 public:
  ServeEngine(core::HyperMNetwork* network, const ServeOptions& options);
  ~ServeEngine();
  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Serves every arrival of `schedule` (ascending t_ms; template ids must
  /// index `templates`) and returns the run's accounting. `on_complete`,
  /// when set, fires for every answered query.
  Result<ServeStats> Run(const std::vector<QueryTemplate>& templates,
                         const std::vector<Arrival>& schedule,
                         const CompletionHook& on_complete = nullptr);

  const ResultCache& cache() const { return cache_; }
  const ShortcutMiner& shortcuts() const { return shortcuts_; }

 private:
  core::HyperMNetwork* network_;  // not owned
  ServeOptions options_;
  ResultCache cache_;
  ShortcutMiner shortcuts_;
};

}  // namespace hyperm::serve

#endif  // HYPERM_SERVE_ENGINE_H_
