#include "serve/engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace hyperm::serve {

// The flight recorder names shed causes by number (obs::ShedCauseName);
// this enum is the typed mirror the engine sheds with. Pin the numbering so
// the two tables cannot drift apart.
static_assert(static_cast<int32_t>(ShedCause::kTxBacklog) == 0 &&
                  static_cast<int32_t>(ShedCause::kDispatchLag) == 1,
              "ShedCause must mirror obs::ShedCauseName's numbering");

const char* ShedCauseName(ShedCause cause) {
  return obs::ShedCauseName(static_cast<int32_t>(cause));
}

double ServeStats::Quantile(double q) const {
  if (t2a_ms.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const size_t n = t2a_ms.size();
  size_t index = static_cast<size_t>(q * static_cast<double>(n));
  if (index >= n) index = n - 1;
  return t2a_ms[index];
}

ServeEngine::ServeEngine(core::HyperMNetwork* network,
                         const ServeOptions& options)
    : network_(network),
      options_(options),
      cache_(network->num_peers(), options.cache),
      shortcuts_(options.shortcuts) {
  HM_CHECK(network_ != nullptr);
  if (options_.shortcuts.enabled) {
    network_->set_shortcut_provider(&shortcuts_);
  }
}

ServeEngine::~ServeEngine() {
  if (options_.shortcuts.enabled) {
    network_->set_shortcut_provider(nullptr);
  }
}

Result<ServeStats> ServeEngine::Run(
    const std::vector<QueryTemplate>& templates,
    const std::vector<Arrival>& schedule, const CompletionHook& on_complete) {
  if (templates.empty()) {
    return InvalidArgumentError("ServeEngine: empty template population");
  }
  ServeStats stats;
  stats.offered = schedule.size();
  stats.duration_ms = options_.workload.duration_ms;

  // Plans — and therefore cache keys — are fixed per template; compile each
  // once (pure math) instead of per arrival.
  std::vector<uint64_t> signatures(templates.size());
  for (size_t i = 0; i < templates.size(); ++i) {
    const QueryTemplate& t = templates[i];
    const core::QueryPlan plan =
        t.knn ? network_->CompileKnnPlan(t.center, t.k)
              : network_->CompileRangePlan(t.center, t.epsilon);
    signatures[i] = core::PlanSignature(plan);
  }

  const channel::RadioChannel* channel = network_->radio_channel();
  // Schedules are zero-based; the serving session starts wherever the
  // network's clock already is (after settling / previous sessions).
  const double start_ms = network_->now();
  double next_series_ms = start_ms + options_.queue_series_period_ms;
  for (const Arrival& arrival : schedule) {
    if (arrival.template_id < 0 ||
        static_cast<size_t>(arrival.template_id) >= templates.size()) {
      return InvalidArgumentError("ServeEngine: arrival template out of range");
    }
    if (arrival.querying_peer < 0 ||
        arrival.querying_peer >= network_->num_peers()) {
      return InvalidArgumentError("ServeEngine: arrival peer out of range");
    }
    // Open-loop dispatch: the clock never waits for completions, and a
    // previous query whose airtime pushed it past this arrival shows up as
    // dispatch lag billed to this query's time-to-answer.
    const double scheduled_ms = start_ms + arrival.t_ms;
    if (network_->now() < scheduled_ms) network_->AdvanceTo(scheduled_ms);
    const double now = network_->now();
    const double lag = now - scheduled_ms;
    const double backlog = channel ? channel->MaxQueueBacklogMs(now) : 0.0;
    if (options_.queue_series_period_ms > 0.0 && now >= next_series_ms) {
      HM_OBS_SERIES("channel.queue.max_backlog_ms", now, backlog);
      while (next_series_ms <= now) {
        next_series_ms += options_.queue_series_period_ms;
      }
    }

    // Admission. Backlog outranks lag: when both are over their watermarks
    // the radio is the bottleneck and the lag is just its echo.
    if (options_.admission.max_backlog_ms > 0.0 &&
        backlog > options_.admission.max_backlog_ms) {
      ++stats.shed;
      ++stats.shed_tx_backlog;
      HM_OBS_COUNTER_ADD("serve.shed.tx_backlog", 1);
      HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kServeShed,
                   .src = arrival.querying_peer,
                   .cause = static_cast<int32_t>(ShedCause::kTxBacklog),
                   .value = backlog);
      continue;
    }
    if (options_.admission.max_lag_ms > 0.0 &&
        lag > options_.admission.max_lag_ms) {
      ++stats.shed;
      ++stats.shed_dispatch_lag;
      HM_OBS_COUNTER_ADD("serve.shed.dispatch_lag", 1);
      HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kServeShed,
                   .src = arrival.querying_peer,
                   .cause = static_cast<int32_t>(ShedCause::kDispatchLag),
                   .value = lag);
      continue;
    }
    ++stats.admitted;
    HM_OBS_COUNTER_ADD("serve.admitted", 1);
    HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kServeAdmit,
                 .src = arrival.querying_peer, .value = lag);
    if (channel != nullptr) {
      // Per-node queue depth at the query's entry point — the per-node view
      // complementing the channel.queue.* gauges set after the run.
      HM_OBS_HISTOGRAM("channel.queue.backlog_ms",
                       obs::Buckets::Exponential(1, 2.0, 16),
                       channel->QueueBacklogMs(arrival.querying_peer, now));
    }

    const QueryTemplate& t = templates[static_cast<size_t>(arrival.template_id)];
    const uint64_t signature =
        signatures[static_cast<size_t>(arrival.template_id)];
    const uint64_t epoch = network_->summary_epoch();
    if (cache_.enabled()) {
      const std::vector<core::ItemId>* cached =
          cache_.Lookup(arrival.querying_peer, signature, epoch, now);
      if (cached != nullptr) {
        // Answered locally: zero airtime, so time-to-answer is pure lag.
        const double t2a = lag;
        ++stats.cache_hits;
        ++stats.completed;
        if (t2a <= options_.deadline_ms) ++stats.deadline_met;
        stats.t2a_ms.push_back(t2a);
        HM_OBS_COUNTER_ADD("serve.cache.hits", 1);
        HM_OBS_HISTOGRAM("serve.t2a_ms",
                         obs::Buckets::Exponential(1, 2.0, 16), t2a);
        HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kServeCacheHit,
                     .src = arrival.querying_peer,
                     .aux = static_cast<int64_t>(cached->size()));
        if (on_complete) on_complete(arrival, *cached, /*cache_hit=*/true, t2a);
        continue;
      }
      ++stats.cache_misses;
      HM_OBS_COUNTER_ADD("serve.cache.misses", 1);
    }

    double latency_ms = 0.0;
    Result<std::vector<core::ItemId>> answer = [&] {
      if (t.knn) {
        core::KnnQueryInfo info;
        auto result = network_->KnnQuery(t.center, t.k, core::KnnOptions{},
                                         arrival.querying_peer, &info);
        latency_ms = info.range.latency_ms;
        return result;
      }
      core::RangeQueryInfo info;
      auto result = network_->RangeQuery(t.center, t.epsilon,
                                         arrival.querying_peer,
                                         /*max_peers_contacted=*/-1, &info);
      latency_ms = info.latency_ms;
      return result;
    }();
    if (!answer.ok()) {
      ++stats.failed;
      HM_OBS_COUNTER_ADD("serve.failed", 1);
      continue;
    }
    // network_->now() re-read: heal-window re-issues advance the clock under
    // the query, and that wait is part of the answer's age too.
    const double t2a = (network_->now() - scheduled_ms) + latency_ms;
    if (cache_.enabled() && network_->summary_epoch() == epoch) {
      cache_.Fill(arrival.querying_peer, signature, epoch, network_->now(),
                  answer.value());
    }
    ++stats.completed;
    if (t2a <= options_.deadline_ms) ++stats.deadline_met;
    stats.t2a_ms.push_back(t2a);
    HM_OBS_HISTOGRAM("serve.t2a_ms", obs::Buckets::Exponential(1, 2.0, 16),
                     t2a);
    if (on_complete) {
      on_complete(arrival, answer.value(), /*cache_hit=*/false, t2a);
    }
  }

  std::sort(stats.t2a_ms.begin(), stats.t2a_ms.end());
  if (channel != nullptr) {
    HM_OBS_GAUGE_SET("channel.queue.high_watermark_ms",
                     channel->queue_high_watermark_ms());
    HM_OBS_GAUGE_SET("channel.queue.max_backlog_ms",
                     channel->MaxQueueBacklogMs(network_->now()));
  }
  return stats;
}

}  // namespace hyperm::serve
