// Configuration of the heavy-traffic serving subsystem (src/serve).
//
// One ServeOptions struct covers the four cooperating pieces the engine
// wires together: the open-loop workload (Poisson arrivals over a
// Zipf-skewed query population), the per-peer query-result cache, the
// mined-shortcut miner and the admission controller. Everything is off /
// zero-cost by default so a network serving no ServeEngine traffic is
// bit-identical to a build without this subsystem.

#ifndef HYPERM_SERVE_OPTIONS_H_
#define HYPERM_SERVE_OPTIONS_H_

#include <cstdint>

namespace hyperm::serve {

/// Open-loop workload shape. Arrivals are scheduled up front from one seeded
/// RNG stream — a pure function of these options, independent of network
/// thread count or completion times (that independence is what makes the
/// load open-loop and the latency figures free of coordinated omission).
struct WorkloadOptions {
  double duration_ms = 10'000.0;  ///< simulated span arrivals are drawn over
  double offered_qps = 50.0;      ///< Poisson arrival rate (queries / sim-sec)
  int num_templates = 64;         ///< size of the query population
  double zipf_s = 1.0;            ///< popularity skew; 0 = uniform
  /// Fraction of templates compiled as range queries; the rest are k-NN.
  double range_fraction = 1.0;
  uint64_t seed = 0x73657276ULL;  ///< arrival + popularity stream ("serv")
};

/// Per-peer query-result cache (soft state).
struct CacheOptions {
  bool enabled = false;
  /// Entry lifetime in simulated ms. Pair with the network's republish
  /// period: an entry must not outlive the summaries it was computed from,
  /// and the summary epoch check already invalidates on any answer-relevant
  /// change — the TTL is the belt to that suspenders.
  double ttl_ms = 1'000.0;
};

/// Mined shortcut routes ((query cell -> entry node) associations promoted
/// into first-probe hints).
struct ShortcutOptions {
  bool enabled = false;
  int cells_per_dim = 8;      ///< key-space quantization grid per dimension
  int window = 128;           ///< sliding window of recent observations
  int promote_threshold = 3;  ///< in-window support needed to promote a cell
};

/// Admission control / load shedding. A shed is never silent: every dropped
/// arrival emits a kServeShed flight-recorder event and bumps the per-cause
/// serve.shed.* counter (ShedCause in engine.h names the causes).
struct AdmissionOptions {
  /// Shed when the worst per-node transmit-queue backlog exceeds this
  /// (channel::RadioChannel::MaxQueueBacklogMs). <= 0 disables the check.
  double max_backlog_ms = 0.0;
  /// Shed when the engine dispatches this arrival more than `max_lag_ms`
  /// after its scheduled time (the open-loop dispatch queue is itself
  /// saturated). <= 0 disables the check.
  double max_lag_ms = 0.0;
};

/// Everything the ServeEngine needs beyond the network itself.
struct ServeOptions {
  WorkloadOptions workload;
  CacheOptions cache;
  ShortcutOptions shortcuts;
  AdmissionOptions admission;

  double range_epsilon = 0.5;  ///< epsilon of range-query templates
  int knn_k = 10;              ///< k of k-NN templates
  /// Per-query deadline: a query whose time-to-answer (scheduled arrival ->
  /// answer, simulated) exceeds this misses its SLO and does not count
  /// toward goodput.
  double deadline_ms = 500.0;
  /// Period of the channel.queue.max_backlog_ms time series the engine
  /// samples while running (0 = no series).
  double queue_series_period_ms = 0.0;
};

}  // namespace hyperm::serve

#endif  // HYPERM_SERVE_OPTIONS_H_
