#include "serve/workload.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/seed_stream.h"

namespace hyperm::serve {

ZipfSampler::ZipfSampler(int n, double s) {
  HM_CHECK_GE(n, 1);
  HM_CHECK_GE(s, 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cdf_[static_cast<size_t>(i)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding drift at the top rank
}

int ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it == cdf_.end() ? cdf_.size() - 1
                                           : it - cdf_.begin());
}

double ZipfSampler::Probability(int i) const {
  HM_CHECK_GE(i, 0);
  HM_CHECK_LT(static_cast<size_t>(i), cdf_.size());
  const double hi = cdf_[static_cast<size_t>(i)];
  const double lo = i == 0 ? 0.0 : cdf_[static_cast<size_t>(i) - 1];
  return hi - lo;
}

std::vector<Arrival> GenerateArrivals(const WorkloadOptions& options,
                                      int num_peers) {
  HM_CHECK_GE(num_peers, 1);
  HM_CHECK_GT(options.offered_qps, 0.0);
  HM_CHECK_GE(options.num_templates, 1);
  std::vector<Arrival> schedule;
  Rng rng = SeedStream(options.seed).At(0x61727276ULL);  // "arrv" stream
  const ZipfSampler popularity(options.num_templates, options.zipf_s);
  const double rate_per_ms = options.offered_qps / 1000.0;
  double t = 0.0;
  while (true) {
    // All three draws happen per arrival in a fixed order, so the schedule
    // prefix is invariant under duration changes too.
    t += rng.Exponential(rate_per_ms);
    if (t >= options.duration_ms) break;
    Arrival arrival;
    arrival.t_ms = t;
    arrival.template_id = popularity.Sample(rng);
    arrival.querying_peer =
        static_cast<int>(rng.NextIndex(static_cast<uint64_t>(num_peers)));
    schedule.push_back(arrival);
  }
  return schedule;
}

std::vector<QueryTemplate> MakeTemplates(const std::vector<Vector>& centers,
                                         const WorkloadOptions& workload,
                                         double range_epsilon, int knn_k) {
  HM_CHECK(!centers.empty());
  HM_CHECK_GE(workload.num_templates, 1);
  const int num_range = static_cast<int>(
      std::lround(workload.range_fraction * workload.num_templates));
  std::vector<QueryTemplate> templates;
  templates.reserve(static_cast<size_t>(workload.num_templates));
  for (int i = 0; i < workload.num_templates; ++i) {
    QueryTemplate t;
    t.center = centers[(static_cast<size_t>(i) * 17) % centers.size()];
    if (i < num_range) {
      t.epsilon = range_epsilon;
    } else {
      t.knn = true;
      t.k = knn_k;
    }
    templates.push_back(std::move(t));
  }
  return templates;
}

uint64_t ScheduleDigest(const std::vector<Arrival>& schedule) {
  uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  mix(schedule.size());
  for (const Arrival& a : schedule) {
    uint64_t bits = 0;
    std::memcpy(&bits, &a.t_ms, sizeof(bits));
    mix(bits);
    mix(static_cast<uint64_t>(a.template_id));
    mix(static_cast<uint64_t>(a.querying_peer));
  }
  return h;
}

}  // namespace hyperm::serve
