// Mined shortcut routes: a sliding-window miner over finished range probes
// that promotes hot (query cell -> serving entry node) associations into
// first-probe hints.
//
// Every delivered probe reports where its zone flood started (the owner of
// the query center's zone — CAN zones are static after Build, so the
// association stays sound while the node is up). The miner quantizes the
// probe's key sphere into a per-layer grid cell and counts (cell, entry)
// observations over a sliding window; once a pair accumulates
// promote_threshold in-window observations the cell is promoted and
// EntryHint starts answering with the mined node. The executor then opens
// with one direct hop to the hint instead of the full greedy walk.
//
// Fail-soft by construction: a hint that turns out stale (node crashed,
// radio island) costs its airtime and the probe re-runs on the plain greedy
// path — recall never depends on the miner's state — and the failure
// demotes the association immediately (plus scrubs its window support, so a
// dead node cannot flap back in without fresh evidence).

#ifndef HYPERM_SERVE_SHORTCUTS_H_
#define HYPERM_SERVE_SHORTCUTS_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "geom/shapes.h"
#include "hyperm/query_plan.h"
#include "overlay/overlay.h"
#include "serve/options.h"

namespace hyperm::serve {

/// Running miner totals.
struct ShortcutStats {
  uint64_t observations = 0;  ///< delivered probes fed to the miner
  uint64_t hints = 0;         ///< EntryHint calls answered with a mined node
  uint64_t hits = 0;          ///< hinted probes that delivered
  uint64_t stale = 0;         ///< hinted probes that failed (fail-soft path)
  uint64_t promotions = 0;    ///< cells (re)promoted to a hint
  uint64_t demotions = 0;     ///< promoted cells dropped after a stale hint
};

/// The core::ShortcutProvider implementation the serving engine installs on
/// its network. Single-threaded: only consulted on simulator-driven (serial
/// fan-out) executions, like the transport underneath.
class ShortcutMiner : public core::ShortcutProvider {
 public:
  explicit ShortcutMiner(const ShortcutOptions& options);

  overlay::NodeId EntryHint(int layer,
                            const geom::Sphere& key_sphere) override;
  void Observe(int layer, const geom::Sphere& key_sphere,
               overlay::NodeId entry_node, bool delivered,
               bool via_shortcut) override;

  const ShortcutStats& stats() const { return stats_; }
  size_t promoted_cells() const { return promoted_.size(); }

 private:
  /// Quantizes the sphere's center into a per-layer grid cell id (FNV over
  /// the layer and the floor(center * cells_per_dim) coordinates).
  uint64_t CellOf(int layer, const geom::Sphere& key_sphere) const;

  ShortcutOptions options_;
  /// Recent (cell, entry) observations, oldest first; evicted pairs give
  /// their support back. kInvalidNode entries are tombstones left by a
  /// demotion scrub.
  std::deque<std::pair<uint64_t, overlay::NodeId>> window_;
  /// In-window support per (cell, entry).
  std::unordered_map<uint64_t, std::unordered_map<overlay::NodeId, int>>
      counts_;
  /// Promoted associations EntryHint answers from.
  std::unordered_map<uint64_t, overlay::NodeId> promoted_;
  ShortcutStats stats_;
};

}  // namespace hyperm::serve

#endif  // HYPERM_SERVE_SHORTCUTS_H_
