#include "backbone/digest.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace hyperm::backbone {
namespace {

// Salt separating digest keys from every other MixSeed user in the tree.
constexpr uint64_t kDigestSalt = 0x4853'4447'424bULL;  // "HSDGBK"

// Joint pair cells use a coarser grid than the marginal intervals: insertions
// per sphere grow with the product of the two covered ranges, and a modest
// resolution already removes most of the marginal AND's false positives
// (hits contributed to different dimensions by *different* stored spheres).
constexpr int kPairCellsPerAxis = 8;

uint64_t CellKey(int dim_index, int cell) {
  return MixSeed(kDigestSalt, static_cast<uint64_t>(dim_index),
                 static_cast<uint64_t>(cell));
}

// Distinct key namespace for the joint cells of adjacent-dimension pairs.
uint64_t PairCellKey(int dim_index, int cell_a, int cell_b) {
  return MixSeed(MixSeed(~kDigestSalt, static_cast<uint64_t>(dim_index)),
                 static_cast<uint64_t>(cell_a), static_cast<uint64_t>(cell_b));
}

// Inclusive pair-grid index range covering [center - radius, center + radius].
std::pair<int, int> PairCellRange(double center, double radius) {
  const double width = 1.0 / kPairCellsPerAxis;
  int lo = static_cast<int>(std::floor((center - radius) / width));
  int hi = static_cast<int>(std::floor((center + radius) / width));
  lo = lo < 0 ? 0 : (lo > kPairCellsPerAxis - 1 ? kPairCellsPerAxis - 1 : lo);
  hi = hi < 0 ? 0 : (hi > kPairCellsPerAxis - 1 ? kPairCellsPerAxis - 1 : hi);
  return {lo, hi};
}

}  // namespace

SphereDigest::SphereDigest(int dim, const DigestOptions& options)
    : dim_(dim), options_(options) {
  HM_CHECK_GT(dim, 0);
  HM_CHECK_GE(options.cells_per_axis, 1);
  if (options_.bits > 0) bloom_ = BloomFilter(options_.bits, options_.hashes);
}

std::pair<int, int> SphereDigest::CellRange(double center,
                                            double radius) const {
  const int cells = options_.cells_per_axis;
  const double width = 1.0 / cells;
  int lo = static_cast<int>(std::floor((center - radius) / width));
  int hi = static_cast<int>(std::floor((center + radius) / width));
  // Clamp both ends into the cube: spheres may bulge past [0,1) but the
  // overlap geometry inside the cube is what matters, and clamping the same
  // way on insert and query keeps the no-false-dismissal argument intact.
  lo = lo < 0 ? 0 : (lo > cells - 1 ? cells - 1 : lo);
  hi = hi < 0 ? 0 : (hi > cells - 1 ? cells - 1 : hi);
  return {lo, hi};
}

void SphereDigest::InsertSphere(const geom::Sphere& sphere) {
  HM_CHECK_GT(dim_, 0) << "InsertSphere on a geometry-less SphereDigest";
  HM_CHECK_EQ(static_cast<int>(sphere.dim()), dim_);
  ++spheres_;
  if (options_.bits <= 0) return;  // digest-less mode: count only
  for (int d = 0; d < dim_; ++d) {
    const auto [lo, hi] = CellRange(sphere.center[d], sphere.radius);
    for (int cell = lo; cell <= hi; ++cell) bloom_.Insert(CellKey(d, cell));
  }
  // Joint cells over adjacent dimension pairs (d, d+1 mod dim): the covered
  // box of the sphere's projection onto the pair plane. Same clamping on
  // insert and query, so an intersecting pair of spheres always shares a
  // joint cell (their projections overlap in both dimensions).
  if (dim_ >= 2) {
    for (int d = 0; d < dim_; ++d) {
      const int d2 = (d + 1) % dim_;
      const auto [alo, ahi] = PairCellRange(sphere.center[d], sphere.radius);
      const auto [blo, bhi] = PairCellRange(sphere.center[d2], sphere.radius);
      for (int a = alo; a <= ahi; ++a) {
        for (int b = blo; b <= bhi; ++b) {
          bloom_.Insert(PairCellKey(d, a, b));
        }
      }
      if (dim_ == 2) break;  // (0,1) and (1,0) carry the same information
    }
  }
}

bool SphereDigest::MayIntersect(const geom::Sphere& query) const {
  if (spheres_ == 0) return false;  // empty domain level: provably no match
  if (options_.bits <= 0) return true;  // digest-less: always descend
  HM_CHECK_EQ(static_cast<int>(query.dim()), dim_);
  for (int d = 0; d < dim_; ++d) {
    const auto [lo, hi] = CellRange(query.center[d], query.radius);
    bool hit = false;
    for (int cell = lo; cell <= hi && !hit; ++cell) {
      hit = bloom_.MayContain(CellKey(d, cell));
    }
    if (!hit) return false;  // no stored sphere projects into these cells
  }
  if (dim_ >= 2) {
    for (int d = 0; d < dim_; ++d) {
      const int d2 = (d + 1) % dim_;
      const auto [alo, ahi] = PairCellRange(query.center[d], query.radius);
      const auto [blo, bhi] = PairCellRange(query.center[d2], query.radius);
      bool hit = false;
      for (int a = alo; a <= ahi && !hit; ++a) {
        for (int b = blo; b <= bhi && !hit; ++b) {
          hit = bloom_.MayContain(PairCellKey(d, a, b));
        }
      }
      if (!hit) return false;  // no stored sphere meets the query's pair box
      if (dim_ == 2) break;
    }
  }
  return true;
}

void SphereDigest::Clear() {
  if (options_.bits > 0) bloom_.Clear();
  spheres_ = 0;
}

}  // namespace hyperm::backbone
