// Per-wavelet-level sphere digest: a Bloom summary of the cluster spheres a
// supernode's domain has published into one overlay level.
//
// Geometry: the unit key cube [0,1)^dim is cut into `cells_per_axis` interval
// cells per axis. Inserting a sphere inserts, for every dimension d, one key
// per cell overlapping the sphere's projection [c_d - r, c_d + r]; on top of
// the marginals, every adjacent dimension pair (d, d+1 mod dim) contributes
// the *joint* cells of the sphere's projected box on a coarser pair grid. A
// query sphere "may intersect" the digest iff every dimension has at least
// one overlapping marginal cell hit AND every dimension pair has at least
// one overlapping joint cell hit.
//
// No false dismissals: if a stored sphere intersects the query sphere, their
// projections overlap in every dimension, so every marginal test shares a
// cell and every pair test shares a joint cell — neither AND can reject. The
// joint cells exist to kill the marginal AND's characteristic false
// positive: per-dimension hits contributed by *different* stored spheres.
// Remaining false positives come from the box hull of each sphere and
// ordinary Bloom bit collisions; every approximation only ever widens the
// match, never shrinks it (the fail-soft direction — a widened match costs
// an extra domain descent, never a lost result).

#ifndef HYPERM_BACKBONE_DIGEST_H_
#define HYPERM_BACKBONE_DIGEST_H_

#include <cstdint>
#include <utility>

#include "backbone/bloom.h"
#include "geom/shapes.h"

namespace hyperm::backbone {

struct DigestOptions {
  int bits = 2048;         ///< Bloom bits per level digest (0 = digest-less)
  int hashes = 4;          ///< Bloom hash count
  int cells_per_axis = 8;  ///< interval quantization of each key axis
};

/// Bloom digest over cluster spheres of one wavelet level.
class SphereDigest {
 public:
  /// Geometry-less placeholder (containers); InsertSphere is illegal.
  SphereDigest() = default;

  SphereDigest(int dim, const DigestOptions& options);

  void InsertSphere(const geom::Sphere& sphere);

  /// Conservative intersection test: false means *provably* no stored sphere
  /// intersects `query` (no false dismissals); true means "descend and look".
  bool MayIntersect(const geom::Sphere& query) const;

  void Clear();

  int dim() const { return dim_; }
  uint64_t spheres() const { return spheres_; }
  const BloomFilter& bloom() const { return bloom_; }

  /// Bytes a digest exchange message carries for this level.
  size_t SerializedBytes() const { return bloom_.SerializedBytes(); }

 private:
  /// Inclusive cell index range covering [center - radius, center + radius],
  /// clamped to [0, cells_per_axis).
  std::pair<int, int> CellRange(double center, double radius) const;

  int dim_ = 0;
  DigestOptions options_;
  BloomFilter bloom_;
  uint64_t spheres_ = 0;
};

}  // namespace hyperm::backbone

#endif  // HYPERM_BACKBONE_DIGEST_H_
