// Supernode backbone runtime: election scheduling, domain summary reports,
// digest exchange along the CDS, and the backbone-first range-probe stage.
//
// The manager glues the pure pieces together against the live simulation:
//
//   * election.h computes the CDS over the current radio graph; the manager
//     charges the election's beacon and affiliation messages to the
//     transport, re-elects when the mobility epoch moves or a supernode
//     crashes, and publishes backbone.* gauges.
//   * Domain members push soft-state reports of their published cluster
//     summaries to their supernode on a per-peer coalesced timer
//     (sim::Simulator::ScheduleKeyedAfter) — affiliation changes refresh the
//     pending timer instead of stacking duplicates. The report cadence and
//     digest TTL default to the net-layer republish period and summary TTL,
//     so backbone freshness piggybacks the existing soft-state machinery.
//   * Each maintenance round the supernode rebuilds one SphereDigest per
//     wavelet level from fresh member snapshots and ships the serialized
//     digests to its CDS neighbours (so a parent can skip descending into a
//     leaf domain whose digest provably cannot match).
//   * ServeRangePlan walks the CDS depth-first inside the querier's radio
//     island — once per query, serving every wavelet level's probe off the
//     same walk token — consults each supernode's digests, descends into a
//     domain only on a possible match, and reports per-level accounting the
//     executor folds into the level outcomes. Under min/product score
//     aggregation the walk prunes *conjunctively*: a peer absent from any
//     single level scores zero overall, so a fresh digest that provably
//     rules a domain out at one level rules it out at every level. Any
//     fail-soft gate (stale election, crashed supernode, lost walk message)
//     aborts to full CAN probing — the backbone can cost airtime but never
//     recall.
//
// Determinism: all iteration is in ascending id order, all randomness flows
// through the transport's seeded draws, and the manager runs strictly on the
// simulation driver thread.

#ifndef HYPERM_BACKBONE_MANAGER_H_
#define HYPERM_BACKBONE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "backbone/digest.h"
#include "backbone/election.h"
#include "common/status.h"
#include "geom/shapes.h"
#include "manet/topology.h"
#include "net/fault_plan.h"
#include "net/transport.h"
#include "overlay/overlay.h"
#include "sim/simulator.h"

namespace hyperm::backbone {

struct BackboneOptions {
  /// Master toggle; when false nothing backbone-related is constructed and
  /// every code path is bit-identical to a build without the subsystem.
  bool enabled = false;

  /// Bloom geometry per (supernode, wavelet level) digest. digest_bits == 0
  /// is the digest-less comparator mode: the backbone still elects, reports
  /// and walks, but descends into every domain (what bench_backbone measures
  /// pruning against).
  int digest_bits = 2048;
  int digest_hashes = 4;
  int digest_cells_per_axis = 8;

  /// Member report cadence; <= 0 inherits net.republish_period_ms.
  double report_period_ms = 0.0;
  /// Election check + digest rebuild/exchange cadence; <= 0 inherits the
  /// report period.
  double maintenance_period_ms = 0.0;
  /// Snapshot/digest freshness horizon; <= 0 inherits net.summary_ttl_ms.
  double digest_ttl_ms = 0.0;

  Status Validate() const;
};

/// Monotonic accounting, mirrored into backbone.* registry metrics.
struct BackboneCounters {
  uint64_t elections = 0;
  uint64_t election_rounds = 0;
  uint64_t election_messages = 0;
  uint64_t election_messages_lost = 0;
  uint64_t reports_sent = 0;
  uint64_t reports_lost = 0;
  uint64_t digests_exchanged = 0;
  uint64_t digests_lost = 0;
  uint64_t digest_bytes = 0;
  uint64_t probes_served = 0;
  uint64_t probes_fallback = 0;
  uint64_t domains_considered = 0;
  uint64_t domains_descended = 0;
  uint64_t domains_pruned = 0;
  uint64_t leaf_skips = 0;       ///< leaf domains pruned without a walk message (per plan)
  uint64_t stale_descends = 0;   ///< descents forced by stale/incomplete digests
  uint64_t descends_empty = 0;   ///< fresh-digest descents with 0 matches (measured FPs)
  uint64_t descends_matched = 0; ///< fresh-digest descents with >= 1 match
};

/// What a served probe hands back to the query executor.
struct ProbeServeResult {
  std::vector<overlay::PublishedCluster> matches;  ///< deduped by cluster_id
  int walk_messages = 0;     ///< CDS walk hops (folds into routing_hops)
  int descend_messages = 0;  ///< domain request/response count (flood_hops)
  int domains_total = 0;
  int domains_descended = 0;
  int domains_pruned = 0;
  double latency_ms = 0.0;
};

class BackboneManager {
 public:
  /// Read access to the live published summaries of `peer` at `layer`; the
  /// network wires this to its per-peer publish cache.
  using MemberClusters = std::function<
      const std::vector<overlay::PublishedCluster>&(int peer, int layer)>;

  /// Borrows every pointer for its own lifetime. `layer_dims[l]` is the
  /// subspace dimensionality of wavelet level l.
  BackboneManager(sim::Simulator* sim, net::Transport* transport,
                  net::FaultState* fault_state,
                  const manet::ManetTopology* topology,
                  std::vector<int> layer_dims, const BackboneOptions& options,
                  MemberClusters member_clusters);

  /// Runs the initial election + report + digest rounds synchronously and
  /// schedules the periodic timers. Call once, after the initial publish.
  void Start();

  /// Backbone-first stage for a whole range plan: one CDS walk serves every
  /// level's probe. `key_spheres[l]` is level l's Theorem 4.1 sphere (one per
  /// wavelet level, in level order). With `conjunctive` — sound exactly when
  /// the caller aggregates scores by min or product, where a peer missing
  /// from any level is dropped — a domain whose fresh digest provably cannot
  /// match at ANY single level is pruned at every level; otherwise each level
  /// prunes independently on its own digest. Returns true and fills one
  /// ProbeServeResult per level when the backbone served the plan; false
  /// means a fail-soft gate fired and the caller must run the full CAN
  /// probes instead.
  bool ServeRangePlan(const std::vector<geom::Sphere>& key_spheres,
                      int querying_peer, bool conjunctive,
                      std::vector<ProbeServeResult>* out);

  const BackboneCounters& counters() const { return counters_; }
  const ElectionResult& election() const { return election_; }

  /// Topology connectivity epoch the current election was computed against.
  uint64_t election_epoch() const { return election_topology_epoch_; }

  int num_supernodes() const { return election_.num_supernodes; }

  /// True iff `supernode`'s digest is fresh and covers every member.
  bool DigestUsable(int supernode) const;

  const BackboneOptions& options() const { return options_; }

 private:
  struct MemberSnapshot {
    double report_ms = -1.0;  ///< sim time of the last delivered report
    std::vector<std::vector<overlay::PublishedCluster>> per_layer;
  };
  struct DomainDigest {
    double built_ms = -1.0;
    bool complete = false;  ///< every current member contributed a fresh snapshot
    std::vector<SphereDigest> per_layer;
  };
  struct NeighborDigest {
    double received_ms = -1.0;
    bool complete = false;
    std::vector<SphereDigest> per_layer;
  };

  void RunElection();
  /// Order-sensitive hash of the current radio adjacency (cached per
  /// connectivity epoch). Mobility bumps the topology epoch on every step
  /// even when no link flipped; staleness gates compare fingerprints so an
  /// election stays usable as long as the graph it saw is still the graph.
  uint64_t GraphFingerprint() const;
  void SendReport(int peer);
  void ReportTimerFired(int peer);
  void MaintenanceTick();
  void BuildDigests();
  void ExchangeDigests();
  bool DomainMayMatch(int supernode, int layer,
                      const geom::Sphere& key_sphere, bool* stale) const;
  /// Descends into `supernode`'s domain for every level with
  /// `descend_layer[l]` set: one batched request/response round per up
  /// member (the request names the levels, the response carries their
  /// matches together), answered from the live publish cache. Physical
  /// message counts land on the first descended level's result slot;
  /// per-level match counts accumulate into `found_per_layer`.
  void DescendDomain(int supernode, const std::vector<geom::Sphere>& key_spheres,
                     const std::vector<char>& descend_layer, int querying_peer,
                     double arrival_ms, std::vector<ProbeServeResult>* out,
                     double* completion_ms, std::vector<int>* found_per_layer);
  size_t ReportBytes(const MemberSnapshot& snapshot) const;
  size_t DigestMessageBytes(const DomainDigest& digest) const;

  sim::Simulator* sim_;
  net::Transport* transport_;
  net::FaultState* fault_state_;
  const manet::ManetTopology* topology_;
  std::vector<int> layer_dims_;
  BackboneOptions options_;
  MemberClusters member_clusters_;
  int num_peers_ = 0;

  ElectionResult election_;
  bool elected_ = false;
  uint64_t election_topology_epoch_ = 0;
  uint64_t election_graph_fp_ = 0;       ///< adjacency hash at election time
  mutable uint64_t graph_fp_ = 0;        ///< cached fingerprint ...
  mutable uint64_t graph_fp_epoch_ = 0;  ///< ... and the epoch it was built at

  std::vector<MemberSnapshot> snapshots_;        ///< by member peer
  std::vector<DomainDigest> digests_;            ///< by supernode peer
  std::vector<std::map<int, NeighborDigest>> neighbor_digests_;  ///< [holder][from]
  // Per-plan, per-level replica dedup scratch (membership checks only; never
  // iterated, so the unordered containers cannot leak nondeterminism).
  std::vector<std::unordered_set<uint64_t>> seen_cluster_ids_;

  BackboneCounters counters_;
};

}  // namespace hyperm::backbone

#endif  // HYPERM_BACKBONE_MANAGER_H_
