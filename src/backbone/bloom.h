// Seeded Bloom filter for supernode domain digests.
//
// A supernode summarizes the cluster spheres its domain members publish into
// a fixed-size bit array, small enough to gossip along the CDS backbone every
// maintenance round (see digest.h for how spheres map to keys). The filter is
// deterministic (no process randomness: double hashing over SplitMix64-style
// mixing) and byte-stable across platforms so digest exchange bytes and
// serialized snapshots diff cleanly in CI.

#ifndef HYPERM_BACKBONE_BLOOM_H_
#define HYPERM_BACKBONE_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace hyperm::backbone {

/// Fixed-geometry Bloom filter with double hashing.
///
/// `bits` is rounded up to a multiple of 64 internally but indexing uses the
/// requested modulus, so two filters compare/merge only when both (bits,
/// hashes) match exactly.
class BloomFilter {
 public:
  /// Empty filter with no geometry: Insert() is illegal, MayContain() is
  /// always false. Exists so containers can default-construct.
  BloomFilter() = default;

  /// `bits` > 0, `hashes` in [1, 16].
  BloomFilter(int bits, int hashes);

  void Insert(uint64_t key);
  bool MayContain(uint64_t key) const;

  /// Bitwise OR of `other` into this filter. Fails on geometry mismatch.
  Status Merge(const BloomFilter& other);

  /// Zeroes the bit array and the insert counter; geometry is kept.
  void Clear();

  int bits() const { return bits_; }
  int hashes() const { return hashes_; }

  /// Keys inserted since construction / last Clear() (not deduplicated).
  uint64_t inserted() const { return inserted_; }

  /// Number of set bits.
  uint64_t popcount() const;

  /// Fraction of set bits, in [0, 1].
  double fill_ratio() const;

  /// Classic (1 - e^{-kn/m})^k estimate with n = inserted().
  double TheoreticalFpRate() const;

  /// Byte-stable little-endian encoding: "HMBF" magic, bits, hashes,
  /// inserted, then the word array. Identical filters serialize to identical
  /// bytes on every platform.
  std::string Serialize() const;
  static Result<BloomFilter> Deserialize(const std::string& bytes);

  /// Size of Serialize()'s output without materializing it (header + words).
  size_t SerializedBytes() const;

 private:
  int bits_ = 0;
  int hashes_ = 0;
  uint64_t inserted_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace hyperm::backbone

#endif  // HYPERM_BACKBONE_BLOOM_H_
