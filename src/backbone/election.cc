#include "backbone/election.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace hyperm::backbone {
namespace {

// (count, -id) candidate ordering: more coverage wins, lower id breaks ties.
bool Better(int count_a, int a, int count_b, int b) {
  if (count_a != count_b) return count_a > count_b;
  return a < b;
}

}  // namespace

ElectionResult ElectCds(const std::vector<std::vector<int>>& neighbors,
                        const std::vector<char>& up,
                        const std::vector<char>* previous) {
  const int n = static_cast<int>(neighbors.size());
  HM_CHECK_EQ(static_cast<int>(up.size()), n);

  ElectionResult result;
  result.is_supernode.assign(n, 0);
  result.is_connector.assign(n, 0);
  result.supernode_of.assign(n, -1);
  result.cds_neighbors.assign(n, {});
  result.members_of.assign(n, {});

  auto up_ok = [&](int v) { return up[v] != 0; };

  // --- Phase 1: dominating set -------------------------------------------
  std::vector<char> covered(n, 0);
  for (int v = 0; v < n; ++v) {
    if (!up_ok(v)) covered[v] = 1;  // down nodes need no domination
  }
  auto cover_by = [&](int s) {
    covered[s] = 1;
    for (int w : neighbors[s]) {
      if (up_ok(w)) covered[w] = 1;
    }
  };

  // Sticky seeds: previous supernodes still up keep their role...
  if (previous != nullptr) {
    HM_CHECK_EQ(static_cast<int>(previous->size()), n);
    for (int v = 0; v < n; ++v) {
      if ((*previous)[v] && up_ok(v)) result.is_supernode[v] = 1;
    }
    // ...unless redundant: s retires (ascending id) when every up node in
    // N[s] is itself a supernode or adjacent to one other than s.
    for (int s = 0; s < n; ++s) {
      if (!result.is_supernode[s]) continue;
      auto dominated_without = [&](int v) {
        if (v != s && result.is_supernode[v]) return true;
        for (int w : neighbors[v]) {
          if (w != s && up_ok(w) && result.is_supernode[w]) return true;
        }
        return false;
      };
      bool redundant = dominated_without(s);
      for (int w : neighbors[s]) {
        if (!redundant) break;
        if (up_ok(w) && !dominated_without(w)) redundant = false;
      }
      if (redundant) result.is_supernode[s] = 0;
    }
  }
  for (int v = 0; v < n; ++v) {
    if (result.is_supernode[v]) cover_by(v);
  }

  // Parallel-greedy rounds until every up node is dominated. The nominated
  // candidate with the globally maximal (count, -id) priority is never beaten
  // within two hops, so each round adds at least one supernode.
  auto uncovered_count = [&](int c) {
    int k = covered[c] ? 0 : 1;
    for (int w : neighbors[c]) {
      if (up_ok(w) && !covered[w]) ++k;
    }
    return k;
  };
  while (true) {
    std::vector<int> uncovered;
    for (int v = 0; v < n; ++v) {
      if (up_ok(v) && !covered[v]) uncovered.push_back(v);
    }
    if (uncovered.empty()) break;
    ++result.rounds;

    std::vector<char> nominated(n, 0);
    for (int u : uncovered) {
      int best = -1;
      int best_count = -1;
      auto consider = [&](int c) {
        if (!up_ok(c)) return;
        const int k = uncovered_count(c);
        if (best < 0 || Better(k, c, best_count, best)) {
          best = c;
          best_count = k;
        }
      };
      consider(u);
      for (int w : neighbors[u]) consider(w);
      HM_CHECK_GE(best, 0);
      nominated[best] = 1;
    }

    std::vector<int> accepted;
    for (int c = 0; c < n; ++c) {
      if (!nominated[c]) continue;
      const int kc = uncovered_count(c);
      bool maximal = true;
      for (int w : neighbors[c]) {
        if (!maximal) break;
        if (!up_ok(w)) continue;
        if (nominated[w] && Better(uncovered_count(w), w, kc, c)) {
          maximal = false;
          break;
        }
        for (int x : neighbors[w]) {
          if (!up_ok(x) || x == c) continue;
          if (nominated[x] && Better(uncovered_count(x), x, kc, c)) {
            maximal = false;
            break;
          }
        }
      }
      if (maximal) accepted.push_back(c);
    }
    HM_CHECK(!accepted.empty()) << "greedy DS round made no progress";
    for (int c : accepted) {
      result.is_supernode[c] = 1;
      cover_by(c);
    }
  }

  // --- Phase 2: affiliation ----------------------------------------------
  for (int v = 0; v < n; ++v) {
    if (!up_ok(v)) continue;
    if (result.is_supernode[v]) {
      result.supernode_of[v] = v;
      continue;
    }
    int chosen = -1;
    for (int w : neighbors[v]) {  // ascending → lowest-id adjacent supernode
      if (up_ok(w) && result.is_supernode[w]) {
        chosen = w;
        break;
      }
    }
    HM_CHECK_GE(chosen, 0) << "up node " << v << " left undominated";
    result.supernode_of[v] = chosen;
  }
  for (int v = 0; v < n; ++v) {
    if (result.supernode_of[v] >= 0) {
      result.members_of[result.supernode_of[v]].push_back(v);
    }
  }

  // --- Phase 3: CDS edges + connectors (3-hop theorem) -------------------
  std::vector<int> dist(n), parent(n);
  std::deque<int> frontier;
  for (int s = 0; s < n; ++s) {
    if (!result.is_supernode[s]) continue;
    ++result.num_supernodes;
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(parent.begin(), parent.end(), -1);
    dist[s] = 0;
    frontier.clear();
    frontier.push_back(s);
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop_front();
      if (dist[v] == 3) continue;
      for (int w : neighbors[v]) {
        if (!up_ok(w) || dist[w] >= 0) continue;
        dist[w] = dist[v] + 1;
        parent[w] = v;
        frontier.push_back(w);
      }
    }
    for (int t = 0; t < n; ++t) {
      if (t == s || !result.is_supernode[t] || dist[t] < 0) continue;
      result.cds_neighbors[s].push_back(t);  // ascending by construction of t
      if (s < t) {
        // Interior nodes of the discovered shortest path become connectors.
        for (int v = parent[t]; v >= 0 && v != s; v = parent[v]) {
          if (!result.is_supernode[v]) result.is_connector[v] = 1;
        }
      }
    }
  }
  return result;
}

}  // namespace hyperm::backbone
