#include "backbone/bloom.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/status.h"

namespace hyperm::backbone {
namespace {

// SplitMix64 finalizer — the same mixing family rng.h uses for seed
// derivation; reproduced here so the filter's bit layout is pinned by this
// translation unit alone.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

constexpr char kMagic[4] = {'H', 'M', 'B', 'F'};
constexpr size_t kHeaderBytes = 4 + 4 + 4 + 8;

}  // namespace

BloomFilter::BloomFilter(int bits, int hashes) : bits_(bits), hashes_(hashes) {
  HM_CHECK_GT(bits, 0);
  HM_CHECK_GE(hashes, 1);
  HM_CHECK_LE(hashes, 16);
  words_.assign((static_cast<size_t>(bits) + 63) / 64, 0);
}

void BloomFilter::Insert(uint64_t key) {
  HM_CHECK_GT(bits_, 0) << "Insert on a geometry-less BloomFilter";
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0x9e3779b97f4a7c15ULL) | 1;  // odd stride
  for (int i = 0; i < hashes_; ++i) {
    const uint64_t idx = (h1 + static_cast<uint64_t>(i) * h2) %
                         static_cast<uint64_t>(bits_);
    words_[idx >> 6] |= 1ULL << (idx & 63);
  }
  ++inserted_;
}

bool BloomFilter::MayContain(uint64_t key) const {
  if (bits_ == 0) return false;
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (int i = 0; i < hashes_; ++i) {
    const uint64_t idx = (h1 + static_cast<uint64_t>(i) * h2) %
                         static_cast<uint64_t>(bits_);
    if ((words_[idx >> 6] & (1ULL << (idx & 63))) == 0) return false;
  }
  return true;
}

Status BloomFilter::Merge(const BloomFilter& other) {
  if (bits_ != other.bits_ || hashes_ != other.hashes_) {
    return InvalidArgumentError("BloomFilter::Merge geometry mismatch");
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  inserted_ += other.inserted_;
  return Status();
}

void BloomFilter::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
  inserted_ = 0;
}

uint64_t BloomFilter::popcount() const {
  uint64_t total = 0;
  for (uint64_t w : words_) total += static_cast<uint64_t>(std::popcount(w));
  return total;
}

double BloomFilter::fill_ratio() const {
  if (bits_ == 0) return 0.0;
  return static_cast<double>(popcount()) / static_cast<double>(bits_);
}

double BloomFilter::TheoreticalFpRate() const {
  if (bits_ == 0 || inserted_ == 0) return 0.0;
  const double k = static_cast<double>(hashes_);
  const double exponent = -k * static_cast<double>(inserted_) /
                          static_cast<double>(bits_);
  const double p = 1.0 - std::exp(exponent);
  return std::pow(p, k);
}

std::string BloomFilter::Serialize() const {
  std::string out;
  out.reserve(SerializedBytes());
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, static_cast<uint32_t>(bits_));
  PutU32(&out, static_cast<uint32_t>(hashes_));
  PutU64(&out, inserted_);
  for (uint64_t w : words_) PutU64(&out, w);
  return out;
}

Result<BloomFilter> BloomFilter::Deserialize(const std::string& bytes) {
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError("BloomFilter::Deserialize bad header");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const uint32_t bits = GetU32(p + 4);
  const uint32_t hashes = GetU32(p + 8);
  if (bits == 0 || hashes == 0 || hashes > 16) {
    return InvalidArgumentError("BloomFilter::Deserialize bad geometry");
  }
  BloomFilter filter(static_cast<int>(bits), static_cast<int>(hashes));
  if (bytes.size() != kHeaderBytes + filter.words_.size() * 8) {
    return InvalidArgumentError("BloomFilter::Deserialize truncated payload");
  }
  filter.inserted_ = GetU64(p + 12);
  for (size_t i = 0; i < filter.words_.size(); ++i) {
    filter.words_[i] = GetU64(p + kHeaderBytes + i * 8);
  }
  return filter;
}

size_t BloomFilter::SerializedBytes() const {
  return kHeaderBytes + words_.size() * 8;
}

}  // namespace hyperm::backbone
