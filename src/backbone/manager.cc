#include "backbone/manager.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace hyperm::backbone {
namespace {

// On-the-wire sizes (bytes). Spheres ship as dim doubles + radius + ids, the
// same 8*dim+24 footprint the retrieve path charges per cluster summary.
constexpr uint64_t kElectionBeaconBytes = 16;
constexpr uint64_t kAffiliationBytes = 12;
constexpr uint64_t kWalkBytes = 24;
constexpr uint64_t kDescendRequestBytes = 32;

uint64_t ClusterWireBytes(int dim) { return 8 * static_cast<uint64_t>(dim) + 24; }

// Keyed-timer namespace for per-peer report timers (the simulator's
// coalescing keyspace is global to the process).
uint64_t ReportTimerKey(int peer) {
  return (uint64_t{0xb0} << 56) | static_cast<uint64_t>(peer);
}

}  // namespace

Status BackboneOptions::Validate() const {
  if (!enabled) return Status();
  if (digest_bits < 0) {
    return InvalidArgumentError("backbone.digest_bits must be >= 0");
  }
  if (digest_bits > 0 && (digest_hashes < 1 || digest_hashes > 16)) {
    return InvalidArgumentError("backbone.digest_hashes must be in [1, 16]");
  }
  if (digest_cells_per_axis < 1) {
    return InvalidArgumentError("backbone.digest_cells_per_axis must be >= 1");
  }
  return Status();
}

BackboneManager::BackboneManager(sim::Simulator* sim, net::Transport* transport,
                                 net::FaultState* fault_state,
                                 const manet::ManetTopology* topology,
                                 std::vector<int> layer_dims,
                                 const BackboneOptions& options,
                                 MemberClusters member_clusters)
    : sim_(sim),
      transport_(transport),
      fault_state_(fault_state),
      topology_(topology),
      layer_dims_(std::move(layer_dims)),
      options_(options),
      member_clusters_(std::move(member_clusters)) {
  HM_CHECK(sim_ != nullptr);
  HM_CHECK(transport_ != nullptr);
  HM_CHECK(fault_state_ != nullptr);
  HM_CHECK(topology_ != nullptr);
  HM_CHECK(member_clusters_ != nullptr);
  HM_CHECK_GT(options_.report_period_ms, 0.0)
      << "resolve report_period_ms before constructing BackboneManager";
  HM_CHECK_GT(options_.maintenance_period_ms, 0.0);
  HM_CHECK_GT(options_.digest_ttl_ms, 0.0);
  num_peers_ = fault_state_->num_peers();
  HM_CHECK_EQ(num_peers_, topology_->num_nodes());
  snapshots_.assign(num_peers_, {});
  digests_.assign(num_peers_, {});
  neighbor_digests_.assign(num_peers_, {});
}

void BackboneManager::Start() {
  RunElection();
  for (int peer = 0; peer < num_peers_; ++peer) {
    if (fault_state_->up(peer)) SendReport(peer);
  }
  BuildDigests();
  ExchangeDigests();
  for (int peer = 0; peer < num_peers_; ++peer) {
    sim_->ScheduleKeyedAfter(ReportTimerKey(peer), options_.report_period_ms,
                             [this, peer] { ReportTimerFired(peer); });
  }
  sim_->ScheduleAfter(options_.maintenance_period_ms,
                      [this] { MaintenanceTick(); });
}

void BackboneManager::RunElection() {
  const int n = num_peers_;
  std::vector<std::vector<int>> neighbors(n);
  std::vector<char> up(n, 0);
  for (int v = 0; v < n; ++v) {
    neighbors[v] = topology_->neighbors(v);
    up[v] = fault_state_->up(v) ? 1 : 0;
  }
  // Stickiness needs the previous vector alive while election_ is replaced.
  std::vector<char> prev_copy;
  const std::vector<char>* prev_ptr = nullptr;
  if (elected_) {
    prev_copy = election_.is_supernode;
    prev_ptr = &prev_copy;
  }
  election_ = ElectCds(neighbors, up, prev_ptr);
  elected_ = true;
  election_topology_epoch_ = topology_->connectivity_epoch();
  election_graph_fp_ = GraphFingerprint();
  neighbor_digests_.assign(n, {});  // CDS edges changed; drop stale copies

  // Charge the election's message cost: per greedy round, every up node
  // beacons its candidate priority to its lowest-id up neighbor; then each
  // member confirms affiliation to its supernode.
  for (int round = 0; round < election_.rounds; ++round) {
    for (int v = 0; v < n; ++v) {
      if (!up[v]) continue;
      int w = -1;
      for (int cand : neighbors[v]) {
        if (up[cand]) {
          w = cand;
          break;
        }
      }
      if (w < 0) continue;  // isolated node: nothing to beacon to
      const net::HopResult hop = transport_->SendHop(
          {net::MessageType::kControl, v, w, kElectionBeaconBytes,
           sim::TrafficClass::kJoin});
      ++counters_.election_messages;
      if (!hop.delivered) ++counters_.election_messages_lost;
    }
  }
  for (int v = 0; v < n; ++v) {
    if (!up[v] || election_.supernode_of[v] == v) continue;
    const int s = election_.supernode_of[v];
    if (s < 0) continue;
    const net::HopResult hop = transport_->SendHop(
        {net::MessageType::kControl, v, s, kAffiliationBytes,
         sim::TrafficClass::kJoin});
    ++counters_.election_messages;
    if (!hop.delivered) ++counters_.election_messages_lost;
  }

  ++counters_.elections;
  counters_.election_rounds += static_cast<uint64_t>(election_.rounds);
  HM_OBS_COUNTER_ADD("backbone.elections", 1);
  HM_OBS_GAUGE_SET("backbone.supernodes",
                   static_cast<double>(election_.num_supernodes));
  int connectors = 0;
  for (char c : election_.is_connector) connectors += c;
  HM_OBS_GAUGE_SET("backbone.connectors", static_cast<double>(connectors));
  HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kBackboneElect,
               .value = static_cast<double>(election_.rounds),
               .aux = election_.num_supernodes);
}

size_t BackboneManager::ReportBytes(const MemberSnapshot& snapshot) const {
  size_t bytes = 16;
  for (size_t layer = 0; layer < snapshot.per_layer.size(); ++layer) {
    bytes += snapshot.per_layer[layer].size() *
             ClusterWireBytes(layer_dims_[layer]);
  }
  return bytes;
}

void BackboneManager::SendReport(int peer) {
  const int s = election_.supernode_of[peer];
  if (s < 0 || !fault_state_->up(s)) return;  // unaffiliated: next election fixes it

  MemberSnapshot snapshot;
  snapshot.report_ms = sim_->now();
  snapshot.per_layer.resize(layer_dims_.size());
  for (size_t layer = 0; layer < layer_dims_.size(); ++layer) {
    snapshot.per_layer[layer] =
        member_clusters_(peer, static_cast<int>(layer));
  }

  if (peer != s) {
    const net::HopResult hop = transport_->SendHop(
        {net::MessageType::kControl, peer, s,
         static_cast<uint64_t>(ReportBytes(snapshot)),
         sim::TrafficClass::kJoin});
    if (!hop.delivered) {
      ++counters_.reports_lost;
      return;  // supernode keeps the previous (now aging) snapshot
    }
  }
  int total_clusters = 0;
  for (const auto& layer : snapshot.per_layer) {
    total_clusters += static_cast<int>(layer.size());
  }
  snapshots_[peer] = std::move(snapshot);
  ++counters_.reports_sent;
  HM_OBS_COUNTER_ADD("backbone.reports", 1);
  HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kBackboneReport,
               .src = peer, .dst = s, .aux = total_clusters);
}

void BackboneManager::ReportTimerFired(int peer) {
  HM_OBS_ROOT_SCOPE();
  if (fault_state_->up(peer)) SendReport(peer);
  sim_->ScheduleKeyedAfter(ReportTimerKey(peer), options_.report_period_ms,
                           [this, peer] { ReportTimerFired(peer); });
}

uint64_t BackboneManager::GraphFingerprint() const {
  const uint64_t epoch = topology_->connectivity_epoch();
  if (graph_fp_epoch_ == epoch) return graph_fp_;  // epochs start at 1
  uint64_t h = 0xb5ad4eceda1ce2a9ULL;
  for (int v = 0; v < num_peers_; ++v) {
    h = MixSeed(h, uint64_t{1} << 63, static_cast<uint64_t>(v));
    for (int w : topology_->neighbors(v)) {
      h = MixSeed(h, static_cast<uint64_t>(w));
    }
  }
  graph_fp_ = h;
  graph_fp_epoch_ = epoch;
  return h;
}

void BackboneManager::MaintenanceTick() {
  HM_OBS_ROOT_SCOPE();
  bool re_elect = GraphFingerprint() != election_graph_fp_;
  if (!re_elect) {
    for (int v = 0; v < num_peers_ && !re_elect; ++v) {
      if (!fault_state_->up(v)) continue;
      const int s = election_.supernode_of[v];
      // Rejoined while unaffiliated, or the domain's supernode crashed.
      if (s < 0 || !fault_state_->up(s)) re_elect = true;
    }
  }
  if (re_elect) {
    RunElection();
    // Affiliations moved: pull every live member's next report forward so the
    // new supernodes' digests can complete without waiting a full period.
    // ScheduleKeyedAfter supersedes the pending periodic timer (coalesced).
    for (int peer = 0; peer < num_peers_; ++peer) {
      sim_->ScheduleKeyedAfter(ReportTimerKey(peer), 1.0,
                               [this, peer] { ReportTimerFired(peer); });
    }
  }
  BuildDigests();
  ExchangeDigests();
  sim_->ScheduleAfter(options_.maintenance_period_ms,
                      [this] { MaintenanceTick(); });
}

void BackboneManager::BuildDigests() {
  const double now = sim_->now();
  const DigestOptions digest_options{options_.digest_bits,
                                     options_.digest_hashes,
                                     options_.digest_cells_per_axis};
  for (int s = 0; s < num_peers_; ++s) {
    if (!election_.is_supernode[s] || !fault_state_->up(s)) {
      digests_[s] = {};
      continue;
    }
    // The supernode's own summaries are local: refresh them for free.
    SendReport(s);

    DomainDigest& digest = digests_[s];
    digest.per_layer.clear();
    digest.per_layer.reserve(layer_dims_.size());
    for (int dim : layer_dims_) {
      digest.per_layer.emplace_back(dim, digest_options);
    }
    digest.complete = true;
    for (int m : election_.members_of[s]) {
      if (!fault_state_->up(m)) continue;  // crashed members' data is gone anyway
      const MemberSnapshot& snapshot = snapshots_[m];
      const bool fresh = snapshot.report_ms >= 0.0 &&
                         now - snapshot.report_ms <= options_.digest_ttl_ms;
      if (!fresh) {
        digest.complete = false;
        continue;
      }
      for (size_t layer = 0; layer < digest.per_layer.size(); ++layer) {
        for (const overlay::PublishedCluster& cluster :
             snapshot.per_layer[layer]) {
          digest.per_layer[layer].InsertSphere(cluster.sphere);
        }
      }
    }
    digest.built_ms = now;
  }
}

size_t BackboneManager::DigestMessageBytes(const DomainDigest& digest) const {
  size_t bytes = 16;
  for (const SphereDigest& level : digest.per_layer) {
    bytes += level.SerializedBytes();
  }
  return bytes;
}

void BackboneManager::ExchangeDigests() {
  for (int s = 0; s < num_peers_; ++s) {
    if (!election_.is_supernode[s] || !fault_state_->up(s)) continue;
    if (digests_[s].built_ms < 0.0) continue;
    for (int t : election_.cds_neighbors[s]) {
      if (!fault_state_->up(t)) continue;
      const uint64_t bytes =
          static_cast<uint64_t>(DigestMessageBytes(digests_[s]));
      const net::HopResult hop = transport_->SendHop(
          {net::MessageType::kControl, s, t, bytes, sim::TrafficClass::kJoin});
      counters_.digest_bytes += bytes;
      if (!hop.delivered) {
        ++counters_.digests_lost;
        continue;
      }
      NeighborDigest& copy = neighbor_digests_[t][s];
      copy.received_ms = sim_->now();
      copy.complete = digests_[s].complete;
      copy.per_layer = digests_[s].per_layer;
      ++counters_.digests_exchanged;
      HM_OBS_COUNTER_ADD("backbone.digest_bytes", bytes);
      HM_OBS_EVENT(.sim_ms = sim_->now(),
                   .kind = obs::EventKind::kBackboneDigest, .src = s, .dst = t,
                   .value = static_cast<double>(bytes));
    }
  }
}

bool BackboneManager::DigestUsable(int supernode) const {
  const DomainDigest& digest = digests_[supernode];
  return digest.built_ms >= 0.0 && digest.complete &&
         sim_->now() - digest.built_ms <= options_.digest_ttl_ms;
}

bool BackboneManager::DomainMayMatch(int supernode, int layer,
                                     const geom::Sphere& key_sphere,
                                     bool* stale) const {
  *stale = false;
  if (!DigestUsable(supernode)) {
    *stale = true;  // missing/incomplete/aged digest: descend unconditionally
    return true;
  }
  if (options_.digest_bits <= 0) return true;  // digest-less comparator mode
  return digests_[supernode].per_layer[layer].MayIntersect(key_sphere);
}

void BackboneManager::DescendDomain(
    int supernode, const std::vector<geom::Sphere>& key_spheres,
    const std::vector<char>& descend_layer, int querying_peer,
    double arrival_ms, std::vector<ProbeServeResult>* out,
    double* completion_ms, std::vector<int>* found_per_layer) {
  const size_t num_layers = layer_dims_.size();
  size_t first = 0;
  while (first < num_layers && !descend_layer[first]) ++first;
  HM_CHECK_LT(first, num_layers);
  ProbeServeResult& wire = (*out)[first];

  for (int m : election_.members_of[supernode]) {
    if (!fault_state_->up(m)) continue;
    const net::HopResult request = transport_->SendHop(
        {net::MessageType::kQueryFlood, supernode, m, kDescendRequestBytes,
         sim::TrafficClass::kQuery});
    ++wire.descend_messages;
    if (!request.delivered) continue;  // member's matches are lost (fail-soft)

    std::vector<std::vector<const overlay::PublishedCluster*>> matched(
        num_layers);
    uint64_t response_bytes = 16;
    for (size_t layer = 0; layer < num_layers; ++layer) {
      if (!descend_layer[layer]) continue;
      for (const overlay::PublishedCluster& cluster :
           member_clusters_(m, static_cast<int>(layer))) {
        if (cluster.sphere.Intersects(key_spheres[layer])) {
          matched[layer].push_back(&cluster);
        }
      }
      response_bytes += matched[layer].size() *
                        ClusterWireBytes(layer_dims_[layer]);
    }
    const net::HopResult response = transport_->SendHop(
        {net::MessageType::kQueryFlood, m, querying_peer, response_bytes,
         sim::TrafficClass::kQuery});
    ++wire.descend_messages;
    if (!response.delivered) continue;

    for (size_t layer = 0; layer < num_layers; ++layer) {
      (*found_per_layer)[layer] += static_cast<int>(matched[layer].size());
      for (const overlay::PublishedCluster* cluster : matched[layer]) {
        if (seen_cluster_ids_[layer].insert(cluster->cluster_id).second) {
          (*out)[layer].matches.push_back(*cluster);
        }
      }
    }
    *completion_ms = std::max(
        *completion_ms, arrival_ms + request.latency_ms + response.latency_ms);
  }
}

bool BackboneManager::ServeRangePlan(
    const std::vector<geom::Sphere>& key_spheres, int querying_peer,
    bool conjunctive, std::vector<ProbeServeResult>* out) {
  const size_t num_layers = layer_dims_.size();
  HM_CHECK_EQ(key_spheres.size(), num_layers);
  // Counters stay per (domain, level) decision so digest-less and digested
  // runs compare like-for-like: one served plan is one probe per level.
  auto fallback = [&] {
    counters_.probes_fallback += static_cast<uint64_t>(num_layers);
    HM_OBS_COUNTER_ADD("backbone.fallbacks", 1);
    HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kBackboneProbe,
                 .src = querying_peer, .cause = 1);
    return false;
  };
  if (!elected_) return fallback();
  // Fail-soft gate: an election computed against a different radio graph may
  // route the walk into the void — hand the plan back to full CAN flooding.
  // (Fingerprints, not epochs: a mobility step that moved nodes without
  // flipping any link leaves the election perfectly valid.)
  if (GraphFingerprint() != election_graph_fp_) {
    return fallback();
  }
  if (querying_peer < 0 || querying_peer >= num_peers_ ||
      !fault_state_->up(querying_peer)) {
    return fallback();
  }
  const int root = election_.supernode_of[querying_peer];
  if (root < 0 || !fault_state_->up(root)) return fallback();

  out->assign(num_layers, ProbeServeResult());
  seen_cluster_ids_.assign(num_layers, {});
  double token_ms = 0.0;      // walk token position on the sim clock
  double completion_ms = 0.0; // latest domain response arrival
  // The single walk's messages are physical; their counts land on level 0's
  // result slot (the executor sums hop counts across levels anyway).
  ProbeServeResult& wire = (*out)[0];

  if (querying_peer != root) {
    const net::HopResult hop = transport_->SendHop(
        {net::MessageType::kRoute, querying_peer, root, kWalkBytes,
         sim::TrafficClass::kQuery});
    ++wire.walk_messages;
    if (!hop.delivered) return fallback();
    token_ms += hop.latency_ms;
  }

  const bool digestless = options_.digest_bits <= 0;
  std::vector<bool> stale(num_layers);
  std::vector<char> descend_layer(num_layers);
  std::vector<int> found(num_layers);
  std::vector<char> visited(num_peers_, 0);
  // DFS over the CDS inside the root's island; children pushed in descending
  // id order so pops come out ascending (deterministic walk order).
  std::vector<std::pair<int, int>> stack;
  stack.emplace_back(root, -1);
  while (!stack.empty()) {
    const auto [s, parent] = stack.back();
    stack.pop_back();
    if (visited[s]) continue;
    if (parent >= 0) {
      // The walk token moves parent -> s; losing it aborts to CAN (the
      // messages already spent stay spent — airtime is sunk, recall is not).
      const net::HopResult hop = transport_->SendHop(
          {net::MessageType::kRoute, parent, s, kWalkBytes,
           sim::TrafficClass::kQuery});
      ++wire.walk_messages;
      if (!hop.delivered) return fallback();
      token_ms += hop.latency_ms;
    }
    visited[s] = 1;
    counters_.domains_considered += static_cast<uint64_t>(num_layers);

    // Per-level digest verdicts, then the conjunctive collapse: under min or
    // product aggregation a peer missing from one level scores zero overall,
    // so a single fresh provably-no level rules the whole domain out — stale
    // levels included (the proof lives in the fresh level, not in them).
    bool provable_no = false;
    for (size_t layer = 0; layer < num_layers; ++layer) {
      bool layer_stale = false;
      const bool may = DomainMayMatch(s, static_cast<int>(layer),
                                      key_spheres[layer], &layer_stale);
      stale[layer] = layer_stale;
      descend_layer[layer] = may ? 1 : 0;
      if (!may) provable_no = true;
    }
    if (conjunctive && provable_no) {
      std::fill(descend_layer.begin(), descend_layer.end(), char{0});
    }

    bool any_descend = false;
    for (size_t layer = 0; layer < num_layers; ++layer) {
      ProbeServeResult& level_out = (*out)[layer];
      ++level_out.domains_total;
      if (descend_layer[layer]) {
        any_descend = true;
        ++level_out.domains_descended;
        ++counters_.domains_descended;
        if (stale[layer]) ++counters_.stale_descends;
      } else {
        ++level_out.domains_pruned;
        ++counters_.domains_pruned;
      }
    }
    HM_OBS_EVENT(.sim_ms = sim_->now(),
                 .kind = obs::EventKind::kBackboneDecision, .src = s,
                 .cause = !any_descend ? 1 : (stale[0] ? 2 : 0));
    if (any_descend) {
      std::fill(found.begin(), found.end(), 0);
      DescendDomain(s, key_spheres, descend_layer, querying_peer, token_ms,
                    out, &completion_ms, &found);
      for (size_t layer = 0; layer < num_layers; ++layer) {
        if (!descend_layer[layer] || stale[layer]) continue;
        // A fresh may-match that found nothing is a measured digest FP.
        if (found[layer] == 0) {
          ++counters_.descends_empty;
        } else {
          ++counters_.descends_matched;
        }
      }
    }

    const std::vector<int>& next = election_.cds_neighbors[s];
    for (auto it = next.rbegin(); it != next.rend(); ++it) {
      const int t = *it;
      if (visited[t] || !fault_state_->up(t)) continue;
      if (!topology_->SameIsland(root, t)) continue;
      // Leaf-skip: a degree-1 CDS neighbour whose digest copy (shipped to us
      // during the last exchange) provably cannot match never sees the walk
      // token at all — this is where exchanging digests pays for itself.
      // Conjunctive plans skip on any provably-no level; independent plans
      // need every level ruled out before the token can stay home.
      if (!digestless && election_.cds_neighbors[t].size() == 1) {
        const auto copy = neighbor_digests_[s].find(t);
        if (copy != neighbor_digests_[s].end() &&
            copy->second.received_ms >= 0.0 && copy->second.complete &&
            sim_->now() - copy->second.received_ms <= options_.digest_ttl_ms) {
          int no_levels = 0;
          for (size_t layer = 0; layer < num_layers; ++layer) {
            if (!copy->second.per_layer[layer].MayIntersect(
                    key_spheres[layer])) {
              ++no_levels;
            }
          }
          const bool skip = conjunctive
                                ? no_levels > 0
                                : no_levels == static_cast<int>(num_layers);
          if (skip) {
            visited[t] = 1;
            for (size_t layer = 0; layer < num_layers; ++layer) {
              ++(*out)[layer].domains_total;
              ++(*out)[layer].domains_pruned;
            }
            counters_.domains_considered += static_cast<uint64_t>(num_layers);
            counters_.domains_pruned += static_cast<uint64_t>(num_layers);
            ++counters_.leaf_skips;
            HM_OBS_EVENT(.sim_ms = sim_->now(),
                         .kind = obs::EventKind::kBackboneDecision, .src = t,
                         .cause = 1);
            continue;
          }
        }
      }
      stack.emplace_back(t, s);
    }
  }

  const double latency_ms = std::max(token_ms, completion_ms);
  int descended = 0;
  for (size_t layer = 0; layer < num_layers; ++layer) {
    (*out)[layer].latency_ms = latency_ms;
    descended += (*out)[layer].domains_descended;
  }
  counters_.probes_served += static_cast<uint64_t>(num_layers);
  HM_OBS_COUNTER_ADD("backbone.probes_served", 1);
  HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kBackboneProbe,
               .src = querying_peer, .cause = 0, .value = latency_ms,
               .aux = descended);
  return true;
}

}  // namespace hyperm::backbone
