// Distributed DS → CDS supernode election over the radio graph.
//
// Model: every up node knows its 1-hop up-neighborhood (radio beacons) and,
// through one extra beacon round, its neighbors' candidate priorities — the
// classic "parallel greedy" dominating-set construction. Each round, every
// uncovered node nominates the highest-priority candidate in its closed
// up-neighborhood (priority = (#uncovered it would cover, lower id)); a
// nominated candidate accepts iff no nominated candidate within two hops
// beats it. The globally best nominated candidate always accepts, so every
// round makes progress and the loop terminates in O(rounds) beacon exchanges.
//
// The DS is then lifted to a *connected* DS per radio island by the standard
// 3-hop theorem: in any connected graph, the graph over dominators with
// edges between dominators at hop distance <= 3 is connected. Interior nodes
// of one shortest path per such pair become connectors.
//
// Stickiness: a previous supernode that is still up keeps its role unless it
// is provably redundant (its closed neighborhood is already dominated by
// other supernodes), which keeps re-elections incremental under mobility.
//
// This module is pure graph computation — deterministic, message-free — so
// it can be unit-tested exhaustively; BackboneManager charges the election's
// beacon/affiliation message cost to the transport separately.

#ifndef HYPERM_BACKBONE_ELECTION_H_
#define HYPERM_BACKBONE_ELECTION_H_

#include <vector>

namespace hyperm::backbone {

struct ElectionResult {
  std::vector<char> is_supernode;          ///< per node
  std::vector<char> is_connector;          ///< per node (CDS glue, non-supernode)
  std::vector<int> supernode_of;           ///< affiliation; self for supernodes, -1 for down nodes
  std::vector<std::vector<int>> cds_neighbors;  ///< per supernode: supernodes within 3 hops, ascending
  std::vector<std::vector<int>> members_of;     ///< per supernode: affiliated nodes incl. itself, ascending
  int rounds = 0;                          ///< greedy rounds until full domination
  int num_supernodes = 0;
};

/// Elects a CDS over the subgraph induced by `up` nodes.
///
/// `neighbors[v]` lists v's radio neighbors in ascending id order (the
/// ManetTopology contract). `previous`, when non-null, is the prior
/// election's is_supernode vector for stickiness.
ElectionResult ElectCds(const std::vector<std::vector<int>>& neighbors,
                        const std::vector<char>& up,
                        const std::vector<char>* previous = nullptr);

}  // namespace hyperm::backbone

#endif  // HYPERM_BACKBONE_ELECTION_H_
