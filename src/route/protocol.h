// The routing seam: who decides a packet's forwarding path.
//
// PR 10 pulls path selection out of channel::RadioChannel::Transmit into a
// RoutingProtocol consulted once per transmission attempt. Two
// implementations:
//
//  * OracleRouting (route/oracle.h) — the default. Wraps the topology's
//    epoch-cached global BFS bit-identically to the pre-seam channel: an
//    O(1) same-island pre-check keeps unreachable drops BFS-free on
//    symmetric graphs, then the cached shortest path. Omniscient: it knows
//    the current connectivity the instant mobility changes it.
//
//  * AodvRouting (route/aodv.h) — an AODV-flavoured distributed protocol:
//    per-node route caches with soft-state expiry, RREQ flood discovery
//    with sequence numbers on a cache miss, RERR propagation when the MAC
//    reports a broken link. Staleness costs airtime and latency (control
//    frames burn real MAC time and discoveries delay the data), never
//    delivery-accounting correctness: within one Transmit the topology is
//    frozen (mobility only steps between simulator events), so a resolved
//    path is valid for the frames that follow it, and a failed discovery
//    means the destination is genuinely unreachable right now.
//
// The seam contract RadioChannel relies on (DESIGN.md §16):
//  - Resolve fills `path` with the full node sequence src..dst (both
//    endpoints) and returns found=false with an empty path when no route
//    exists this attempt.
//  - control_latency_ms is serialized *before* the data frames — the
//    channel starts forwarding at now + control_latency_ms.
//  - OnLinkBreak is the MAC's retransmit-failure feedback; protocols react
//    by invalidating state, never by failing the current call.

#ifndef HYPERM_ROUTE_PROTOCOL_H_
#define HYPERM_ROUTE_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace hyperm::channel {
class MacModel;
}
namespace hyperm::manet {
class ManetTopology;
}

namespace hyperm::route {

/// Routing configuration (one member of ChannelOptions). The default keeps
/// the omniscient oracle, so existing configurations are unchanged.
struct RoutingOptions {
  enum class Kind {
    kOracle = 0,  ///< epoch-cached global BFS (bit-identical default)
    kAodv,        ///< distributed discovery with soft-state route caches
  };
  Kind kind = Kind::kOracle;

  // AODV knobs (ignored by the oracle).
  double route_ttl_ms = 5000.0;   ///< soft-state expiry of cached routes
  uint64_t control_bytes = 32;    ///< RREQ/RREP/RERR frame payload size

  Status Validate() const;
};

/// Running totals a protocol exposes for benches and tests. The oracle only
/// moves resolutions/unreachable; everything else is AODV bookkeeping.
struct RoutingCounters {
  uint64_t resolutions = 0;         ///< Resolve calls
  uint64_t unreachable = 0;         ///< resolutions with no route
  uint64_t cache_hits = 0;          ///< served by a cached route walk
  uint64_t cache_expiries = 0;      ///< entries dropped by TTL during a walk
  uint64_t stale_routes = 0;        ///< entries whose next hop moved away
  uint64_t discoveries = 0;         ///< RREQ floods started
  uint64_t discovery_failures = 0;  ///< floods that never reached the target
  uint64_t control_frames = 0;      ///< RREQ/RREP/RERR frames charged
  uint64_t control_bytes = 0;       ///< payload bytes of those frames
  uint64_t link_breaks = 0;         ///< OnLinkBreak notifications
  uint64_t route_errors = 0;        ///< entries invalidated by link breaks
};

/// Outcome of one path resolution.
struct RouteResolution {
  bool found = false;             ///< `path` holds a full src..dst sequence
  bool discovered = false;        ///< a discovery round ran on this attempt
  double control_latency_ms = 0;  ///< discovery time serialized before data
};

/// The seam consulted by RadioChannel::Transmit once per attempt.
/// Single-threaded by contract, like the channel that owns it.
class RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;

  /// Resolves the forwarding path for `message` (src -> dst) at `now` into
  /// `path`. found=false: no route this attempt (the channel charges the
  /// unreachable transmission exactly as before).
  virtual RouteResolution Resolve(const net::Message& message, sim::TimeMs now,
                                  std::vector<int>& path) = 0;

  /// Link-layer feedback: the MAC exhausted its retries on node->neighbor.
  virtual void OnLinkBreak(int node, int neighbor, sim::TimeMs now) {
    (void)node;
    (void)neighbor;
    (void)now;
  }

  virtual const RoutingCounters& counters() const = 0;

  /// Short protocol label for reports ("oracle", "aodv").
  virtual const char* name() const = 0;
};

/// Factory keyed on options.kind. `topology` must outlive the protocol;
/// `mac` is required by kAodv (control frames burn airtime through it) and
/// ignored by the oracle.
Result<std::unique_ptr<RoutingProtocol>> CreateRouting(
    const RoutingOptions& options, const manet::ManetTopology* topology,
    channel::MacModel* mac);

}  // namespace hyperm::route

#endif  // HYPERM_ROUTE_PROTOCOL_H_
