#include "route/aodv.h"
#include "route/oracle.h"
#include "route/protocol.h"

namespace hyperm::route {

Result<std::unique_ptr<RoutingProtocol>> CreateRouting(
    const RoutingOptions& options, const manet::ManetTopology* topology,
    channel::MacModel* mac) {
  HM_RETURN_IF_ERROR(options.Validate());
  switch (options.kind) {
    case RoutingOptions::Kind::kOracle:
      return std::unique_ptr<RoutingProtocol>(new OracleRouting(topology));
    case RoutingOptions::Kind::kAodv:
      if (mac == nullptr) {
        return InvalidArgumentError("CreateRouting: AODV needs a MacModel");
      }
      return std::unique_ptr<RoutingProtocol>(
          new AodvRouting(topology, mac, options));
  }
  return InvalidArgumentError("RoutingOptions: unknown kind");
}

}  // namespace hyperm::route
