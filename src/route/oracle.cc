#include "route/oracle.h"

#include "common/check.h"

namespace hyperm::route {

Status RoutingOptions::Validate() const {
  if (route_ttl_ms <= 0.0) {
    return InvalidArgumentError("RoutingOptions: route_ttl_ms <= 0");
  }
  if (control_bytes == 0) {
    return InvalidArgumentError("RoutingOptions: control_bytes == 0");
  }
  return OkStatus();
}

OracleRouting::OracleRouting(const manet::ManetTopology* topology)
    : topology_(topology) {
  HM_CHECK(topology != nullptr);
}

RouteResolution OracleRouting::Resolve(const net::Message& message,
                                       sim::TimeMs now,
                                       std::vector<int>& path) {
  (void)now;  // omniscient: always current, never stale
  ++counters_.resolutions;
  RouteResolution res;
  if (topology_->symmetric()) {
    // Exactly the legacy channel sequence: the island lookup costs no BFS,
    // so an unreachable drop leaves the route cache untouched.
    if (!topology_->SameIsland(message.src, message.dst)) {
      ++counters_.unreachable;
      path.clear();
      return res;
    }
    topology_->ShortestPathInto(message.src, message.dst, path);
    HM_CHECK(!path.empty());  // same island, so the cached tree reaches dst
    res.found = true;
    return res;
  }
  // Digraph: one-way links cross SCC boundaries, so only the directed BFS
  // tree knows the truth.
  topology_->ShortestPathInto(message.src, message.dst, path);
  res.found = !path.empty();
  if (!res.found) ++counters_.unreachable;
  return res;
}

}  // namespace hyperm::route
