// AODV-flavoured distributed route discovery over the MAC seam.
//
// Per-node route tables (dst -> {next hop, hop count, sequence number,
// soft-state expiry}) answer Resolve by walking next hops from the source;
// every hop is validated against the *current* out-neighbour lists, so a
// mobility epoch that moved a relay out of range turns the walk into a
// cache miss instead of a wrong delivery. A miss triggers an RREQ flood —
// breadth-first over ascending out-neighbour lists, so discovered routes
// match the oracle's hop counts on static symmetric graphs — whose frames
// burn real airtime through the MacModel; the RREP unicasts back along the
// reverse path installing forward routes, and every flooded node learns its
// reverse route to the origin for free (standard AODV behaviour).
//
// Staleness therefore costs control airtime and discovery latency, never
// delivery-accounting correctness: within one Transmit the topology is
// frozen, so a path that validates is a path the frames can follow, and a
// flood that fails proves the destination is unreachable right now.
//
// RERR: when the MAC exhausts retransmits on a link (OnLinkBreak), the
// detecting node drops every route through the dead neighbour, broadcasts
// one RERR frame, and direct precursors (nodes whose next hop toward an
// affected destination is the detecting node) drop theirs too. Deeper
// stale chains are caught lazily by walk validation.
//
// Determinism: no randomness at all — discovery order is the deterministic
// BFS, timing comes from the MAC, and route tables are std::map so
// iteration order is stable across platforms.

#ifndef HYPERM_ROUTE_AODV_H_
#define HYPERM_ROUTE_AODV_H_

#include <map>
#include <vector>

#include "channel/mac.h"
#include "manet/topology.h"
#include "route/protocol.h"

namespace hyperm::route {

class AodvRouting : public RoutingProtocol {
 public:
  /// `topology` and `mac` are not owned and must outlive the protocol; the
  /// MAC is how control frames turn into airtime and queue pressure.
  AodvRouting(const manet::ManetTopology* topology, channel::MacModel* mac,
              const RoutingOptions& options);

  RouteResolution Resolve(const net::Message& message, sim::TimeMs now,
                          std::vector<int>& path) override;
  void OnLinkBreak(int node, int neighbor, sim::TimeMs now) override;
  const RoutingCounters& counters() const override { return counters_; }
  const char* name() const override { return "aodv"; }

  /// Cached route entries at `node` (tests inspect soft-state behaviour).
  int RouteTableSize(int node) const;

 private:
  struct Entry {
    int next_hop = -1;
    int hops = 0;
    uint64_t seq = 0;              ///< destination sequence number at install
    sim::TimeMs expires_ms = 0.0;  ///< soft-state TTL
  };

  /// Follows cached next hops src -> dst, validating each against the
  /// current out-neighbour lists and TTLs. Fills `path` and returns true on
  /// a complete valid walk; otherwise erases the offending entry and
  /// returns false with `path` cleared.
  bool WalkCachedRoute(int src, int dst, sim::TimeMs now,
                       std::vector<int>& path);

  /// RREQ flood + RREP back-propagation. Returns true when dst was reached;
  /// `control_ms` is the end-to-end discovery latency charged before data.
  bool Discover(const net::Message& message, sim::TimeMs now,
                double& control_ms);

  bool IsOutNeighbor(int node, int next) const;

  const manet::ManetTopology* topology_;  // not owned
  channel::MacModel* mac_;                // not owned
  RoutingOptions options_;
  std::vector<std::map<int, Entry>> table_;  // per node: dst -> route
  std::vector<uint64_t> seq_;                // per-node sequence numbers
  RoutingCounters counters_;

  // BFS scratch, reused across discoveries (single-threaded).
  std::vector<int> parent_;
  std::vector<int> frontier_;
  std::vector<double> reach_ms_;
  std::vector<char> on_path_;  // loop guard for cached-route walks
};

}  // namespace hyperm::route

#endif  // HYPERM_ROUTE_AODV_H_
