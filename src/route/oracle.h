// The omniscient default: epoch-cached global BFS, bit-identical to the
// pre-seam RadioChannel::Transmit path selection.

#ifndef HYPERM_ROUTE_ORACLE_H_
#define HYPERM_ROUTE_ORACLE_H_

#include "manet/topology.h"
#include "route/protocol.h"

namespace hyperm::route {

/// Wraps manet::ManetTopology's cached shortest paths. On symmetric
/// topologies the resolve sequence is exactly the legacy channel's:
/// SameIsland pre-check (O(1), keeps unreachable drops BFS-free and the
/// channel.route_cache.* counters bit-identical), then ShortestPathInto.
/// Digraphs skip the island shortcut — one-way paths cross SCC boundaries —
/// and ask the directed BFS tree directly.
class OracleRouting : public RoutingProtocol {
 public:
  explicit OracleRouting(const manet::ManetTopology* topology);

  RouteResolution Resolve(const net::Message& message, sim::TimeMs now,
                          std::vector<int>& path) override;
  const RoutingCounters& counters() const override { return counters_; }
  const char* name() const override { return "oracle"; }

 private:
  const manet::ManetTopology* topology_;  // not owned
  RoutingCounters counters_;
};

}  // namespace hyperm::route

#endif  // HYPERM_ROUTE_ORACLE_H_
