#include "route/aodv.h"

#include <algorithm>

#include "common/check.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace hyperm::route {

AodvRouting::AodvRouting(const manet::ManetTopology* topology,
                         channel::MacModel* mac, const RoutingOptions& options)
    : topology_(topology), mac_(mac), options_(options) {
  HM_CHECK(topology != nullptr);
  HM_CHECK(mac != nullptr);
  const size_t n = static_cast<size_t>(topology->num_nodes());
  table_.resize(n);
  seq_.assign(n, 0);
  on_path_.assign(n, 0);
}

int AodvRouting::RouteTableSize(int node) const {
  HM_CHECK_GE(node, 0);
  HM_CHECK_LT(node, static_cast<int>(table_.size()));
  return static_cast<int>(table_[static_cast<size_t>(node)].size());
}

bool AodvRouting::IsOutNeighbor(int node, int next) const {
  const std::vector<int>& out = topology_->neighbors(node);
  return std::binary_search(out.begin(), out.end(), next);
}

bool AodvRouting::WalkCachedRoute(int src, int dst, sim::TimeMs now,
                                  std::vector<int>& path) {
  path.clear();
  path.push_back(src);
  on_path_[static_cast<size_t>(src)] = 1;
  bool ok = false;
  int cur = src;
  while (true) {
    if (cur == dst) {
      ok = true;
      break;
    }
    std::map<int, Entry>& routes = table_[static_cast<size_t>(cur)];
    const auto it = routes.find(dst);
    if (it == routes.end()) break;
    const Entry& entry = it->second;
    if (entry.expires_ms <= now) {
      // Soft state: the entry outlived its TTL; forget it and rediscover.
      ++counters_.cache_expiries;
      routes.erase(it);
      break;
    }
    if (!IsOutNeighbor(cur, entry.next_hop)) {
      // Mobility moved the next hop out of range since the route was
      // installed — the connectivity-epoch hook that turns staleness into
      // a rediscovery instead of a wrong forward.
      ++counters_.stale_routes;
      routes.erase(it);
      break;
    }
    const int next = entry.next_hop;
    if (on_path_[static_cast<size_t>(next)]) break;  // stale loop
    on_path_[static_cast<size_t>(next)] = 1;
    path.push_back(next);
    cur = next;
  }
  for (int node : path) on_path_[static_cast<size_t>(node)] = 0;
  if (!ok) path.clear();
  return ok;
}

bool AodvRouting::Discover(const net::Message& message, sim::TimeMs now,
                           double& control_ms) {
  const int src = message.src;
  const int dst = message.dst;
  const int n = topology_->num_nodes();
  parent_.assign(static_cast<size_t>(n), -1);
  reach_ms_.assign(static_cast<size_t>(n), 0.0);
  frontier_.clear();
  parent_[static_cast<size_t>(src)] = src;
  reach_ms_[static_cast<size_t>(src)] = now;
  frontier_.push_back(src);
  net::Message control;
  control.type = net::MessageType::kControl;
  control.src = src;
  control.dst = dst;
  control.bytes = options_.control_bytes;
  control.cls = message.cls;  // attributed to the traffic that caused it
  // RREQ flood: breadth-first over ascending out-neighbour lists (the
  // oracle's BFS tie-break, so hop counts match it on static symmetric
  // graphs). Every reached node rebroadcasts once — real airtime through
  // the MAC — except the destination, which answers instead.
  double last_ms = now;
  for (size_t cursor = 0; cursor < frontier_.size(); ++cursor) {
    const int node = frontier_[cursor];
    if (node == dst) continue;
    const channel::FrameResult fr = mac_->SendFrame(
        node, /*receiver=*/-1, control, reach_ms_[static_cast<size_t>(node)]);
    ++counters_.control_frames;
    counters_.control_bytes += control.bytes;
    last_ms = std::max(last_ms, fr.done_ms);
    for (int next : topology_->neighbors(node)) {
      if (parent_[static_cast<size_t>(next)] >= 0) continue;
      parent_[static_cast<size_t>(next)] = node;
      reach_ms_[static_cast<size_t>(next)] = fr.done_ms;
      frontier_.push_back(next);
    }
  }
  if (parent_[static_cast<size_t>(dst)] < 0) {
    // The flood drained without touching dst: genuinely unreachable now.
    // The source only learns that after the whole flood has died down.
    control_ms = last_ms - now;
    return false;
  }
  // Every flooded node heard the RREQ from its BFS parent — that parent is
  // its next hop back toward the origin (the free reverse routes standard
  // AODV installs).
  const sim::TimeMs expires = now + options_.route_ttl_ms;
  for (int v = 0; v < n; ++v) {
    if (v == src || parent_[static_cast<size_t>(v)] < 0) continue;
    Entry& back = table_[static_cast<size_t>(v)][src];
    back.next_hop = parent_[static_cast<size_t>(v)];
    back.seq = seq_[static_cast<size_t>(src)];
    back.expires_ms = expires;
    int hops = 0;
    for (int w = v; w != src; w = parent_[static_cast<size_t>(w)]) ++hops;
    back.hops = hops;
  }
  // RREP: the destination answers with a fresh sequence number, unicast
  // hop-by-hop along the reverse path; each relay installs its forward
  // route to dst as the reply passes through. A collision-dropped RREP
  // still installs the route — the retransmit cost was charged in airtime,
  // and modelling control-plane loss as extra latency (not failure) keeps
  // delivery accounting exact.
  const uint64_t dst_seq = ++seq_[static_cast<size_t>(dst)];
  double t = reach_ms_[static_cast<size_t>(dst)];
  int hops_to_dst = 0;
  for (int cur = dst; cur != src;) {
    const int prev = parent_[static_cast<size_t>(cur)];
    const channel::FrameResult fr = mac_->SendFrame(cur, prev, control, t);
    ++counters_.control_frames;
    counters_.control_bytes += control.bytes;
    t = fr.done_ms;
    ++hops_to_dst;
    Entry& fwd = table_[static_cast<size_t>(prev)][dst];
    fwd.next_hop = cur;
    fwd.hops = hops_to_dst;
    fwd.seq = dst_seq;
    fwd.expires_ms = expires;
    cur = prev;
  }
  control_ms = t - now;
  return true;
}

RouteResolution AodvRouting::Resolve(const net::Message& message,
                                     sim::TimeMs now, std::vector<int>& path) {
  ++counters_.resolutions;
  RouteResolution res;
  if (WalkCachedRoute(message.src, message.dst, now, path)) {
    ++counters_.cache_hits;
    res.found = true;
    return res;
  }
  ++counters_.discoveries;
  HM_OBS_COUNTER_ADD("route.discoveries", 1);
  const uint64_t frames_before = counters_.control_frames;
  double control_ms = 0.0;
  const bool found = Discover(message, now, control_ms);
  res.discovered = true;
  res.control_latency_ms = control_ms;
  HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kRouteDiscover,
               .src = message.src, .dst = message.dst,
               .cause = found ? 0 : 1, .value = control_ms,
               .aux = static_cast<int64_t>(counters_.control_frames -
                                           frames_before));
  HM_OBS_COUNTER_ADD("route.control_frames",
                     counters_.control_frames - frames_before);
  if (!found) {
    ++counters_.discovery_failures;
    ++counters_.unreachable;
    HM_OBS_COUNTER_ADD("route.discovery_failures", 1);
    path.clear();
    return res;
  }
  // The flood just installed a fresh hop-by-hop route and the topology is
  // frozen within this Transmit, so the walk must succeed.
  const bool ok = WalkCachedRoute(message.src, message.dst, now, path);
  HM_CHECK(ok);
  ++counters_.cache_hits;
  res.found = true;
  return res;
}

void AodvRouting::OnLinkBreak(int node, int neighbor, sim::TimeMs now) {
  ++counters_.link_breaks;
  // Drop every route at the detecting node that forwards through the dead
  // neighbour, remembering the destinations for the RERR.
  std::vector<int> dead_dsts;
  std::map<int, Entry>& routes = table_[static_cast<size_t>(node)];
  for (auto it = routes.begin(); it != routes.end();) {
    if (it->second.next_hop == neighbor) {
      dead_dsts.push_back(it->first);
      it = routes.erase(it);
      ++counters_.route_errors;
    } else {
      ++it;
    }
  }
  int invalidated = static_cast<int>(dead_dsts.size());
  if (!dead_dsts.empty()) {
    // One RERR broadcast from the detecting node; direct precursors (nodes
    // whose next hop toward an affected destination is `node`) drop their
    // entries too. Deeper chains are caught lazily by walk validation.
    net::Message rerr;
    rerr.type = net::MessageType::kControl;
    rerr.src = node;
    rerr.dst = neighbor;
    rerr.bytes = options_.control_bytes;
    mac_->SendFrame(node, /*receiver=*/-1, rerr, now);
    ++counters_.control_frames;
    counters_.control_bytes += rerr.bytes;
    const int n = topology_->num_nodes();
    for (int u = 0; u < n; ++u) {
      if (u == node) continue;
      std::map<int, Entry>& up = table_[static_cast<size_t>(u)];
      for (int dst : dead_dsts) {
        const auto it = up.find(dst);
        if (it != up.end() && it->second.next_hop == node) {
          up.erase(it);
          ++counters_.route_errors;
          ++invalidated;
        }
      }
    }
  }
  if (invalidated > 0) {
    HM_OBS_COUNTER_ADD("route.errors", static_cast<uint64_t>(invalidated));
  }
  HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kRouteError,
               .src = node, .dst = neighbor, .aux = invalidated);
}

}  // namespace hyperm::route
