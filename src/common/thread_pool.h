// A deterministic, work-stealing-free thread pool.
//
// Hyper-M's hot loops (per-peer wavelet decomposition, per-(peer, layer)
// k-means, per-layer overlay range queries) are embarrassingly parallel:
// every task writes only its own pre-sized output slot. The pool therefore
// needs no futures, no per-task queues and no stealing — one shared atomic
// cursor hands out indices, and determinism falls out of the task structure
// (disjoint writes + an ordered drain on the calling thread) rather than
// from the scheduler.
//
// Contract for ParallelFor tasks:
//   * tasks must only write state no other task touches (their own slot),
//     or mutate explicitly thread-safe sinks (atomic NetworkStats counters,
//     obs counters/histograms);
//   * tasks must not open tracer spans (the span tracer is owned by the
//     calling thread; see obs/trace.h and DESIGN.md §8);
//   * tasks must not throw (the codebase reports errors via Status values
//     stored into the task's slot).
//
// `ThreadPool(1)` spawns no workers at all and runs every ParallelFor body
// inline on the calling thread, in index order — exactly the sequential
// code path, which is the escape hatch `HyperMOptions::num_threads = 1`
// exposes.

#ifndef HYPERM_COMMON_THREAD_POOL_H_
#define HYPERM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hyperm {

/// Fixed-size pool executing index-space fan-outs. The calling thread
/// participates in the work, so `num_threads` is the total concurrency
/// (a pool of 1 is a plain loop). Workers are started once and parked
/// between calls; ParallelFor blocks until every index has run.
class ThreadPool {
 public:
  /// Creates a pool of `num_threads` total lanes (clamped to >= 1;
  /// `num_threads - 1` background workers are spawned).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (worker threads + the calling thread).
  int num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency(), floored at 1 (the value is 0 on
  /// platforms that cannot report it).
  static int DefaultNumThreads();

  /// Runs `fn(i)` for every i in [0, n), distributing indices over all
  /// lanes, and returns once all have completed. Results are deterministic
  /// iff tasks honour the disjoint-writes contract above; the *execution*
  /// order is unspecified. Must not be called concurrently with itself and
  /// must not be nested inside a task.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  void RunTasks();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;   // workers wait here for a generation bump
  std::condition_variable cv_done_;   // caller waits here for workers_working_ == 0
  uint64_t generation_ = 0;           // bumped once per ParallelFor (guarded by mu_)
  int workers_working_ = 0;           // workers not yet done with this generation
  bool stop_ = false;

  // Current job; written under mu_ before the generation bump, read by
  // workers after they observe the bump (release/acquire via mu_).
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t n_ = 0;
  std::atomic<size_t> next_{0};
};

}  // namespace hyperm

#endif  // HYPERM_COMMON_THREAD_POOL_H_
