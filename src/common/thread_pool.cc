#include "common/thread_pool.h"

#include <algorithm>

namespace hyperm {

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::DefaultNumThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Sequential path: index order, calling thread, no synchronization.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    workers_working_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_work_.notify_all();
  RunTasks();  // the calling thread is a lane too
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return workers_working_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::RunTasks() {
  for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n_;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    (*fn_)(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    RunTasks();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_working_;
    }
    // ParallelFor only returns once every worker has checked in, so fn_/n_
    // stay valid for the whole generation.
    cv_done_.notify_one();
  }
}

}  // namespace hyperm
