// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the library (data generators, k-means++
// seeding, simulator jitter) draw from `Rng` so that every experiment is
// reproducible from a single seed.

#ifndef HYPERM_COMMON_RNG_H_
#define HYPERM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hyperm {

/// xoshiro256** generator seeded via SplitMix64.
///
/// Small, fast and with well-understood statistical quality; deliberately not
/// std::mt19937 so that streams are stable across standard libraries.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextIndex(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal variate (Marsaglia polar method).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential variate with the given rate (> 0).
  double Exponential(double rate);

  /// Gamma(shape, 1) variate, shape > 0 (Marsaglia–Tsang).
  double Gamma(double shape);

  /// Symmetric Dirichlet sample of the given dimension and concentration;
  /// entries are non-negative and sum to 1.
  std::vector<double> Dirichlet(int dim, double concentration);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextIndex(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each peer or
  /// worker its own stream while keeping the experiment one-seed reproducible.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Mixes `(seed, a, b)` into one well-distributed 64-bit stream seed
/// (SplitMix64-based). This is how parallel fan-outs derive a private,
/// reproducible `Rng` per task — e.g. `Rng(MixSeed(base, peer, layer))` —
/// so results are bit-identical at any thread count: the stream depends
/// only on the task's identity, never on scheduling order.
uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b = 0);

}  // namespace hyperm

#endif  // HYPERM_COMMON_RNG_H_
