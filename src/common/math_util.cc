#include "common/math_util.h"

#include <cmath>

#include "common/check.h"

namespace hyperm {
namespace {

// Continued-fraction core of the incomplete beta function (Numerical Recipes
// style modified Lentz algorithm).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 500;
  constexpr double kEpsilon = 1e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    // Even step.
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  // glibc's lgamma writes the global `signgam`, which races when the thread
  // pool evaluates sphere volumes concurrently; use the reentrant variant.
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double LogFactorial(int n) {
  HM_CHECK_GE(n, 0);
  return LogGamma(static_cast<double>(n) + 1.0);
}

double LogDoubleFactorial(int n) {
  HM_CHECK_GE(n, -1);
  if (n <= 0) return 0.0;  // (-1)!! = 0!! = 1.
  if (n % 2 == 0) {
    // n!! = 2^(n/2) * (n/2)!
    const int half = n / 2;
    return half * std::log(2.0) + LogFactorial(half);
  }
  // n!! = n! / ((n-1)!!) = n! / (2^((n-1)/2) * ((n-1)/2)!)
  const int half = (n - 1) / 2;
  return LogFactorial(n) - half * std::log(2.0) - LogFactorial(half);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  HM_CHECK_GT(a, 0.0);
  HM_CHECK_GT(b, 0.0);
  HM_CHECK_GE(x, 0.0);
  HM_CHECK_LE(x, 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;

  const double log_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                           a * std::log(x) + b * std::log1p(-x);
  // Use the continued fraction directly where it converges fast, otherwise
  // use the symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(log_front) * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - std::exp(log_front) * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double LogSumExp(double a, double b) {
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  if (std::isinf(hi) && hi < 0) return hi;  // both -inf
  return hi + std::log1p(std::exp(lo - hi));
}

bool AlmostEqual(double a, double b, double abs_tol, double rel_tol) {
  const double diff = std::fabs(a - b);
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

int64_t NextPowerOfTwo(int64_t n) {
  HM_CHECK_GE(n, 1);
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool IsPowerOfTwo(int64_t n) { return n >= 1 && (n & (n - 1)) == 0; }

int Log2Exact(int64_t n) {
  HM_CHECK(IsPowerOfTwo(n)) << "n=" << n;
  int log = 0;
  while ((int64_t{1} << log) < n) ++log;
  return log;
}

}  // namespace hyperm
