#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace hyperm {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  HM_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextIndex(uint64_t n) {
  HM_CHECK_GT(n, 0u);
  // Rejection sampling over the largest multiple of n.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % n);
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return v % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HM_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextIndex(span));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  HM_CHECK_GT(rate, 0.0);
  // 1 - NextDouble() is in (0,1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / rate;
}

double Rng::Gamma(double shape) {
  HM_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang trick).
    const double u = NextDouble();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(int dim, double concentration) {
  HM_CHECK_GT(dim, 0);
  HM_CHECK_GT(concentration, 0.0);
  std::vector<double> sample(static_cast<size_t>(dim));
  double total = 0.0;
  for (double& x : sample) {
    x = Gamma(concentration);
    total += x;
  }
  if (total <= 0.0) {
    // Degenerate draw (all zeros from tiny concentration): fall back to uniform.
    const double uniform = 1.0 / dim;
    for (double& x : sample) x = uniform;
    return sample;
  }
  for (double& x : sample) x /= total;
  return sample;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b) {
  // Three SplitMix64 rounds with the inputs folded in between; each fold
  // perturbs the walking state so (seed, a, b), (seed, b, a) and
  // (seed, a+1, b-1) land in unrelated streams.
  uint64_t x = seed;
  uint64_t out = SplitMix64(x);
  x ^= a * 0x9e3779b97f4a7c15ULL;
  out ^= SplitMix64(x);
  x ^= b * 0xbf58476d1ce4e5b9ULL;
  out ^= SplitMix64(x);
  return out;
}

}  // namespace hyperm
