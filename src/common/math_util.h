// Special functions used by the geometry module: log-gamma based helpers and
// the regularized incomplete beta function. Implemented locally so that the
// library has no dependency beyond the C++ standard library.

#ifndef HYPERM_COMMON_MATH_UTIL_H_
#define HYPERM_COMMON_MATH_UTIL_H_

#include <cstdint>

namespace hyperm {

/// Natural log of the gamma function (thin wrapper over std::lgamma, kept
/// here so callers do not depend on <cmath> details).
double LogGamma(double x);

/// log(n!) for n >= 0.
double LogFactorial(int n);

/// log of the double factorial n!! for n >= -1 (with (-1)!! = 0!! = 1).
double LogDoubleFactorial(int n);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1], computed with the Lentz continued-fraction expansion.
/// Accuracy ~1e-12 over the tested domain.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Numerically stable log(exp(a) + exp(b)).
double LogSumExp(double a, double b);

/// True iff |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool AlmostEqual(double a, double b, double abs_tol = 1e-12, double rel_tol = 1e-9);

/// Smallest power of two >= n (n >= 1). Fatal on n < 1.
int64_t NextPowerOfTwo(int64_t n);

/// True iff n is a power of two (n >= 1).
bool IsPowerOfTwo(int64_t n);

/// Integer base-2 logarithm of a power of two. Fatal if n is not one.
int Log2Exact(int64_t n);

}  // namespace hyperm

#endif  // HYPERM_COMMON_MATH_UTIL_H_
