// Deterministic RNG-stream families derived from one root seed.
//
// Every stochastic subsystem follows the same pattern: a single root seed,
// plus one independent `Rng` per task identity derived via
// `Rng(MixSeed(root, a, b))` — per message, per node, per (peer, layer) —
// so that the draw sequence depends only on *what* is being randomized,
// never on scheduling or thread count. Before this helper the pattern was
// hand-rolled at each site (transport, radio channel, workload generator,
// network fan-outs); SeedStream names it once.
//
// Two access styles:
//  * `At(a, b)` — a stream keyed by explicit task identity (node id, salt).
//  * `Next()` — the sequential dispenser: the n-th call returns the stream
//    keyed by n. This is the transport's per-message pattern
//    (`Rng(MixSeed(seed, next_msg_id_++))`) — deterministic because the
//    call sites themselves are serialized (single simulator thread).
//
// Bit-compatibility contract: `At(a, b)` seeds with exactly
// `MixSeed(root, a, b)` and `Next()` with `MixSeed(root, n++)`, so replacing
// a hand-rolled call site with SeedStream never changes a draw sequence —
// the existing determinism tests double as the refactor's regression net.

#ifndef HYPERM_COMMON_SEED_STREAM_H_
#define HYPERM_COMMON_SEED_STREAM_H_

#include <cstdint>

#include "common/rng.h"

namespace hyperm {

class SeedStream {
 public:
  explicit SeedStream(uint64_t root) : root_(root) {}

  /// The stream keyed by task identity `(a, b)`.
  Rng At(uint64_t a, uint64_t b = 0) const { return Rng(SeedAt(a, b)); }

  /// The raw derived seed for `(a, b)` — for callers that store seeds
  /// rather than generators (e.g. nested SeedStream families).
  uint64_t SeedAt(uint64_t a, uint64_t b = 0) const {
    return MixSeed(root_, a, b);
  }

  /// Sequential dispenser: the n-th call (0-based) returns `At(n)`. Call
  /// sites must be serialized (they are: transports and channels are
  /// single-threaded by design).
  Rng Next() { return At(next_++); }

  /// Streams handed out by Next() so far.
  uint64_t issued() const { return next_; }

  uint64_t root() const { return root_; }

 private:
  uint64_t root_;
  uint64_t next_ = 0;
};

}  // namespace hyperm

#endif  // HYPERM_COMMON_SEED_STREAM_H_
