// Result<T>: value-or-Status, the exception-free return channel used across
// the Hyper-M codebase (a minimal analogue of absl::StatusOr<T>).

#ifndef HYPERM_COMMON_RESULT_H_
#define HYPERM_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace hyperm {

/// Holds either a `T` or a non-OK `Status` describing why no value exists.
///
/// Accessing `value()` on an error result aborts the process (programming
/// error); always test `ok()` first on fallible paths:
///
///     Result<Dataset> ds = LoadDataset(path);
///     if (!ds.ok()) return ds.status();
///     Use(ds.value());
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, mirrors absl::StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from a non-OK status. Aborts if `status.ok()`, since an OK
  /// Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    HM_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the stored error otherwise.
  const Status& status() const { return status_; }

  /// The contained value; process-fatal if `!ok()`.
  const T& value() const& {
    HM_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    HM_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    HM_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  /// Pointer-style access, fatal if `!ok()`.
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace hyperm

/// Evaluates `rexpr` (a Result<T>), propagates its status on error, otherwise
/// moves the value into `lhs`. Usable in functions returning Status or
/// Result<U>.
#define HM_ASSIGN_OR_RETURN(lhs, rexpr)            \
  HM_ASSIGN_OR_RETURN_IMPL_(                       \
      HM_RESULT_CONCAT_(hm_result_, __LINE__), lhs, rexpr)

#define HM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define HM_RESULT_CONCAT_(a, b) HM_RESULT_CONCAT_IMPL_(a, b)
#define HM_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // HYPERM_COMMON_RESULT_H_
