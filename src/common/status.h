// Error-handling primitives for the Hyper-M library.
//
// The codebase does not use C++ exceptions: every fallible operation returns
// a `Status` (or a `Result<T>`, see result.h) which callers must inspect.

#ifndef HYPERM_COMMON_STATUS_H_
#define HYPERM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace hyperm {

/// Canonical error space, modelled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// `Status` is OK by default; error statuses carry a code and a message.
/// Typical use:
///
///     Status s = overlay.Insert(sphere);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given error `code` and `message`.
  /// A `code` of StatusCode::kOk yields an OK status and drops the message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error code (kOk for success).
  StatusCode code() const { return code_; }

  /// The error message (empty for success).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Convenience factories mirroring absl's.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

}  // namespace hyperm

/// Propagates an error status from the current function, evaluating `expr`
/// exactly once. Usable only in functions returning `Status`.
#define HM_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::hyperm::Status hm_status_tmp_ = (expr);      \
    if (!hm_status_tmp_.ok()) return hm_status_tmp_; \
  } while (false)

#endif  // HYPERM_COMMON_STATUS_H_
