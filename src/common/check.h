// Process-fatal invariant checks (CHECK-style), used for programming errors
// only; recoverable conditions go through Status/Result instead.

#ifndef HYPERM_COMMON_CHECK_H_
#define HYPERM_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace hyperm::internal_check {

/// Collects a streamed message and aborts the process on destruction.
/// Instances are created only by the HM_CHECK* macros below.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "HM_CHECK failed at " << file << ":" << line << ": " << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed messages when a disabled check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace hyperm::internal_check

/// Aborts with a diagnostic unless `cond` holds. Additional context can be
/// streamed: HM_CHECK(n > 0) << "n=" << n;
#define HM_CHECK(cond)                   \
  switch (0)                             \
  case 0:                                \
  default:                               \
    if (cond)                            \
      ;                                  \
    else                                 \
      ::hyperm::internal_check::CheckFailure(__FILE__, __LINE__, #cond)

/// Binary comparison checks printing both operands on failure.
#define HM_CHECK_EQ(a, b) HM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define HM_CHECK_NE(a, b) HM_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define HM_CHECK_LT(a, b) HM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define HM_CHECK_LE(a, b) HM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define HM_CHECK_GT(a, b) HM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define HM_CHECK_GE(a, b) HM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define HM_DCHECK(cond) \
  while (false) ::hyperm::internal_check::NullStream()
#else
#define HM_DCHECK(cond) HM_CHECK(cond)
#endif

#endif  // HYPERM_COMMON_CHECK_H_
