// Mapping from wavelet-subspace coordinates to the overlay key cube.
//
// Overlays index [0,1)^dim. A KeyMapper carries wavelet coordinates into
// that cube with per-dimension offsets but ONE uniform scale factor, so
// spheres map to spheres and volume *ratios* (everything Eq. 1 and Eq. 8
// consume) are preserved exactly.

#ifndef HYPERM_HYPERM_KEY_MAPPER_H_
#define HYPERM_HYPERM_KEY_MAPPER_H_

#include "geom/shapes.h"
#include "vec/vector.h"

namespace hyperm::core {

/// Uniform-scale affine embedding of a bounded level space into [0,1)^dim.
class KeyMapper {
 public:
  /// Builds a mapper covering `bounds` with a fractional safety `margin`
  /// (default 5%) on every side, so near-boundary data and the occasional
  /// out-of-sample query point still map inside the cube.
  static KeyMapper FromBounds(const Bounds& bounds, double margin = 0.05);

  /// Maps a level-space point into the key cube (clamped to [0,1)).
  Vector ToKey(const Vector& x) const;

  /// Maps a level-space radius into key space (radius * scale).
  double ToKeyRadius(double r) const { return r * scale_; }

  /// Maps a level-space sphere into key space.
  geom::Sphere ToKeySphere(const Vector& center, double radius) const;

  /// The uniform scale factor.
  double scale() const { return scale_; }

  /// Dimensionality of the mapped space.
  size_t dim() const { return lo_.size(); }

 private:
  KeyMapper() = default;

  Vector lo_;      // per-dimension offset
  double scale_ = 1.0;
};

}  // namespace hyperm::core

#endif  // HYPERM_HYPERM_KEY_MAPPER_H_
