#include "hyperm/query_plan.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "backbone/manager.h"
#include "common/check.h"
#include "geom/radius_estimator.h"
#include "obs/event_log.h"
#include "vec/vector.h"

namespace hyperm::core {

// The flight recorder's probe/level cause payload mirrors LevelDelivery
// numerically (obs sits below hyperm in the dependency order).
static_assert(static_cast<int>(LevelDelivery::kDelivered) == 0);
static_assert(static_cast<int>(LevelDelivery::kDetoured) == 1);
static_assert(static_cast<int>(LevelDelivery::kDeferred) == 2);
static_assert(static_cast<int>(LevelDelivery::kLost) == 3);

namespace {

double ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

// Maps an undelivered probe's transport cause onto the level lattice: causes
// a heal window can plausibly fix become kDeferred, dead ends kLost.
LevelDelivery ClassifyFailure(net::DeliveryOutcome outcome) {
  switch (outcome) {
    case net::DeliveryOutcome::kLostPartition:
    case net::DeliveryOutcome::kLostUnreachable:
      return LevelDelivery::kDeferred;
    default:
      return LevelDelivery::kLost;
  }
}

}  // namespace

uint64_t PlanSignature(const QueryPlan& plan) {
  // FNV-1a over the plan's canonical bytes. Raw double bits (not rounded
  // text) so two plans hash equal iff they issue byte-identical probes.
  uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  const auto mix_double = [&mix](double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<uint64_t>(plan.score_policy));
  mix(plan.probes.size());
  for (const LevelProbe& probe : plan.probes) {
    mix(static_cast<uint64_t>(probe.layer));
    mix(static_cast<uint64_t>(probe.layer_dim));
    mix(probe.expanding ? 1 : 0);
    mix(static_cast<uint64_t>(probe.knn_k));
    mix_double(probe.max_probe_radius);
    mix_double(probe.key_sphere.radius);
    for (double c : probe.key_sphere.center) mix_double(c);
  }
  return h;
}

const char* LevelDeliveryName(LevelDelivery delivery) {
  switch (delivery) {
    case LevelDelivery::kDelivered: return "delivered";
    case LevelDelivery::kDetoured: return "detoured";
    case LevelDelivery::kDeferred: return "deferred";
    case LevelDelivery::kLost: return "lost";
  }
  return "unknown";
}

QueryPlanner::QueryPlanner(const std::vector<wavelet::Level>* levels,
                           const std::vector<KeyMapper>* mappers,
                           wavelet::WaveletKind wavelet_kind,
                           int num_detail_levels, ScorePolicy score_policy,
                           const QueryPlanOptions& options)
    : levels_(levels),
      mappers_(mappers),
      wavelet_kind_(wavelet_kind),
      num_detail_levels_(num_detail_levels),
      score_policy_(score_policy),
      options_(options) {
  HM_CHECK(levels != nullptr);
  HM_CHECK(mappers != nullptr);
  HM_CHECK_EQ(levels->size(), mappers->size());
}

QueryPlan QueryPlanner::NewPlan() const {
  QueryPlan plan;
  plan.score_policy = score_policy_;
  plan.reissue_budget = options_.reissue_budget;
  plan.heal_window_ms = options_.heal_window_ms;
  return plan;
}

QueryPlan QueryPlanner::PlanRange(const Vector& query, double epsilon) const {
  QueryPlan plan = NewPlan();
  // One decomposition serves every level probe (Project is per-level).
  // The caller validated the query's dimensionality, so this cannot fail.
  Result<wavelet::Pyramid> pyramid = wavelet::DecomposeWith(wavelet_kind_, query);
  HM_CHECK(pyramid.ok()) << pyramid.status().ToString();
  plan.probes.reserve(levels_->size());
  for (size_t layer = 0; layer < levels_->size(); ++layer) {
    const wavelet::Level& level = (*levels_)[layer];
    LevelProbe probe;
    probe.layer = static_cast<int>(layer);
    probe.layer_dim = static_cast<int>(level.dim());
    const Vector projection = wavelet::Project(pyramid.value(), level);
    const double level_epsilon =
        epsilon * wavelet::RadiusScaleFor(wavelet_kind_, num_detail_levels_, level);
    probe.key_sphere = (*mappers_)[layer].ToKeySphere(projection, level_epsilon);
    // Guard the Theorem 4.1 boundary against floating-point rounding in the
    // key mapping: a cluster's farthest member sits exactly on its sphere, and
    // one ulp of per-coordinate error must not turn into a false dismissal.
    // The key cube has unit extent, so absolute slack is safe and negligible.
    probe.key_sphere.radius += 1e-9;
    plan.probes.push_back(std::move(probe));
  }
  return plan;
}

QueryPlan QueryPlanner::PlanKnn(const Vector& query, int k) const {
  QueryPlan plan = NewPlan();
  Result<wavelet::Pyramid> pyramid = wavelet::DecomposeWith(wavelet_kind_, query);
  HM_CHECK(pyramid.ok()) << pyramid.status().ToString();
  plan.probes.reserve(levels_->size());
  for (size_t layer = 0; layer < levels_->size(); ++layer) {
    const wavelet::Level& level = (*levels_)[layer];
    LevelProbe probe;
    probe.layer = static_cast<int>(layer);
    probe.layer_dim = static_cast<int>(level.dim());
    probe.expanding = true;
    probe.knn_k = k;
    // Fig. 5 widening loop bounds: the probe may grow to the key cube's
    // diagonal (every cluster is then in range) from a 5% start.
    probe.max_probe_radius = std::sqrt(static_cast<double>(probe.layer_dim));
    probe.key_sphere.center =
        (*mappers_)[layer].ToKey(wavelet::Project(pyramid.value(), level));
    probe.key_sphere.radius = 0.05 * probe.max_probe_radius;
    plan.probes.push_back(std::move(probe));
  }
  return plan;
}

QueryExecutor::QueryExecutor(
    std::vector<std::unique_ptr<overlay::Overlay>>* overlays, sim::Simulator* sim,
    std::function<void(size_t, const std::function<void(size_t)>&)> fan_out,
    backbone::BackboneManager* backbone, ShortcutProvider* shortcuts)
    : overlays_(overlays),
      sim_(sim),
      fan_out_(std::move(fan_out)),
      backbone_(backbone),
      shortcuts_(shortcuts) {
  HM_CHECK(overlays != nullptr);
}

void QueryExecutor::RunProbe(const LevelProbe& probe, int querying_peer,
                             LevelOutcome* out) {
  const auto start = std::chrono::steady_clock::now();
  overlay::Overlay& overlay = *(*overlays_)[static_cast<size_t>(probe.layer)];
  bool delivered = true;
  net::DeliveryOutcome failure = net::DeliveryOutcome::kDelivered;
  [&] {
    if (!probe.expanding) {
      // Range probe: one threshold range query, scored against the same
      // sphere the overlay evaluated. (The backbone-first stage, when it
      // applies, is served plan-wide in Execute before the fan-out; a probe
      // reaching here runs the full CAN path.) The mined-shortcut stage is
      // simulator-only: the miner is single-threaded, and on the reliable
      // transport this probe may be running on a pool worker.
      const bool mine = shortcuts_ != nullptr && sim_ != nullptr;
      overlay::NodeId hint =
          mine ? shortcuts_->EntryHint(probe.layer, probe.key_sphere)
               : overlay::kInvalidNode;
      Result<overlay::RangeQueryResult> result =
          hint != overlay::kInvalidNode
              ? overlay.RangeQueryVia(probe.key_sphere, querying_peer, hint)
              : overlay.RangeQuery(probe.key_sphere, querying_peer);
      if (!result.ok()) {
        out->status = result.status();
        return;
      }
      if (hint != overlay::kInvalidNode && !result.value().delivered) {
        // Fail-soft: the stale hint's attempt costs its airtime, never
        // recall — the probe re-runs on the plain greedy walk and the miner
        // demotes the association.
        HM_OBS_EVENT(.sim_ms = sim_->now(),
                     .kind = obs::EventKind::kServeShortcut,
                     .level = probe.layer, .src = querying_peer, .dst = hint,
                     .cause = 1, .value = result.value().latency_ms);
        shortcuts_->Observe(probe.layer, probe.key_sphere,
                            overlay::kInvalidNode, /*delivered=*/false,
                            /*via_shortcut=*/true);
        out->routing_hops = result.value().routing_hops;
        out->latency_ms = result.value().latency_ms;
        out->detours = result.value().route_detours;
        hint = overlay::kInvalidNode;
        result = overlay.RangeQuery(probe.key_sphere, querying_peer);
        if (!result.ok()) {
          out->status = result.status();
          return;
        }
      } else if (hint != overlay::kInvalidNode) {
        HM_OBS_EVENT(.sim_ms = sim_->now(),
                     .kind = obs::EventKind::kServeShortcut,
                     .level = probe.layer, .src = querying_peer, .dst = hint,
                     .cause = 0, .value = result.value().latency_ms);
      }
      out->routing_hops += result.value().routing_hops;
      out->flood_hops = result.value().flood_hops;
      out->latency_ms += result.value().latency_ms;
      out->detours += result.value().route_detours;
      delivered = result.value().delivered;
      failure = result.value().outcome;
      if (mine) {
        shortcuts_->Observe(probe.layer, probe.key_sphere,
                            result.value().entry_node, delivered,
                            /*via_shortcut=*/hint != overlay::kInvalidNode);
      }
      out->scores =
          ComputeLevelScores(probe.layer_dim, result.value().matches, probe.key_sphere);
      return;
    }

    // Expanding probe: widen the overlay range query until the discovered
    // summaries can plausibly supply k items (Fig. 5, step 2 needs the
    // reachable clusters before Eq. 8 can be inverted).
    const Vector& key_center = probe.key_sphere.center;
    const double max_radius = probe.max_probe_radius;
    double probe_radius = probe.key_sphere.radius;
    overlay::RangeQueryResult last;
    while (true) {
      geom::Sphere probe_sphere{key_center, probe_radius};
      Result<overlay::RangeQueryResult> attempt =
          overlay.RangeQuery(probe_sphere, querying_peer);
      if (!attempt.ok()) {
        out->status = attempt.status();
        return;
      }
      last = std::move(attempt).value();
      out->routing_hops += last.routing_hops;
      out->flood_hops += last.flood_hops;
      // Probe widenings within a layer are sequential round trips.
      out->latency_ms += last.latency_ms;
      out->detours += last.route_detours;
      if (!last.delivered) {
        delivered = false;
        failure = last.outcome;
      }
      if (probe_radius >= max_radius) break;
      std::vector<geom::ClusterView> views;
      views.reserve(last.matches.size());
      for (const overlay::PublishedCluster& c : last.matches) {
        views.push_back(geom::ClusterView{
            c.sphere.radius, vec::Distance(c.sphere.center, key_center), c.items});
      }
      if (!views.empty() &&
          geom::ExpectedItems(probe.layer_dim, views, probe_radius) >=
              static_cast<double>(probe.knn_k)) {
        break;
      }
      probe_radius = std::min(max_radius, probe_radius * 2.0);
    }

    // Invert Eq. 8 over the discovered clusters for the per-level radius.
    std::vector<geom::ClusterView> views;
    views.reserve(last.matches.size());
    for (const overlay::PublishedCluster& c : last.matches) {
      views.push_back(geom::ClusterView{
          c.sphere.radius, vec::Distance(c.sphere.center, key_center), c.items});
    }
    double level_radius = probe_radius;
    if (!views.empty()) {
      Result<double> solved = geom::SolveRadiusForCount(
          probe.layer_dim, views, static_cast<double>(probe.knn_k));
      if (solved.ok()) level_radius = std::min(solved.value(), probe_radius);
    }
    out->level_radius = level_radius;

    // Score this level against the estimated radius. The probe's matches
    // are a superset of the refined query's (level_radius <= probe_radius),
    // so the scores can be computed locally without another flood.
    const geom::Sphere level_sphere{key_center, level_radius};
    out->scores = ComputeLevelScores(probe.layer_dim, last.matches, level_sphere);
  }();
  if (delivered) {
    out->delivery =
        out->detours > 0 ? LevelDelivery::kDetoured : LevelDelivery::kDelivered;
  } else {
    out->delivery = ClassifyFailure(failure);
  }
  out->wall_us = ElapsedUs(start);
}

void QueryExecutor::MergeReissue(const LevelOutcome& retry, double heal_wait_ms,
                                 LevelOutcome* out) {
  out->status = retry.status;
  out->routing_hops += retry.routing_hops;
  out->flood_hops += retry.flood_hops;
  out->detours += retry.detours;
  out->wall_us += retry.wall_us;
  // A re-issued level answered only after the heal wait plus its re-probe.
  out->latency_ms += heal_wait_ms + retry.latency_ms;
  ++out->reissues;
  if (!retry.status.ok()) return;
  out->delivery = retry.delivery;
  if (retry.delivery == LevelDelivery::kDelivered ||
      retry.delivery == LevelDelivery::kDetoured) {
    // The healed probe's scores supersede the (empty) deferred ones and join
    // the aggregation under the plan's score policy like any other level.
    out->scores = retry.scores;
    out->level_radius = retry.level_radius;
  }
}

std::vector<LevelOutcome> QueryExecutor::Execute(const QueryPlan& plan,
                                                 int querying_peer) {
  std::vector<LevelOutcome> outcomes(plan.probes.size());
  // Flight recorder: plan emission + round-0 probe issues, stamped on the
  // orchestrating thread before the fan-out so the records are identical
  // whether the probes below run serially (unreliable mode) or on pool
  // workers (where the hooks inside RunProbe no-op off the owner thread).
  [[maybe_unused]] const double plan_ms = sim_ != nullptr ? sim_->now() : 0.0;
  HM_OBS_EVENT(.sim_ms = plan_ms, .kind = obs::EventKind::kQueryPlan,
               .src = querying_peer,
               .aux = static_cast<int64_t>(plan.probes.size()));
  for ([[maybe_unused]] const LevelProbe& probe : plan.probes) {
    HM_OBS_EVENT(.sim_ms = plan_ms, .kind = obs::EventKind::kProbeIssue,
                 .level = probe.layer, .attempt = 0, .src = querying_peer);
  }
  // Backbone-first stage: a range plan (one non-expanding probe per level,
  // in level order) is offered to the supernode backbone as a whole — one
  // CDS walk serves every level, and under min/product aggregation a domain
  // provably empty at any single level is pruned at every level (a peer
  // missing from one level scores zero overall, so nothing is lost). Any
  // fail-soft gate (stale election, partitioned/crashed backbone, lost walk
  // token) refuses the plan and every probe falls through to the full CAN
  // fan-out below — recall can never be worse than the digest-less path at
  // the same fault level. Expanding (k-NN) probes never take this stage:
  // their widening loop re-derives radii from discovered mass, which the
  // per-domain digest summaries cannot answer soundly. The serve runs on the
  // orchestrating thread, so its transport draws and records are identical
  // at any fan-out thread count.
  bool backbone_range_plan = backbone_ != nullptr && !plan.probes.empty();
  if (backbone_range_plan) {
    for (size_t i = 0; i < plan.probes.size(); ++i) {
      if (plan.probes[i].expanding ||
          plan.probes[i].layer != static_cast<int>(i)) {
        backbone_range_plan = false;
        break;
      }
    }
  }
  if (backbone_range_plan) {
    const auto serve_start = std::chrono::steady_clock::now();
    std::vector<geom::Sphere> key_spheres;
    key_spheres.reserve(plan.probes.size());
    for (const LevelProbe& probe : plan.probes) {
      key_spheres.push_back(probe.key_sphere);
    }
    std::vector<backbone::ProbeServeResult> served;
    if (backbone_->ServeRangePlan(
            key_spheres, querying_peer,
            /*conjunctive=*/plan.score_policy != ScorePolicy::kSum, &served)) {
      const double serve_us = ElapsedUs(serve_start);
      for (size_t i = 0; i < plan.probes.size(); ++i) {
        outcomes[i].routing_hops = served[i].walk_messages;
        outcomes[i].flood_hops = served[i].descend_messages;
        outcomes[i].latency_ms = served[i].latency_ms;
        outcomes[i].scores = ComputeLevelScores(
            plan.probes[i].layer_dim, served[i].matches,
            plan.probes[i].key_sphere);
        outcomes[i].delivery = LevelDelivery::kDelivered;
        outcomes[i].wall_us = serve_us;
      }
      backbone_range_plan = true;
    } else {
      backbone_range_plan = false;
    }
  }
  if (!backbone_range_plan) {
    fan_out_(plan.probes.size(), [&](size_t i) {
      HM_OBS_LEVEL_SCOPE(plan.probes[i].layer);
      RunProbe(plan.probes[i], querying_peer, &outcomes[i]);
    });
  }
  for (size_t i = 0; i < outcomes.size(); ++i) {
    HM_OBS_EVENT(.sim_ms = sim_ != nullptr ? sim_->now() : 0.0,
                 .kind = obs::EventKind::kProbeOutcome,
                 .level = plan.probes[i].layer, .attempt = 0,
                 .src = querying_peer,
                 .cause = static_cast<int32_t>(outcomes[i].delivery),
                 .value = outcomes[i].latency_ms);
  }
  if (sim_ == nullptr || plan.reissue_budget <= 0 || plan.heal_window_ms <= 0.0) {
    return outcomes;
  }
  for (int round = 0; round < plan.reissue_budget; ++round) {
    std::vector<size_t> deferred;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].status.ok() &&
          outcomes[i].delivery == LevelDelivery::kDeferred) {
        deferred.push_back(i);
      }
    }
    if (deferred.empty()) break;
    // Let the world turn for one heal window — mobility ticks, partition
    // windows closing, republishes — then re-probe every deferred level,
    // serially in level order (the unreliable transport's RNG stream is
    // consumed in issue order).
    HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kHealWait,
                 .src = querying_peer, .value = plan.heal_window_ms,
                 .aux = static_cast<int64_t>(deferred.size()));
    sim_->RunUntil(sim_->now() + plan.heal_window_ms);
    for (size_t i : deferred) {
      HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kProbeIssue,
                   .level = plan.probes[i].layer, .attempt = round + 1,
                   .src = querying_peer);
      LevelOutcome retry;
      {
        HM_OBS_LEVEL_SCOPE(plan.probes[i].layer);
        RunProbe(plan.probes[i], querying_peer, &retry);
      }
      HM_OBS_EVENT(.sim_ms = sim_->now(),
                   .kind = obs::EventKind::kProbeOutcome,
                   .level = plan.probes[i].layer, .attempt = round + 1,
                   .src = querying_peer,
                   .cause = static_cast<int32_t>(retry.delivery),
                   .value = retry.latency_ms);
      MergeReissue(retry, plan.heal_window_ms, &outcomes[i]);
    }
  }
  return outcomes;
}

}  // namespace hyperm::core
