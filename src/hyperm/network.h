// HyperMNetwork: the Hyper-M system (Sections 3–4).
//
// Orchestrates the full pipeline of Fig. 2 over a simulated P2P network:
//
//   i1  every peer decomposes its items with the Haar DWT,
//   i2  each wavelet subspace is clustered independently with k-means,
//   i3  the cluster spheres are published into one overlay per subspace,
//
// and the two-phase retrieval of Fig. 3: score peers from published
// summaries (Eq. 1, min-score aggregation), then fetch actual items from
// the selected peers' local stores. Range queries follow Theorem 4.1's
// per-level thresholds (no false dismissals); k-NN uses the Fig. 5
// heuristic with the Eq. 8 radius estimator.

#ifndef HYPERM_HYPERM_NETWORK_H_
#define HYPERM_HYPERM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "backbone/manager.h"
#include "channel/mobility.h"
#include "channel/radio_channel.h"
#include "cluster/kmeans.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/peer_assignment.h"
#include "hyperm/key_mapper.h"
#include "hyperm/peer.h"
#include "hyperm/query_plan.h"
#include "hyperm/score.h"
#include "net/fault_plan.h"
#include "net/transport.h"
#include "overlay/overlay.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "wavelet/level.h"
#include "wavelet/transform.h"

namespace hyperm::core {

/// Which overlay implementation backs each layer.
enum class OverlayKind {
  kCan,          ///< CAN for every layer (the paper's configuration)
  kRingAndCan,   ///< Chord-style ring for 1-D layers, CAN for the rest
  kTree,         ///< balanced BSP tree (BATON/VBI flavour) for every layer
};

/// Configuration of a Hyper-M deployment.
struct HyperMOptions {
  int num_layers = 4;          ///< overlays used: A, D_0, .., D_{num_layers-2}
  int clusters_per_peer = 10;  ///< K_p, identical on every peer (Section 5.1)
  int kmeans_max_iterations = 30;
  double key_margin = 0.05;    ///< KeyMapper safety margin
  ScorePolicy score_policy = ScorePolicy::kMin;
  OverlayKind overlay_kind = OverlayKind::kCan;
  wavelet::WaveletKind wavelet_kind = wavelet::WaveletKind::kHaarAveraging;
  bool replicate_spheres = true;  ///< false recreates the Fig. 6 failure mode
                                  ///< (ablation only; breaks the range-query
                                  ///< no-false-dismissal guarantee)
  /// Pool lanes for the parallel build/query fan-outs: 0 picks
  /// ThreadPool::DefaultNumThreads() (hardware concurrency), 1 runs every
  /// fan-out inline on the calling thread (the sequential escape hatch).
  /// Results are bit-identical at any value — per-task RNG streams are
  /// derived from (seed, peer, layer), never from scheduling order.
  int num_threads = 0;

  /// Transport configuration. Default (net.unreliable == false) routes all
  /// overlay and retrieve traffic through a ReliableTransport, which is
  /// bit-identical to the historical direct-stats behavior. Setting
  /// net.unreliable enables the MANET fault model (loss, duplication,
  /// crash/rejoin, partitions, retries, soft-state republish).
  net::NetOptions net;

  /// Physical radio substrate (requires net.unreliable). When
  /// channel.enabled, overlay hops ride queued multi-hop radio paths over a
  /// mobile unit-disk topology and radio islands make peers unreachable;
  /// when disabled (default) the transport keeps the free-channel LinkModel.
  channel::ChannelOptions channel;

  /// Partition-tolerant query planning (detour routing, heal-time re-issue).
  /// All-zero by default, which reproduces the historical query path bit for
  /// bit. Detours apply to query routing on any transport; re-issue requires
  /// net.unreliable (the reliable transport has no simulator and nothing to
  /// heal) and is silently skipped otherwise.
  QueryPlanOptions plan;

  /// Supernode backbone (requires net.unreliable and channel.enabled): CDS
  /// election over the radio graph, per-domain Bloom digests, and a
  /// backbone-first stage for non-expanding range probes. Disabled by
  /// default, in which case nothing backbone-related is constructed and the
  /// whole pipeline is bit-identical to a backbone-less build.
  backbone::BackboneOptions backbone;

  /// Flight-recorder time-series sampling period (simulated ms). When > 0 and
  /// net.unreliable, a self-rescheduling probe samples queue occupancy
  /// (probe.busy_nodes), in-flight queries (probe.inflight_queries) and the
  /// live island count (probe.islands) into the global obs::EventLog's ring
  /// buffers every period. 0 (default) schedules nothing — zero overhead and
  /// the historical event-queue contents are preserved bit for bit.
  double trace_series_period_ms = 0.0;
};

/// Traffic/effort account of one range query.
struct RangeQueryInfo {
  int overlay_routing_hops = 0;  ///< greedy routing in all layers
  int overlay_flood_hops = 0;    ///< zone flooding in all layers
  int candidate_peers = 0;       ///< peers with a positive aggregated score
  int peers_contacted = 0;       ///< peers actually asked for items
  int layers_lost = 0;           ///< layer lookups that never answered, even
                                 ///< after any re-issue rounds (deferred+lost)
  int layers_detoured = 0;       ///< layers answered only via detour routing
  int layers_deferred = 0;       ///< layers deferred at least once (partition
                                 ///< or radio island on the route)
  int reissues = 0;              ///< re-issue probes sent across all layers
  double latency_ms = 0.0;       ///< simulated end-to-end latency (layers in
                                 ///< parallel, slowest branch wins; re-issued
                                 ///< layers add their heal-window waits)

  /// Final per-level fate, indexed by layer (empty if the query failed before
  /// execution).
  std::vector<LevelDelivery> level_outcomes;
};

/// Soft-state bookkeeping, deterministic and independent of the obs layer
/// (the equivalent net.* obs counters mirror these when obs is compiled in).
struct SoftStateCounters {
  uint64_t crashes = 0;            ///< peer crash events applied
  uint64_t rejoins = 0;            ///< peer rejoin events applied
  uint64_t summaries_lost = 0;     ///< stored summaries wiped by crashes
  uint64_t summaries_expired = 0;  ///< stored summaries removed by TTL sweeps
  uint64_t republishes = 0;        ///< per-peer republish rounds completed
  uint64_t inserts_lost = 0;       ///< publications that never reached their owner
  uint64_t retrieves_lost = 0;     ///< item fetches lost (request or response)
};

/// Traffic/effort account of one k-NN query.
struct KnnQueryInfo {
  RangeQueryInfo range;                ///< per-level probing + final queries
  std::vector<double> level_radii;     ///< estimated eps per layer (key space)
  int items_requested = 0;             ///< sum of no_items_p over peers
};

/// Options of the Fig. 5 k-NN heuristic.
struct KnnOptions {
  double c = 1.5;           ///< the paper's C knob: items requested = C*k*share
  int min_peers = 5;        ///< floor on P (scores are expectations, not
                            ///< guarantees; a single high-score peer rarely
                            ///< holds all k true neighbours)
  int max_peers = 1 << 20;  ///< optional cap on peers contacted
  bool truncate_to_k = false;  ///< return only the k best fetched items
                               ///< (raises precision, caps recall at the
                               ///< fetched set's coverage)
};

/// A deployed Hyper-M network over a dataset.
class HyperMNetwork {
 public:
  /// Builds the overlays and publishes every peer's summaries.
  ///
  /// `assignment[p]` lists dataset indices stored at peer p (see
  /// data::AssignByInterest). The dataset dimensionality must be a power of
  /// two (PadToPowerOfTwo the data otherwise). Items are copied into the
  /// peers' local stores; the dataset need not outlive the network. All
  /// traffic is recorded in stats().
  static Result<std::unique_ptr<HyperMNetwork>> Build(
      const data::Dataset& dataset, const data::PeerAssignment& assignment,
      const HyperMOptions& options, Rng& rng);

  // Queries -----------------------------------------------------------------

  /// Scores all peers against a range query (phase 1 of Fig. 3): per-layer
  /// overlay range queries with the Theorem 4.1 thresholds, Eq. 1 scoring,
  /// aggregation per the configured policy. Sorted descending.
  Result<std::vector<PeerScore>> ScorePeers(const Vector& query, double epsilon,
                                            int querying_peer,
                                            RangeQueryInfo* info = nullptr);

  /// Full range query: scores peers, contacts the top `max_peers_contacted`
  /// (all candidates if negative), and unions their exact local results.
  /// Precision is 1 by construction; recall depends on the contact budget.
  Result<std::vector<ItemId>> RangeQuery(const Vector& query, double epsilon,
                                         int querying_peer, int max_peers_contacted = -1,
                                         RangeQueryInfo* info = nullptr);

  /// The Fig. 5 k-NN heuristic. Returns the fetched ids ordered by true
  /// distance to the query (the caller may truncate to k; the paper
  /// evaluates the full fetched set, trading precision for recall via C).
  Result<std::vector<ItemId>> KnnQuery(const Vector& query, int k,
                                       const KnnOptions& options, int querying_peer,
                                       KnnQueryInfo* info = nullptr);

  /// Point query: ids of items exactly equal to `point` (a range query of
  /// radius zero — Section 4's "straight forward" case).
  Result<std::vector<ItemId>> PointQuery(const Vector& point, int querying_peer,
                                         RangeQueryInfo* info = nullptr);

  // Serving-layer hooks (src/serve) ------------------------------------------

  /// Compiles a range query into its executable plan without running it.
  /// The serving layer hashes the plan (PlanSignature) to key its per-peer
  /// query-result cache: two queries with equal signatures issue identical
  /// probes and, at a fixed summary state, return identical answers. `query`
  /// must match data_dim() and epsilon must be >= 0 (same contract as
  /// RangeQuery — compilation is pure math and does not validate).
  QueryPlan CompileRangePlan(const Vector& query, double epsilon) const;

  /// Compiles a k-NN query into its expanding-probe plan (see
  /// CompileRangePlan for the caching contract).
  QueryPlan CompileKnnPlan(const Vector& query, int k) const;

  /// Monotone generation counter of the answer-relevant network state:
  /// bumped whenever published summaries or peer local stores change in a
  /// way that can change a query's answer — post-creation inserts, explicit
  /// republishes, crash wipes, rejoins, and TTL expiry sweeps that removed
  /// entries (plus the republish tick that repairs wiped/expired state, via
  /// a dirty flag — ticks that merely refresh TTLs are answer-idempotent and
  /// do NOT bump). The serving layer's result cache records the epoch at
  /// fill time and treats any bump as invalidation, so cached answers never
  /// outlive the summaries that produced them.
  uint64_t summary_epoch() const { return summary_epoch_; }

  /// Installs (or, with nullptr, removes) the mined-shortcut table consulted
  /// by query executors before non-expanding range probes. Borrowed — must
  /// outlive every subsequent query. Only consulted on simulator-driven
  /// executions (see core::ShortcutProvider); a stale hint costs airtime,
  /// never recall.
  void set_shortcut_provider(ShortcutProvider* provider) {
    shortcut_provider_ = provider;
  }

  // Post-creation churn (Fig. 10c) ------------------------------------------

  /// Adds an item to a peer's local store WITHOUT republishing summaries —
  /// the paper's post-creation insertion model: summaries go stale and
  /// recall degrades gracefully.
  void AddItemWithoutRepublish(int peer, ItemId id, const Vector& features);

  /// Re-clusters a peer's current local items and replaces its published
  /// summaries in every layer (unpublish + fresh k-means + insert). This is
  /// the maintenance action that repairs the staleness AddItemWithoutRepublish
  /// introduces; all traffic is recorded in stats().
  Status RepublishPeer(int peer, Rng& rng);

  // Fault simulation (net.unreliable only) -----------------------------------

  /// Advances the fault simulation clock to `t` ms, applying every scheduled
  /// crash/rejoin event, republish tick and TTL expiry sweep with time <= t.
  /// No-op when the network runs on the reliable transport (no simulator).
  void AdvanceTo(sim::TimeMs t);

  /// Current simulated time (0 on the reliable transport).
  sim::TimeMs now() const { return sim_ ? sim_->now() : 0.0; }

  /// True when the network was built with net.unreliable.
  bool unreliable() const { return sim_ != nullptr; }

  /// The transport all overlay/retrieve traffic goes through.
  const net::Transport& transport() const { return *transport_; }

  /// Soft-state / fault bookkeeping (all zero on the reliable transport).
  const SoftStateCounters& soft_state() const { return soft_; }

  /// True iff peer `p` is currently up (always true on reliable transports).
  bool peer_up(int p) const { return transport_->peer_up(p); }

  /// The physical radio channel, or nullptr when channel.enabled is false.
  const channel::RadioChannel* radio_channel() const { return channel_.get(); }

  /// The supernode backbone, or nullptr when backbone.enabled is false.
  const backbone::BackboneManager* backbone() const { return backbone_.get(); }

  // Introspection ------------------------------------------------------------

  int num_peers() const { return static_cast<int>(peers_.size()); }
  int num_layers() const { return static_cast<int>(levels_.size()); }
  size_t data_dim() const { return data_dim_; }

  /// Traffic counters (join/insert/replicate recorded during Build).
  const sim::NetworkStats& stats() const { return stats_; }
  sim::NetworkStats& mutable_stats() { return stats_; }

  /// Total items held by peers.
  int total_items() const;

  /// Overlay hops (routing + replication) spent publishing peer `id`'s
  /// summaries during Build. Peers publish in parallel in a real deployment,
  /// so the dissemination makespan is governed by the maximum of these.
  uint64_t publication_hops(int id) const;

  /// Overlay / level / mapper / peer of a layer (0 <= layer < num_layers()).
  const overlay::Overlay& overlay(int layer) const;
  const wavelet::Level& level(int layer) const;
  const KeyMapper& mapper(int layer) const;
  const Peer& peer(int id) const;

  /// Projects a full-dimensional vector into layer `layer`'s subspace.
  Vector ProjectToLevel(const Vector& x, int layer) const;

  /// Theorem 3.1/4.1 radius threshold for layer `layer`: an original-space
  /// radius `r` becomes `r * LevelRadiusScale(layer)` in the subspace.
  double LevelRadiusScale(int layer) const;

 private:
  HyperMNetwork() = default;

  /// Runs `fn(i)` for i in [0, n) on the pool, recording the fan-out in the
  /// `pool.tasks` counter and `pool.wall_us` histogram.
  void PoolRun(size_t n, const std::function<void(size_t)>& fn);

  /// Query fan-out: PoolRun on the reliable transport; a plain in-order loop
  /// on the unreliable one, whose per-message RNG stream is consumed in
  /// issue order and must not race.
  void QueryFanOut(size_t n, const std::function<void(size_t)>& fn);

  /// Planner over this network's level/mapper tables and plan options.
  QueryPlanner MakePlanner() const;

  /// Executor over this network's overlays, fault simulator and QueryFanOut.
  QueryExecutor MakeExecutor();

  /// Drains executor outcomes in layer order on the calling thread: emits
  /// the per-layer spans and kLevelFinal flight-recorder events, folds
  /// traffic + delivery-fate accounting into `info` (ignored when null) and
  /// moves the per-level score maps out. Returns the first failed level's
  /// status.
  Status DrainLevelOutcomes(
      std::vector<LevelOutcome>& outcomes, RangeQueryInfo* info,
      std::vector<std::unordered_map<int, double>>* level_scores);

  /// Wires up the transport (always) and, when net.unreliable, the fault
  /// simulator: crash/rejoin events, republish ticks, TTL expiry sweeps.
  Status InitTransport();

  /// One soft-state republish round: every live peer re-inserts its cached
  /// summaries with a refreshed TTL (same cluster ids — delivery refreshes
  /// the stored entry in place, losses leave the old entry to expire).
  void RepublishTick();

  /// Self-rescheduling periodic events on the fault simulator.
  void ScheduleRepublish();
  void ScheduleExpirySweep(sim::TimeMs period);
  void ScheduleSeriesProbe(sim::TimeMs period);

  /// Clusters and publishes one peer's summaries into all layers (steps
  /// i2–i3): per-layer k-means fanned out on the pool with RNG streams
  /// derived from `base_seed`, inserts drained in layer order on the calling
  /// thread.
  Status PublishPeerParallel(int peer_id,
                             const std::vector<std::vector<Vector>>& level_points,
                             uint64_t base_seed);

  /// Drains one (peer, layer) k-means result into the layer's overlay:
  /// key-sphere mapping, cluster-id assignment, replicated inserts. Must run
  /// on the orchestrating thread (mutates overlays and next_cluster_id_).
  Status InsertClusters(int peer_id, size_t layer,
                        const cluster::KMeansResult& result);

  cluster::KMeansOptions MakeKMeansOptions() const;

  size_t data_dim_ = 0;
  int num_detail_levels_ = 0;  // log2(data_dim_)
  HyperMOptions options_;
  std::vector<Peer> peers_;
  std::vector<wavelet::Level> levels_;
  std::vector<KeyMapper> mappers_;
  std::vector<std::unique_ptr<overlay::Overlay>> overlays_;
  std::unique_ptr<ThreadPool> pool_;
  sim::NetworkStats stats_;
  std::vector<uint64_t> publication_hops_;  // per peer, set during Build
  uint64_t next_cluster_id_ = 1;

  // Transport + fault machinery. transport_ is always set after Build;
  // sim_/fault_state_ only when net.unreliable; channel_/mobility_ only when
  // channel.enabled (the channel must outlive the transport that borrows it).
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::FaultState> fault_state_;
  std::unique_ptr<channel::RadioChannel> channel_;
  std::unique_ptr<channel::MobilityProcess> mobility_;
  std::unique_ptr<net::Transport> transport_;
  // Supernode backbone; only when backbone.enabled (constructed after the
  // transport/channel it borrows, started after the initial publish).
  std::unique_ptr<backbone::BackboneManager> backbone_;
  SoftStateCounters soft_;
  // Serving-layer state: the mined-shortcut seam handed to every executor,
  // and the answer-relevant generation counter (see summary_epoch()).
  // summaries_dirty_ marks wiped/expired summary state whose repair by the
  // next republish tick is itself an answer-relevant change.
  ShortcutProvider* shortcut_provider_ = nullptr;  // not owned
  uint64_t summary_epoch_ = 0;
  bool summaries_dirty_ = false;
  // Queries currently between entry and return (sampled by the flight
  // recorder's probe.inflight_queries series). The orchestrating thread runs
  // queries one at a time, but a heal-window RunUntil keeps the owning query
  // "in flight" while scheduled callbacks observe the gauge.
  int inflight_queries_ = 0;
  // Last published summaries per [peer][layer]; what RepublishTick re-inserts.
  std::vector<std::vector<std::vector<overlay::PublishedCluster>>> published_cache_;
};

}  // namespace hyperm::core

#endif  // HYPERM_HYPERM_NETWORK_H_
