// Retrieval-effectiveness measures (Section 6): standard precision/recall
// of a retrieved id set against an exact relevant id set.

#ifndef HYPERM_HYPERM_EVAL_H_
#define HYPERM_HYPERM_EVAL_H_

#include <vector>

#include "hyperm/peer.h"

namespace hyperm::core {

/// Precision and recall of one query.
struct PrecisionRecall {
  double precision = 0.0;  ///< |retrieved ∩ relevant| / |retrieved|; an empty
                           ///< retrieved set has no false positives, so its
                           ///< precision is 1
  double recall = 0.0;     ///< |retrieved ∩ relevant| / |relevant| (1 if relevant empty)
};

/// Computes precision/recall; duplicates in either list are ignored.
PrecisionRecall Evaluate(const std::vector<ItemId>& retrieved,
                         const std::vector<ItemId>& relevant);

/// Mean / min / max summary over many query evaluations.
struct EffectivenessSummary {
  double mean_precision = 0.0;
  double mean_recall = 0.0;
  double min_recall = 0.0;
  double max_recall = 0.0;
  double min_precision = 0.0;
  double max_precision = 0.0;
  int queries = 0;
};

/// Aggregates a batch of per-query results (fatal on empty input).
EffectivenessSummary Summarize(const std::vector<PrecisionRecall>& results);

}  // namespace hyperm::core

#endif  // HYPERM_HYPERM_EVAL_H_
