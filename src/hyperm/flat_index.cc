#include "hyperm/flat_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace hyperm::core {

std::vector<ItemId> FlatIndex::RangeSearch(const Vector& query, double epsilon) const {
  HM_CHECK_GE(epsilon, 0.0);
  std::vector<ItemId> hits;
  const double eps_sq = epsilon * epsilon;
  std::vector<double> dist_sq(items_.rows());
  vec::SquaredDistanceBatch(items_, query, dist_sq.data());
  for (size_t i = 0; i < dist_sq.size(); ++i) {
    if (dist_sq[i] <= eps_sq) hits.push_back(static_cast<ItemId>(i));
  }
  return hits;
}

std::vector<ItemId> FlatIndex::Knn(const Vector& query, int k) const {
  HM_CHECK_GE(k, 0);
  std::vector<double> dist_sq(items_.rows());
  vec::SquaredDistanceBatch(items_, query, dist_sq.data());
  std::vector<std::pair<double, ItemId>> scored;
  scored.reserve(items_.rows());
  for (size_t i = 0; i < dist_sq.size(); ++i) {
    scored.emplace_back(dist_sq[i], static_cast<ItemId>(i));
  }
  const size_t take = std::min<size_t>(static_cast<size_t>(k), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(take),
                    scored.end());
  std::vector<ItemId> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

double FlatIndex::KnnRadius(const Vector& query, int k) const {
  HM_CHECK_GE(k, 1);
  if (items_.rows() < static_cast<size_t>(k)) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double> dist_sq(items_.rows());
  vec::SquaredDistanceBatch(items_, query, dist_sq.data());
  std::nth_element(dist_sq.begin(), dist_sq.begin() + (k - 1), dist_sq.end());
  return std::sqrt(dist_sq[static_cast<size_t>(k - 1)]);
}

}  // namespace hyperm::core
