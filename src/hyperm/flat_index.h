// Centralized exact index: the paper's ground-truth oracle.
//
// "We implemented a centralized flat file system that indexes the data using
// the original vectors, and use the retrieval results as the basis for
// evaluating the effectiveness of our proposal" (Section 6).

#ifndef HYPERM_HYPERM_FLAT_INDEX_H_
#define HYPERM_HYPERM_FLAT_INDEX_H_

#include <vector>

#include "data/dataset.h"
#include "hyperm/peer.h"
#include "vec/matrix.h"
#include "vec/vector.h"

namespace hyperm::core {

/// Brute-force exact search over a full dataset. The items are copied into
/// flat SoA storage at construction so every oracle scan is one batch
/// distance sweep instead of a pointer chase per item.
class FlatIndex {
 public:
  explicit FlatIndex(const data::Dataset& dataset)
      : items_(vec::Matrix::FromRows(dataset.items)) {}

  /// All item ids within `epsilon` of `query` (unordered).
  std::vector<ItemId> RangeSearch(const Vector& query, double epsilon) const;

  /// The `k` item ids nearest to `query`, ordered by increasing distance.
  std::vector<ItemId> Knn(const Vector& query, int k) const;

  /// Distance of the k-th nearest neighbour (the exact k-NN radius); returns
  /// +inf when the dataset holds fewer than k items.
  double KnnRadius(const Vector& query, int k) const;

 private:
  vec::Matrix items_;
};

}  // namespace hyperm::core

#endif  // HYPERM_HYPERM_FLAT_INDEX_H_
