// Peer relevance scoring (Section 3.2).
//
// A peer's score at one wavelet level is the expected number of its items
// inside the query sphere (Eq. 1):
//
//   Score_l = sum_c  Vol(sphere_c ∩ sphere_q) / Vol(sphere_c) * items_c
//
// Per-level scores are then aggregated across levels; the paper uses the
// *minimum* score ("it has the desirable property of pruning many candidate
// peers") and proves it yields no false dismissals for range queries. Sum
// and product aggregation are provided for the ablation bench.

#ifndef HYPERM_HYPERM_SCORE_H_
#define HYPERM_HYPERM_SCORE_H_

#include <unordered_map>
#include <vector>

#include "geom/shapes.h"
#include "overlay/overlay.h"

namespace hyperm::core {

/// How per-level scores combine into a global peer score.
enum class ScorePolicy {
  kMin,      ///< paper default; no false dismissals for range queries
  kSum,      ///< optimistic; keeps peers visible at any level
  kProduct,  ///< aggressive pruning; sensitive to near-zero levels
};

/// A peer and its aggregated relevance score.
struct PeerScore {
  int peer = -1;
  double score = 0.0;
};

/// Eq. 1 coverage fraction for one published cluster against a query
/// sphere, in a `dim`-dimensional level space. Point clusters (radius 0)
/// count fully iff their centroid lies inside the query.
double ClusterCoverageFraction(int dim, const overlay::PublishedCluster& cluster,
                               const geom::Sphere& query);

/// Per-peer Eq. 1 scores of one level's range-query matches.
std::unordered_map<int, double> ComputeLevelScores(
    int dim, const std::vector<overlay::PublishedCluster>& matches,
    const geom::Sphere& query);

/// Aggregates per-level score maps into a single descending-sorted list.
/// With kMin/kProduct a peer missing from any level scores 0 and is dropped;
/// with kSum it keeps the sum of the levels where it appears. Ties broken by
/// peer id for determinism.
std::vector<PeerScore> AggregateScores(
    const std::vector<std::unordered_map<int, double>>& level_scores,
    ScorePolicy policy);

}  // namespace hyperm::core

#endif  // HYPERM_HYPERM_SCORE_H_
