#include "hyperm/peer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hyperm::core {
namespace {

// Per-thread scratch for the batch sweeps: peer stores are small and
// scanned constantly, so a heap allocation per lookup would dominate.
std::vector<double>& DistScratch(size_t rows) {
  thread_local std::vector<double> scratch;
  if (scratch.size() < rows) scratch.resize(rows);
  return scratch;
}

}  // namespace

void Peer::AddItem(ItemId item_id, const Vector& features) {
  HM_CHECK(features_.empty() || features.size() == features_.cols());
  ids_.push_back(item_id);
  features_.AppendRow(features);
}

std::vector<ItemId> Peer::RangeSearch(const Vector& query, double epsilon) const {
  HM_CHECK_GE(epsilon, 0.0);
  std::vector<ItemId> hits;
  const double eps_sq = epsilon * epsilon;
  std::vector<double>& dist_sq = DistScratch(features_.rows());
  vec::SquaredDistanceBatch(features_, query, dist_sq.data());
  for (size_t i = 0; i < features_.rows(); ++i) {
    if (dist_sq[i] <= eps_sq) hits.push_back(ids_[i]);
  }
  return hits;
}

std::vector<ItemId> Peer::NearestItems(const Vector& query, int count) const {
  std::vector<ItemId> out;
  for (const ScoredItem& item : NearestItemsScored(query, count)) {
    out.push_back(item.id);
  }
  return out;
}

std::vector<ScoredItem> Peer::NearestItemsScored(const Vector& query, int count) const {
  HM_CHECK_GE(count, 0);
  std::vector<double>& dist_sq = DistScratch(features_.rows());
  vec::SquaredDistanceBatch(features_, query, dist_sq.data());
  std::vector<std::pair<double, ItemId>> scored;
  scored.reserve(features_.rows());
  for (size_t i = 0; i < features_.rows(); ++i) {
    scored.emplace_back(dist_sq[i], ids_[i]);
  }
  const size_t take = std::min<size_t>(static_cast<size_t>(count), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(take),
                    scored.end());
  std::vector<ScoredItem> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(ScoredItem{scored[i].second, std::sqrt(scored[i].first)});
  }
  return out;
}

}  // namespace hyperm::core
