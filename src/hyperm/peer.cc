#include "hyperm/peer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hyperm::core {

void Peer::AddItem(ItemId item_id, const Vector& features) {
  HM_CHECK(features_.empty() || features.size() == features_.front().size());
  ids_.push_back(item_id);
  features_.push_back(features);
}

std::vector<ItemId> Peer::RangeSearch(const Vector& query, double epsilon) const {
  HM_CHECK_GE(epsilon, 0.0);
  std::vector<ItemId> hits;
  const double eps_sq = epsilon * epsilon;
  for (size_t i = 0; i < features_.size(); ++i) {
    if (vec::SquaredDistance(features_[i], query) <= eps_sq) hits.push_back(ids_[i]);
  }
  return hits;
}

std::vector<ItemId> Peer::NearestItems(const Vector& query, int count) const {
  std::vector<ItemId> out;
  for (const ScoredItem& item : NearestItemsScored(query, count)) {
    out.push_back(item.id);
  }
  return out;
}

std::vector<ScoredItem> Peer::NearestItemsScored(const Vector& query, int count) const {
  HM_CHECK_GE(count, 0);
  std::vector<std::pair<double, ItemId>> scored;
  scored.reserve(features_.size());
  for (size_t i = 0; i < features_.size(); ++i) {
    scored.emplace_back(vec::SquaredDistance(features_[i], query), ids_[i]);
  }
  const size_t take = std::min<size_t>(static_cast<size_t>(count), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(take),
                    scored.end());
  std::vector<ScoredItem> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(ScoredItem{scored[i].second, std::sqrt(scored[i].first)});
  }
  return out;
}

}  // namespace hyperm::core
