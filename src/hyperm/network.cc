#include "hyperm/network.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "can/can_overlay.h"
#include "common/check.h"
#include "common/math_util.h"
#include "common/seed_stream.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "overlay/ring_overlay.h"
#include "overlay/tree_overlay.h"
#include "wavelet/haar.h"

namespace hyperm::core {
namespace {

// Message size used when contacting a peer directly for data (request) —
// header + query vector is dominated by the response, accounted separately.
constexpr uint64_t kRequestBytes = 64;

uint64_t ResponseBytes(size_t items, size_t dim) {
  return 16 + items * (8 * dim + 8);
}

// Publishes one finished query's RangeQueryInfo view into the registry —
// the single place per-query accounting becomes durable metrics, so the
// info structs stay thin views that cannot drift from the registry.
void RecordQueryInfoMetrics(const RangeQueryInfo& info) {
  HM_OBS_HISTOGRAM("query.routing_hops", obs::Buckets::Exponential(1, 2.0, 12),
                   info.overlay_routing_hops);
  HM_OBS_HISTOGRAM("query.flood_hops", obs::Buckets::Exponential(1, 2.0, 12),
                   info.overlay_flood_hops);
  HM_OBS_HISTOGRAM("query.candidate_peers", obs::Buckets::Exponential(1, 2.0, 12),
                   info.candidate_peers);
  HM_OBS_HISTOGRAM("query.peers_contacted", obs::Buckets::Exponential(1, 2.0, 12),
                   info.peers_contacted);
  HM_OBS_COUNTER_ADD("query.levels_detoured", info.layers_detoured);
  HM_OBS_COUNTER_ADD("query.levels_deferred", info.layers_deferred);
  HM_OBS_COUNTER_ADD("query.reissues", info.reissues);
#ifdef HYPERM_OBS_DISABLED
  (void)info;
#endif
}

// Tracks the number of queries between entry and return for the flight
// recorder's probe.inflight_queries gauge (exception-safe on early returns).
class ScopedInflight {
 public:
  explicit ScopedInflight(int* counter) : counter_(counter) { ++*counter_; }
  ~ScopedInflight() { --*counter_; }
  ScopedInflight(const ScopedInflight&) = delete;
  ScopedInflight& operator=(const ScopedInflight&) = delete;

 private:
  int* counter_;
};

}  // namespace

void HyperMNetwork::PoolRun(size_t n, const std::function<void(size_t)>& fn) {
  {
    HM_OBS_TIMER("pool.wall_us", obs::Buckets::Exponential(1, 4.0, 14));
    pool_->ParallelFor(n, fn);
  }
  HM_OBS_COUNTER_ADD("pool.tasks", n);
}

void HyperMNetwork::QueryFanOut(size_t n, const std::function<void(size_t)>& fn) {
  if (sim_ != nullptr) {
    // The unreliable transport consumes one seeded RNG stream per message in
    // issue order; racing layer tasks would make the draw sequence depend on
    // scheduling. Layers still *model* parallel execution (latency is the max
    // over layers), the walk is just performed sequentially.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  PoolRun(n, fn);
}

QueryPlanner HyperMNetwork::MakePlanner() const {
  return QueryPlanner(&levels_, &mappers_, options_.wavelet_kind,
                      num_detail_levels_, options_.score_policy, options_.plan);
}

QueryExecutor HyperMNetwork::MakeExecutor() {
  return QueryExecutor(
      &overlays_, sim_.get(),
      [this](size_t n, const std::function<void(size_t)>& fn) {
        QueryFanOut(n, fn);
      },
      backbone_.get(), shortcut_provider_);
}

QueryPlan HyperMNetwork::CompileRangePlan(const Vector& query,
                                          double epsilon) const {
  return MakePlanner().PlanRange(query, epsilon);
}

QueryPlan HyperMNetwork::CompileKnnPlan(const Vector& query, int k) const {
  return MakePlanner().PlanKnn(query, k);
}

Status HyperMNetwork::DrainLevelOutcomes(
    std::vector<LevelOutcome>& outcomes, RangeQueryInfo* info,
    std::vector<std::unordered_map<int, double>>* level_scores) {
  level_scores->reserve(outcomes.size());
  for (size_t layer = 0; layer < outcomes.size(); ++layer) {
    LevelOutcome& out = outcomes[layer];
    HM_OBS_SPAN_COMPLETED("query/layer" + std::to_string(layer), out.wall_us);
    if (!out.status.ok()) return out.status;
    // Final fate of the level after every re-issue round has settled — the
    // flight recorder's per-level verdict (cause mirrors LevelDelivery).
    HM_OBS_EVENT(.sim_ms = sim_ ? sim_->now() : 0.0,
                 .kind = obs::EventKind::kLevelFinal,
                 .level = static_cast<int32_t>(layer),
                 .cause = static_cast<int32_t>(out.delivery),
                 .value = out.latency_ms, .aux = out.reissues);
    if (info != nullptr) {
      info->overlay_routing_hops += out.routing_hops;
      info->overlay_flood_hops += out.flood_hops;
      info->latency_ms = std::max(info->latency_ms, out.latency_ms);
      info->reissues += out.reissues;
      if (out.delivery == LevelDelivery::kDetoured) ++info->layers_detoured;
      // A level that healed through a re-issue ends kDelivered/kDetoured but
      // still counts as deferred-at-least-once (reissues records the rounds).
      if (out.delivery == LevelDelivery::kDeferred || out.reissues > 0) {
        ++info->layers_deferred;
      }
      if (out.delivery == LevelDelivery::kDeferred ||
          out.delivery == LevelDelivery::kLost) {
        ++info->layers_lost;
      }
      info->level_outcomes.push_back(out.delivery);
    }
    level_scores->push_back(std::move(out.scores));
  }
  return OkStatus();
}

Status HyperMNetwork::InitTransport() {
  const net::NetOptions& net_opts = options_.net;
  if (options_.backbone.enabled &&
      (!net_opts.unreliable || !options_.channel.enabled)) {
    return InvalidArgumentError(
        "Build: backbone.enabled requires net.unreliable and channel.enabled "
        "(the CDS is elected over the live radio graph)");
  }
  if (options_.backbone.enabled &&
      (options_.channel.field.min_range_multiplier != 1.0 ||
       options_.channel.field.max_range_multiplier != 1.0)) {
    return InvalidArgumentError(
        "Build: backbone.enabled requires a symmetric radio graph (the CDS "
        "election assumes bidirectional links; keep range multipliers at 1)");
  }
  if (!net_opts.unreliable) {
    if (options_.channel.enabled) {
      return InvalidArgumentError(
          "Build: channel.enabled requires net.unreliable (the radio channel "
          "models per-attempt physics the reliable transport has no seam for)");
    }
    transport_ = std::make_unique<net::ReliableTransport>(&stats_, net_opts.link);
  } else {
    if (options_.overlay_kind != OverlayKind::kCan) {
      return InvalidArgumentError(
          "Build: net.unreliable requires the CAN overlay (the other overlay "
          "kinds do not route their traffic through a transport)");
    }
    HM_RETURN_IF_ERROR(net_opts.faults.Validate(num_peers()));
    sim_ = std::make_unique<sim::Simulator>();
    fault_state_ = std::make_unique<net::FaultState>(num_peers(), net_opts.faults);
    auto unreliable = std::make_unique<net::UnreliableTransport>(
        sim_.get(), &stats_, fault_state_.get(), net_opts);
    if (options_.channel.enabled) {
      HM_ASSIGN_OR_RETURN(
          channel_,
          channel::RadioChannel::Create(num_peers(), options_.channel, &stats_));
      unreliable->set_channel(channel_.get());
      mobility_ = std::make_unique<channel::MobilityProcess>(sim_.get(),
                                                             channel_.get());
      mobility_->Start();
    }
    transport_ = std::move(unreliable);
    published_cache_.assign(
        peers_.size(),
        std::vector<std::vector<overlay::PublishedCluster>>(levels_.size()));

    for (const net::PeerEvent& event : net_opts.faults.peer_events) {
      sim_->ScheduleAt(event.at_ms, [this, event] {
        // Fault events can fire inside a query's heal-window RunUntil; their
        // flight-recorder events are epoch bookkeeping, not part of that
        // query's causal chain.
        HM_OBS_ROOT_SCOPE();
        // Either direction changes query answers (a down peer neither serves
        // summaries nor answers retrieves) and leaves state the next
        // republish tick will repair — epoch-bump now, and again at the tick.
        ++summary_epoch_;
        summaries_dirty_ = true;
        if (event.up) {
          fault_state_->SetUp(event.peer, true);
          ++soft_.rejoins;
          HM_OBS_COUNTER_ADD("net.rejoins", 1);
          HM_OBS_EVENT(.sim_ms = sim_->now(),
                       .kind = obs::EventKind::kPeerRejoin, .src = event.peer);
        } else {
          fault_state_->SetUp(event.peer, false);
          ++soft_.crashes;
          HM_OBS_COUNTER_ADD("net.crashes", 1);
          // A crash wipes the node's volatile summary store. Its zone and
          // its local item collection survive; its share of the distributed
          // index does not — republish ticks by the owners repair it.
          int lost = 0;
          for (auto& ov : overlays_) lost += ov->ClearNode(event.peer);
          soft_.summaries_lost += static_cast<uint64_t>(lost);
          HM_OBS_COUNTER_ADD("net.summaries_lost", lost);
          HM_OBS_EVENT(.sim_ms = sim_->now(),
                       .kind = obs::EventKind::kPeerCrash, .src = event.peer,
                       .aux = lost);
        }
      });
    }
    if (net_opts.republish_period_ms > 0.0) ScheduleRepublish();
    if (net_opts.summary_ttl_ms > 0.0) {
      const sim::TimeMs period = net_opts.expiry_sweep_period_ms > 0.0
                                     ? net_opts.expiry_sweep_period_ms
                                     : net_opts.summary_ttl_ms / 2.0;
      ScheduleExpirySweep(period);
    }
    if (options_.trace_series_period_ms > 0.0) {
      ScheduleSeriesProbe(options_.trace_series_period_ms);
    }
    if (options_.backbone.enabled) {
      HM_RETURN_IF_ERROR(options_.backbone.Validate());
      // Resolve the piggyback defaults: report cadence rides the soft-state
      // republish period, digest freshness rides the summary TTL.
      backbone::BackboneOptions resolved = options_.backbone;
      if (resolved.report_period_ms <= 0.0) {
        resolved.report_period_ms = net_opts.republish_period_ms > 0.0
                                        ? net_opts.republish_period_ms
                                        : 400.0;
      }
      if (resolved.maintenance_period_ms <= 0.0) {
        resolved.maintenance_period_ms = resolved.report_period_ms;
      }
      if (resolved.digest_ttl_ms <= 0.0) {
        resolved.digest_ttl_ms = net_opts.summary_ttl_ms > 0.0
                                     ? net_opts.summary_ttl_ms
                                     : 3.0 * resolved.report_period_ms;
      }
      std::vector<int> layer_dims;
      layer_dims.reserve(levels_.size());
      for (const wavelet::Level& level : levels_) {
        layer_dims.push_back(static_cast<int>(level.dim()));
      }
      backbone_ = std::make_unique<backbone::BackboneManager>(
          sim_.get(), transport_.get(), fault_state_.get(),
          &channel_->topology(), std::move(layer_dims), resolved,
          [this](int peer, int layer) -> const std::vector<
              overlay::PublishedCluster>& {
            return published_cache_[static_cast<size_t>(peer)]
                                   [static_cast<size_t>(layer)];
          });
    }
  }
  for (auto& ov : overlays_) {
    ov->set_transport(transport_.get());
    ov->set_route_detours(options_.plan.route_detours);
  }
  return OkStatus();
}

void HyperMNetwork::ScheduleRepublish() {
  sim_->ScheduleAfter(options_.net.republish_period_ms, [this] {
    RepublishTick();
    ScheduleRepublish();
  });
}

void HyperMNetwork::ScheduleExpirySweep(sim::TimeMs period) {
  sim_->ScheduleAfter(period, [this, period] {
    // Sweeps fire inside heal-window RunUntils too; clear the causal context.
    HM_OBS_ROOT_SCOPE();
    int expired = 0;
    for (auto& ov : overlays_) expired += ov->ExpireBefore(sim_->now());
    soft_.summaries_expired += static_cast<uint64_t>(expired);
    if (expired > 0) {
      // Answers change now (entries gone) and again when the owners'
      // republish tick restores them.
      ++summary_epoch_;
      summaries_dirty_ = true;
    }
    HM_OBS_COUNTER_ADD("net.summaries_expired", expired);
    HM_OBS_EVENT(.sim_ms = sim_->now(),
                 .kind = obs::EventKind::kSummariesExpired, .aux = expired);
    ScheduleExpirySweep(period);
  });
}

void HyperMNetwork::ScheduleSeriesProbe(sim::TimeMs period) {
  sim_->ScheduleAfter(period, [this, period] {
    [[maybe_unused]] const sim::TimeMs now = sim_->now();
    HM_OBS_SERIES("probe.inflight_queries", now,
                  static_cast<double>(inflight_queries_));
    HM_OBS_SERIES("probe.busy_nodes", now,
                  channel_ != nullptr ? channel_->BusyNodesAt(now) : 0.0);
    HM_OBS_SERIES("probe.islands", now,
                  channel_ != nullptr ? channel_->num_islands() : 1.0);
    ScheduleSeriesProbe(period);
  });
}

void HyperMNetwork::RepublishTick() {
  // Republish rounds are scheduled callbacks: their messages must not
  // inherit the causal ids of whatever query's RunUntil they interrupt.
  HM_OBS_ROOT_SCOPE();
  const double ttl = options_.net.summary_ttl_ms;
  int peers_republished = 0;
  for (int p = 0; p < num_peers(); ++p) {
    if (!fault_state_->up(p)) continue;  // crashed peers cannot republish
    bool any = false;
    for (size_t layer = 0; layer < overlays_.size(); ++layer) {
      for (overlay::PublishedCluster cluster :
           published_cache_[static_cast<size_t>(p)][layer]) {
        if (ttl > 0.0) cluster.expires_at = sim_->now() + ttl;
        Result<overlay::InsertReceipt> receipt = overlays_[layer]->Insert(cluster, p);
        if (receipt.ok() && !receipt.value().delivered) {
          ++soft_.inserts_lost;
          HM_OBS_COUNTER_ADD("net.inserts_lost", 1);
        }
        any = true;
      }
    }
    if (any) {
      ++soft_.republishes;
      ++peers_republished;
      HM_OBS_COUNTER_ADD("net.republishes", 1);
    }
  }
  if (summaries_dirty_) {
    // This round re-inserted summaries into overlays that had lost them
    // (crash wipe, TTL expiry or a crashed owner coming back) — an
    // answer-relevant repair. Plain TTL-refresh rounds leave the flag clear
    // and bump nothing, so steady-state ticks never invalidate caches.
    ++summary_epoch_;
    summaries_dirty_ = false;
  }
  HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kRepublishRound,
               .aux = peers_republished);
#ifdef HYPERM_OBS_DISABLED
  (void)peers_republished;
#endif
}

void HyperMNetwork::AdvanceTo(sim::TimeMs t) {
  if (sim_ == nullptr) return;
  sim_->RunUntil(t);
}

cluster::KMeansOptions HyperMNetwork::MakeKMeansOptions() const {
  cluster::KMeansOptions kmeans_options;
  kmeans_options.k = options_.clusters_per_peer;
  kmeans_options.max_iterations = options_.kmeans_max_iterations;
  return kmeans_options;
}

Result<std::unique_ptr<HyperMNetwork>> HyperMNetwork::Build(
    const data::Dataset& dataset, const data::PeerAssignment& assignment,
    const HyperMOptions& options, Rng& rng) {
  if (dataset.items.empty()) return InvalidArgumentError("Build: empty dataset");
  if (!IsPowerOfTwo(static_cast<int64_t>(dataset.dim()))) {
    return InvalidArgumentError("Build: dataset dimensionality must be a power of two");
  }
  if (assignment.empty()) return InvalidArgumentError("Build: no peers");
  if (options.num_layers < 1) return InvalidArgumentError("Build: num_layers < 1");
  if (options.clusters_per_peer < 1) {
    return InvalidArgumentError("Build: clusters_per_peer < 1");
  }
  const int m = Log2Exact(static_cast<int64_t>(dataset.dim()));
  if (options.num_layers > m + 1) {
    return InvalidArgumentError("Build: num_layers exceeds available wavelet levels");
  }
  if (options.plan.route_detours < 0 || options.plan.reissue_budget < 0 ||
      options.plan.heal_window_ms < 0.0) {
    return InvalidArgumentError("Build: negative query-plan budget");
  }
  if (options.plan.reissue_budget > 0 && options.plan.heal_window_ms <= 0.0) {
    return InvalidArgumentError(
        "Build: plan.reissue_budget needs a positive plan.heal_window_ms");
  }

  HM_OBS_SPAN("build");
  std::unique_ptr<HyperMNetwork> net(new HyperMNetwork());
  net->data_dim_ = dataset.dim();
  net->num_detail_levels_ = m;
  net->options_ = options;
  net->levels_ = wavelet::DefaultLevels(m, options.num_layers);
  net->pool_ = std::make_unique<ThreadPool>(
      options.num_threads != 0 ? options.num_threads : ThreadPool::DefaultNumThreads());

  // Peers + local stores (step i1 input).
  const int num_peers = static_cast<int>(assignment.size());
  net->peers_.reserve(static_cast<size_t>(num_peers));
  for (int p = 0; p < num_peers; ++p) net->peers_.emplace_back(p);

  // Per-peer, per-layer subspace projections of every item, plus global
  // per-layer bounds for the key mappers. (In a live MANET the bounds come
  // from the data domain — Haar averages of [lo,hi]-bounded features stay in
  // [lo,hi] and details in ±(hi-lo)/2; the simulation takes the tight
  // empirical equivalent.) Decomposition is fanned out per peer: every task
  // writes only peer p's store, projection rows and bounds slot, and the
  // per-peer bounds are merged afterwards — min/max is order-independent, so
  // the merged mappers are identical at any thread count.
  const size_t num_layers = net->levels_.size();
  std::vector<std::vector<std::vector<Vector>>> level_points(
      static_cast<size_t>(num_peers),
      std::vector<std::vector<Vector>>(num_layers));
  std::vector<std::vector<Bounds>> peer_bounds(
      static_cast<size_t>(num_peers), std::vector<Bounds>(num_layers));
  // char, not bool: std::vector<bool> packs bits, and adjacent rows must not
  // share bytes across tasks.
  std::vector<std::vector<char>> peer_bounds_init(
      static_cast<size_t>(num_peers), std::vector<char>(num_layers, 0));
  std::vector<Status> peer_status(static_cast<size_t>(num_peers), OkStatus());
  {
    HM_OBS_SPAN("build/decompose");
    net->PoolRun(static_cast<size_t>(num_peers), [&](size_t p) {
      for (int index : assignment[p]) {
        if (index < 0 || static_cast<size_t>(index) >= dataset.items.size()) {
          peer_status[p] = InvalidArgumentError("Build: assignment index out of range");
          return;
        }
        const Vector& item = dataset.items[static_cast<size_t>(index)];
        net->peers_[p].AddItem(index, item);
        Result<wavelet::Pyramid> pyramid =
            wavelet::DecomposeWith(options.wavelet_kind, item);
        if (!pyramid.ok()) {
          peer_status[p] = pyramid.status();
          return;
        }
        for (size_t layer = 0; layer < num_layers; ++layer) {
          const Vector& projection =
              wavelet::Project(pyramid.value(), net->levels_[layer]);
          if (peer_bounds_init[p][layer] == 0) {
            peer_bounds[p][layer].lo = projection;
            peer_bounds[p][layer].hi = projection;
            peer_bounds_init[p][layer] = 1;
          } else {
            peer_bounds[p][layer].Extend(projection);
          }
          level_points[p][layer].push_back(projection);
        }
      }
    });
    for (int p = 0; p < num_peers; ++p) {
      HM_RETURN_IF_ERROR(peer_status[static_cast<size_t>(p)]);
    }
  }
  std::vector<Bounds> bounds(num_layers);
  std::vector<bool> bounds_init(num_layers, false);
  for (int p = 0; p < num_peers; ++p) {
    for (size_t layer = 0; layer < num_layers; ++layer) {
      if (peer_bounds_init[static_cast<size_t>(p)][layer] == 0) continue;
      const Bounds& pb = peer_bounds[static_cast<size_t>(p)][layer];
      if (!bounds_init[layer]) {
        bounds[layer] = pb;
        bounds_init[layer] = true;
      } else {
        bounds[layer].Extend(pb.lo);
        bounds[layer].Extend(pb.hi);
      }
    }
  }

  // One overlay per layer (step i3 substrate).
  {
    HM_OBS_SPAN("build/overlays");
    for (size_t layer = 0; layer < num_layers; ++layer) {
      if (!bounds_init[layer]) return InvalidArgumentError("Build: no items assigned");
      net->mappers_.push_back(KeyMapper::FromBounds(bounds[layer], options.key_margin));
      const size_t layer_dim = net->levels_[layer].dim();
      if (options.overlay_kind == OverlayKind::kRingAndCan && layer_dim == 1) {
        HM_ASSIGN_OR_RETURN(auto ring,
                            overlay::RingOverlay::Build(num_peers, &net->stats_, rng));
        net->overlays_.push_back(std::move(ring));
      } else if (options.overlay_kind == OverlayKind::kTree) {
        HM_ASSIGN_OR_RETURN(auto tree, overlay::TreeOverlay::Build(layer_dim, num_peers,
                                                                   &net->stats_, rng));
        net->overlays_.push_back(std::move(tree));
      } else {
        HM_ASSIGN_OR_RETURN(auto can, can::CanOverlay::Build(layer_dim, num_peers,
                                                             &net->stats_, rng));
        net->overlays_.push_back(std::move(can));
      }
      net->overlays_.back()->set_replicate_spheres(options.replicate_spheres);
    }
  }

  // Transport + fault machinery. From here on, every overlay hop and
  // retrieve exchange is a message through net->transport_ — publication
  // included, so building under an unreliable plan already loses summaries.
  HM_RETURN_IF_ERROR(net->InitTransport());

  // Cluster + publish every peer (steps i2-i3). One flat (peer, layer) task
  // list keeps all lanes busy even when peers hold uneven collections; each
  // task runs k-means on a private RNG stream derived from (base_seed, peer,
  // layer), so the clustering is bit-identical at any thread count. The
  // overlay inserts — which mutate shared state and consume cluster ids —
  // are drained on this thread in peer-major task order.
  {
    HM_OBS_SPAN("build/publish");
    net->publication_hops_.assign(static_cast<size_t>(num_peers), 0);
    const uint64_t base_seed = rng.NextUint64();
    struct PublishTask {
      int peer;
      size_t layer;
    };
    std::vector<PublishTask> tasks;
    for (int p = 0; p < num_peers; ++p) {
      for (size_t layer = 0; layer < num_layers; ++layer) {
        if (!level_points[static_cast<size_t>(p)][layer].empty()) {
          tasks.push_back(PublishTask{p, layer});
        }
      }
    }
    // Result<T> is not default-constructible, hence optional slots.
    std::vector<std::optional<Result<cluster::KMeansResult>>> slots(tasks.size());
    const cluster::KMeansOptions kmeans_options = net->MakeKMeansOptions();
    net->PoolRun(tasks.size(), [&](size_t t) {
      const PublishTask& task = tasks[t];
      Rng task_rng =
          SeedStream(base_seed).At(static_cast<uint64_t>(task.peer), task.layer);
      slots[t].emplace(cluster::KMeans(
          level_points[static_cast<size_t>(task.peer)][task.layer], kmeans_options,
          task_rng));
    });
    size_t t = 0;
    for (int p = 0; p < num_peers; ++p) {
      const uint64_t before = net->stats_.hops(sim::TrafficClass::kInsert) +
                              net->stats_.hops(sim::TrafficClass::kReplicate);
      for (; t < tasks.size() && tasks[t].peer == p; ++t) {
        if (!slots[t]->ok()) return slots[t]->status();
        HM_RETURN_IF_ERROR(net->InsertClusters(p, tasks[t].layer, slots[t]->value()));
      }
      const uint64_t after = net->stats_.hops(sim::TrafficClass::kInsert) +
                             net->stats_.hops(sim::TrafficClass::kReplicate);
      net->publication_hops_[static_cast<size_t>(p)] = after - before;
    }
  }
  // The backbone bootstraps against the freshly published summaries: initial
  // election, member reports, digest build + CDS exchange, periodic timers.
  if (net->backbone_ != nullptr) {
    HM_OBS_SPAN("build/backbone");
    net->backbone_->Start();
  }
  HM_OBS_GAUGE_SET("build.num_peers", num_peers);
  HM_OBS_GAUGE_SET("build.num_layers", num_layers);
  HM_OBS_GAUGE_SET("build.total_items", net->total_items());
  return net;
}

Status HyperMNetwork::InsertClusters(int peer_id, size_t layer,
                                     const cluster::KMeansResult& result) {
  for (const cluster::SphereCluster& c : result.clusters) {
    overlay::PublishedCluster published;
    published.sphere = mappers_[layer].ToKeySphere(c.centroid, c.radius);
    published.owner_peer = peer_id;
    published.items = c.count;
    published.cluster_id = next_cluster_id_++;
    if (sim_ != nullptr) {
      if (options_.net.summary_ttl_ms > 0.0) {
        published.expires_at = sim_->now() + options_.net.summary_ttl_ms;
      }
      published_cache_[static_cast<size_t>(peer_id)][layer].push_back(published);
    }
    HM_ASSIGN_OR_RETURN(overlay::InsertReceipt receipt,
                        overlays_[layer]->Insert(published, peer_id));
    if (!receipt.delivered) {
      ++soft_.inserts_lost;
      HM_OBS_COUNTER_ADD("net.inserts_lost", 1);
    }
    HM_OBS_COUNTER_ADD("build.clusters_published", 1);
    HM_OBS_HISTOGRAM("overlay.insert_routing_hops",
                     obs::Buckets::Exponential(1, 2.0, 12), receipt.routing_hops);
    HM_OBS_HISTOGRAM("overlay.insert_replicas",
                     obs::Buckets::Exponential(1, 2.0, 12), receipt.replicas);
#ifdef HYPERM_OBS_DISABLED
    (void)receipt;
#endif
  }
  return OkStatus();
}

Status HyperMNetwork::PublishPeerParallel(
    int peer_id, const std::vector<std::vector<Vector>>& level_points,
    uint64_t base_seed) {
  std::vector<size_t> layers;
  for (size_t layer = 0; layer < levels_.size(); ++layer) {
    if (!level_points[layer].empty()) layers.push_back(layer);
  }
  std::vector<std::optional<Result<cluster::KMeansResult>>> slots(layers.size());
  const cluster::KMeansOptions kmeans_options = MakeKMeansOptions();
  PoolRun(layers.size(), [&](size_t t) {
    Rng task_rng =
        SeedStream(base_seed).At(static_cast<uint64_t>(peer_id), layers[t]);
    slots[t].emplace(
        cluster::KMeans(level_points[layers[t]], kmeans_options, task_rng));
  });
  for (size_t t = 0; t < layers.size(); ++t) {
    if (!slots[t]->ok()) return slots[t]->status();
    HM_RETURN_IF_ERROR(InsertClusters(peer_id, layers[t], slots[t]->value()));
  }
  return OkStatus();
}

Vector HyperMNetwork::ProjectToLevel(const Vector& x, int layer) const {
  HM_CHECK_GE(layer, 0);
  HM_CHECK_LT(static_cast<size_t>(layer), levels_.size());
  Result<wavelet::Pyramid> pyramid = wavelet::DecomposeWith(options_.wavelet_kind, x);
  HM_CHECK(pyramid.ok()) << pyramid.status().ToString();
  return wavelet::Project(pyramid.value(), levels_[static_cast<size_t>(layer)]);
}

double HyperMNetwork::LevelRadiusScale(int layer) const {
  HM_CHECK_GE(layer, 0);
  HM_CHECK_LT(static_cast<size_t>(layer), levels_.size());
  return wavelet::RadiusScaleFor(options_.wavelet_kind, num_detail_levels_,
                                 levels_[static_cast<size_t>(layer)]);
}

Result<std::vector<PeerScore>> HyperMNetwork::ScorePeers(const Vector& query,
                                                         double epsilon,
                                                         int querying_peer,
                                                         RangeQueryInfo* info) {
  if (query.size() != data_dim_) {
    return InvalidArgumentError("ScorePeers: query dimensionality mismatch");
  }
  if (epsilon < 0.0) return InvalidArgumentError("ScorePeers: negative epsilon");
  if (querying_peer < 0 || querying_peer >= num_peers()) {
    return InvalidArgumentError("ScorePeers: bad querying peer");
  }
  HM_OBS_SPAN("query/score");
  // Plan, then execute. The planner compiles the Theorem 4.1 probe spheres on
  // the calling thread (pure wavelet math); the executor fans the per-level
  // range searches out — they are independent (read-only overlays, atomic
  // stats) — and re-issues deferred levels when so configured. Scores and
  // info accounting are drained in layer order below, preserving the
  // sequential merge exactly.
  const QueryPlan plan = MakePlanner().PlanRange(query, epsilon);
  std::vector<LevelOutcome> outcomes = MakeExecutor().Execute(plan, querying_peer);
  std::vector<std::unordered_map<int, double>> level_scores;
  HM_RETURN_IF_ERROR(DrainLevelOutcomes(outcomes, info, &level_scores));
  std::vector<PeerScore> aggregated =
      AggregateScores(level_scores, options_.score_policy);
  if (info != nullptr) info->candidate_peers = static_cast<int>(aggregated.size());
  return aggregated;
}

Result<std::vector<ItemId>> HyperMNetwork::RangeQuery(const Vector& query,
                                                      double epsilon, int querying_peer,
                                                      int max_peers_contacted,
                                                      RangeQueryInfo* info) {
  HM_OBS_SPAN("query/range");
  HM_OBS_COUNTER_ADD("query.range_count", 1);
  // Root of this query's causal chain: every event below — plan, probes,
  // messages, retrieves — inherits the fresh query id from ambient context.
  HM_OBS_QUERY_SCOPE(hm_obs_query_id);
  ScopedInflight inflight(&inflight_queries_);
  // The registry is the system of record for per-query accounting; the info
  // struct is a thin per-call view, so always accumulate into one and fold it
  // into the metrics at the end even when the caller passed none.
  RangeQueryInfo local_info;
  if (info == nullptr) info = &local_info;
  HM_ASSIGN_OR_RETURN(std::vector<PeerScore> scores,
                      ScorePeers(query, epsilon, querying_peer, info));
  size_t contact = scores.size();
  if (max_peers_contacted >= 0) {
    contact = std::min<size_t>(contact, static_cast<size_t>(max_peers_contacted));
  }
  std::vector<ItemId> results;
  {
    HM_OBS_SPAN("query/retrieve");
    // Peers are contacted in parallel; the phase completes when the slowest
    // delivered exchange does.
    double retrieve_latency = 0.0;
    for (size_t i = 0; i < contact; ++i) {
      const int target_peer = scores[i].peer;
      const net::HopResult request = transport_->SendHop(
          {net::MessageType::kRetrieveRequest, querying_peer, target_peer,
           kRequestBytes, sim::TrafficClass::kRetrieve});
      if (!request.delivered) {
        ++soft_.retrieves_lost;
        HM_OBS_COUNTER_ADD("net.retrieves_lost", 1);
        continue;
      }
      const Peer& target = peers_[static_cast<size_t>(target_peer)];
      std::vector<ItemId> local = target.RangeSearch(query, epsilon);
      const net::HopResult response = transport_->SendHop(
          {net::MessageType::kRetrieveResponse, target_peer, querying_peer,
           ResponseBytes(local.size(), data_dim_), sim::TrafficClass::kRetrieve});
      retrieve_latency =
          std::max(retrieve_latency, request.latency_ms + response.latency_ms);
      if (!response.delivered) {
        ++soft_.retrieves_lost;
        HM_OBS_COUNTER_ADD("net.retrieves_lost", 1);
        continue;
      }
      results.insert(results.end(), local.begin(), local.end());
    }
    info->latency_ms += retrieve_latency;
  }
  info->peers_contacted = static_cast<int>(contact);
  RecordQueryInfoMetrics(*info);
  stats_.RecordQueryServed();
  std::sort(results.begin(), results.end());
  results.erase(std::unique(results.begin(), results.end()), results.end());
  HM_OBS_EVENT(.sim_ms = sim_ ? sim_->now() : 0.0,
               .kind = obs::EventKind::kQueryDone,
               .query_id = hm_obs_query_id, .src = querying_peer,
               .value = info->latency_ms,
               .aux = static_cast<int64_t>(results.size()));
  return results;
}

Result<std::vector<ItemId>> HyperMNetwork::KnnQuery(const Vector& query, int k,
                                                    const KnnOptions& options,
                                                    int querying_peer,
                                                    KnnQueryInfo* info) {
  if (query.size() != data_dim_) {
    return InvalidArgumentError("KnnQuery: query dimensionality mismatch");
  }
  if (k < 1) return InvalidArgumentError("KnnQuery: k < 1");
  if (options.c <= 0.0) return InvalidArgumentError("KnnQuery: C must be positive");
  if (querying_peer < 0 || querying_peer >= num_peers()) {
    return InvalidArgumentError("KnnQuery: bad querying peer");
  }
  HM_OBS_SPAN("query/knn");
  HM_OBS_COUNTER_ADD("query.knn_count", 1);
  // Root of this query's causal chain (see RangeQuery).
  HM_OBS_QUERY_SCOPE(hm_obs_query_id);
  ScopedInflight inflight(&inflight_queries_);

  // Same thin-view contract as RangeQuery: accumulate locally when the caller
  // passed no info struct so the registry always sees the query's accounting.
  KnnQueryInfo local_info;
  if (info == nullptr) info = &local_info;
  RangeQueryInfo* range_info = &info->range;

  // Plan, then execute: one expanding probe per level (Fig. 5), fanned out
  // like ScorePeers. Each probe keeps its hop counts and estimated radius in
  // its own outcome slot; the double-valued knn.level_radius histogram is
  // observed at the ordered drain so observation order never depends on
  // scheduling.
  const QueryPlan plan = MakePlanner().PlanKnn(query, k);
  std::vector<LevelOutcome> outcomes = MakeExecutor().Execute(plan, querying_peer);
  std::vector<std::unordered_map<int, double>> level_scores;
  HM_RETURN_IF_ERROR(DrainLevelOutcomes(outcomes, range_info, &level_scores));
  for (const LevelOutcome& out : outcomes) {
    info->level_radii.push_back(out.level_radius);
    HM_OBS_HISTOGRAM("knn.level_radius", obs::Buckets::Linear(0.0, 4.0, 32),
                     out.level_radius);
#ifdef HYPERM_OBS_DISABLED
    (void)out;
#endif
  }

  std::vector<PeerScore> merged = AggregateScores(level_scores, options_.score_policy);
  if (merged.empty() && options_.score_policy != ScorePolicy::kSum) {
    // Min/product pruned every peer (an empty level probe zeroes everything).
    // Unlike range queries, a k-NN query must return *something*; fall back
    // to the optimistic sum aggregation.
    merged = AggregateScores(level_scores, ScorePolicy::kSum);
  }
  range_info->candidate_peers = static_cast<int>(merged.size());
  if (merged.empty()) {
    RecordQueryInfoMetrics(*range_info);
    stats_.RecordQueryServed();
    HM_OBS_EVENT(.sim_ms = sim_ ? sim_->now() : 0.0,
                 .kind = obs::EventKind::kQueryDone,
                 .query_id = hm_obs_query_id, .src = querying_peer,
                 .value = range_info->latency_ms);
    return std::vector<ItemId>{};
  }

  // Step 4-6: P = the smallest score prefix expected to cover k items,
  // floored at min_peers (scores are expected values; hedging across a few
  // extra peers costs little and recovers neighbours the estimate missed).
  size_t num_contacted = 0;
  double sum = 0.0;
  for (const PeerScore& ps : merged) {
    if (num_contacted >= static_cast<size_t>(options.max_peers)) break;
    if (sum >= static_cast<double>(k) &&
        num_contacted >= static_cast<size_t>(options.min_peers)) {
      break;
    }
    sum += ps.score;
    ++num_contacted;
  }
  HM_CHECK_GT(num_contacted, 0u);

  // Steps 7-9: fetch a score-proportional number of items from each peer.
  // Peers return (id, exact distance) pairs so the querier can merge without
  // shipping the vectors themselves.
  std::vector<ScoredItem> fetched;
  {
    HM_OBS_SPAN("query/retrieve");
    double retrieve_latency = 0.0;
    for (size_t i = 0; i < num_contacted; ++i) {
      const PeerScore& ps = merged[i];
      const int request = std::max(
          1, static_cast<int>(std::ceil(options.c * k * ps.score / sum)));
      info->items_requested += request;
      const net::HopResult request_hop = transport_->SendHop(
          {net::MessageType::kRetrieveRequest, querying_peer, ps.peer,
           kRequestBytes, sim::TrafficClass::kRetrieve});
      if (!request_hop.delivered) {
        ++soft_.retrieves_lost;
        HM_OBS_COUNTER_ADD("net.retrieves_lost", 1);
        continue;
      }
      const Peer& target = peers_[static_cast<size_t>(ps.peer)];
      std::vector<ScoredItem> local = target.NearestItemsScored(query, request);
      const net::HopResult response_hop = transport_->SendHop(
          {net::MessageType::kRetrieveResponse, ps.peer, querying_peer,
           ResponseBytes(local.size(), data_dim_), sim::TrafficClass::kRetrieve});
      retrieve_latency = std::max(retrieve_latency,
                                  request_hop.latency_ms + response_hop.latency_ms);
      if (!response_hop.delivered) {
        ++soft_.retrieves_lost;
        HM_OBS_COUNTER_ADD("net.retrieves_lost", 1);
        continue;
      }
      fetched.insert(fetched.end(), local.begin(), local.end());
    }
    range_info->latency_ms += retrieve_latency;
  }
  range_info->peers_contacted = static_cast<int>(num_contacted);
  HM_OBS_HISTOGRAM("knn.items_requested", obs::Buckets::Exponential(1, 2.0, 14),
                   info->items_requested);
  RecordQueryInfoMetrics(*range_info);
  stats_.RecordQueryServed();

  // Step 10: global merge sorted by exact distance (ids are globally unique,
  // so deduplication is by id).
  std::sort(fetched.begin(), fetched.end(), [](const ScoredItem& a, const ScoredItem& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  std::vector<ItemId> result;
  result.reserve(fetched.size());
  std::unordered_set<ItemId> seen;
  for (const ScoredItem& item : fetched) {
    if (!seen.insert(item.id).second) continue;
    result.push_back(item.id);
    if (options.truncate_to_k && result.size() >= static_cast<size_t>(k)) break;
  }
  HM_OBS_EVENT(.sim_ms = sim_ ? sim_->now() : 0.0,
               .kind = obs::EventKind::kQueryDone,
               .query_id = hm_obs_query_id, .src = querying_peer,
               .value = range_info->latency_ms,
               .aux = static_cast<int64_t>(result.size()));
  return result;
}

void HyperMNetwork::AddItemWithoutRepublish(int peer, ItemId id, const Vector& features) {
  HM_CHECK_GE(peer, 0);
  HM_CHECK_LT(peer, num_peers());
  HM_CHECK_EQ(features.size(), data_dim_);
  peers_[static_cast<size_t>(peer)].AddItem(id, features);
  // The peer's local store now answers differently even though its published
  // summaries are stale — cached results must not hide the new item.
  ++summary_epoch_;
}

Result<std::vector<ItemId>> HyperMNetwork::PointQuery(const Vector& point,
                                                      int querying_peer,
                                                      RangeQueryInfo* info) {
  return RangeQuery(point, 0.0, querying_peer, /*max_peers_contacted=*/-1, info);
}

Status HyperMNetwork::RepublishPeer(int peer, Rng& rng) {
  if (peer < 0 || peer >= num_peers()) {
    return InvalidArgumentError("RepublishPeer: bad peer");
  }
  const Peer& target = peers_[static_cast<size_t>(peer)];
  if (target.num_items() == 0) return OkStatus();
  HM_OBS_SPAN("republish");
  HM_OBS_COUNTER_ADD("republish.count", 1);
  ++summary_epoch_;  // unpublish + fresh clustering changes answers

  // Unpublish: every replica holder processes one removal message. Removals
  // stay direct (always delivered) even under an unreliable transport — a
  // lost unpublish would just leave a stale entry, and TTL expiry is the
  // fault model's real cleanup mechanism.
  for (auto& overlay : overlays_) {
    const int removed = overlay->RemoveByOwner(peer);
    for (int i = 0; i < removed; ++i) {
      stats_.RecordHop(sim::TrafficClass::kReplicate, 32);
    }
  }
  if (sim_ != nullptr) {
    // The fresh publication below recaches; drop the superseded summaries so
    // republish ticks stop refreshing them.
    for (auto& per_layer : published_cache_[static_cast<size_t>(peer)]) {
      per_layer.clear();
    }
  }

  // Fresh per-layer projections of the peer's current collection.
  std::vector<std::vector<Vector>> level_points(levels_.size());
  Vector item;  // reused across rows; assign() keeps the capacity
  for (size_t r = 0; r < target.item_features().rows(); ++r) {
    const double* row = target.item_features().row(r);
    item.assign(row, row + target.item_features().cols());
    HM_ASSIGN_OR_RETURN(wavelet::Pyramid pyramid,
                        wavelet::DecomposeWith(options_.wavelet_kind, item));
    for (size_t layer = 0; layer < levels_.size(); ++layer) {
      level_points[layer].push_back(wavelet::Project(pyramid, levels_[layer]));
    }
  }
  return PublishPeerParallel(peer, level_points, rng.NextUint64());
}

uint64_t HyperMNetwork::publication_hops(int id) const {
  HM_CHECK_GE(id, 0);
  HM_CHECK_LT(id, num_peers());
  return publication_hops_[static_cast<size_t>(id)];
}

int HyperMNetwork::total_items() const {
  int total = 0;
  for (const Peer& p : peers_) total += static_cast<int>(p.num_items());
  return total;
}

const overlay::Overlay& HyperMNetwork::overlay(int layer) const {
  HM_CHECK_GE(layer, 0);
  HM_CHECK_LT(static_cast<size_t>(layer), overlays_.size());
  return *overlays_[static_cast<size_t>(layer)];
}

const wavelet::Level& HyperMNetwork::level(int layer) const {
  HM_CHECK_GE(layer, 0);
  HM_CHECK_LT(static_cast<size_t>(layer), levels_.size());
  return levels_[static_cast<size_t>(layer)];
}

const KeyMapper& HyperMNetwork::mapper(int layer) const {
  HM_CHECK_GE(layer, 0);
  HM_CHECK_LT(static_cast<size_t>(layer), mappers_.size());
  return mappers_[static_cast<size_t>(layer)];
}

const Peer& HyperMNetwork::peer(int id) const {
  HM_CHECK_GE(id, 0);
  HM_CHECK_LT(id, num_peers());
  return peers_[static_cast<size_t>(id)];
}

}  // namespace hyperm::core
