#include "hyperm/baseline.h"

#include <algorithm>

#include "common/check.h"

namespace hyperm::core {

Result<std::unique_ptr<CanItemBaseline>> CanItemBaseline::Build(
    const data::Dataset& dataset, const data::PeerAssignment& assignment,
    const ItemBaselineOptions& options, Rng& rng) {
  if (dataset.items.empty()) return InvalidArgumentError("baseline: empty dataset");
  if (assignment.empty()) return InvalidArgumentError("baseline: no peers");
  size_t index_dims = options.index_dims == 0 ? dataset.dim() : options.index_dims;
  if (index_dims < 1 || index_dims > dataset.dim()) {
    return InvalidArgumentError("baseline: bad index_dims");
  }

  std::unique_ptr<CanItemBaseline> baseline(new CanItemBaseline());
  HM_ASSIGN_OR_RETURN(baseline->overlay_,
                      can::CanOverlay::Build(index_dims, static_cast<int>(assignment.size()),
                                             &baseline->stats_, rng));

  // Key mapper over the indexed prefix of the feature space.
  std::vector<Vector> prefixes;
  prefixes.reserve(dataset.items.size());
  for (const Vector& item : dataset.items) {
    prefixes.emplace_back(item.begin(), item.begin() + static_cast<long>(index_dims));
  }
  const KeyMapper mapper = KeyMapper::FromBounds(Bounds::Of(prefixes), 0.05);

  uint64_t cluster_id = 1;
  for (size_t p = 0; p < assignment.size(); ++p) {
    for (int index : assignment[p]) {
      if (index < 0 || static_cast<size_t>(index) >= dataset.items.size()) {
        return InvalidArgumentError("baseline: assignment index out of range");
      }
      overlay::PublishedCluster point;
      point.sphere.center = mapper.ToKey(prefixes[static_cast<size_t>(index)]);
      point.sphere.radius = 0.0;
      point.owner_peer = static_cast<int>(p);
      point.items = 1;
      point.cluster_id = cluster_id++;
      HM_ASSIGN_OR_RETURN(overlay::InsertReceipt receipt,
                          baseline->overlay_->Insert(point, static_cast<int>(p)));
      (void)receipt;
      ++baseline->items_inserted_;
    }
  }
  return baseline;
}

double CanItemBaseline::average_insert_hops_per_item() const {
  if (items_inserted_ == 0) return 0.0;
  const uint64_t hops = stats_.hops(sim::TrafficClass::kInsert) +
                        stats_.hops(sim::TrafficClass::kReplicate);
  return static_cast<double>(hops) / static_cast<double>(items_inserted_);
}

}  // namespace hyperm::core
