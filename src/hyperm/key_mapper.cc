#include "hyperm/key_mapper.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hyperm::core {

KeyMapper KeyMapper::FromBounds(const Bounds& bounds, double margin) {
  HM_CHECK_GE(margin, 0.0);
  HM_CHECK_LT(margin, 0.5);
  HM_CHECK_GE(bounds.dim(), 1u);
  KeyMapper mapper;
  mapper.lo_ = bounds.lo;
  double max_range = 0.0;
  for (size_t i = 0; i < bounds.dim(); ++i) {
    max_range = std::fmax(max_range, bounds.hi[i] - bounds.lo[i]);
  }
  if (max_range <= 0.0) max_range = 1.0;  // degenerate (single point) bounds
  // Reserve `margin` of the cube on each side; offset the data by that much.
  mapper.scale_ = (1.0 - 2.0 * margin) / max_range;
  for (double& lo : mapper.lo_) lo -= margin / mapper.scale_;
  return mapper;
}

Vector KeyMapper::ToKey(const Vector& x) const {
  HM_CHECK_EQ(x.size(), lo_.size());
  Vector key(x.size());
  const double max_key = std::nextafter(1.0, 0.0);
  for (size_t i = 0; i < x.size(); ++i) {
    key[i] = std::clamp((x[i] - lo_[i]) * scale_, 0.0, max_key);
  }
  return key;
}

geom::Sphere KeyMapper::ToKeySphere(const Vector& center, double radius) const {
  HM_CHECK_GE(radius, 0.0);
  return geom::Sphere{ToKey(center), ToKeyRadius(radius)};
}

}  // namespace hyperm::core
