#include "hyperm/eval.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace hyperm::core {

PrecisionRecall Evaluate(const std::vector<ItemId>& retrieved,
                         const std::vector<ItemId>& relevant) {
  const std::unordered_set<ItemId> retrieved_set(retrieved.begin(), retrieved.end());
  const std::unordered_set<ItemId> relevant_set(relevant.begin(), relevant.end());
  size_t hits = 0;
  for (ItemId id : retrieved_set) {
    if (relevant_set.contains(id)) ++hits;
  }
  PrecisionRecall pr;
  pr.precision = retrieved_set.empty()
                     ? 1.0
                     : static_cast<double>(hits) / static_cast<double>(retrieved_set.size());
  pr.recall = relevant_set.empty()
                  ? 1.0
                  : static_cast<double>(hits) / static_cast<double>(relevant_set.size());
  return pr;
}

EffectivenessSummary Summarize(const std::vector<PrecisionRecall>& results) {
  HM_CHECK(!results.empty());
  EffectivenessSummary s;
  s.queries = static_cast<int>(results.size());
  s.min_recall = s.min_precision = 1.0;
  for (const PrecisionRecall& pr : results) {
    s.mean_precision += pr.precision;
    s.mean_recall += pr.recall;
    s.min_recall = std::min(s.min_recall, pr.recall);
    s.max_recall = std::max(s.max_recall, pr.recall);
    s.min_precision = std::min(s.min_precision, pr.precision);
    s.max_precision = std::max(s.max_precision, pr.precision);
  }
  s.mean_precision /= results.size();
  s.mean_recall /= results.size();
  return s;
}

}  // namespace hyperm::core
