// An application peer: the device that owns data items.
//
// Peers hold their items locally (Hyper-M never ships raw items into the
// overlay — only cluster summaries). Once the score phase has selected a
// peer, queries are resolved against this local store exactly, which is why
// range-query precision is always 100% (Section 6.1).

#ifndef HYPERM_HYPERM_PEER_H_
#define HYPERM_HYPERM_PEER_H_

#include <vector>

#include "vec/matrix.h"
#include "vec/vector.h"

namespace hyperm::core {

/// Globally unique identifier of a data item (its dataset index).
using ItemId = int;

/// An item id with its exact distance to some query (what a peer actually
/// returns over the network, so callers can merge results globally).
struct ScoredItem {
  ItemId id = -1;
  double distance = 0.0;
};

/// A peer's local item store with exact search.
class Peer {
 public:
  /// Creates peer `id` with no items.
  explicit Peer(int id) : id_(id) {}

  /// The peer id (== its overlay node id in every layer).
  int id() const { return id_; }

  /// Adds one item. The vector is copied; `item_id` must be unique per peer.
  void AddItem(ItemId item_id, const Vector& features);

  /// Number of locally stored items.
  size_t num_items() const { return ids_.size(); }

  /// Stored item ids.
  const std::vector<ItemId>& item_ids() const { return ids_; }

  /// Stored feature vectors (flat row-major storage), rows parallel to
  /// item_ids().
  const vec::Matrix& item_features() const { return features_; }

  /// Exact local range search: ids of items within `epsilon` of `query`.
  std::vector<ItemId> RangeSearch(const Vector& query, double epsilon) const;

  /// Exact local top-`count` search: the `count` ids nearest to `query`,
  /// ordered by increasing distance (fewer if the peer holds fewer items).
  std::vector<ItemId> NearestItems(const Vector& query, int count) const;

  /// NearestItems with the exact distances included.
  std::vector<ScoredItem> NearestItemsScored(const Vector& query, int count) const;

 private:
  int id_;
  std::vector<ItemId> ids_;
  vec::Matrix features_;  // SoA: the local scans are batch distance sweeps
};

}  // namespace hyperm::core

#endif  // HYPERM_HYPERM_PEER_H_
