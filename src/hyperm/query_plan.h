// Two-stage query path: plan, then execute.
//
// The QueryPlanner *compiles* a range or k-NN query into per-level probe
// descriptors — the target key sphere (Theorem 4.1 thresholds for range
// queries, the Fig. 5 expanding-probe start for k-NN), the score policy and
// the partition-tolerance budgets — using only the wavelet machinery, so the
// QueryExecutor that *runs* the plan needs none of it. The executor fans the
// probes out over the overlays, classifies each level's fate on the delivery
// outcome lattice
//
//     kDelivered  — the probe completed on the primary greedy path
//     kDetoured   — it completed, but only via alternate-neighbour routing
//     kDeferred   — it died crossing a partition / radio island; a heal
//                   window may fix it (re-issue rounds retry these)
//     kLost       — it died to loss or a crashed peer; retrying now is
//                   hopeless and the level's scores are gone
//
// and, when a heal window and re-issue budget are configured, advances the
// per-network simulator past the window and re-probes the deferred levels so
// their scores merge into the aggregation instead of silently pruning every
// candidate under the min-score policy.
//
// Determinism: planning is pure math on the calling thread; execution issues
// exactly the overlay calls the monolithic query loop used to issue, in the
// same order, through the same fan-out — on a ReliableTransport with zeroed
// budgets the results are bit-identical to the historical query path at any
// thread count.

#ifndef HYPERM_HYPERM_QUERY_PLAN_H_
#define HYPERM_HYPERM_QUERY_PLAN_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geom/shapes.h"
#include "hyperm/key_mapper.h"
#include "hyperm/score.h"
#include "overlay/overlay.h"

namespace hyperm::backbone {
class BackboneManager;  // query_plan.cc includes the real header
}
#include "sim/simulator.h"
#include "wavelet/level.h"
#include "wavelet/transform.h"

namespace hyperm::core {

/// Final fate of one level probe (see file comment for the lattice).
enum class LevelDelivery {
  kDelivered = 0,
  kDetoured,
  kDeferred,
  kLost,
};

/// Human-readable name, for logs and test diagnostics.
const char* LevelDeliveryName(LevelDelivery delivery);

/// Partition-tolerance knobs of the planned query path (one member of
/// HyperMOptions). All zero by default — the planner then reproduces the
/// historical layer-dropping behavior bit for bit.
struct QueryPlanOptions {
  /// k-alternative greedy routing budget per query route (see
  /// overlay::Overlay::set_route_detours). 0 = classic single-path walks.
  int route_detours = 0;

  /// Re-issue rounds for deferred levels. Each round waits heal_window_ms of
  /// simulated time (mobility ticks, partition windows and republishes run
  /// meanwhile) and re-probes every level still deferred. Requires an
  /// unreliable transport (there is no simulator — and nothing to heal — on
  /// the reliable one).
  int reissue_budget = 0;

  /// Simulated wait before each re-issue round. 0 disables re-issue.
  double heal_window_ms = 0.0;
};

/// One compiled per-level probe.
struct LevelProbe {
  int layer = 0;      ///< level index == overlay index
  int layer_dim = 0;  ///< subspace dimensionality

  /// Range probes: the Theorem 4.1 threshold sphere in key space (epsilon
  /// scaled into the level, mapped, plus the boundary FP slack). Expanding
  /// probes: center is the query's key projection, radius the initial probe
  /// radius of the Fig. 5 widening loop.
  geom::Sphere key_sphere;

  bool expanding = false;        ///< true: k-NN expanding probe + Eq. 8
  int knn_k = 0;                 ///< k of the expanding probe
  double max_probe_radius = 0.0; ///< widening cap (the key cube diagonal)
};

/// A compiled query: the per-level probes plus everything the executor needs
/// to classify, retry and aggregate them.
struct QueryPlan {
  std::vector<LevelProbe> probes;
  ScorePolicy score_policy = ScorePolicy::kMin;
  int reissue_budget = 0;
  double heal_window_ms = 0.0;
};

/// Canonical signature of a compiled plan: a 64-bit FNV-1a hash over the
/// probes' exact key spheres (raw double bits), expanding/k parameters and
/// the score policy. Two queries whose compiled plans hash equal issue the
/// same overlay probes and aggregate them the same way, so — at a fixed
/// summary state — they return the same answer. The serving layer's
/// query-result cache keys on this.
uint64_t PlanSignature(const QueryPlan& plan);

/// Serving-layer seam: a mined (query cell -> entry node) shortcut table the
/// executor consults before the greedy walk of a non-expanding range probe.
/// Implemented by serve::ShortcutMiner; hyperm only sees this interface
/// (same dependency-breaking pattern as the BackboneManager hook above).
/// Only consulted on simulator-driven (serial fan-out) executions — the
/// miner is single-threaded like the transport under it.
class ShortcutProvider {
 public:
  virtual ~ShortcutProvider() = default;

  /// Mined entry-node hint for this probe, or overlay::kInvalidNode when the
  /// association is cold or stale.
  virtual overlay::NodeId EntryHint(int layer,
                                    const geom::Sphere& key_sphere) = 0;

  /// Feeds one finished range probe back to the miner. `entry_node` is the
  /// node the zone flood started from (kInvalidNode when the probe died);
  /// `via_shortcut` tells the miner its own hint carried the probe, so a
  /// failure demotes the association instead of merely not promoting it.
  virtual void Observe(int layer, const geom::Sphere& key_sphere,
                       overlay::NodeId entry_node, bool delivered,
                       bool via_shortcut) = 0;
};

/// Execution outcome of one level probe (slot filled by one fan-out task;
/// everything order-sensitive is drained on the calling thread).
struct LevelOutcome {
  Status status = OkStatus();
  LevelDelivery delivery = LevelDelivery::kDelivered;
  std::unordered_map<int, double> scores;  ///< Eq. 1 per-peer level scores
  double level_radius = 0.0;               ///< k-NN only: Eq. 8 estimate
  int routing_hops = 0;
  int flood_hops = 0;
  int detours = 0;   ///< alternate-neighbour forwards the level's routes took
  int reissues = 0;  ///< re-issue rounds this level went through
  double wall_us = 0.0;
  double latency_ms = 0.0;  ///< simulated; includes heal-window waits
};

/// Compiles queries into QueryPlans. Cheap to construct per query; borrows
/// the level/mapper tables (must outlive the planner).
class QueryPlanner {
 public:
  QueryPlanner(const std::vector<wavelet::Level>* levels,
               const std::vector<KeyMapper>* mappers,
               wavelet::WaveletKind wavelet_kind, int num_detail_levels,
               ScorePolicy score_policy, const QueryPlanOptions& options);

  /// Range query: one threshold probe per level (Theorem 4.1 — the level
  /// epsilon guarantees no false dismissals). `query` must already be
  /// validated against the data dimensionality.
  QueryPlan PlanRange(const Vector& query, double epsilon) const;

  /// k-NN query: one expanding probe per level (Fig. 5 steps 1–3).
  QueryPlan PlanKnn(const Vector& query, int k) const;

 private:
  QueryPlan NewPlan() const;

  const std::vector<wavelet::Level>* levels_;  // not owned
  const std::vector<KeyMapper>* mappers_;      // not owned
  wavelet::WaveletKind wavelet_kind_;
  int num_detail_levels_;
  ScorePolicy score_policy_;
  QueryPlanOptions options_;
};

/// Runs a QueryPlan over the per-level overlays. Borrows everything; the
/// overlays (and simulator, when present) must outlive the executor.
class QueryExecutor {
 public:
  /// `fan_out(n, fn)` runs fn(0..n-1), parallel or serial per the caller's
  /// determinism rules (HyperMNetwork::QueryFanOut). `sim` may be null (the
  /// reliable transport) — re-issue rounds are then skipped. `backbone`, when
  /// non-null, serves non-expanding range probes backbone-first (digest-pruned
  /// CDS walk) with full CAN probing as the fail-soft fallback; expanding
  /// (k-NN) probes always take the CAN path. `shortcuts`, when non-null,
  /// offers mined entry hints to non-expanding range probes (consulted only
  /// when `sim` is non-null: the miner is single-threaded) — a stale hint
  /// costs its airtime and the probe re-runs on the plain greedy walk, so
  /// recall never depends on the miner's state.
  QueryExecutor(std::vector<std::unique_ptr<overlay::Overlay>>* overlays,
                sim::Simulator* sim,
                std::function<void(size_t, const std::function<void(size_t)>&)>
                    fan_out,
                backbone::BackboneManager* backbone = nullptr,
                ShortcutProvider* shortcuts = nullptr);

  /// Executes every probe of `plan` from `querying_peer`, then re-issues
  /// deferred levels for up to plan.reissue_budget rounds of
  /// plan.heal_window_ms each. Outcomes are indexed by probe order; a level
  /// recovered by a re-issue ends kDelivered/kDetoured with its reissues
  /// count recording the rounds it took.
  std::vector<LevelOutcome> Execute(const QueryPlan& plan, int querying_peer);

 private:
  /// Runs one probe into `out` (fresh slot). Safe to call from fan-out
  /// workers: touches only the probe's overlay and its own slot.
  void RunProbe(const LevelProbe& probe, int querying_peer, LevelOutcome* out);

  /// Folds a re-issue round's outcome into the level's cumulative one.
  static void MergeReissue(const LevelOutcome& retry, double heal_wait_ms,
                           LevelOutcome* out);

  std::vector<std::unique_ptr<overlay::Overlay>>* overlays_;  // not owned
  sim::Simulator* sim_;                                       // not owned
  std::function<void(size_t, const std::function<void(size_t)>&)> fan_out_;
  backbone::BackboneManager* backbone_;                       // not owned, may be null
  ShortcutProvider* shortcuts_;                               // not owned, may be null
};

}  // namespace hyperm::core

#endif  // HYPERM_HYPERM_QUERY_PLAN_H_
