// The paper's comparison baseline: conventional CAN publication, where every
// data item is inserted into the overlay individually (Section 5.2).
//
// Two variants appear in Fig. 8:
//  * full-dimensional CAN — the key is the complete feature vector;
//  * an "illustrative" 2-dimensional CAN that indexes only the first two
//    coordinates ("though it cannot be used to retrieve meaningful data, it
//    shows the magnitude of the performance gap").

#ifndef HYPERM_HYPERM_BASELINE_H_
#define HYPERM_HYPERM_BASELINE_H_

#include <memory>

#include "can/can_overlay.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/peer_assignment.h"
#include "hyperm/key_mapper.h"
#include "sim/stats.h"

namespace hyperm::core {

/// Configuration of the per-item CAN baseline.
struct ItemBaselineOptions {
  size_t index_dims = 0;  ///< 0 = full data dimensionality; 2 = the paper's
                          ///< illustrative low-dimensional CAN
};

/// A CAN into which every item was inserted individually.
class CanItemBaseline {
 public:
  /// Builds the overlay (one node per peer) and inserts every assigned item
  /// as a zero-radius key from its owner's node. All traffic lands in
  /// stats(). Returns InvalidArgument on bad inputs.
  static Result<std::unique_ptr<CanItemBaseline>> Build(
      const data::Dataset& dataset, const data::PeerAssignment& assignment,
      const ItemBaselineOptions& options, Rng& rng);

  /// Traffic counters (join + per-item insert hops).
  const sim::NetworkStats& stats() const { return stats_; }

  /// Items inserted.
  int items_inserted() const { return items_inserted_; }

  /// Average insertion hops per item (insert class only, as in Fig. 8).
  double average_insert_hops_per_item() const;

  /// The underlying overlay (for distribution analysis).
  const can::CanOverlay& overlay() const { return *overlay_; }

 private:
  CanItemBaseline() = default;

  sim::NetworkStats stats_;
  std::unique_ptr<can::CanOverlay> overlay_;
  int items_inserted_ = 0;
};

}  // namespace hyperm::core

#endif  // HYPERM_HYPERM_BASELINE_H_
