#include "hyperm/score.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/sphere_volume.h"
#include "vec/vector.h"

namespace hyperm::core {

double ClusterCoverageFraction(int dim, const overlay::PublishedCluster& cluster,
                               const geom::Sphere& query) {
  HM_CHECK_GE(dim, 1);
  const double b = vec::Distance(cluster.sphere.center, query.center);
  if (cluster.sphere.radius <= 0.0) {
    // Point cluster: covered entirely or not at all.
    return b <= query.radius ? 1.0 : 0.0;
  }
  if (query.radius <= 0.0) {
    // Point query: the intersection volume is zero, but a cluster containing
    // the point is still a full candidate — degrade to the containment
    // indicator so score ranking keeps working.
    return b <= cluster.sphere.radius ? 1.0 : 0.0;
  }
  return geom::SphereIntersectionFraction(dim, cluster.sphere.radius, query.radius, b);
}

std::unordered_map<int, double> ComputeLevelScores(
    int dim, const std::vector<overlay::PublishedCluster>& matches,
    const geom::Sphere& query) {
  std::unordered_map<int, double> scores;
  for (const overlay::PublishedCluster& cluster : matches) {
    const double fraction = ClusterCoverageFraction(dim, cluster, query);
    if (fraction <= 0.0) continue;
    scores[cluster.owner_peer] += fraction * cluster.items;
  }
  return scores;
}

std::vector<PeerScore> AggregateScores(
    const std::vector<std::unordered_map<int, double>>& level_scores,
    ScorePolicy policy) {
  std::unordered_map<int, double> aggregated;
  std::unordered_map<int, int> levels_present;
  for (const auto& level : level_scores) {
    for (const auto& [peer, score] : level) {
      ++levels_present[peer];
      auto [it, inserted] = aggregated.try_emplace(peer, score);
      if (inserted) continue;
      switch (policy) {
        case ScorePolicy::kMin:
          it->second = std::fmin(it->second, score);
          break;
        case ScorePolicy::kSum:
          it->second += score;
          break;
        case ScorePolicy::kProduct:
          it->second *= score;
          break;
      }
    }
  }
  std::vector<PeerScore> out;
  const int num_levels = static_cast<int>(level_scores.size());
  for (const auto& [peer, score] : aggregated) {
    // Min/product semantics: a level with no intersecting cluster is a zero
    // score, which zeroes the aggregate and prunes the peer.
    if (policy != ScorePolicy::kSum && levels_present[peer] < num_levels) continue;
    if (score <= 0.0) continue;
    out.push_back(PeerScore{peer, score});
  }
  std::sort(out.begin(), out.end(), [](const PeerScore& a, const PeerScore& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.peer < b.peer;
  });
  return out;
}

}  // namespace hyperm::core
