// Item-to-peer assignment (paper Section 5.1).
//
// "The data was subsequently clustered using k-means in the original vector
// space and then each cluster was redistributed among 8 to 10 nodes. This
// method simulates user behavior in the sense that each user commonly has a
// limited set of interests, thus maintaining items belonging to a subset of
// all the classes in the data space."

#ifndef HYPERM_DATA_PEER_ASSIGNMENT_H_
#define HYPERM_DATA_PEER_ASSIGNMENT_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace hyperm::data {

/// Parameters of the interest-based assignment.
struct AssignmentOptions {
  int num_peers = 100;            ///< peers in the network
  int num_interest_classes = 25;  ///< k for the original-space k-means
  int min_peers_per_class = 8;    ///< paper: each cluster spread over 8..10 peers
  int max_peers_per_class = 10;
};

/// assignment[p] lists the dataset indices stored at peer p.
using PeerAssignment = std::vector<std::vector<int>>;

/// Clusters the dataset into interest classes, spreads each class over a
/// random subset of 8–10 peers, and deals the class members among them.
/// Every peer is topped up from random classes if it would otherwise be
/// empty. Returns InvalidArgument on bad options.
Result<PeerAssignment> AssignByInterest(const Dataset& dataset,
                                        const AssignmentOptions& options, Rng& rng);

/// Uniform-random assignment baseline (every item to a random peer).
Result<PeerAssignment> AssignUniform(const Dataset& dataset, int num_peers, Rng& rng);

/// Keeps only the items of `keep_classes` randomly selected interest classes
/// (the Fig. 9 deliberate skew: 2–5 clusters). Returns the indices kept.
Result<std::vector<int>> SelectSkewedSubset(const Dataset& dataset, int keep_classes,
                                            int num_interest_classes, Rng& rng);

}  // namespace hyperm::data

#endif  // HYPERM_DATA_PEER_ASSIGNMENT_H_
