// Dataset container shared by generators, experiments and examples.

#ifndef HYPERM_DATA_DATASET_H_
#define HYPERM_DATA_DATASET_H_

#include <cstddef>
#include <vector>

#include "vec/vector.h"

namespace hyperm::data {

/// A collection of feature vectors with optional class labels.
///
/// Labels identify the generating class (Markov trace family, ALOI-like
/// object id); they are never visible to Hyper-M itself and exist for
/// ground-truth evaluation only.
struct Dataset {
  std::vector<Vector> items;
  std::vector<int> labels;  ///< empty, or one label per item

  /// Number of items.
  size_t size() const { return items.size(); }

  /// Dimensionality (0 for an empty dataset).
  size_t dim() const { return items.empty() ? 0 : items.front().size(); }

  /// True iff per-item labels are present.
  bool has_labels() const { return labels.size() == items.size(); }
};

}  // namespace hyperm::data

#endif  // HYPERM_DATA_DATASET_H_
