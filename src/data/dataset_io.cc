#include "data/dataset_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace hyperm::data {
namespace {

constexpr char kMagic[8] = {'H', 'Y', 'P', 'E', 'R', 'M', 'D', '1'};

}  // namespace

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return UnavailableError("WriteCsv: cannot open " + path);
  out.precision(17);
  const bool labeled = dataset.has_labels();
  for (size_t i = 0; i < dataset.items.size(); ++i) {
    out << (labeled ? dataset.labels[i] : -1);
    for (double v : dataset.items[i]) out << ',' << v;
    out << '\n';
  }
  out.flush();
  if (!out) return UnavailableError("WriteCsv: write failed for " + path);
  return OkStatus();
}

Result<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return UnavailableError("ReadCsv: cannot open " + path);
  Dataset dataset;
  std::string line;
  size_t expected_dim = 0;
  bool any_label = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string field;
    if (!std::getline(fields, field, ',')) {
      return InvalidArgumentError("ReadCsv: empty record");
    }
    int label = 0;
    Vector item;
    {
      std::istringstream parse(field);
      if (!(parse >> label)) return InvalidArgumentError("ReadCsv: bad label: " + field);
    }
    while (std::getline(fields, field, ',')) {
      std::istringstream parse(field);
      double v = 0.0;
      if (!(parse >> v)) return InvalidArgumentError("ReadCsv: bad value: " + field);
      item.push_back(v);
    }
    if (item.empty()) return InvalidArgumentError("ReadCsv: record without values");
    if (expected_dim == 0) {
      expected_dim = item.size();
    } else if (item.size() != expected_dim) {
      return InvalidArgumentError("ReadCsv: inconsistent dimensionality");
    }
    any_label = any_label || label >= 0;
    dataset.items.push_back(std::move(item));
    dataset.labels.push_back(label);
  }
  if (!any_label) dataset.labels.clear();
  return dataset;
}

Status WriteBinary(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return UnavailableError("WriteBinary: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  const uint64_t count = dataset.items.size();
  const uint64_t dim = dataset.dim();
  const uint8_t labeled = dataset.has_labels() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(&labeled), sizeof(labeled));
  for (const Vector& item : dataset.items) {
    HM_CHECK_EQ(item.size(), dim);
    out.write(reinterpret_cast<const char*>(item.data()),
              static_cast<std::streamsize>(dim * sizeof(double)));
  }
  if (labeled != 0) {
    for (int label : dataset.labels) {
      const int32_t v = label;
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    }
  }
  out.flush();
  if (!out) return UnavailableError("WriteBinary: write failed for " + path);
  return OkStatus();
}

Result<Dataset> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return UnavailableError("ReadBinary: cannot open " + path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError("ReadBinary: bad magic (not an HMD file)");
  }
  uint64_t count = 0, dim = 0;
  uint8_t labeled = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  in.read(reinterpret_cast<char*>(&labeled), sizeof(labeled));
  if (!in) return InvalidArgumentError("ReadBinary: truncated header");
  // Sanity bounds to refuse corrupted headers before allocating.
  constexpr uint64_t kMaxReasonable = uint64_t{1} << 32;
  if (count > kMaxReasonable || dim == 0 || dim > kMaxReasonable) {
    return InvalidArgumentError("ReadBinary: implausible header counts");
  }
  Dataset dataset;
  dataset.items.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Vector item(dim);
    in.read(reinterpret_cast<char*>(item.data()),
            static_cast<std::streamsize>(dim * sizeof(double)));
    if (!in) return InvalidArgumentError("ReadBinary: truncated items");
    dataset.items.push_back(std::move(item));
  }
  if (labeled != 0) {
    dataset.labels.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      int32_t v = 0;
      in.read(reinterpret_cast<char*>(&v), sizeof(v));
      if (!in) return InvalidArgumentError("ReadBinary: truncated labels");
      dataset.labels.push_back(v);
    }
  }
  return dataset;
}

}  // namespace hyperm::data
