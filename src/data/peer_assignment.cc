#include "data/peer_assignment.h"

#include <algorithm>

#include "cluster/kmeans.h"
#include "common/check.h"

namespace hyperm::data {
namespace {

// Distinct random peers, `count` of them out of `num_peers`.
std::vector<int> SamplePeers(int num_peers, int count, Rng& rng) {
  std::vector<int> all(static_cast<size_t>(num_peers));
  for (int i = 0; i < num_peers; ++i) all[static_cast<size_t>(i)] = i;
  rng.Shuffle(all);
  all.resize(static_cast<size_t>(std::min(count, num_peers)));
  return all;
}

}  // namespace

Result<PeerAssignment> AssignByInterest(const Dataset& dataset,
                                        const AssignmentOptions& options, Rng& rng) {
  if (dataset.items.empty()) return InvalidArgumentError("AssignByInterest: empty dataset");
  if (options.num_peers < 1) return InvalidArgumentError("AssignByInterest: num_peers < 1");
  if (options.num_interest_classes < 1 ||
      options.min_peers_per_class < 1 ||
      options.max_peers_per_class < options.min_peers_per_class) {
    return InvalidArgumentError("AssignByInterest: bad class/peer options");
  }

  cluster::KMeansOptions kmeans_options;
  kmeans_options.k = options.num_interest_classes;
  HM_ASSIGN_OR_RETURN(cluster::KMeansResult classes,
                      cluster::KMeans(dataset.items, kmeans_options, rng));

  // Bucket item indices by interest class.
  std::vector<std::vector<int>> class_members(classes.clusters.size());
  for (size_t i = 0; i < dataset.items.size(); ++i) {
    class_members[static_cast<size_t>(classes.assignments[i])].push_back(
        static_cast<int>(i));
  }

  PeerAssignment assignment(static_cast<size_t>(options.num_peers));
  for (auto& members : class_members) {
    if (members.empty()) continue;
    const int spread = static_cast<int>(
        rng.UniformInt(options.min_peers_per_class, options.max_peers_per_class));
    const std::vector<int> peers = SamplePeers(options.num_peers, spread, rng);
    rng.Shuffle(members);
    for (size_t i = 0; i < members.size(); ++i) {
      assignment[static_cast<size_t>(peers[i % peers.size()])].push_back(members[i]);
    }
  }

  // Top up empty peers by stealing one item from the fullest peer so every
  // peer participates in the network.
  for (auto& items : assignment) {
    if (!items.empty()) continue;
    auto fullest = std::max_element(
        assignment.begin(), assignment.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    if (fullest->size() <= 1) continue;  // nothing to steal
    items.push_back(fullest->back());
    fullest->pop_back();
  }
  return assignment;
}

Result<PeerAssignment> AssignUniform(const Dataset& dataset, int num_peers, Rng& rng) {
  if (dataset.items.empty()) return InvalidArgumentError("AssignUniform: empty dataset");
  if (num_peers < 1) return InvalidArgumentError("AssignUniform: num_peers < 1");
  PeerAssignment assignment(static_cast<size_t>(num_peers));
  for (size_t i = 0; i < dataset.items.size(); ++i) {
    assignment[rng.NextIndex(static_cast<size_t>(num_peers))].push_back(
        static_cast<int>(i));
  }
  return assignment;
}

Result<std::vector<int>> SelectSkewedSubset(const Dataset& dataset, int keep_classes,
                                            int num_interest_classes, Rng& rng) {
  if (dataset.items.empty()) return InvalidArgumentError("SelectSkewedSubset: empty dataset");
  if (keep_classes < 1 || keep_classes > num_interest_classes) {
    return InvalidArgumentError("SelectSkewedSubset: bad keep_classes");
  }
  cluster::KMeansOptions kmeans_options;
  kmeans_options.k = num_interest_classes;
  HM_ASSIGN_OR_RETURN(cluster::KMeansResult classes,
                      cluster::KMeans(dataset.items, kmeans_options, rng));

  // Keep the `keep_classes` most populated clusters (a deterministic way to
  // "select only a fixed number of clusters" that maximises the skew).
  std::vector<int> population(classes.clusters.size(), 0);
  for (int a : classes.assignments) ++population[static_cast<size_t>(a)];
  std::vector<int> order(classes.clusters.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return population[static_cast<size_t>(a)] >
                                       population[static_cast<size_t>(b)]; });
  order.resize(static_cast<size_t>(std::min<size_t>(
      static_cast<size_t>(keep_classes), order.size())));
  std::vector<bool> keep(classes.clusters.size(), false);
  for (int c : order) keep[static_cast<size_t>(c)] = true;

  std::vector<int> kept_indices;
  for (size_t i = 0; i < dataset.items.size(); ++i) {
    if (keep[static_cast<size_t>(classes.assignments[i])]) {
      kept_indices.push_back(static_cast<int>(i));
    }
  }
  (void)rng;
  return kept_indices;
}

}  // namespace hyperm::data
