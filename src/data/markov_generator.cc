#include "data/markov_generator.h"

#include <cmath>

#include "common/check.h"

namespace hyperm::data {
namespace {

// One family = one parameterisation of the two-state process.
struct MarkovFamily {
  double p_stay_increasing;  // p1: probability of staying in Increasing
  double p_stay_decreasing;  // p2 = p1 + U(-0.05, 0.05)
  double start_value;
  bool start_increasing;
  double max_step;
};

MarkovFamily DrawFamily(Rng& rng) {
  MarkovFamily family;
  family.p_stay_increasing = rng.Uniform(0.0, 0.5);
  family.p_stay_decreasing = family.p_stay_increasing + rng.Uniform(-0.05, 0.05);
  if (family.p_stay_decreasing < 0.0) family.p_stay_decreasing = 0.0;
  family.start_value = rng.Uniform(0.0, 1.0);
  family.start_increasing = rng.Bernoulli(0.5);
  family.max_step = rng.Uniform(0.01, 0.1);
  return family;
}

Vector DrawTrace(const MarkovFamily& family, int dim, Rng& rng) {
  Vector trace(static_cast<size_t>(dim));
  double value = family.start_value;
  bool increasing = family.start_increasing;
  for (int i = 0; i < dim; ++i) {
    const double step = rng.Uniform(0.0, family.max_step);
    value += increasing ? step : -step;
    trace[static_cast<size_t>(i)] = value;
    const double p_stay =
        increasing ? family.p_stay_increasing : family.p_stay_decreasing;
    if (!rng.Bernoulli(p_stay)) increasing = !increasing;
  }
  return trace;
}

}  // namespace

Result<Dataset> GenerateMarkov(const MarkovOptions& options, Rng& rng) {
  if (options.count < 1) return InvalidArgumentError("GenerateMarkov: count < 1");
  if (options.dim < 1) return InvalidArgumentError("GenerateMarkov: dim < 1");
  if (options.num_families < 1) {
    return InvalidArgumentError("GenerateMarkov: num_families < 1");
  }
  std::vector<MarkovFamily> families;
  families.reserve(static_cast<size_t>(options.num_families));
  for (int f = 0; f < options.num_families; ++f) families.push_back(DrawFamily(rng));

  Dataset dataset;
  dataset.items.reserve(static_cast<size_t>(options.count));
  dataset.labels.reserve(static_cast<size_t>(options.count));
  for (int i = 0; i < options.count; ++i) {
    const int family = static_cast<int>(rng.NextIndex(families.size()));
    dataset.items.push_back(DrawTrace(families[static_cast<size_t>(family)],
                                      options.dim, rng));
    dataset.labels.push_back(family);
  }
  return dataset;
}

}  // namespace hyperm::data
