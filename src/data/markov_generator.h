// Synthetic Markov-trace dataset (paper Section 5.1).
//
// "To simulate real data, we used a Markov process with two states
// Increasing and Decreasing. The transition probabilities p1, p2 were
// generated randomly as follows: first, p1 was chosen uniformly between 0
// and 0.5. Then, p2 = p1 + x, where x was also chosen randomly between
// -0.05 and 0.05. The starting value, the initial state, the
// increase/decrease step, as well as the maximum step value were all chosen
// randomly."
//
// Each *family* of items shares one parameterisation (so the dataset has a
// natural cluster structure, like users sharing interests); items within a
// family are independent walks of the same process and carry the family id
// as their label.

#ifndef HYPERM_DATA_MARKOV_GENERATOR_H_
#define HYPERM_DATA_MARKOV_GENERATOR_H_

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace hyperm::data {

/// Parameters of the Markov dataset generator.
struct MarkovOptions {
  int count = 100000;     ///< total items (paper: 100,000)
  int dim = 512;          ///< dimensionality (paper: 512; must be >= 1)
  int num_families = 25;  ///< distinct process parameterisations (labels)
};

/// Generates `options.count` traces. Returns InvalidArgument on nonsensical
/// options. Deterministic given `rng`'s state.
Result<Dataset> GenerateMarkov(const MarkovOptions& options, Rng& rng);

}  // namespace hyperm::data

#endif  // HYPERM_DATA_MARKOV_GENERATOR_H_
