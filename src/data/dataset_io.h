// Dataset persistence.
//
// Two formats:
//  * CSV  — one item per line, `label,v0,v1,...` (label -1 when absent);
//    interoperable with external tooling and easy to inspect.
//  * HMD  — a little-endian binary format ("HYPERMD1" magic, counts, raw
//    doubles) for fast reload of large generated datasets so experiment
//    sweeps can share one corpus.

#ifndef HYPERM_DATA_DATASET_IO_H_
#define HYPERM_DATA_DATASET_IO_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace hyperm::data {

/// Writes `dataset` as CSV. Returns Unavailable on I/O failure.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a CSV written by WriteCsv (or compatible). Lines must share one
/// dimensionality; returns InvalidArgument on malformed input.
Result<Dataset> ReadCsv(const std::string& path);

/// Writes `dataset` in the binary HMD format.
Status WriteBinary(const Dataset& dataset, const std::string& path);

/// Reads an HMD file; validates the magic and structural invariants.
Result<Dataset> ReadBinary(const std::string& path);

}  // namespace hyperm::data

#endif  // HYPERM_DATA_DATASET_IO_H_
