// ALOI-like synthetic colour-histogram dataset.
//
// The paper's effectiveness experiments use the Amsterdam Library of Object
// Images [13]: 12,000 images (1,000 objects under 12 viewing/illumination
// conditions) represented as colour histograms. That collection is not
// available offline, so this generator synthesises a dataset with the same
// structure: each *object* is a Dirichlet shape prototype over histogram
// bins with its own total mass (how much of the frame the object covers),
// and each *view* perturbs the prototype with illumination gain, a small
// circular bin shift (viewing angle) and additive noise. Histograms are
// deliberately NOT normalised — raw colour counts carry the total-mass
// signal the wavelet approximation level indexes, exactly as raw ALOI
// histograms do. Ground-truth neighbours of a view are the other views of
// the same object, which is what the retrieval experiments rely on.

#ifndef HYPERM_DATA_HISTOGRAM_GENERATOR_H_
#define HYPERM_DATA_HISTOGRAM_GENERATOR_H_

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace hyperm::data {

/// Parameters of the histogram dataset generator.
struct HistogramOptions {
  int num_objects = 1000;      ///< distinct objects (labels)
  int views_per_object = 12;   ///< histograms per object
  int dim = 64;                ///< histogram bins (power of two for the DWT)
  double concentration = 0.3;  ///< Dirichlet concentration of prototype shapes
  double mass_sigma = 0.5;     ///< log-normal spread of per-object total mass
  double gain_sigma = 0.08;    ///< log-normal illumination gain per view
  double noise_sigma = 0.004;  ///< additive per-bin noise (x object mass)
  int max_shift = 1;           ///< max circular bin shift per view
};

/// Generates num_objects * views_per_object non-negative raw-count
/// histograms; label = object id. Returns InvalidArgument on bad options.
Result<Dataset> GenerateHistograms(const HistogramOptions& options, Rng& rng);

}  // namespace hyperm::data

#endif  // HYPERM_DATA_HISTOGRAM_GENERATOR_H_
