#include "data/histogram_generator.h"

#include <cmath>

#include "common/check.h"

namespace hyperm::data {

Result<Dataset> GenerateHistograms(const HistogramOptions& options, Rng& rng) {
  if (options.num_objects < 1) {
    return InvalidArgumentError("GenerateHistograms: num_objects < 1");
  }
  if (options.views_per_object < 1) {
    return InvalidArgumentError("GenerateHistograms: views_per_object < 1");
  }
  if (options.dim < 2) return InvalidArgumentError("GenerateHistograms: dim < 2");
  if (options.max_shift < 0 || options.max_shift >= options.dim) {
    return InvalidArgumentError("GenerateHistograms: bad max_shift");
  }

  Dataset dataset;
  const size_t total =
      static_cast<size_t>(options.num_objects) * static_cast<size_t>(options.views_per_object);
  dataset.items.reserve(total);
  dataset.labels.reserve(total);

  const size_t dim = static_cast<size_t>(options.dim);
  for (int object = 0; object < options.num_objects; ++object) {
    // Shape (where the colour mass sits) times mass (how much of the frame
    // the object covers) — both are object identity.
    std::vector<double> prototype = rng.Dirichlet(options.dim, options.concentration);
    const double object_mass = std::exp(rng.Gaussian(0.0, options.mass_sigma));
    for (double& bin : prototype) bin *= object_mass;
    for (int view = 0; view < options.views_per_object; ++view) {
      Vector histogram(dim, 0.0);
      // Viewing angle: blend a small circular shift of the bin mass into the
      // prototype (a hard shift would orthogonalize sparse histograms).
      const int shift = static_cast<int>(
          rng.UniformInt(-options.max_shift, options.max_shift));
      const double blend = rng.Uniform(0.0, 0.25);
      // Illumination affects the whole view; bin-level gain adds texture.
      const double view_gain = std::exp(rng.Gaussian(0.0, options.gain_sigma));
      const double mass_scale = options.noise_sigma * 0.1;
      for (size_t bin = 0; bin < dim; ++bin) {
        const size_t src =
            static_cast<size_t>((static_cast<int>(bin) - shift % options.dim +
                                 options.dim) %
                                options.dim);
        const double bin_gain = std::exp(rng.Gaussian(0.0, options.gain_sigma));
        const double base = (1.0 - blend) * prototype[bin] + blend * prototype[src];
        histogram[bin] = base * view_gain * bin_gain +
                         std::fabs(rng.Gaussian(0.0, mass_scale));
      }
      dataset.items.push_back(std::move(histogram));
      dataset.labels.push_back(object);
    }
  }
  return dataset;
}

}  // namespace hyperm::data
