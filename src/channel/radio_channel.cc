#include "channel/radio_channel.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/seed_stream.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace hyperm::channel {

namespace {
// Sub-stream ids off ChannelOptions::seed (see common/seed_stream.h).
constexpr uint64_t kPlacementStream = 0;
constexpr uint64_t kMobilityStream = 1;
}  // namespace

Status ChannelOptions::Validate() const {
  if (tick_ms <= 0.0) return InvalidArgumentError("ChannelOptions: tick_ms <= 0");
  if (speed_m_per_s < 0.0) {
    return InvalidArgumentError("ChannelOptions: negative speed_m_per_s");
  }
  if (bandwidth_bytes_per_ms <= 0.0) {
    return InvalidArgumentError("ChannelOptions: bandwidth_bytes_per_ms <= 0");
  }
  if (tx_overhead_ms < 0.0) {
    return InvalidArgumentError("ChannelOptions: negative tx_overhead_ms");
  }
  if (contention_per_busy_neighbor < 0.0) {
    return InvalidArgumentError("ChannelOptions: negative contention");
  }
  if (field.field_size_m <= 0.0 || field.radio_range_m <= 0.0) {
    return InvalidArgumentError("ChannelOptions: non-positive field geometry");
  }
  HM_RETURN_IF_ERROR(mac.Validate());
  HM_RETURN_IF_ERROR(routing.Validate());
  return OkStatus();
}

Result<std::unique_ptr<RadioChannel>> RadioChannel::Create(
    int num_peers, const ChannelOptions& options, sim::NetworkStats* stats) {
  if (num_peers < 1) return InvalidArgumentError("RadioChannel: num_peers < 1");
  HM_CHECK(stats != nullptr);
  HM_RETURN_IF_ERROR(options.Validate());
  manet::TopologyOptions field = options.field;
  field.num_nodes = num_peers;
  Rng placement = SeedStream(options.seed).At(kPlacementStream);
  HM_ASSIGN_OR_RETURN(manet::ManetTopology topology,
                      manet::ManetTopology::Generate(field, placement));
  std::unique_ptr<RadioChannel> channel(
      new RadioChannel(options, std::move(topology), stats));
  MacModel::AirParams air;
  air.bandwidth_bytes_per_ms = options.bandwidth_bytes_per_ms;
  air.tx_overhead_ms = options.tx_overhead_ms;
  air.contention_per_busy_neighbor = options.contention_per_busy_neighbor;
  HM_ASSIGN_OR_RETURN(channel->mac_,
                      CreateMac(options.mac, air, &channel->topology_));
  HM_ASSIGN_OR_RETURN(
      channel->router_,
      route::CreateRouting(options.routing, &channel->topology_,
                           channel->mac_.get()));
  return channel;
}

RadioChannel::RadioChannel(const ChannelOptions& options,
                           manet::ManetTopology topology, sim::NetworkStats* stats)
    : options_(options),
      topology_(std::move(topology)),
      stats_(stats),
      mobility_rng_(SeedStream(options.seed).At(kMobilityStream)) {
  // PublishMacObs hardcodes the channel.mac.<cause> literals (the counter
  // macro caches its handle per call site); pin them to the enum's names so
  // a renamed cause cannot silently fork the counter from its events.
  HM_CHECK(std::strcmp(MacCauseName(MacCause::kDeferral), "deferrals") == 0);
  HM_CHECK(std::strcmp(MacCauseName(MacCause::kCollision), "collisions") == 0);
  HM_CHECK(std::strcmp(MacCauseName(MacCause::kRetransmit), "retransmits") == 0);
  HM_CHECK(std::strcmp(MacCauseName(MacCause::kDropRetryLimit),
                       "drops_retry_limit") == 0);
}

bool RadioChannel::connected() const { return topology_.connected(); }

int RadioChannel::island(int node) const {
  if (node < 0 || node >= topology_.num_nodes()) return -1;
  return topology_.island_labels()[static_cast<size_t>(node)];
}

int RadioChannel::num_islands() const { return topology_.num_islands(); }

bool RadioChannel::Reachable(int src, int dst) const {
  if (src < 0 || dst < 0 || src >= topology_.num_nodes() ||
      dst >= topology_.num_nodes()) {
    return false;
  }
  return topology_.CanReach(src, dst);
}

const ChannelCounters& RadioChannel::counters() const {
  // The MAC owns the queue tails and frame totals now; mirror them so
  // existing readers keep seeing one flat counter block.
  const MacCounters& mc = mac_->counters();
  counters_.radio_transmissions = mc.frames_sent;
  counters_.queued_transmissions = mc.queued_transmissions;
  counters_.queue_wait_ms = mc.queue_wait_ms;
  return counters_;
}

void RadioChannel::PublishRouteCacheObs(sim::TimeMs now, int src, int dst) {
  const manet::RouteCacheCounters& rc = topology_.route_cache_counters();
  const uint64_t builds = rc.misses - emitted_route_.misses;
  if (builds > 0) {
    HM_OBS_COUNTER_ADD("channel.route_cache.misses", builds);
    HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kRouteCacheBuild,
                 .src = src, .dst = dst, .aux = static_cast<int64_t>(builds));
  }
  if (rc.hits > emitted_route_.hits) {
    HM_OBS_COUNTER_ADD("channel.route_cache.hits", rc.hits - emitted_route_.hits);
  }
  if (rc.invalidations > emitted_route_.invalidations) {
    HM_OBS_COUNTER_ADD("channel.route_cache.invalidations",
                       rc.invalidations - emitted_route_.invalidations);
  }
  emitted_route_ = rc;
}

void RadioChannel::PublishMacObs() {
  const MacCounters& mc = mac_->counters();
  if (mc.deferrals > emitted_mac_.deferrals) {
    HM_OBS_COUNTER_ADD("channel.mac.deferrals",
                       mc.deferrals - emitted_mac_.deferrals);
  }
  if (mc.collisions > emitted_mac_.collisions) {
    HM_OBS_COUNTER_ADD("channel.mac.collisions",
                       mc.collisions - emitted_mac_.collisions);
  }
  if (mc.retransmits > emitted_mac_.retransmits) {
    HM_OBS_COUNTER_ADD("channel.mac.retransmits",
                       mc.retransmits - emitted_mac_.retransmits);
  }
  if (mc.drops_retry_limit > emitted_mac_.drops_retry_limit) {
    HM_OBS_COUNTER_ADD("channel.mac.drops_retry_limit",
                       mc.drops_retry_limit - emitted_mac_.drops_retry_limit);
  }
  emitted_mac_ = mc;
}

net::ChannelTransmission RadioChannel::Transmit(const net::Message& message,
                                                sim::TimeMs now) {
  HM_CHECK_GE(message.src, 0);
  HM_CHECK_LT(message.src, topology_.num_nodes());
  HM_CHECK_GE(message.dst, 0);
  HM_CHECK_LT(message.dst, topology_.num_nodes());
  net::ChannelTransmission result;
  if (message.src == message.dst) return result;  // local delivery, free
  route::RouteResolution res = router_->Resolve(message, now, path_scratch_);
  if (!res.found) {
    // No route this attempt (island boundary, or a discovery flood that
    // died out): the source radio still transmits into the void before the
    // ack timeout reveals the loss — fire-and-forget, after any discovery
    // latency the protocol already charged.
    const FrameResult fr =
        mac_->SendFrame(message.src, /*receiver=*/-1, message,
                        now + res.control_latency_ms);
    stats_->RecordHop(message.cls, message.bytes);
    HM_OBS_COUNTER_ADD("channel.radio_transmissions", 1);
    ++counters_.unreachable_transmissions;
    HM_OBS_COUNTER_ADD("channel.unreachable", 1);
    HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kTxUnreachable,
                 .src = message.src, .dst = message.dst,
                 .value = fr.done_ms - now);
    result.latency_ms = fr.done_ms - now;
    result.radio_hops = 1;
    result.reachable = false;
    PublishMacObs();
    return result;
  }
  const std::vector<int>& path = path_scratch_;
  HM_CHECK(path.size() >= 2);  // full src..dst sequence by the seam contract
  PublishRouteCacheObs(now, message.src, message.dst);
  // One queued MAC frame per hop, in path order: each relay can only forward
  // once the previous hop's frame completes AND its own queue has drained —
  // this is where offered load becomes latency. Discovery latency (if any)
  // is serialized before the first data frame.
  sim::TimeMs ready = now + res.control_latency_ms;
  uint64_t frames = 0;
  bool dropped = false;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const FrameResult fr = mac_->SendFrame(path[i], path[i + 1], message, ready);
    frames += static_cast<uint64_t>(fr.attempts);
    ready = fr.done_ms;
    if (!fr.delivered) {
      // Retry limit exhausted: the frame is gone and the forwarder now knows
      // the link is dead — routing reacts (RERR), the transport sees a loss.
      dropped = true;
      router_->OnLinkBreak(path[i], path[i + 1], fr.done_ms);
      break;
    }
  }
  // Hop/byte/energy accounting batched per message: every frame carries the
  // same payload, so one RecordHops call replaces per-frame atomic
  // round-trips with identical totals (retransmitted frames included).
  stats_->RecordHops(message.cls, message.bytes, frames);
  HM_OBS_COUNTER_ADD("channel.radio_transmissions", frames);
  result.latency_ms = ready - now;
  result.radio_hops = static_cast<int>(frames);
  result.reachable = true;
  if (dropped) {
    ++counters_.mac_dropped_transmissions;
    HM_OBS_COUNTER_ADD("channel.mac_dropped", 1);
    result.mac_dropped = true;
  }
  PublishMacObs();
  return result;
}

void RadioChannel::Step() {
  topology_.RandomWaypointStep(step_m(), mobility_rng_);
  ++counters_.mobility_steps;
  if (!connected()) {
    ++counters_.disconnected_steps;
    HM_OBS_COUNTER_ADD("channel.disconnected_steps", 1);
  }
}

}  // namespace hyperm::channel
