#include "channel/radio_channel.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace hyperm::channel {

Status ChannelOptions::Validate() const {
  if (tick_ms <= 0.0) return InvalidArgumentError("ChannelOptions: tick_ms <= 0");
  if (speed_m_per_s < 0.0) {
    return InvalidArgumentError("ChannelOptions: negative speed_m_per_s");
  }
  if (bandwidth_bytes_per_ms <= 0.0) {
    return InvalidArgumentError("ChannelOptions: bandwidth_bytes_per_ms <= 0");
  }
  if (tx_overhead_ms < 0.0) {
    return InvalidArgumentError("ChannelOptions: negative tx_overhead_ms");
  }
  if (contention_per_busy_neighbor < 0.0) {
    return InvalidArgumentError("ChannelOptions: negative contention");
  }
  if (field.field_size_m <= 0.0 || field.radio_range_m <= 0.0) {
    return InvalidArgumentError("ChannelOptions: non-positive field geometry");
  }
  return OkStatus();
}

Result<std::unique_ptr<RadioChannel>> RadioChannel::Create(
    int num_peers, const ChannelOptions& options, sim::NetworkStats* stats) {
  if (num_peers < 1) return InvalidArgumentError("RadioChannel: num_peers < 1");
  HM_CHECK(stats != nullptr);
  HM_RETURN_IF_ERROR(options.Validate());
  manet::TopologyOptions field = options.field;
  field.num_nodes = num_peers;
  Rng placement(MixSeed(options.seed, 0));
  HM_ASSIGN_OR_RETURN(manet::ManetTopology topology,
                      manet::ManetTopology::Generate(field, placement));
  return std::unique_ptr<RadioChannel>(
      new RadioChannel(options, std::move(topology), stats));
}

RadioChannel::RadioChannel(const ChannelOptions& options,
                           manet::ManetTopology topology, sim::NetworkStats* stats)
    : options_(options),
      topology_(std::move(topology)),
      stats_(stats),
      mobility_rng_(MixSeed(options.seed, 1)),
      busy_until_(static_cast<size_t>(topology_.num_nodes()), 0.0) {}

bool RadioChannel::connected() const { return topology_.connected(); }

int RadioChannel::island(int node) const {
  if (node < 0 || node >= topology_.num_nodes()) return -1;
  return topology_.island_labels()[static_cast<size_t>(node)];
}

int RadioChannel::num_islands() const { return topology_.num_islands(); }

bool RadioChannel::Reachable(int src, int dst) const {
  if (src < 0 || dst < 0 || src >= topology_.num_nodes() ||
      dst >= topology_.num_nodes()) {
    return false;
  }
  return topology_.SameIsland(src, dst);
}

void RadioChannel::PublishRouteCacheObs(sim::TimeMs now, int src, int dst) {
  const manet::RouteCacheCounters& rc = topology_.route_cache_counters();
  const uint64_t builds = rc.misses - emitted_route_.misses;
  if (builds > 0) {
    HM_OBS_COUNTER_ADD("channel.route_cache.misses", builds);
    HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kRouteCacheBuild,
                 .src = src, .dst = dst, .aux = static_cast<int64_t>(builds));
  }
  if (rc.hits > emitted_route_.hits) {
    HM_OBS_COUNTER_ADD("channel.route_cache.hits", rc.hits - emitted_route_.hits);
  }
  if (rc.invalidations > emitted_route_.invalidations) {
    HM_OBS_COUNTER_ADD("channel.route_cache.invalidations",
                       rc.invalidations - emitted_route_.invalidations);
  }
  emitted_route_ = rc;
}

sim::TimeMs RadioChannel::TransmitOneHop(int node, sim::TimeMs ready_ms,
                                         const net::Message& message) {
  sim::TimeMs& tail = busy_until_[static_cast<size_t>(node)];
  const sim::TimeMs start = std::max(ready_ms, tail);
  if (start > ready_ms) {
    ++counters_.queued_transmissions;
    counters_.queue_wait_ms += start - ready_ms;
    queue_high_watermark_ms_ = std::max(queue_high_watermark_ms_, start - ready_ms);
    // Contention stall: the hop sat in `node`'s transmit queue from the
    // moment its payload was ready until the radio freed up.
    HM_OBS_EVENT(.sim_ms = ready_ms, .kind = obs::EventKind::kTxQueueWait,
                 .src = node, .value = start - ready_ms);
  }
  // Neighbourhood contention: every radio neighbour still draining its own
  // queue when this send starts shares the carrier and stretches the send.
  int busy_neighbors = 0;
  for (int peer : topology_.neighbors(node)) {
    if (busy_until_[static_cast<size_t>(peer)] > start) ++busy_neighbors;
  }
  const double serialise_ms =
      options_.tx_overhead_ms +
      static_cast<double>(message.bytes) / options_.bandwidth_bytes_per_ms;
  const double tx_ms =
      serialise_ms *
      (1.0 + options_.contention_per_busy_neighbor * busy_neighbors);
  tail = start + tx_ms;
  ++counters_.radio_transmissions;
  HM_OBS_EVENT(.sim_ms = start, .kind = obs::EventKind::kTxAirtime,
               .src = node, .dst = message.dst, .value = tx_ms,
               .aux = busy_neighbors);
  return tail;
}

net::ChannelTransmission RadioChannel::Transmit(const net::Message& message,
                                                sim::TimeMs now) {
  HM_CHECK_GE(message.src, 0);
  HM_CHECK_LT(message.src, topology_.num_nodes());
  HM_CHECK_GE(message.dst, 0);
  HM_CHECK_LT(message.dst, topology_.num_nodes());
  net::ChannelTransmission result;
  if (message.src == message.dst) return result;  // local delivery, free
  if (!topology_.SameIsland(message.src, message.dst)) {
    // No radio path (an island lookup, so the drop costs no BFS): the source
    // radio still transmits into the void before the ack timeout reveals the
    // island boundary.
    const sim::TimeMs done = TransmitOneHop(message.src, now, message);
    stats_->RecordHop(message.cls, message.bytes);
    HM_OBS_COUNTER_ADD("channel.radio_transmissions", 1);
    ++counters_.unreachable_transmissions;
    HM_OBS_COUNTER_ADD("channel.unreachable", 1);
    HM_OBS_EVENT(.sim_ms = now, .kind = obs::EventKind::kTxUnreachable,
                 .src = message.src, .dst = message.dst,
                 .value = done - now);
    result.latency_ms = done - now;
    result.radio_hops = 1;
    result.reachable = false;
    return result;
  }
  topology_.ShortestPathInto(message.src, message.dst, path_scratch_);
  const std::vector<int>& path = path_scratch_;
  HM_CHECK(!path.empty());  // same island, so the cached tree reaches dst
  PublishRouteCacheObs(now, message.src, message.dst);
  // One queued radio transmission per hop, in path order: each relay can
  // only forward once the previous hop's send completes AND its own queue
  // has drained — this is where offered load becomes latency.
  sim::TimeMs ready = now;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    ready = TransmitOneHop(path[i], ready, message);
  }
  // Hop/byte/energy accounting batched per message: every hop carries the
  // same payload, so one RecordHops call replaces path-length atomic
  // round-trips with identical totals.
  const uint64_t hops = path.size() - 1;
  stats_->RecordHops(message.cls, message.bytes, hops);
  HM_OBS_COUNTER_ADD("channel.radio_transmissions", hops);
  result.latency_ms = ready - now;
  result.radio_hops = static_cast<int>(hops);
  result.reachable = true;
  return result;
}

void RadioChannel::Step() {
  topology_.RandomWaypointStep(step_m(), mobility_rng_);
  ++counters_.mobility_steps;
  if (!connected()) {
    ++counters_.disconnected_steps;
    HM_OBS_COUNTER_ADD("channel.disconnected_steps", 1);
  }
}

int RadioChannel::BusyNodesAt(sim::TimeMs now) const {
  int busy = 0;
  for (sim::TimeMs t : busy_until_) {
    if (t > now) ++busy;
  }
  return busy;
}

sim::TimeMs RadioChannel::DrainedAtMs() const {
  sim::TimeMs latest = 0.0;
  for (sim::TimeMs t : busy_until_) latest = std::max(latest, t);
  return latest;
}

double RadioChannel::QueueBacklogMs(int node, sim::TimeMs now) const {
  if (node < 0 || node >= num_nodes()) return 0.0;
  return std::max(0.0, busy_until_[static_cast<size_t>(node)] - now);
}

double RadioChannel::MaxQueueBacklogMs(sim::TimeMs now) const {
  double worst = 0.0;
  for (sim::TimeMs t : busy_until_) worst = std::max(worst, t - now);
  return std::max(0.0, worst);
}

}  // namespace hyperm::channel
