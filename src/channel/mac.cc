#include "channel/mac.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/seed_stream.h"
#include "obs/event_log.h"

namespace hyperm::channel {

// The channel.mac.* counters and kMacDefer/kMacCollision cause payloads
// mirror MacCause numerically (obs cannot include this header); keep the
// two in lockstep — the PR 9 shed-cause contract.
static_assert(static_cast<int32_t>(MacCause::kDeferral) == 0 &&
                  static_cast<int32_t>(MacCause::kCollision) == 1 &&
                  static_cast<int32_t>(MacCause::kRetransmit) == 2 &&
                  static_cast<int32_t>(MacCause::kDropRetryLimit) == 3,
              "MacCause must mirror obs::MacCauseName's numbering");

const char* MacCauseName(MacCause cause) {
  return obs::MacCauseName(static_cast<int32_t>(cause));
}

Status MacOptions::Validate() const {
  if (slot_ms < 0.0) return InvalidArgumentError("MacOptions: negative slot_ms");
  if (cw_min_slots < 1) return InvalidArgumentError("MacOptions: cw_min_slots < 1");
  if (cw_max_slots < cw_min_slots) {
    return InvalidArgumentError("MacOptions: cw_max_slots < cw_min_slots");
  }
  if (retry_limit < 1) return InvalidArgumentError("MacOptions: retry_limit < 1");
  if (collision_per_busy_neighbor < 0.0 || collision_per_busy_neighbor >= 1.0) {
    return InvalidArgumentError("MacOptions: collision prob outside [0, 1)");
  }
  return OkStatus();
}

MacModel::MacModel(const manet::ManetTopology* topology, const AirParams& air)
    : topology_(topology),
      air_(air),
      busy_until_(static_cast<size_t>(topology->num_nodes()), 0.0) {
  HM_CHECK(topology != nullptr);
}

double MacModel::SerialiseMs(uint64_t bytes) const {
  return air_.tx_overhead_ms +
         static_cast<double>(bytes) / air_.bandwidth_bytes_per_ms;
}

sim::TimeMs MacModel::AcquireRadio(int node, sim::TimeMs ready_ms) {
  const sim::TimeMs tail = busy_until_[static_cast<size_t>(node)];
  const sim::TimeMs start = std::max(ready_ms, tail);
  if (start > ready_ms) {
    ++counters_.queued_transmissions;
    counters_.queue_wait_ms += start - ready_ms;
    queue_high_watermark_ms_ = std::max(queue_high_watermark_ms_, start - ready_ms);
    // Contention stall: the frame sat in `node`'s transmit queue from the
    // moment its payload was ready until the radio freed up.
    HM_OBS_EVENT(.sim_ms = ready_ms, .kind = obs::EventKind::kTxQueueWait,
                 .src = node, .value = start - ready_ms);
  }
  return start;
}

sim::TimeMs MacModel::DrainedAtMs() const {
  sim::TimeMs latest = 0.0;
  for (sim::TimeMs t : busy_until_) latest = std::max(latest, t);
  return latest;
}

int MacModel::BusyNodesAt(sim::TimeMs now) const {
  int busy = 0;
  for (sim::TimeMs t : busy_until_) {
    if (t > now) ++busy;
  }
  return busy;
}

double MacModel::QueueBacklogMs(int node, sim::TimeMs now) const {
  if (node < 0 || static_cast<size_t>(node) >= busy_until_.size()) return 0.0;
  return std::max(0.0, busy_until_[static_cast<size_t>(node)] - now);
}

double MacModel::MaxQueueBacklogMs(sim::TimeMs now) const {
  double worst = 0.0;
  for (sim::TimeMs t : busy_until_) worst = std::max(worst, t - now);
  return std::max(0.0, worst);
}

FrameResult LegacyStretchMac::SendFrame(int node, int receiver,
                                        const net::Message& message,
                                        sim::TimeMs ready_ms) {
  (void)receiver;  // no ack/retry machinery; the frame always survives
  const sim::TimeMs start = AcquireRadio(node, ready_ms);
  // Neighbourhood contention: every radio neighbour still draining its own
  // queue when this send starts shares the carrier and stretches the send.
  int busy_neighbors = 0;
  for (int peer : topology().neighbors(node)) {
    if (busy_until_[static_cast<size_t>(peer)] > start) ++busy_neighbors;
  }
  const double tx_ms =
      SerialiseMs(message.bytes) *
      (1.0 + air_.contention_per_busy_neighbor * busy_neighbors);
  const sim::TimeMs done = start + tx_ms;
  busy_until_[static_cast<size_t>(node)] = done;
  ++counters_.frames_sent;
  HM_OBS_EVENT(.sim_ms = start, .kind = obs::EventKind::kTxAirtime,
               .src = node, .dst = message.dst, .value = tx_ms,
               .aux = busy_neighbors);
  return FrameResult{done, true, 1};
}

CsmaCaMac::CsmaCaMac(const manet::ManetTopology* topology, const AirParams& air,
                     const MacOptions& options)
    : MacModel(topology, air), options_(options) {
  // One backoff/collision stream per node, keyed by node id so the draw
  // sequence depends only on that node's frame history, never on scheduling.
  const SeedStream streams(options_.seed);
  node_rng_.reserve(busy_until_.size());
  for (size_t node = 0; node < busy_until_.size(); ++node) {
    node_rng_.push_back(streams.At(static_cast<uint64_t>(node)));
  }
}

FrameResult CsmaCaMac::SendFrame(int node, int receiver,
                                 const net::Message& message,
                                 sim::TimeMs ready_ms) {
  sim::TimeMs start = AcquireRadio(node, ready_ms);
  Rng& rng = node_rng_[static_cast<size_t>(node)];
  const double serialise_ms = SerialiseMs(message.bytes);
  // Collision retries only make sense for acked unicast frames toward a
  // node that can currently hear the sender; broadcasts (RREQ floods,
  // receiver = -1) and frames into the void are fire-and-forget.
  const std::vector<int>& out = topology().neighbors(node);
  const bool acked =
      receiver >= 0 && std::binary_search(out.begin(), out.end(), receiver);
  int cw = options_.cw_min_slots;
  int attempt = 0;
  while (true) {
    ++attempt;
    // Carrier sense: defer while any out-neighbour's radio is still busy.
    sim::TimeMs idle_at = start;
    int busy = 0;
    for (int peer : out) {
      const sim::TimeMs t = busy_until_[static_cast<size_t>(peer)];
      if (t > start) {
        ++busy;
        idle_at = std::max(idle_at, t);
      }
    }
    if (busy > 0) {
      ++counters_.deferrals;
      HM_OBS_EVENT(.sim_ms = start, .kind = obs::EventKind::kMacDefer,
                   .src = node, .value = idle_at - start, .aux = busy);
      start = idle_at;
    }
    // Slotted binary exponential backoff: uniform in [0, cw) slots.
    const double backoff_ms =
        options_.slot_ms *
        static_cast<double>(rng.NextIndex(static_cast<uint64_t>(cw)));
    start += backoff_ms;
    const sim::TimeMs end = start + serialise_ms;
    busy_until_[static_cast<size_t>(node)] = end;  // airtime burns either way
    ++counters_.frames_sent;
    HM_OBS_EVENT(.sim_ms = start, .kind = obs::EventKind::kTxAirtime,
                 .src = node, .dst = message.dst, .value = serialise_ms,
                 .aux = busy);
    bool collided = false;
    if (acked) {
      // Hidden terminals: transmitters the *receiver* hears but the sender
      // could not carrier-sense. Each one still busy when this frame starts
      // corrupts it independently.
      int rx_busy = 0;
      for (int peer : topology().in_neighbors(receiver)) {
        if (peer == node) continue;
        if (busy_until_[static_cast<size_t>(peer)] > start) ++rx_busy;
      }
      if (rx_busy > 0) {
        const double p =
            1.0 - std::pow(1.0 - options_.collision_per_busy_neighbor, rx_busy);
        collided = rng.Bernoulli(p);
      }
    }
    if (!collided) return FrameResult{end, true, attempt};
    ++counters_.collisions;
    HM_OBS_EVENT(.sim_ms = start, .kind = obs::EventKind::kMacCollision,
                 .attempt = attempt, .src = node, .dst = receiver,
                 .value = backoff_ms);
    if (attempt >= options_.retry_limit) {
      ++counters_.drops_retry_limit;
      return FrameResult{end, false, attempt};
    }
    ++counters_.retransmits;
    cw = std::min(cw * 2, options_.cw_max_slots);
    start = end;  // the corrupted frame's airtime is gone before the retry
  }
}

Result<std::unique_ptr<MacModel>> CreateMac(const MacOptions& options,
                                            const MacModel::AirParams& air,
                                            const manet::ManetTopology* topology) {
  HM_RETURN_IF_ERROR(options.Validate());
  switch (options.kind) {
    case MacOptions::Kind::kLegacyStretch:
      return std::unique_ptr<MacModel>(new LegacyStretchMac(topology, air));
    case MacOptions::Kind::kCsmaCa:
      return std::unique_ptr<MacModel>(new CsmaCaMac(topology, air, options));
  }
  return InvalidArgumentError("MacOptions: unknown kind");
}

}  // namespace hyperm::channel
