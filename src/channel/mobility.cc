#include "channel/mobility.h"

#include "common/check.h"

namespace hyperm::channel {

MobilityProcess::MobilityProcess(sim::Simulator* sim, RadioChannel* channel)
    : sim_(sim), channel_(channel) {
  HM_CHECK(sim != nullptr);
  HM_CHECK(channel != nullptr);
}

void MobilityProcess::Start() {
  if (started_) return;
  if (channel_->step_m() <= 0.0) return;  // static placement: nothing to drive
  started_ = true;
  sim_->ScheduleAfter(channel_->tick_ms(), [this] { Tick(); });
}

void MobilityProcess::Tick() {
  channel_->Step();
  ++ticks_;
  sim_->ScheduleAfter(channel_->tick_ms(), [this] { Tick(); });
}

}  // namespace hyperm::channel
