#include "channel/mobility.h"

#include "common/check.h"
#include "obs/event_log.h"

namespace hyperm::channel {

MobilityProcess::MobilityProcess(sim::Simulator* sim, RadioChannel* channel)
    : sim_(sim), channel_(channel) {
  HM_CHECK(sim != nullptr);
  HM_CHECK(channel != nullptr);
}

void MobilityProcess::Start() {
  if (started_) return;
  if (channel_->step_m() <= 0.0) return;  // static placement: nothing to drive
  started_ = true;
  last_islands_ = channel_->num_islands();
  sim_->ScheduleAfter(channel_->tick_ms(), [this] { Tick(); });
}

void MobilityProcess::Tick() {
  // A tick can fire inside a query's heal-window RunUntil; its events are
  // epoch bookkeeping, not part of that query's causal chain.
  HM_OBS_ROOT_SCOPE();
  const int cached_routes = channel_->topology().CachedTreeCount();
  channel_->Step();
  ++ticks_;
  if (cached_routes > 0) {
    // The step bumped the connectivity epoch, dropping every cached route.
    HM_OBS_EVENT(.sim_ms = sim_->now(),
                 .kind = obs::EventKind::kRouteCacheInvalidate,
                 .value = static_cast<double>(cached_routes));
  }
  const int islands = channel_->num_islands();
  HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kMobilityTick,
               .aux = islands);
  if (islands != last_islands_) {
    HM_OBS_EVENT(.sim_ms = sim_->now(), .kind = obs::EventKind::kIslandChange,
                 .value = static_cast<double>(last_islands_), .aux = islands);
    last_islands_ = islands;
  }
  sim_->ScheduleAfter(channel_->tick_ms(), [this] { Tick(); });
}

}  // namespace hyperm::channel
