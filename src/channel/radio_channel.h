// The physical radio substrate beneath the unreliable transport.
//
// The paper's setting is a room-scale ad-hoc radio network, but the overlay
// model above treats every overlay hop as one free physical transmission
// between any two peers. This module closes that gap: peers live at physical
// positions in a field (manet::ManetTopology), one overlay hop costs one
// queued radio transmission per hop of the current shortest unit-disk path,
// each node owns a FIFO transmit queue with finite bandwidth and
// neighbourhood contention, and peers that mobility has split into different
// radio islands are simply unreachable until the graph heals — partitions
// *emerge* from geometry instead of being scripted in a FaultPlan.
//
// Determinism: the only randomness is the placement stream MixSeed(seed, 0)
// and the mobility stream MixSeed(seed, 1), both owned by the channel and
// consumed on the simulator thread only. Queue state advances monotonically
// with simulated time, so a fixed (options, seed, workload) reproduces the
// exact same latencies and drop patterns at any host thread count.

#ifndef HYPERM_CHANNEL_RADIO_CHANNEL_H_
#define HYPERM_CHANNEL_RADIO_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "manet/topology.h"
#include "net/transport.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace hyperm::channel {

/// Radio-channel configuration (one member of HyperMOptions). Disabled by
/// default: the transport then keeps its free-channel LinkModel behavior.
struct ChannelOptions {
  bool enabled = false;

  /// Physical deployment. `field.num_nodes` is overridden with the network's
  /// peer count at Create time; one peer == one radio node.
  manet::TopologyOptions field;

  // Mobility: every tick_ms of simulated time each node moves
  // speed_m_per_s * tick_ms / 1000 meters toward its random waypoint and
  // connectivity is recomputed. speed 0 keeps the placement static.
  double tick_ms = 100.0;
  double speed_m_per_s = 1.0;

  // Transmit-queue model. One transmission of b payload bytes occupies the
  // sending radio for (tx_overhead_ms + b / bandwidth_bytes_per_ms) ms,
  // stretched by contention_per_busy_neighbor per radio neighbour whose own
  // queue is still busy when this transmission starts (carrier sharing).
  double bandwidth_bytes_per_ms = 125.0;  ///< ~1 Mbit/s radio
  double tx_overhead_ms = 5.0;            ///< MAC + preamble per transmission
  double contention_per_busy_neighbor = 0.1;

  uint64_t seed = 0x6368616eULL;  ///< placement + mobility randomness ("chan")

  /// Structural validation (positive tick/bandwidth, non-negative rest).
  Status Validate() const;
};

/// Running totals the channel exposes for benches and tests.
struct ChannelCounters {
  uint64_t mobility_steps = 0;        ///< RandomWaypointStep ticks executed
  uint64_t disconnected_steps = 0;    ///< ticks that left the graph split
  uint64_t radio_transmissions = 0;   ///< single-hop radio sends charged
  uint64_t unreachable_transmissions = 0;  ///< sends with no radio path
  uint64_t queued_transmissions = 0;  ///< sends that waited behind a queue
  double queue_wait_ms = 0.0;         ///< total time spent queued
};

/// Deterministic unit-disk radio channel with per-node FIFO transmit queues.
/// Implements net::PhysicalChannel; install on an UnreliableTransport via
/// set_channel. Single-threaded by design (like the transport above it).
class RadioChannel : public net::PhysicalChannel {
 public:
  /// Builds the channel for `num_peers` radio nodes. Placement comes from
  /// ManetTopology::Generate on the MixSeed(seed, 0) stream — connected at
  /// t = 0, so a fresh network can always bootstrap; mobility may split it
  /// later. `stats` (not owned, must outlive the channel) receives one
  /// RecordHop per physical radio transmission.
  static Result<std::unique_ptr<RadioChannel>> Create(int num_peers,
                                                      const ChannelOptions& options,
                                                      sim::NetworkStats* stats);

  /// True iff the two peers are currently in the same radio island.
  bool Reachable(int src, int dst) const override;

  /// Charges one physical transmission attempt: one queued single-hop radio
  /// send per hop of the current shortest path from src to dst, in order,
  /// each waiting out the sending node's queue. Latency is the arrival time
  /// at dst minus `now`. When no radio path exists, the source still burns
  /// one local transmission (the radio cannot know the path is gone) and the
  /// result is flagged unreachable.
  net::ChannelTransmission Transmit(const net::Message& message,
                                    sim::TimeMs now) override;

  /// One mobility tick: advance every node speed * tick / 1000 meters toward
  /// its waypoint and rebuild connectivity (bumping the topology's
  /// connectivity epoch, which drops every cached route). Called by
  /// MobilityProcess on the simulator clock.
  void Step();

  /// Simulated time at which every transmit queue is empty again — benches
  /// advance past this before timing queries so publication backlog does not
  /// leak into query latency.
  sim::TimeMs DrainedAtMs() const;

  /// Number of nodes whose transmit queue is still busy at `now` — the
  /// flight recorder's queue-occupancy time-series probe samples this.
  int BusyNodesAt(sim::TimeMs now) const;

  /// Transmit-queue depth of `node` at `now`, in milliseconds of pending
  /// airtime (0 when the queue is idle). This is the admission-control
  /// signal: a new transmission enqueued now waits at least this long.
  double QueueBacklogMs(int node, sim::TimeMs now) const;

  /// Largest per-node queue depth at `now` across all nodes.
  double MaxQueueBacklogMs(sim::TimeMs now) const;

  /// High-watermark: the largest queue wait any single transmission has
  /// experienced so far (monotone over the run). The serving layer exports
  /// it as the channel.queue.high_watermark_ms gauge.
  double queue_high_watermark_ms() const { return queue_high_watermark_ms_; }

  /// Island (connected-component) label of `node`, densely numbered from 0
  /// in ascending-node discovery order; -1 for out-of-range nodes. Two peers
  /// are mutually reachable iff their labels match — the hint detour routing
  /// and the partition benches key off. Delegates to the topology's lazily
  /// cached per-epoch labels.
  int island(int node) const;

  /// Number of distinct radio islands right now (1 when connected()).
  int num_islands() const;

  int num_nodes() const { return topology_.num_nodes(); }
  double tick_ms() const { return options_.tick_ms; }
  double step_m() const { return options_.speed_m_per_s * options_.tick_ms / 1000.0; }
  bool connected() const;
  const manet::ManetTopology& topology() const { return topology_; }
  const ChannelCounters& counters() const { return counters_; }

 private:
  RadioChannel(const ChannelOptions& options, manet::ManetTopology topology,
               sim::NetworkStats* stats);

  /// Queues one single-hop transmission on `node` whose payload arrives at
  /// the radio at `ready_ms`; returns the completion (= next-hop arrival)
  /// time. Hop/byte/energy accounting is NOT done here — Transmit batches
  /// it per message (one RecordHops for the whole path).
  sim::TimeMs TransmitOneHop(int node, sim::TimeMs ready_ms,
                             const net::Message& message);

  /// Forwards route-cache counter deltas accumulated inside the topology to
  /// the metrics registry (channel.route_cache.*) and emits one
  /// kRouteCacheBuild event when this transmission triggered BFS builds.
  void PublishRouteCacheObs(sim::TimeMs now, int src, int dst);

  ChannelOptions options_;
  manet::ManetTopology topology_;
  sim::NetworkStats* stats_;  // not owned
  Rng mobility_rng_;
  std::vector<sim::TimeMs> busy_until_;  // per-node transmit queue tail
  double queue_high_watermark_ms_ = 0.0;  // max single-transmission queue wait
  ChannelCounters counters_;
  manet::RouteCacheCounters emitted_route_;  // obs high-water mark
  std::vector<int> path_scratch_;  // reused per Transmit (single-threaded)
};

}  // namespace hyperm::channel

#endif  // HYPERM_CHANNEL_RADIO_CHANNEL_H_
