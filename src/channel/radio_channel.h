// The physical radio substrate beneath the unreliable transport.
//
// The paper's setting is a room-scale ad-hoc radio network, but the overlay
// model above treats every overlay hop as one free physical transmission
// between any two peers. This module closes that gap: peers live at physical
// positions in a field (manet::ManetTopology), one overlay hop costs one
// queued radio transmission per hop of the current forwarding path, each
// node owns a FIFO transmit queue with finite bandwidth and neighbourhood
// contention, and peers that mobility has split into different radio islands
// are simply unreachable until the graph heals — partitions *emerge* from
// geometry instead of being scripted in a FaultPlan.
//
// PR 10 splits the monolith into two swappable seams (DESIGN.md §16):
//
//  * MacModel (channel/mac.h) decides how one link-layer frame occupies a
//    radio — the legacy linear-stretch model by default, or 802.11-style
//    CSMA/CA with carrier sense, binary exponential backoff and collisions.
//  * route::RoutingProtocol (route/protocol.h) decides the forwarding path —
//    the omniscient epoch-cached-BFS oracle by default, or AODV-flavoured
//    distributed discovery whose control frames burn real MAC airtime.
//
// Under the defaults (oracle + legacy stretch) the channel is bit-identical
// to the pre-seam implementation: same events, same counters, same
// latencies; `bench_partition --paper` goldens are byte-equal.
//
// Determinism: the channel's randomness is the placement stream
// MixSeed(seed, 0) and the mobility stream MixSeed(seed, 1); the CSMA MAC
// adds per-node streams off MacOptions::seed. All are consumed on the
// simulator thread only, so a fixed (options, seed, workload) reproduces the
// exact same latencies and drop patterns at any host thread count.

#ifndef HYPERM_CHANNEL_RADIO_CHANNEL_H_
#define HYPERM_CHANNEL_RADIO_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/mac.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "manet/topology.h"
#include "net/transport.h"
#include "route/protocol.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace hyperm::channel {

/// Radio-channel configuration (one member of HyperMOptions). Disabled by
/// default: the transport then keeps its free-channel LinkModel behavior.
struct ChannelOptions {
  bool enabled = false;

  /// Physical deployment. `field.num_nodes` is overridden with the network's
  /// peer count at Create time; one peer == one radio node.
  manet::TopologyOptions field;

  // Mobility: every tick_ms of simulated time each node moves
  // speed_m_per_s * tick_ms / 1000 meters toward its random waypoint and
  // connectivity is recomputed. speed 0 keeps the placement static.
  double tick_ms = 100.0;
  double speed_m_per_s = 1.0;

  // Serialisation model shared by every MAC. One transmission of b payload
  // bytes occupies the sending radio for at least
  // (tx_overhead_ms + b / bandwidth_bytes_per_ms) ms; how contention
  // inflates that is the MAC's business (mac.kind).
  double bandwidth_bytes_per_ms = 125.0;  ///< ~1 Mbit/s radio
  double tx_overhead_ms = 5.0;            ///< MAC + preamble per transmission
  double contention_per_busy_neighbor = 0.1;  ///< legacy stretch factor

  /// Link-layer model (defaults to the legacy stretch MAC).
  MacOptions mac;

  /// Path selection (defaults to the omniscient oracle).
  route::RoutingOptions routing;

  uint64_t seed = 0x6368616eULL;  ///< placement + mobility randomness ("chan")

  /// Structural validation (positive tick/bandwidth, non-negative rest,
  /// plus the nested mac/routing options).
  Status Validate() const;
};

/// Running totals the channel exposes for benches and tests. The queue and
/// transmission fields are synced from the owning MacModel's counters on
/// every counters() read.
struct ChannelCounters {
  uint64_t mobility_steps = 0;        ///< RandomWaypointStep ticks executed
  uint64_t disconnected_steps = 0;    ///< ticks that left the graph split
  uint64_t radio_transmissions = 0;   ///< single-hop radio frames charged
  uint64_t unreachable_transmissions = 0;  ///< sends with no radio path
  uint64_t mac_dropped_transmissions = 0;  ///< sends lost to MAC retry limits
  uint64_t queued_transmissions = 0;  ///< frames that waited behind a queue
  double queue_wait_ms = 0.0;         ///< total time spent queued
};

/// Deterministic unit-disk radio channel with per-node FIFO transmit queues.
/// Implements net::PhysicalChannel; install on an UnreliableTransport via
/// set_channel. Single-threaded by design (like the transport above it).
class RadioChannel : public net::PhysicalChannel {
 public:
  /// Builds the channel for `num_peers` radio nodes. Placement comes from
  /// ManetTopology::Generate on the MixSeed(seed, 0) stream — connected at
  /// t = 0, so a fresh network can always bootstrap; mobility may split it
  /// later. `stats` (not owned, must outlive the channel) receives one
  /// RecordHop per physical radio transmission.
  static Result<std::unique_ptr<RadioChannel>> Create(int num_peers,
                                                      const ChannelOptions& options,
                                                      sim::NetworkStats* stats);

  /// True iff dst is currently radio-reachable from src (same island on
  /// symmetric graphs; directed reachability on asymmetric ones).
  bool Reachable(int src, int dst) const override;

  /// Charges one physical transmission attempt: the routing protocol
  /// resolves the forwarding path (possibly burning discovery airtime and
  /// latency first), then one MAC frame per hop, in order, each waiting out
  /// the sending node's queue. Latency is the arrival time at dst minus
  /// `now`. When no route exists, the source still burns one local frame
  /// (the radio cannot know the path is gone) and the result is flagged
  /// unreachable. When the MAC exhausts its retries mid-path the result is
  /// flagged mac_dropped and the routing protocol hears OnLinkBreak.
  net::ChannelTransmission Transmit(const net::Message& message,
                                    sim::TimeMs now) override;

  /// One mobility tick: advance every node speed * tick / 1000 meters toward
  /// its waypoint and rebuild connectivity (bumping the topology's
  /// connectivity epoch, which drops every cached route). Called by
  /// MobilityProcess on the simulator clock.
  void Step();

  /// Simulated time at which every transmit queue is empty again — benches
  /// advance past this before timing queries so publication backlog does not
  /// leak into query latency.
  sim::TimeMs DrainedAtMs() const { return mac_->DrainedAtMs(); }

  /// Number of nodes whose transmit queue is still busy at `now` — the
  /// flight recorder's queue-occupancy time-series probe samples this.
  int BusyNodesAt(sim::TimeMs now) const { return mac_->BusyNodesAt(now); }

  /// Transmit-queue depth of `node` at `now`, in milliseconds of pending
  /// airtime (0 when the queue is idle). This is the admission-control
  /// signal: a new transmission enqueued now waits at least this long.
  double QueueBacklogMs(int node, sim::TimeMs now) const {
    return mac_->QueueBacklogMs(node, now);
  }

  /// Largest per-node queue depth at `now` across all nodes.
  double MaxQueueBacklogMs(sim::TimeMs now) const {
    return mac_->MaxQueueBacklogMs(now);
  }

  /// High-watermark: the largest queue wait any single transmission has
  /// experienced so far (monotone over the run). The serving layer exports
  /// it as the channel.queue.high_watermark_ms gauge.
  double queue_high_watermark_ms() const {
    return mac_->queue_high_watermark_ms();
  }

  /// Island (connected-component) label of `node`, densely numbered from 0
  /// in ascending-node discovery order; -1 for out-of-range nodes. Two peers
  /// are mutually reachable iff their labels match — the hint detour routing
  /// and the partition benches key off. Delegates to the topology's lazily
  /// cached per-epoch labels (strongly connected components on directed
  /// graphs).
  int island(int node) const;

  /// Number of distinct radio islands right now (1 when connected()).
  int num_islands() const;

  int num_nodes() const { return topology_.num_nodes(); }
  double tick_ms() const { return options_.tick_ms; }
  double step_m() const { return options_.speed_m_per_s * options_.tick_ms / 1000.0; }
  bool connected() const;
  const manet::ManetTopology& topology() const { return topology_; }
  const ChannelCounters& counters() const;

  /// The link-layer model (bench_routing reads its MacCounters).
  const MacModel& mac() const { return *mac_; }

  /// The path-selection protocol (bench_routing reads its RoutingCounters).
  const route::RoutingProtocol& router() const { return *router_; }

 private:
  RadioChannel(const ChannelOptions& options, manet::ManetTopology topology,
               sim::NetworkStats* stats);

  /// Forwards route-cache counter deltas accumulated inside the topology to
  /// the metrics registry (channel.route_cache.*) and emits one
  /// kRouteCacheBuild event when this transmission triggered BFS builds.
  void PublishRouteCacheObs(sim::TimeMs now, int src, int dst);

  /// Forwards MAC cause-counter deltas to the metrics registry as
  /// channel.mac.<cause> (never-silent: counter names come from
  /// obs::MacCauseName, whose numbering MacCause mirrors by static_assert).
  void PublishMacObs();

  ChannelOptions options_;
  manet::ManetTopology topology_;
  sim::NetworkStats* stats_;  // not owned
  Rng mobility_rng_;
  std::unique_ptr<MacModel> mac_;
  std::unique_ptr<route::RoutingProtocol> router_;
  mutable ChannelCounters counters_;  // queue fields synced in counters()
  manet::RouteCacheCounters emitted_route_;  // obs high-water mark
  MacCounters emitted_mac_;                  // obs high-water mark
  std::vector<int> path_scratch_;  // reused per Transmit (single-threaded)
};

}  // namespace hyperm::channel

#endif  // HYPERM_CHANNEL_RADIO_CHANNEL_H_
