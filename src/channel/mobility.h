// Mobility driver: a self-rescheduling simulator event that advances the
// radio channel's random-waypoint state on a fixed tick.
//
// The channel owns the mobility *model* (RadioChannel::Step); this class
// owns its *clock*. Ticks live on the per-network sim::Simulator event
// queue, so connectivity evolves in lockstep with soft-state republish
// sweeps and fault events, and a run is reproducible from (options, seed)
// regardless of host threading — the simulator executes ticks one at a time
// in deterministic order.

#ifndef HYPERM_CHANNEL_MOBILITY_H_
#define HYPERM_CHANNEL_MOBILITY_H_

#include <cstdint>

#include "channel/radio_channel.h"
#include "sim/simulator.h"

namespace hyperm::channel {

/// Schedules RadioChannel::Step every channel tick. Both pointers are
/// borrowed and must outlive the process (the network owns all three and
/// destroys the simulator last).
class MobilityProcess {
 public:
  MobilityProcess(sim::Simulator* sim, RadioChannel* channel);

  /// Schedules the first tick (tick_ms from now). Each tick advances the
  /// channel one mobility step and reschedules itself; ticks execute only
  /// when the owning network advances the simulated clock. No-op when the
  /// channel's speed is zero (a static placement never changes) or when
  /// already started.
  void Start();

  /// Ticks executed so far.
  uint64_t ticks() const { return ticks_; }

 private:
  void Tick();

  sim::Simulator* sim_;    // not owned
  RadioChannel* channel_;  // not owned
  bool started_ = false;
  uint64_t ticks_ = 0;
  int last_islands_ = 1;  // island count at the previous tick (change events)
};

}  // namespace hyperm::channel

#endif  // HYPERM_CHANNEL_MOBILITY_H_
