// The MAC seam: how one link-layer frame occupies a radio.
//
// PR 10 splits RadioChannel's monolithic TransmitOneHop into a swappable
// MacModel. A MAC owns the per-node FIFO transmit-queue tails (busy_until_),
// decides when a frame's airtime starts and ends, and reports whether the
// frame survived the channel. Two implementations:
//
//  * LegacyStretchMac — the historical model, bit-identical to the old
//    TransmitOneHop: contention is a linear stretch of the serialisation
//    time per busy radio neighbour, frames never fail. This is the default;
//    the `bench_partition --paper` goldens are byte-equal under it.
//
//  * CsmaCaMac — an 802.11-flavoured CSMA/CA model: carrier-sense deferral
//    while any out-neighbour's radio is busy, slotted binary-exponential
//    backoff, and hidden-terminal collision detection (each busy in-neighbour
//    of the *receiver* the sender cannot hear corrupts the frame
//    independently) with retransmit-until-retry-limit. A frame that exhausts
//    its retries is dropped — the channel reports it as a MAC loss and the
//    routing layer hears about the broken link.
//
// Determinism: the only randomness is CsmaCaMac's per-node backoff/collision
// streams, seeded SeedStream(options.seed).At(node) and consumed on the
// simulator thread only (the MAC, like the channel above it, is
// single-threaded by design).
//
// Never-silent accounting: every deferral, collision, retransmit and
// retry-limit drop lands in MacCounters, named by MacCause. The enum's
// numbering is pinned to obs::MacCauseName by a static_assert in mac.cc
// (the PR 9 shed-cause contract), and RadioChannel republishes the deltas
// as channel.mac.<cause> metrics after every transmission.

#ifndef HYPERM_CHANNEL_MAC_H_
#define HYPERM_CHANNEL_MAC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "manet/topology.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace hyperm::channel {

/// Why the MAC charged extra airtime or dropped a frame. Numbering mirrors
/// obs::MacCauseName (static_assert in mac.cc).
enum class MacCause : int32_t {
  kDeferral = 0,     ///< carrier-sense wait for a busy neighbourhood
  kCollision,        ///< frame corrupted at the receiver
  kRetransmit,       ///< retry after a collision
  kDropRetryLimit,   ///< retries exhausted; frame dropped, link reported broken
};

/// Human-readable cause label (forwards to obs::MacCauseName).
const char* MacCauseName(MacCause cause);

/// MAC configuration (one member of ChannelOptions). The default keeps the
/// legacy linear-stretch model, so existing configurations are unchanged.
struct MacOptions {
  enum class Kind {
    kLegacyStretch = 0,  ///< contention as a linear airtime stretch (default)
    kCsmaCa,             ///< carrier sense + slotted BEB + collisions
  };
  Kind kind = Kind::kLegacyStretch;

  // CSMA/CA knobs (ignored by the legacy model).
  double slot_ms = 0.5;    ///< backoff slot width
  int cw_min_slots = 4;    ///< initial contention window (slots)
  int cw_max_slots = 64;   ///< BEB ceiling
  int retry_limit = 6;     ///< frame attempts before the drop
  /// Per busy in-neighbour of the receiver: independent corruption
  /// probability of one frame (hidden terminals the sender cannot sense).
  double collision_per_busy_neighbor = 0.02;
  uint64_t seed = 0x6d616321ULL;  ///< per-node backoff streams ("mac!")

  Status Validate() const;
};

/// Running MAC totals. frames_sent mirrors the channel's
/// radio_transmissions; the four cause counters are never-silent (every
/// kMacDefer/kMacCollision event has its counter and vice versa).
struct MacCounters {
  uint64_t frames_sent = 0;          ///< physical frames, retransmits included
  uint64_t queued_transmissions = 0; ///< frames that waited behind their queue
  double queue_wait_ms = 0.0;        ///< total time frames spent queued
  uint64_t deferrals = 0;            ///< MacCause::kDeferral
  uint64_t collisions = 0;           ///< MacCause::kCollision
  uint64_t retransmits = 0;          ///< MacCause::kRetransmit
  uint64_t drops_retry_limit = 0;    ///< MacCause::kDropRetryLimit
};

/// Outcome of one link-layer frame exchange (all attempts included).
struct FrameResult {
  sim::TimeMs done_ms = 0.0;  ///< when the sending radio frees up
  bool delivered = true;      ///< false: retry limit exhausted, frame lost
  int attempts = 1;           ///< physical transmissions charged
};

/// One radio's worth of link-layer behaviour. Owns the per-node queue tails
/// the channel's backlog/drain queries read. Single-threaded by contract.
class MacModel {
 public:
  /// Serialisation parameters shared by every model (copied out of
  /// ChannelOptions so the seam has no back-dependency on the channel).
  struct AirParams {
    double bandwidth_bytes_per_ms = 125.0;
    double tx_overhead_ms = 5.0;
    double contention_per_busy_neighbor = 0.1;  ///< legacy stretch factor
  };

  MacModel(const manet::ManetTopology* topology, const AirParams& air);
  virtual ~MacModel() = default;

  /// Sends one frame of `message.bytes` payload from `node` to link-layer
  /// `receiver` (-1: broadcast / no ack expected — collision retries only
  /// apply to acked unicast frames toward a current out-neighbour).
  /// `message.dst` is the end-to-end destination, used for event tagging
  /// only. Returns when the radio frees up and whether the frame survived.
  virtual FrameResult SendFrame(int node, int receiver,
                                const net::Message& message,
                                sim::TimeMs ready_ms) = 0;

  /// Simulated time at which every transmit queue is empty again.
  sim::TimeMs DrainedAtMs() const;

  /// Number of nodes whose transmit queue is still busy at `now`.
  int BusyNodesAt(sim::TimeMs now) const;

  /// Pending airtime of `node`'s queue at `now` (0 when idle).
  double QueueBacklogMs(int node, sim::TimeMs now) const;

  /// Largest per-node queue depth at `now`.
  double MaxQueueBacklogMs(sim::TimeMs now) const;

  /// Largest queue wait any single frame has experienced (monotone).
  double queue_high_watermark_ms() const { return queue_high_watermark_ms_; }

  const MacCounters& counters() const { return counters_; }

 protected:
  /// Shared queue step: returns max(ready_ms, node's queue tail) and books
  /// the wait (counter + high watermark + kTxQueueWait event) exactly as the
  /// historical TransmitOneHop did.
  sim::TimeMs AcquireRadio(int node, sim::TimeMs ready_ms);

  /// Unstretched airtime of one frame: overhead + bytes / bandwidth.
  double SerialiseMs(uint64_t bytes) const;

  const manet::ManetTopology& topology() const { return *topology_; }

  const manet::ManetTopology* topology_;  // not owned
  AirParams air_;
  std::vector<sim::TimeMs> busy_until_;  // per-node transmit queue tail
  double queue_high_watermark_ms_ = 0.0;
  MacCounters counters_;
};

/// The historical contention model, bit-identical to the pre-seam
/// TransmitOneHop: one frame occupies the radio for
/// serialise * (1 + contention_per_busy_neighbor * busy_neighbors) ms and
/// always survives.
class LegacyStretchMac : public MacModel {
 public:
  LegacyStretchMac(const manet::ManetTopology* topology, const AirParams& air)
      : MacModel(topology, air) {}

  FrameResult SendFrame(int node, int receiver, const net::Message& message,
                        sim::TimeMs ready_ms) override;
};

/// 802.11-style CSMA/CA: carrier-sense deferral, slotted binary exponential
/// backoff, hidden-terminal collisions with retransmit-until-retry-limit.
class CsmaCaMac : public MacModel {
 public:
  CsmaCaMac(const manet::ManetTopology* topology, const AirParams& air,
            const MacOptions& options);

  FrameResult SendFrame(int node, int receiver, const net::Message& message,
                        sim::TimeMs ready_ms) override;

 private:
  MacOptions options_;
  std::vector<Rng> node_rng_;  // per-node backoff/collision streams
};

/// Factory keyed on options.kind. `topology` must outlive the MAC.
Result<std::unique_ptr<MacModel>> CreateMac(const MacOptions& options,
                                            const MacModel::AirParams& air,
                                            const manet::ManetTopology* topology);

}  // namespace hyperm::channel

#endif  // HYPERM_CHANNEL_MAC_H_
