// Cluster summaries (Section 3.1).
//
// Hyper-M publishes clusters, not items. A cluster is represented as a
// hypersphere: its centroid, the radius covering every member, and the
// number of items it summarises (used to estimate peer relevance, Eq. 1).

#ifndef HYPERM_CLUSTER_SPHERE_CLUSTER_H_
#define HYPERM_CLUSTER_SPHERE_CLUSTER_H_

#include <vector>

#include "geom/shapes.h"
#include "vec/vector.h"

namespace hyperm::cluster {

/// A published data summary: sphere + population count.
struct SphereCluster {
  Vector centroid;
  double radius = 0.0;
  int count = 0;  ///< number of data items inside

  /// Dimensionality of the cluster's space.
  size_t dim() const { return centroid.size(); }

  /// The geometric sphere (centroid, radius).
  geom::Sphere AsSphere() const { return geom::Sphere{centroid, radius}; }
};

/// Builds the summary of one group of points: centroid = mean, radius =
/// max distance from centroid to a member, count = |points|. Fatal on empty.
SphereCluster Summarize(const std::vector<Vector>& points);

}  // namespace hyperm::cluster

#endif  // HYPERM_CLUSTER_SPHERE_CLUSTER_H_
