// Clustering quality metrics (Section 6.1.1 / Fig. 11).
//
// The paper measures clustering "goodness" as the ratio between cohesion
// (average distance of elements to their cluster) and separation (average
// distance between centroids of different clusters); smaller is better.

#ifndef HYPERM_CLUSTER_METRICS_H_
#define HYPERM_CLUSTER_METRICS_H_

#include <vector>

#include "cluster/sphere_cluster.h"
#include "vec/vector.h"

namespace hyperm::cluster {

/// Average distance from each point to the centroid of its assigned cluster.
/// `assignments[i]` indexes into `clusters`. Fatal on size mismatch.
double Cohesion(const std::vector<Vector>& points, const std::vector<int>& assignments,
                const std::vector<SphereCluster>& clusters);

/// Average pairwise distance between distinct centroids. Returns 0 when
/// fewer than two clusters exist.
double Separation(const std::vector<SphereCluster>& clusters);

/// Cohesion / separation: the paper's Fig. 11 quality measure (lower is a
/// tighter, better-separated clustering). Returns +inf when separation is 0.
double QualityRatio(const std::vector<Vector>& points, const std::vector<int>& assignments,
                    const std::vector<SphereCluster>& clusters);

}  // namespace hyperm::cluster

#endif  // HYPERM_CLUSTER_METRICS_H_
