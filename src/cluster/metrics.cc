#include "cluster/metrics.h"

#include <limits>

#include "common/check.h"

namespace hyperm::cluster {

double Cohesion(const std::vector<Vector>& points, const std::vector<int>& assignments,
                const std::vector<SphereCluster>& clusters) {
  HM_CHECK_EQ(points.size(), assignments.size());
  HM_CHECK(!points.empty());
  double total = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    const int c = assignments[i];
    HM_CHECK_GE(c, 0);
    HM_CHECK_LT(static_cast<size_t>(c), clusters.size());
    total += vec::Distance(points[i], clusters[static_cast<size_t>(c)].centroid);
  }
  return total / static_cast<double>(points.size());
}

double Separation(const std::vector<SphereCluster>& clusters) {
  if (clusters.size() < 2) return 0.0;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (size_t j = i + 1; j < clusters.size(); ++j) {
      total += vec::Distance(clusters[i].centroid, clusters[j].centroid);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

double QualityRatio(const std::vector<Vector>& points, const std::vector<int>& assignments,
                    const std::vector<SphereCluster>& clusters) {
  const double separation = Separation(clusters);
  if (separation <= 0.0) return std::numeric_limits<double>::infinity();
  return Cohesion(points, assignments, clusters) / separation;
}

}  // namespace hyperm::cluster
