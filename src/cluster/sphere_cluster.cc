#include "cluster/sphere_cluster.h"

#include <cmath>

#include "common/check.h"

namespace hyperm::cluster {

SphereCluster Summarize(const std::vector<Vector>& points) {
  HM_CHECK(!points.empty());
  SphereCluster cluster;
  cluster.centroid = vec::Mean(points);
  cluster.count = static_cast<int>(points.size());
  double max_sq = 0.0;
  for (const Vector& p : points) {
    max_sq = std::fmax(max_sq, vec::SquaredDistance(cluster.centroid, p));
  }
  cluster.radius = std::sqrt(max_sq);
  return cluster;
}

}  // namespace hyperm::cluster
