#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "obs/trace.h"
#include "vec/matrix.h"

namespace hyperm::cluster {

namespace internal {

size_t PickWeightedIndex(const std::vector<double>& weights, double target) {
  HM_CHECK(!weights.empty());
  size_t fallback = weights.size() - 1;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) fallback = i;
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return fallback;
}

}  // namespace internal

namespace {

// Same operation order as vec::SquaredDistance (ascending j, diff*diff into a
// running sum) so row-major and Vector-based distances agree bit-for-bit.
// The norm-expansion trick (|p|^2 + |c|^2 - 2 p.c) would be faster still but
// rounds differently, so the speedup comes from pruning, not from changing
// the distance arithmetic. The batch kernels in vec/matrix.h keep the same
// per-row order, so SquaredDistanceBatch sweeps agree bit-for-bit too.
double RowSquaredDistance(const double* a, const double* b, size_t dim) {
  double sum = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

// Working state shared by the naive and pruned kernels. Points and centroids
// live in contiguous row-major arrays so the inner loops stream memory
// instead of chasing one heap allocation per Vector.
struct LloydState {
  size_t n = 0;
  size_t dim = 0;
  int k = 0;
  std::vector<double> points;     // n rows
  std::vector<double> centroids;  // k rows
  std::vector<int> assignment;    // per point, -1 before the first pass
  std::vector<int> counts;        // per cluster, from the latest update step
  std::vector<double> best_sq;    // per point: sq dist to its assigned centroid
  std::vector<double> cent_sq;    // scratch: k distances for one batch sweep

  const double* point(size_t i) const { return points.data() + i * dim; }
  double* centroid(int c) { return centroids.data() + static_cast<size_t>(c) * dim; }
  const double* centroid(int c) const {
    return centroids.data() + static_cast<size_t>(c) * dim;
  }
  void AppendCentroid(size_t point_index) {
    const double* p = point(point_index);
    centroids.insert(centroids.end(), p, p + dim);
  }
};

// k-means++ seeding over the flat point rows: first centroid uniform,
// subsequent ones proportional to the squared distance to the nearest
// centroid chosen so far — each round is one batch sweep against the
// newest centroid.
void SeedPlusPlus(LloydState& s, int k, Rng& rng) {
  s.AppendCentroid(rng.NextIndex(s.n));
  std::vector<double> dist_sq(s.n, std::numeric_limits<double>::max());
  std::vector<double> last_sq(s.n);
  while (static_cast<int>(s.centroids.size() / s.dim) < k) {
    const double* last = s.centroids.data() + s.centroids.size() - s.dim;
    vec::SquaredDistanceBatch(s.points.data(), s.n, s.dim, last, s.dim,
                              last_sq.data());
    double total = 0.0;
    for (size_t i = 0; i < s.n; ++i) {
      dist_sq[i] = std::fmin(dist_sq[i], last_sq[i]);
      total += dist_sq[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      s.AppendCentroid(rng.NextIndex(s.n));
      continue;
    }
    const double target = rng.NextDouble() * total;
    s.AppendCentroid(internal::PickWeightedIndex(dist_sq, target));
  }
}

void SeedUniform(LloydState& s, int k, Rng& rng) {
  // Sample k distinct indices via partial shuffle.
  std::vector<size_t> indices(s.n);
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.Shuffle(indices);
  for (int i = 0; i < k; ++i) s.AppendCentroid(indices[static_cast<size_t>(i)]);
}

// Exact nearest centroid for point i: one batch sweep over the centroid
// rows, then an ascending scan with strict `<`, so the lowest index wins
// ties. Also reports the runner-up distance (infinity when k == 1) for the
// pruned kernel's lower bound.
int NearestCentroid(LloydState& s, size_t i, double* best_sq_out,
                    double* second_sq_out) {
  vec::SquaredDistanceBatch(s.centroids.data(), static_cast<size_t>(s.k),
                            s.dim, s.point(i), s.dim, s.cent_sq.data());
  int best = 0;
  double best_sq = s.cent_sq[0];
  double second_sq = std::numeric_limits<double>::infinity();
  for (int c = 1; c < s.k; ++c) {
    const double sq = s.cent_sq[static_cast<size_t>(c)];
    if (sq < best_sq) {
      second_sq = best_sq;
      best_sq = sq;
      best = c;
    } else if (sq < second_sq) {
      second_sq = sq;
    }
  }
  *best_sq_out = best_sq;
  *second_sq_out = second_sq;
  return best;
}

// Full-scan assignment step: the reference kernel.
bool AssignNaive(LloydState& s) {
  bool changed = false;
  for (size_t i = 0; i < s.n; ++i) {
    double best_sq, second_sq;
    const int best = NearestCentroid(s, i, &best_sq, &second_sq);
    s.best_sq[i] = best_sq;
    if (s.assignment[i] != best) {
      s.assignment[i] = best;
      changed = true;
    }
  }
  return changed;
}

// Hamerly-style assignment step: u[i] is an upper bound on the distance to
// the assigned centroid, l[i] a lower bound on the distance to every other
// centroid. When u[i] < l[i] by a safety margin the assignment provably
// cannot change and the k-way scan is skipped. The margin absorbs rounding
// drift in the bound updates so any near-tie falls through to the exact scan,
// whose result (including tie-breaks) is identical to the naive kernel's.
bool AssignPruned(LloydState& s, std::vector<double>& u, std::vector<double>& l) {
  bool changed = false;
  for (size_t i = 0; i < s.n; ++i) {
    if (u[i] + (1e-10 + 1e-12 * u[i]) < l[i]) continue;
    double best_sq, second_sq;
    const int best = NearestCentroid(s, i, &best_sq, &second_sq);
    s.best_sq[i] = best_sq;
    u[i] = std::sqrt(best_sq);
    l[i] = std::sqrt(second_sq);
    if (s.assignment[i] != best) {
      s.assignment[i] = best;
      changed = true;
    }
  }
  return changed;
}

// Scatter-accumulates per-cluster coordinate sums and counts over i
// ascending — the same accumulation order as summing member Vectors.
void AccumulateSums(LloydState& s, std::vector<double>& sums) {
  std::fill(sums.begin(), sums.end(), 0.0);
  std::fill(s.counts.begin(), s.counts.end(), 0);
  for (size_t i = 0; i < s.n; ++i) {
    const double* p = s.point(i);
    double* sum = sums.data() + static_cast<size_t>(s.assignment[i]) * s.dim;
    for (size_t j = 0; j < s.dim; ++j) sum[j] += p[j];
    ++s.counts[static_cast<size_t>(s.assignment[i])];
  }
}

// Reseeds each empty cluster with the point currently farthest from its
// (pre-update) centroid, among points whose donor cluster keeps at least one
// member. Requires s.best_sq to hold exact distances to the assigned
// centroids — O(n) per empty cluster instead of the O(n*k) recompute the
// first version of this loop did. Returns whether anything was reseeded.
bool ReseedEmptyClusters(LloydState& s, std::vector<double>& sums) {
  bool reseeded = false;
  for (int c = 0; c < s.k; ++c) {
    if (s.counts[static_cast<size_t>(c)] > 0) continue;
    size_t farthest = 0;
    double farthest_sq = -1.0;
    for (size_t i = 0; i < s.n; ++i) {
      if (s.best_sq[i] > farthest_sq &&
          s.counts[static_cast<size_t>(s.assignment[i])] > 1) {
        farthest_sq = s.best_sq[i];
        farthest = i;
      }
    }
    if (farthest_sq < 0.0) continue;  // every cluster is a singleton
    const double* p = s.point(farthest);
    double* gain = sums.data() + static_cast<size_t>(c) * s.dim;
    double* lose = sums.data() + static_cast<size_t>(s.assignment[farthest]) * s.dim;
    for (size_t j = 0; j < s.dim; ++j) {
      gain[j] += p[j];
      lose[j] -= p[j];
    }
    --s.counts[static_cast<size_t>(s.assignment[farthest])];
    s.assignment[farthest] = c;
    s.counts[static_cast<size_t>(c)] = 1;
    // Distance to the stale centroid of c, so a later empty cluster in this
    // same pass sees the value an exact recompute would.
    s.best_sq[farthest] = RowSquaredDistance(p, s.centroid(c), s.dim);
    reseeded = true;
  }
  return reseeded;
}

// Moves each non-empty centroid to its members' mean. Returns the total
// squared movement; when `drift` is non-null, fills it with each centroid's
// movement distance (0 for empty clusters) for the bound updates.
double UpdateCentroids(LloydState& s, const std::vector<double>& sums,
                       std::vector<double>* drift) {
  double movement_sq = 0.0;
  for (int c = 0; c < s.k; ++c) {
    if (s.counts[static_cast<size_t>(c)] == 0) {
      if (drift != nullptr) (*drift)[static_cast<size_t>(c)] = 0.0;
      continue;
    }
    const double inv = 1.0 / s.counts[static_cast<size_t>(c)];
    const double* sum = sums.data() + static_cast<size_t>(c) * s.dim;
    double* centroid = s.centroid(c);
    double move_sq = 0.0;
    for (size_t j = 0; j < s.dim; ++j) {
      const double next = sum[j] * inv;
      const double diff = next - centroid[j];
      move_sq += diff * diff;
      centroid[j] = next;
    }
    movement_sq += move_sq;
    if (drift != nullptr) (*drift)[static_cast<size_t>(c)] = std::sqrt(move_sq);
  }
  return movement_sq;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<Vector>& points,
                            const KMeansOptions& options, Rng& rng) {
  if (points.empty()) return InvalidArgumentError("KMeans: no points");
  if (options.k < 1) return InvalidArgumentError("KMeans: k must be >= 1");
  HM_OBS_TIMER("kmeans.wall_us", obs::Buckets::Exponential(1, 4.0, 14));
  HM_OBS_COUNTER_ADD("kmeans.runs", 1);
  HM_OBS_COUNTER_ADD("kmeans.points", points.size());
  const int k = std::min<int>(options.k, static_cast<int>(points.size()));
  const size_t dim = points.front().size();
  for (const Vector& p : points) {
    if (p.size() != dim) return InvalidArgumentError("KMeans: inconsistent dimensionality");
  }

  LloydState s;
  s.n = points.size();
  s.dim = dim;
  s.k = k;
  s.points.reserve(s.n * dim);
  for (const Vector& p : points) s.points.insert(s.points.end(), p.begin(), p.end());
  s.centroids.reserve(static_cast<size_t>(k) * dim);
  if (options.plus_plus_seeding) {
    SeedPlusPlus(s, k, rng);
  } else {
    SeedUniform(s, k, rng);
  }
  s.assignment.assign(s.n, -1);
  s.counts.assign(static_cast<size_t>(k), 0);
  s.best_sq.assign(s.n, 0.0);
  s.cent_sq.assign(static_cast<size_t>(k), 0.0);

  std::vector<double> sums(static_cast<size_t>(k) * dim);
  const double kInf = std::numeric_limits<double>::infinity();
  // Bound state for the pruned kernel; u = inf forces a full first scan.
  std::vector<double> upper, lower, drift;
  if (options.pruned) {
    upper.assign(s.n, kInf);
    lower.assign(s.n, 0.0);
    drift.assign(static_cast<size_t>(k), 0.0);
  }

  int iterations = 0;
  for (; iterations < options.max_iterations; ++iterations) {
    bool changed = options.pruned ? AssignPruned(s, upper, lower) : AssignNaive(s);
    AccumulateSums(s, sums);

    bool any_empty = false;
    for (int c = 0; c < k; ++c) any_empty = any_empty || s.counts[static_cast<size_t>(c)] == 0;
    bool reseeded = false;
    if (any_empty) {
      if (options.pruned) {
        // Pruned skips leave best_sq stale; the reseed needs exact values.
        for (size_t i = 0; i < s.n; ++i) {
          s.best_sq[i] = RowSquaredDistance(s.point(i), s.centroid(s.assignment[i]), dim);
        }
      }
      reseeded = ReseedEmptyClusters(s, sums);
      changed = changed || reseeded;
    }

    const double movement_sq =
        UpdateCentroids(s, sums, options.pruned ? &drift : nullptr);

    if (options.pruned) {
      if (reseeded) {
        // Reseeding teleports a centroid; bounds are meaningless. Reset so
        // the next iteration scans everything.
        std::fill(upper.begin(), upper.end(), kInf);
        std::fill(lower.begin(), lower.end(), 0.0);
      } else {
        double max_drift = 0.0, second_drift = 0.0;
        int argmax = -1;
        for (int c = 0; c < k; ++c) {
          const double d = drift[static_cast<size_t>(c)];
          if (d > max_drift) {
            second_drift = max_drift;
            max_drift = d;
            argmax = c;
          } else if (d > second_drift) {
            second_drift = d;
          }
        }
        for (size_t i = 0; i < s.n; ++i) {
          upper[i] += drift[static_cast<size_t>(s.assignment[i])];
          lower[i] -= s.assignment[i] == argmax ? second_drift : max_drift;
          if (lower[i] < 0.0) lower[i] = 0.0;
        }
      }
    }

    if (!changed || movement_sq < options.tolerance) {
      ++iterations;
      break;
    }
  }

  // Final tight assignment against the converged centroids (keeps the
  // invariant "every point belongs to its nearest returned centroid").
  for (size_t i = 0; i < s.n; ++i) {
    double best_sq, second_sq;
    s.assignment[i] = NearestCentroid(s, i, &best_sq, &second_sq);
  }

  // Build compacted output (drop empty clusters, remap assignments). The
  // summaries are computed straight from the final assignment — no deep copy
  // of points into per-cluster member lists.
  AccumulateSums(s, sums);
  KMeansResult result;
  std::vector<int> remap(static_cast<size_t>(k), -1);
  for (int c = 0; c < k; ++c) {
    if (s.counts[static_cast<size_t>(c)] == 0) continue;
    remap[static_cast<size_t>(c)] = static_cast<int>(result.clusters.size());
    SphereCluster cluster;
    cluster.count = s.counts[static_cast<size_t>(c)];
    const double inv = 1.0 / s.counts[static_cast<size_t>(c)];
    const double* sum = sums.data() + static_cast<size_t>(c) * dim;
    cluster.centroid.resize(dim);
    for (size_t j = 0; j < dim; ++j) cluster.centroid[j] = sum[j] * inv;
    result.clusters.push_back(std::move(cluster));
  }
  std::vector<double> max_sq(result.clusters.size(), 0.0);
  result.assignments.resize(s.n);
  result.inertia = 0.0;
  for (size_t i = 0; i < s.n; ++i) {
    const int c = remap[static_cast<size_t>(s.assignment[i])];
    HM_CHECK_GE(c, 0);
    result.assignments[i] = c;
    const double sq = RowSquaredDistance(
        s.point(i), result.clusters[static_cast<size_t>(c)].centroid.data(), dim);
    max_sq[static_cast<size_t>(c)] = std::fmax(max_sq[static_cast<size_t>(c)], sq);
    result.inertia += sq;
  }
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    result.clusters[c].radius = std::sqrt(max_sq[c]);
  }
  result.iterations = iterations;
  HM_OBS_HISTOGRAM("kmeans.iterations", obs::Buckets::Linear(0, 64, 32), iterations);
  return result;
}

}  // namespace hyperm::cluster
