#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "obs/trace.h"

namespace hyperm::cluster {
namespace {

// k-means++ seeding: first centroid uniform, subsequent ones proportional to
// the squared distance to the nearest centroid chosen so far.
std::vector<Vector> SeedPlusPlus(const std::vector<Vector>& points, int k, Rng& rng) {
  std::vector<Vector> centroids;
  centroids.reserve(static_cast<size_t>(k));
  centroids.push_back(points[rng.NextIndex(points.size())]);
  std::vector<double> dist_sq(points.size(), std::numeric_limits<double>::max());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist_sq[i] = std::fmin(dist_sq[i], vec::SquaredDistance(points[i], centroids.back()));
      total += dist_sq[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[rng.NextIndex(points.size())]);
      continue;
    }
    double target = rng.NextDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= dist_sq[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

std::vector<Vector> SeedUniform(const std::vector<Vector>& points, int k, Rng& rng) {
  // Sample k distinct indices via partial shuffle.
  std::vector<size_t> indices(points.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.Shuffle(indices);
  std::vector<Vector> centroids;
  centroids.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) centroids.push_back(points[indices[static_cast<size_t>(i)]]);
  return centroids;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<Vector>& points,
                            const KMeansOptions& options, Rng& rng) {
  if (points.empty()) return InvalidArgumentError("KMeans: no points");
  if (options.k < 1) return InvalidArgumentError("KMeans: k must be >= 1");
  HM_OBS_TIMER("kmeans.wall_us", obs::Buckets::Exponential(1, 4.0, 14));
  HM_OBS_COUNTER_ADD("kmeans.runs", 1);
  HM_OBS_COUNTER_ADD("kmeans.points", points.size());
  const int k = std::min<int>(options.k, static_cast<int>(points.size()));
  const size_t dim = points.front().size();
  for (const Vector& p : points) {
    if (p.size() != dim) return InvalidArgumentError("KMeans: inconsistent dimensionality");
  }

  std::vector<Vector> centroids = options.plus_plus_seeding
                                      ? SeedPlusPlus(points, k, rng)
                                      : SeedUniform(points, k, rng);
  std::vector<int> assignment(points.size(), -1);
  std::vector<int> counts(static_cast<size_t>(k), 0);
  int iterations = 0;

  for (; iterations < options.max_iterations; ++iterations) {
    // Assignment step.
    bool changed = false;
    for (size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_sq = vec::SquaredDistance(points[i], centroids[0]);
      for (int c = 1; c < k; ++c) {
        const double sq = vec::SquaredDistance(points[i], centroids[static_cast<size_t>(c)]);
        if (sq < best_sq) {
          best_sq = sq;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }

    // Update step.
    std::vector<Vector> sums(static_cast<size_t>(k), Vector(dim, 0.0));
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      vec::AddInPlace(sums[static_cast<size_t>(assignment[i])], points[i]);
      ++counts[static_cast<size_t>(assignment[i])];
    }
    // Reseed empty clusters with the point farthest from its centroid so the
    // final clustering always uses all k slots where possible.
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] > 0) continue;
      size_t farthest = 0;
      double farthest_sq = -1.0;
      for (size_t i = 0; i < points.size(); ++i) {
        const double sq =
            vec::SquaredDistance(points[i], centroids[static_cast<size_t>(assignment[i])]);
        if (sq > farthest_sq && counts[static_cast<size_t>(assignment[i])] > 1) {
          farthest_sq = sq;
          farthest = i;
        }
      }
      if (farthest_sq < 0.0) continue;  // every cluster is a singleton
      --counts[static_cast<size_t>(assignment[farthest])];
      vec::AddInPlace(sums[static_cast<size_t>(c)], points[farthest]);
      for (size_t j = 0; j < dim; ++j) {
        sums[static_cast<size_t>(assignment[farthest])][j] -= points[farthest][j];
      }
      assignment[farthest] = c;
      counts[static_cast<size_t>(c)] = 1;
      changed = true;
    }

    double movement_sq = 0.0;
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      Vector next = vec::Scale(sums[static_cast<size_t>(c)],
                               1.0 / counts[static_cast<size_t>(c)]);
      movement_sq += vec::SquaredDistance(next, centroids[static_cast<size_t>(c)]);
      centroids[static_cast<size_t>(c)] = std::move(next);
    }
    if (!changed || movement_sq < options.tolerance) {
      ++iterations;
      break;
    }
  }

  // Final tight assignment against the converged centroids (keeps the
  // invariant "every point belongs to its nearest returned centroid").
  for (size_t i = 0; i < points.size(); ++i) {
    int best = 0;
    double best_sq = vec::SquaredDistance(points[i], centroids[0]);
    for (int c = 1; c < k; ++c) {
      const double sq = vec::SquaredDistance(points[i], centroids[static_cast<size_t>(c)]);
      if (sq < best_sq) {
        best_sq = sq;
        best = c;
      }
    }
    assignment[i] = best;
  }

  // Build compacted output (drop empty clusters, remap assignments).
  std::vector<std::vector<Vector>> members(static_cast<size_t>(k));
  for (size_t i = 0; i < points.size(); ++i) {
    members[static_cast<size_t>(assignment[i])].push_back(points[i]);
  }
  KMeansResult result;
  std::vector<int> remap(static_cast<size_t>(k), -1);
  for (int c = 0; c < k; ++c) {
    if (members[static_cast<size_t>(c)].empty()) continue;
    remap[static_cast<size_t>(c)] = static_cast<int>(result.clusters.size());
    result.clusters.push_back(Summarize(members[static_cast<size_t>(c)]));
  }
  result.assignments.resize(points.size());
  result.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    const int c = remap[static_cast<size_t>(assignment[i])];
    HM_CHECK_GE(c, 0);
    result.assignments[i] = c;
    result.inertia +=
        vec::SquaredDistance(points[i], result.clusters[static_cast<size_t>(c)].centroid);
  }
  result.iterations = iterations;
  HM_OBS_HISTOGRAM("kmeans.iterations", obs::Buckets::Linear(0, 64, 32), iterations);
  return result;
}

}  // namespace hyperm::cluster
