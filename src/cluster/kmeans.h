// Lloyd's k-means with k-means++ seeding.
//
// Hyper-M clusters each wavelet subspace independently (step i2 of Fig. 2);
// k-means is the paper's clustering method of choice because its output maps
// directly onto sphere summaries and it is invariant under the orthogonal
// transformations the DWT applies.

#ifndef HYPERM_CLUSTER_KMEANS_H_
#define HYPERM_CLUSTER_KMEANS_H_

#include <cstddef>
#include <vector>

#include "cluster/sphere_cluster.h"
#include "common/result.h"
#include "common/rng.h"
#include "vec/vector.h"

namespace hyperm::cluster {

/// Tuning parameters for KMeans.
struct KMeansOptions {
  int k = 8;                 ///< requested cluster count (clamped to |points|)
  int max_iterations = 50;   ///< Lloyd iteration budget
  double tolerance = 1e-6;   ///< stop when total centroid movement^2 drops below
  bool plus_plus_seeding = true;  ///< k-means++ (true) or uniform seeding
  /// Hamerly-style bound-pruned inner loop (true) or the naive full-scan
  /// reference kernel (false). Both produce bit-identical results; the naive
  /// kernel exists as the correctness oracle and for benchmarking the pruning.
  bool pruned = true;
};

/// Output of one k-means run.
struct KMeansResult {
  std::vector<SphereCluster> clusters;  ///< non-empty clusters only
  std::vector<int> assignments;         ///< per-point index into `clusters`
  double inertia = 0.0;                 ///< sum of squared distances to centroids
  int iterations = 0;                   ///< Lloyd iterations executed
};

/// Clusters `points` into at most `options.k` sphere summaries.
///
/// Deterministic given `rng`'s state. Empty clusters are reseeded with the
/// point currently farthest from its centroid, so the returned clusters are
/// always non-empty and their counts sum to |points|.
/// Returns InvalidArgument on empty input or k < 1.
Result<KMeansResult> KMeans(const std::vector<Vector>& points,
                            const KMeansOptions& options, Rng& rng);

namespace internal {

/// Subtract-scan weighted pick used by k-means++ seeding: returns the first
/// index i with weights[0..i] summing past `target`. When floating-point
/// rounding lets `target` survive the whole scan, falls back to the last
/// index with a strictly positive weight (never a zero-weight point, which
/// would duplicate an already-chosen centroid). Exposed for unit testing.
size_t PickWeightedIndex(const std::vector<double>& weights, double target);

}  // namespace internal

}  // namespace hyperm::cluster

#endif  // HYPERM_CLUSTER_KMEANS_H_
