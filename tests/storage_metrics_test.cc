#include "overlay/storage_metrics.h"

#include <gtest/gtest.h>

namespace hyperm::overlay {
namespace {

std::vector<NodeStorage> MakeStorage(const std::vector<int>& items) {
  std::vector<NodeStorage> storage;
  for (size_t i = 0; i < items.size(); ++i) {
    NodeStorage s;
    s.node = static_cast<NodeId>(i);
    s.items = items[i];
    s.clusters = items[i] > 0 ? 1 : 0;
    storage.push_back(s);
  }
  return storage;
}

TEST(GiniTest, EdgeCases) {
  EXPECT_EQ(GiniCoefficient({}), 0.0);
  EXPECT_EQ(GiniCoefficient({0.0, 0.0}), 0.0);
  EXPECT_EQ(GiniCoefficient({5.0}), 0.0);
}

TEST(GiniTest, PerfectEqualityIsZero) {
  EXPECT_NEAR(GiniCoefficient({3.0, 3.0, 3.0, 3.0}), 0.0, 1e-12);
}

TEST(GiniTest, TotalConcentrationApproachesOne) {
  // One of n nodes holds everything: gini = (n-1)/n.
  EXPECT_NEAR(GiniCoefficient({0.0, 0.0, 0.0, 12.0}), 0.75, 1e-12);
  std::vector<double> big(100, 0.0);
  big.back() = 1.0;
  EXPECT_NEAR(GiniCoefficient(big), 0.99, 1e-12);
}

TEST(GiniTest, ScaleInvariant) {
  const std::vector<double> base{1.0, 2.0, 3.0, 10.0};
  std::vector<double> scaled;
  for (double v : base) scaled.push_back(100.0 * v);
  EXPECT_NEAR(GiniCoefficient(base), GiniCoefficient(scaled), 1e-12);
}

TEST(GiniTest, OrderIndependent) {
  EXPECT_NEAR(GiniCoefficient({5.0, 1.0, 3.0}), GiniCoefficient({1.0, 3.0, 5.0}),
              1e-12);
}

TEST(LoadSummaryTest, CountsHoldersAndExtremes) {
  const LoadSummary s = SummarizeLoad(MakeStorage({0, 4, 0, 8, 12}));
  EXPECT_EQ(s.nodes, 5);
  EXPECT_EQ(s.holders, 3);
  EXPECT_EQ(s.max_items, 12);
  EXPECT_DOUBLE_EQ(s.mean_items_on_holders, 8.0);
  EXPECT_GT(s.gini, 0.0);
}

TEST(LoadSummaryTest, EmptySnapshot) {
  const LoadSummary s = SummarizeLoad({});
  EXPECT_EQ(s.nodes, 0);
  EXPECT_EQ(s.holders, 0);
  EXPECT_EQ(s.gini, 0.0);
}

TEST(LoadSummaryTest, BalancedBeatsSkewedOnGini) {
  const LoadSummary balanced = SummarizeLoad(MakeStorage({5, 5, 5, 5}));
  const LoadSummary skewed = SummarizeLoad(MakeStorage({20, 0, 0, 0}));
  EXPECT_LT(balanced.gini, skewed.gini);
}

}  // namespace
}  // namespace hyperm::overlay
