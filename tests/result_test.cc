#include "common/result.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hyperm {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(r.ok());
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowAndDereference) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ(*r, "abc");
}

TEST(ResultTest, MutableValue) {
  Result<std::string> r = std::string("abc");
  r.value() += "d";
  EXPECT_EQ(*r, "abcd");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

Result<int> Doubled(int x) {
  HM_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err = Doubled(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = InternalError("boom");
  EXPECT_DEATH({ (void)r.value(); }, "Result::value");
}

TEST(ResultDeathTest, OkStatusConstructionAborts) {
  EXPECT_DEATH({ Result<int> r{OkStatus()}; (void)r; }, "OK status");
}

}  // namespace
}  // namespace hyperm
