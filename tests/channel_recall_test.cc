// End-to-end acceptance of the radio-channel subsystem: a Hyper-M deployment
// over a mobile sparse radio field must (a) actually experience geometry-
// driven partitions — nonzero disconnected windows and unreachable
// transmissions, with no FaultPlan scripting at all — and (b) recover recall
// after the field heals, via soft-state republish re-inserting the summaries
// that expired or went missing while islands were separated.

#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"

namespace hyperm::core {
namespace {

constexpr int kNumPeers = 16;
constexpr int kNumItems = 400;

struct Bed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<HyperMNetwork> network;
};

Bed MakeBed(const HyperMOptions& options) {
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = kNumItems;
  data_options.dim = 32;
  data_options.num_families = 8;
  Result<data::Dataset> ds = data::GenerateMarkov(data_options, rng);
  EXPECT_TRUE(ds.ok());
  Bed bed;
  bed.dataset = std::move(ds).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = kNumPeers;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed.dataset, assign_options, rng);
  EXPECT_TRUE(assignment.ok());
  bed.assignment = std::move(assignment).value();
  Result<std::unique_ptr<HyperMNetwork>> net =
      HyperMNetwork::Build(bed.dataset, bed.assignment, options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  bed.network = std::move(net).value();
  return bed;
}

double MeasureRecall(Bed& bed, int num_queries = 16, double epsilon = 0.8) {
  FlatIndex oracle(bed.dataset);
  std::vector<PrecisionRecall> results;
  for (int q = 0; q < num_queries; ++q) {
    const Vector& center =
        bed.dataset.items[static_cast<size_t>(q * 17 % kNumItems)];
    Result<std::vector<ItemId>> retrieved = bed.network->RangeQuery(
        center, epsilon, /*querying_peer=*/q % kNumPeers,
        /*max_peers_contacted=*/-1);
    EXPECT_TRUE(retrieved.ok()) << retrieved.status().ToString();
    results.push_back(
        Evaluate(retrieved.value(), oracle.RangeSearch(center, epsilon)));
  }
  return Summarize(results).mean_recall;
}

HyperMOptions ChannelOptionsFor(double speed_m_per_s) {
  HyperMOptions options;
  options.net.unreliable = true;
  options.net.retry.adaptive = true;  // exercise Jacobson ARQ end to end
  options.net.summary_ttl_ms = 1500.0;
  options.net.republish_period_ms = 400.0;
  options.channel.enabled = true;
  options.channel.field.field_size_m = 260.0;
  options.channel.field.radio_range_m = 60.0;  // sparse: mobility splits it
  options.channel.field.max_placement_attempts = 5000;  // sparse starts are rare
  options.channel.tick_ms = 100.0;
  options.channel.speed_m_per_s = speed_m_per_s;
  return options;
}

TEST(ChannelRecallTest, StaticSparseFieldWorksAndChargesMultiHopTraffic) {
  Bed bed = MakeBed(ChannelOptionsFor(/*speed_m_per_s=*/0.0));
  const channel::RadioChannel* radio = bed.network->radio_channel();
  ASSERT_NE(radio, nullptr);
  EXPECT_TRUE(radio->connected());
  // Let the publication backlog drain before timing anything.
  bed.network->AdvanceTo(radio->DrainedAtMs() + 1.0);
  const double recall = MeasureRecall(bed);
  EXPECT_GT(recall, 0.9);
  // Overlay hops ride multi-hop radio paths: physical transmissions exceed
  // overlay messages, and some sends waited behind a busy radio.
  EXPECT_GT(radio->counters().radio_transmissions,
            bed.network->stats().queries_served());
  EXPECT_GT(radio->counters().queued_transmissions, 0u);
  EXPECT_EQ(radio->counters().mobility_steps, 0u);  // speed 0: no ticks
  EXPECT_EQ(bed.network->transport().counters().dropped_unreachable, 0u);
}

TEST(ChannelRecallTest, MobilitySplitsHealAndRepublishRestoresRecall) {
  // Fresh-recall yardstick: the identical deployment with a frozen field.
  Bed still = MakeBed(ChannelOptionsFor(/*speed_m_per_s=*/0.0));
  still.network->AdvanceTo(still.network->radio_channel()->DrainedAtMs() + 1.0);
  const double fresh_recall = MeasureRecall(still);
  ASSERT_GT(fresh_recall, 0.9);

  Bed bed = MakeBed(ChannelOptionsFor(/*speed_m_per_s=*/25.0));
  const channel::RadioChannel* radio = bed.network->radio_channel();
  ASSERT_NE(radio, nullptr);

  // Walk the clock tick by tick until mobility splits the field, querying
  // while it is split so cross-island traffic is provably dropped, then keep
  // walking until it heals and a republish cycle has run.
  const double tick = radio->tick_ms();
  sim::TimeMs t = radio->DrainedAtMs() + 1.0;
  bed.network->AdvanceTo(t);
  bool queried_while_split = false;
  int healed_ticks = 0;
  constexpr int kMaxTicks = 3000;
  int step = 0;
  for (; step < kMaxTicks; ++step) {
    t += tick;
    bed.network->AdvanceTo(t);
    const bool split_seen = radio->counters().disconnected_steps > 0;
    if (!split_seen) continue;
    if (!radio->connected()) {
      healed_ticks = 0;
      if (!queried_while_split) {
        // One query from each island: at least one crosses the gap.
        for (int p = 0; p < kNumPeers; ++p) {
          (void)bed.network->RangeQuery(bed.dataset.items[0], 0.8, p, -1);
        }
        queried_while_split = true;
      }
    } else if (++healed_ticks * tick > 3.0 * 400.0) {
      break;  // stably healed + several republish rounds: recovery complete
    }
  }
  ASSERT_GT(radio->counters().disconnected_steps, 0u)
      << "mobility never split the sparse field within " << kMaxTicks << " ticks";
  ASSERT_TRUE(queried_while_split);
  ASSERT_LT(step, kMaxTicks) << "field never stably healed";

  // (a) partitions emerged from geometry: transmissions were dropped as
  // unreachable without any scripted FaultPlan partition.
  EXPECT_GT(bed.network->transport().counters().dropped_unreachable, 0u);
  EXPECT_EQ(bed.network->transport().counters().dropped_partition, 0u);

  // (b) soft state healed the index: post-heal recall is close to fresh.
  const double healed_recall = MeasureRecall(bed);
  EXPECT_GE(healed_recall, 0.9 * fresh_recall)
      << "fresh " << fresh_recall << " vs healed " << healed_recall;
  EXPECT_GT(bed.network->soft_state().republishes, 0u);
}

TEST(ChannelRecallTest, ChannelRunsAreReproducible) {
  auto run = [] {
    Bed bed = MakeBed(ChannelOptionsFor(/*speed_m_per_s=*/25.0));
    bed.network->AdvanceTo(2000.0);
    const double recall = MeasureRecall(bed, /*num_queries=*/8);
    const net::TransportCounters counters = bed.network->transport().counters();
    const channel::ChannelCounters radio = bed.network->radio_channel()->counters();
    return std::tuple(recall, counters.messages_sent, counters.dropped_unreachable,
                      radio.radio_transmissions, radio.queue_wait_ms,
                      radio.disconnected_steps);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hyperm::core
