#include "data/histogram_generator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hyperm::data {
namespace {

TEST(HistogramGeneratorTest, RejectsBadOptions) {
  Rng rng(1);
  HistogramOptions bad;
  bad.num_objects = 0;
  EXPECT_FALSE(GenerateHistograms(bad, rng).ok());
  bad = HistogramOptions{};
  bad.views_per_object = 0;
  EXPECT_FALSE(GenerateHistograms(bad, rng).ok());
  bad = HistogramOptions{};
  bad.dim = 1;
  EXPECT_FALSE(GenerateHistograms(bad, rng).ok());
  bad = HistogramOptions{};
  bad.max_shift = 64;
  EXPECT_FALSE(GenerateHistograms(bad, rng).ok());
}

TEST(HistogramGeneratorTest, ShapeAndLabels) {
  Rng rng(2);
  HistogramOptions options;
  options.num_objects = 30;
  options.views_per_object = 12;
  options.dim = 32;
  Result<Dataset> ds = GenerateHistograms(options, rng);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 360u);
  EXPECT_EQ(ds->dim(), 32u);
  ASSERT_TRUE(ds->has_labels());
  for (size_t i = 0; i < ds->size(); ++i) {
    EXPECT_EQ(ds->labels[i], static_cast<int>(i) / 12);
  }
}

TEST(HistogramGeneratorTest, HistogramsAreNonNegativeRawCounts) {
  Rng rng(3);
  HistogramOptions options;
  options.num_objects = 20;
  options.views_per_object = 4;
  options.dim = 64;
  Result<Dataset> ds = GenerateHistograms(options, rng);
  ASSERT_TRUE(ds.ok());
  for (const Vector& h : ds->items) {
    double mass = 0.0;
    for (double v : h) {
      EXPECT_GE(v, 0.0);
      mass += v;
    }
    EXPECT_GT(mass, 0.0);
  }
}

TEST(HistogramGeneratorTest, MassVariesAcrossObjectsButNotWithinViews) {
  Rng rng(9);
  HistogramOptions options;
  options.num_objects = 30;
  options.views_per_object = 6;
  options.dim = 32;
  Result<Dataset> ds = GenerateHistograms(options, rng);
  ASSERT_TRUE(ds.ok());
  // Per-object mean mass and within-object spread.
  std::vector<double> object_mass(30, 0.0);
  std::vector<double> spread(30, 0.0);
  for (int object = 0; object < 30; ++object) {
    double lo = 1e18, hi = 0.0;
    for (int view = 0; view < 6; ++view) {
      const Vector& h = ds->items[static_cast<size_t>(object * 6 + view)];
      double mass = 0.0;
      for (double v : h) mass += v;
      object_mass[static_cast<size_t>(object)] += mass / 6.0;
      lo = std::min(lo, mass);
      hi = std::max(hi, mass);
    }
    spread[static_cast<size_t>(object)] = hi / lo;
  }
  // Objects differ substantially in total mass...
  double min_mass = 1e18, max_mass = 0.0;
  for (double m : object_mass) {
    min_mass = std::min(min_mass, m);
    max_mass = std::max(max_mass, m);
  }
  EXPECT_GT(max_mass / min_mass, 2.0);
  // ...while views of one object stay close.
  for (double s : spread) EXPECT_LT(s, 2.0);
}

TEST(HistogramGeneratorTest, ViewsOfSameObjectAreNeighbours) {
  Rng rng(4);
  HistogramOptions options;
  options.num_objects = 40;
  options.views_per_object = 6;
  options.dim = 64;
  Result<Dataset> ds = GenerateHistograms(options, rng);
  ASSERT_TRUE(ds.ok());
  double intra = 0.0, inter = 0.0;
  int intra_n = 0, inter_n = 0;
  for (size_t i = 0; i < ds->size(); i += 3) {
    for (size_t j = i + 1; j < ds->size(); j += 3) {
      const double d = vec::Distance(ds->items[i], ds->items[j]);
      if (ds->labels[i] == ds->labels[j]) {
        intra += d;
        ++intra_n;
      } else {
        inter += d;
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0);
  ASSERT_GT(inter_n, 0);
  EXPECT_LT(intra / intra_n, 0.6 * (inter / inter_n));
}

TEST(HistogramGeneratorTest, DeterministicGivenSeed) {
  HistogramOptions options;
  options.num_objects = 5;
  options.views_per_object = 3;
  options.dim = 16;
  Rng a(7), b(7);
  Result<Dataset> da = GenerateHistograms(options, a);
  Result<Dataset> db = GenerateHistograms(options, b);
  ASSERT_TRUE(da.ok() && db.ok());
  EXPECT_EQ(da->items, db->items);
}

}  // namespace
}  // namespace hyperm::data
