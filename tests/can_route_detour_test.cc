// k-alternative greedy routing (CanOverlay::Route with a detour budget):
// failed or hint-unreachable next hops are routed around, dead-end pockets
// are backtracked out of, and the RouteResult trail records the message's
// true path throughout.

#include <algorithm>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "can/can_overlay.h"
#include "common/rng.h"
#include "net/transport.h"

namespace hyperm::can {
namespace {

using overlay::NodeId;

// Transport that delivers everything except sends into a blocked node set.
// `announce_blocks` decides whether ReachableHint gives the block away (the
// radio-island case) or the walk only learns at SendHop time (the ARQ
// dead-letter case) — detour routing must survive both.
class BlockingTransport : public net::Transport {
 public:
  net::HopResult SendHop(const net::Message& message) override {
    net::HopResult result;
    if (blocked_.contains(message.dst)) {
      result.delivered = false;
      result.outcome = net::DeliveryOutcome::kLostUnreachable;
      return result;
    }
    result.delivered = true;
    return result;
  }
  bool reliable() const override { return false; }
  bool ReachableHint(int /*src*/, int dst) const override {
    return !announce_blocks_ || !blocked_.contains(dst);
  }
  net::TransportCounters counters() const override { return {}; }

  void Block(NodeId node) { blocked_.insert(node); }
  void set_announce_blocks(bool announce) { announce_blocks_ = announce; }

 private:
  std::unordered_set<NodeId> blocked_;
  bool announce_blocks_ = true;
};

class CanRouteDetourTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    Result<std::unique_ptr<CanOverlay>> built =
        CanOverlay::Build(/*dim=*/2, /*num_nodes=*/32, &stats_, rng);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    can_ = std::move(built).value();
    can_->set_transport(&transport_);
  }

  RouteResult MustRoute(const Vector& key, NodeId origin, int max_detours) {
    Result<RouteResult> route =
        can_->Route(key, origin, sim::TrafficClass::kQuery, /*message_bytes=*/24,
                    net::MessageType::kRoute, max_detours);
    EXPECT_TRUE(route.ok()) << route.status().ToString();
    return std::move(route).value();
  }

  // A (key, origin) pair whose unobstructed greedy walk takes at least
  // `min_trail` zones, so there is a middle to obstruct.
  struct LongWalk {
    Vector key;
    NodeId origin = 0;
    RouteResult baseline;
  };
  LongWalk FindLongWalk(size_t min_trail) {
    Rng rng(1234);
    for (int trial = 0; trial < 200; ++trial) {
      Vector key{rng.NextDouble(), rng.NextDouble()};
      const NodeId origin = static_cast<NodeId>(rng.NextUint64() % 32);
      RouteResult baseline = MustRoute(key, origin, /*max_detours=*/0);
      EXPECT_TRUE(baseline.delivered);
      if (baseline.trail.size() >= min_trail) return {key, origin, baseline};
    }
    ADD_FAILURE() << "no greedy walk of length >= " << min_trail << " found";
    return {};
  }

  sim::NetworkStats stats_;
  BlockingTransport transport_;
  std::unique_ptr<CanOverlay> can_;
};

TEST_F(CanRouteDetourTest, CleanRouteTrailIsTheHopPath) {
  const LongWalk walk = FindLongWalk(3);
  const RouteResult& route = walk.baseline;
  EXPECT_TRUE(route.delivered);
  EXPECT_EQ(route.outcome, net::DeliveryOutcome::kDelivered);
  EXPECT_EQ(route.detours, 0);
  ASSERT_FALSE(route.trail.empty());
  EXPECT_EQ(route.trail.front(), walk.origin);
  EXPECT_EQ(route.trail.back(), route.destination);
  EXPECT_EQ(route.destination, can_->OwnerOf(walk.key));
  // Without detours the trail is exactly origin plus one zone per hop.
  EXPECT_EQ(route.trail.size(), static_cast<size_t>(route.hops) + 1);
}

TEST_F(CanRouteDetourTest, DetoursAroundHintBlockedMidNode) {
  const LongWalk walk = FindLongWalk(4);
  const NodeId blocked = walk.baseline.trail[1];
  ASSERT_NE(blocked, walk.origin);
  ASSERT_NE(blocked, walk.baseline.destination);
  transport_.Block(blocked);

  const RouteResult detoured = MustRoute(walk.key, walk.origin, /*max_detours=*/8);
  EXPECT_TRUE(detoured.delivered);
  EXPECT_EQ(detoured.outcome, net::DeliveryOutcome::kDelivered);
  EXPECT_EQ(detoured.destination, walk.baseline.destination);
  EXPECT_GE(detoured.detours, 1);
  // The hint skip spends budget, not airtime: the blocked zone is never
  // entered, so it cannot appear on the trail.
  EXPECT_EQ(std::count(detoured.trail.begin(), detoured.trail.end(), blocked), 0);
}

TEST_F(CanRouteDetourTest, DetoursAroundSendFailureWithoutHints) {
  const LongWalk walk = FindLongWalk(4);
  const NodeId blocked = walk.baseline.trail[1];
  transport_.Block(blocked);
  transport_.set_announce_blocks(false);  // the walk learns only at SendHop

  const RouteResult detoured = MustRoute(walk.key, walk.origin, /*max_detours=*/8);
  EXPECT_TRUE(detoured.delivered);
  EXPECT_EQ(detoured.destination, walk.baseline.destination);
  EXPECT_GE(detoured.detours, 1);
  // The failed transmission is a real hop (the radio burned airtime), so the
  // hop count exceeds the surviving path length.
  EXPECT_GE(static_cast<size_t>(detoured.hops) + 1, detoured.trail.size());
  EXPECT_EQ(std::count(detoured.trail.begin(), detoured.trail.end(), blocked), 0);
}

TEST_F(CanRouteDetourTest, BudgetZeroDiesAtTheBlockedHop) {
  const LongWalk walk = FindLongWalk(4);
  transport_.Block(walk.baseline.trail[1]);
  transport_.set_announce_blocks(false);

  const RouteResult dropped = MustRoute(walk.key, walk.origin, /*max_detours=*/0);
  EXPECT_FALSE(dropped.delivered);
  EXPECT_EQ(dropped.outcome, net::DeliveryOutcome::kLostUnreachable);
  EXPECT_EQ(dropped.destination, overlay::kInvalidNode);
  EXPECT_EQ(dropped.detours, 0);
}

// Dead-end pocket: blocking every neighbour of the walk's first forward zone
// except the origin turns that zone into a concave cul-de-sac — greedy enters
// it (it is closest to the target), finds every onward neighbour dead, and
// must back out the way it came to make progress elsewhere.
TEST_F(CanRouteDetourTest, BacktracksOutOfDeadEndPocket) {
  Rng rng(99);
  bool exercised = false;
  for (int trial = 0; trial < 200 && !exercised; ++trial) {
    Vector key{rng.NextDouble(), rng.NextDouble()};
    const NodeId origin = static_cast<NodeId>(rng.NextUint64() % 32);
    const RouteResult baseline = MustRoute(key, origin, /*max_detours=*/0);
    ASSERT_TRUE(baseline.delivered);
    if (baseline.trail.size() < 4) continue;
    const NodeId pocket = baseline.trail[1];
    const NodeId owner = baseline.destination;

    BlockingTransport blocking;
    bool owner_blocked = false;
    for (NodeId n : can_->neighbors(pocket)) {
      if (n == origin) continue;
      if (n == owner) owner_blocked = true;
      blocking.Block(n);
    }
    if (owner_blocked) continue;  // nothing could deliver; pick another walk
    can_->set_transport(&blocking);
    const RouteResult rerouted = MustRoute(key, origin, /*max_detours=*/64);
    can_->set_transport(&transport_);
    if (!rerouted.delivered) continue;  // origin's detour options also blocked

    EXPECT_EQ(rerouted.destination, owner);
    EXPECT_GE(rerouted.detours, 2);  // >=1 dead neighbour skip + the backtrack
    // The trail records the retreat: the walk re-enters the origin after the
    // pocket instead of teleporting to the alternate branch.
    const auto pocket_at = std::find(rerouted.trail.begin(), rerouted.trail.end(),
                                     pocket);
    ASSERT_NE(pocket_at, rerouted.trail.end());
    ASSERT_NE(pocket_at + 1, rerouted.trail.end());
    EXPECT_EQ(*(pocket_at + 1), origin);
    exercised = true;
  }
  EXPECT_TRUE(exercised) << "no delivering pocket-backtrack case found";
}

}  // namespace
}  // namespace hyperm::can
