// Unit tests of the routing seam: the oracle wraps the topology's cached
// BFS, and AODV discovers loop-free routes matching oracle hop counts on
// static symmetric topologies, expires soft state, revalidates against
// mobility, and reacts to link breaks with RERR invalidation.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "channel/mac.h"
#include "manet/topology.h"
#include "net/transport.h"
#include "route/aodv.h"
#include "route/oracle.h"
#include "route/protocol.h"

namespace hyperm::route {
namespace {

net::Message QueryMsg(int src, int dst, uint64_t bytes = 100) {
  return {net::MessageType::kQueryFlood, src, dst, bytes,
          sim::TrafficClass::kQuery};
}

manet::ManetTopology RandomField(int nodes, uint64_t seed) {
  manet::TopologyOptions options;
  options.num_nodes = nodes;
  options.field_size_m = 220.0;
  options.radio_range_m = 60.0;
  options.max_placement_attempts = 5000;
  Rng rng(seed);
  Result<manet::ManetTopology> topology =
      manet::ManetTopology::Generate(options, rng);
  EXPECT_TRUE(topology.ok()) << topology.status().ToString();
  return std::move(topology).value();
}

bool IsLoopFree(const std::vector<int>& path) {
  std::set<int> seen(path.begin(), path.end());
  return seen.size() == path.size();
}

bool IsValidWalk(const manet::ManetTopology& topology,
                 const std::vector<int>& path) {
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const std::vector<int>& out = topology.neighbors(path[i]);
    if (!std::binary_search(out.begin(), out.end(), path[i + 1])) return false;
  }
  return true;
}

TEST(OracleRoutingTest, WrapsCachedBfsExactly) {
  manet::ManetTopology topology = RandomField(20, 11);
  OracleRouting oracle(&topology);
  std::vector<int> path;
  for (int dst = 1; dst < 20; ++dst) {
    const RouteResolution res = oracle.Resolve(QueryMsg(0, dst), 0.0, path);
    ASSERT_TRUE(res.found) << dst;
    EXPECT_FALSE(res.discovered);
    EXPECT_EQ(res.control_latency_ms, 0.0);
    EXPECT_EQ(path, topology.ShortestPath(0, dst));
  }
  EXPECT_EQ(oracle.counters().resolutions, 19u);
  EXPECT_EQ(oracle.counters().unreachable, 0u);
  EXPECT_EQ(oracle.counters().control_frames, 0u);
  EXPECT_STREQ(oracle.name(), "oracle");
}

TEST(AodvRoutingTest, RoutesAreLoopFreeAndMatchOracleHopCounts) {
  // Randomized sweep over static symmetric topologies: every discovered
  // route must be a valid loop-free walk with exactly the oracle's hop
  // count (the RREQ flood is the same deterministic BFS).
  for (uint64_t seed : {3u, 17u, 99u}) {
    manet::ManetTopology topology = RandomField(24, seed);
    channel::MacModel::AirParams air;
    channel::LegacyStretchMac mac(&topology, air);
    RoutingOptions options;
    options.kind = RoutingOptions::Kind::kAodv;
    AodvRouting aodv(&topology, &mac, options);
    std::vector<int> path;
    for (int src = 0; src < 24; src += 3) {
      for (int dst = 0; dst < 24; dst += 2) {
        if (src == dst) continue;
        const RouteResolution res =
            aodv.Resolve(QueryMsg(src, dst), 0.0, path);
        ASSERT_TRUE(res.found) << src << "->" << dst;
        ASSERT_GE(path.size(), 2u);
        EXPECT_EQ(path.front(), src);
        EXPECT_EQ(path.back(), dst);
        EXPECT_TRUE(IsLoopFree(path)) << src << "->" << dst;
        EXPECT_TRUE(IsValidWalk(topology, path)) << src << "->" << dst;
        EXPECT_EQ(static_cast<int>(path.size()) - 1,
                  topology.PathHops(src, dst))
            << src << "->" << dst;
      }
    }
    EXPECT_GT(aodv.counters().discoveries, 0u);
    EXPECT_GT(aodv.counters().cache_hits, aodv.counters().discoveries);
    EXPECT_EQ(aodv.counters().discovery_failures, 0u);
    EXPECT_GT(aodv.counters().control_frames, 0u);
  }
}

TEST(AodvRoutingTest, DiscoveryChargesControlAirtimeAndCachesRoutes) {
  manet::ManetTopology topology = RandomField(20, 11);
  channel::MacModel::AirParams air;
  channel::LegacyStretchMac mac(&topology, air);
  RoutingOptions options;
  options.kind = RoutingOptions::Kind::kAodv;
  AodvRouting aodv(&topology, &mac, options);
  int dst = -1;
  for (int j = 1; j < 20 && dst < 0; ++j) {
    if (topology.PathHops(0, j) >= 2) dst = j;
  }
  ASSERT_GE(dst, 0);
  std::vector<int> path;
  const RouteResolution first = aodv.Resolve(QueryMsg(0, dst), 0.0, path);
  ASSERT_TRUE(first.found);
  EXPECT_TRUE(first.discovered);
  EXPECT_GT(first.control_latency_ms, 0.0);  // the flood took real airtime
  const uint64_t frames_after_first = aodv.counters().control_frames;
  EXPECT_GT(frames_after_first, 0u);
  EXPECT_EQ(aodv.counters().control_bytes,
            frames_after_first * options.control_bytes);
  EXPECT_GT(mac.counters().frames_sent, 0u);  // charged through the MAC
  // Second resolve: pure cache hit, no new control traffic, no latency.
  const RouteResolution second = aodv.Resolve(QueryMsg(0, dst), 1.0, path);
  ASSERT_TRUE(second.found);
  EXPECT_FALSE(second.discovered);
  EXPECT_EQ(second.control_latency_ms, 0.0);
  EXPECT_EQ(aodv.counters().control_frames, frames_after_first);
  // The flood also installed reverse routes: dst -> 0 resolves from cache.
  const RouteResolution reverse = aodv.Resolve(QueryMsg(dst, 0), 2.0, path);
  ASSERT_TRUE(reverse.found);
  EXPECT_FALSE(reverse.discovered);
}

TEST(AodvRoutingTest, SoftStateExpiresAndTriggersRediscovery) {
  manet::ManetTopology topology = RandomField(20, 11);
  channel::MacModel::AirParams air;
  channel::LegacyStretchMac mac(&topology, air);
  RoutingOptions options;
  options.kind = RoutingOptions::Kind::kAodv;
  options.route_ttl_ms = 100.0;
  AodvRouting aodv(&topology, &mac, options);
  std::vector<int> path;
  ASSERT_TRUE(aodv.Resolve(QueryMsg(0, 5), 0.0, path).found);
  EXPECT_EQ(aodv.counters().discoveries, 1u);
  // Within the TTL: cached.
  ASSERT_TRUE(aodv.Resolve(QueryMsg(0, 5), 99.0, path).found);
  EXPECT_EQ(aodv.counters().discoveries, 1u);
  // Past the TTL: the stale entry is evicted and a new flood runs.
  ASSERT_TRUE(aodv.Resolve(QueryMsg(0, 5), 250.0, path).found);
  EXPECT_EQ(aodv.counters().discoveries, 2u);
  EXPECT_GT(aodv.counters().cache_expiries, 0u);
}

TEST(AodvRoutingTest, LinkBreakInvalidatesRoutesAndBroadcastsRerr) {
  manet::ManetTopology topology = RandomField(20, 11);
  channel::MacModel::AirParams air;
  channel::LegacyStretchMac mac(&topology, air);
  RoutingOptions options;
  options.kind = RoutingOptions::Kind::kAodv;
  AodvRouting aodv(&topology, &mac, options);
  int dst = -1;
  for (int j = 1; j < 20 && dst < 0; ++j) {
    if (topology.PathHops(0, j) >= 2) dst = j;
  }
  ASSERT_GE(dst, 0);
  std::vector<int> path;
  ASSERT_TRUE(aodv.Resolve(QueryMsg(0, dst), 0.0, path).found);
  const int relay = path[0];
  const int next = path[1];
  const uint64_t frames_before = aodv.counters().control_frames;
  aodv.OnLinkBreak(relay, next, 10.0);
  EXPECT_EQ(aodv.counters().link_breaks, 1u);
  EXPECT_GT(aodv.counters().route_errors, 0u);
  EXPECT_GT(aodv.counters().control_frames, frames_before);  // the RERR
  // Re-breaking the already-invalidated link finds no routes to kill.
  const uint64_t errors = aodv.counters().route_errors;
  aodv.OnLinkBreak(relay, next, 10.5);
  EXPECT_EQ(aodv.counters().route_errors, errors);
  // The broken route is gone; the next resolve rediscovers.
  const uint64_t discoveries_before = aodv.counters().discoveries;
  ASSERT_TRUE(aodv.Resolve(QueryMsg(0, dst), 11.0, path).found);
  EXPECT_GT(aodv.counters().discoveries, discoveries_before);
}

TEST(AodvRoutingTest, UnreachableDestinationFailsAfterTheFloodDies) {
  // Two far-apart clusters: discovery floods the source's island, never
  // reaches the destination, and reports failure with the flood's airtime.
  manet::TopologyOptions options;
  options.num_nodes = 6;
  options.field_size_m = 400.0;
  options.radio_range_m = 60.0;
  std::vector<Vector> positions = {
      Vector{10.0, 10.0},  Vector{50.0, 10.0},  Vector{90.0, 10.0},
      Vector{310.0, 390.0}, Vector{350.0, 390.0}, Vector{390.0, 390.0}};
  Result<manet::ManetTopology> topology =
      manet::ManetTopology::FromPositions(options, std::move(positions));
  ASSERT_TRUE(topology.ok());
  ASSERT_FALSE(topology->connected());
  channel::MacModel::AirParams air;
  channel::LegacyStretchMac mac(&*topology, air);
  RoutingOptions ropts;
  ropts.kind = RoutingOptions::Kind::kAodv;
  AodvRouting aodv(&*topology, &mac, ropts);
  std::vector<int> path;
  const RouteResolution res = aodv.Resolve(QueryMsg(0, 5), 0.0, path);
  EXPECT_FALSE(res.found);
  EXPECT_TRUE(res.discovered);
  EXPECT_TRUE(path.empty());
  EXPECT_GT(res.control_latency_ms, 0.0);
  EXPECT_EQ(aodv.counters().discovery_failures, 1u);
  EXPECT_EQ(aodv.counters().unreachable, 1u);
  // Same-island traffic still routes.
  EXPECT_TRUE(aodv.Resolve(QueryMsg(0, 2), 1.0, path).found);
}

TEST(CreateRoutingTest, FactorySelectsKindAndValidates) {
  manet::ManetTopology topology = RandomField(10, 5);
  channel::MacModel::AirParams air;
  channel::LegacyStretchMac mac(&topology, air);
  RoutingOptions oracle_opts;
  Result<std::unique_ptr<RoutingProtocol>> oracle =
      CreateRouting(oracle_opts, &topology, nullptr);
  ASSERT_TRUE(oracle.ok());
  EXPECT_STREQ((*oracle)->name(), "oracle");
  RoutingOptions aodv_opts;
  aodv_opts.kind = RoutingOptions::Kind::kAodv;
  EXPECT_FALSE(CreateRouting(aodv_opts, &topology, nullptr).ok());
  Result<std::unique_ptr<RoutingProtocol>> aodv =
      CreateRouting(aodv_opts, &topology, &mac);
  ASSERT_TRUE(aodv.ok());
  EXPECT_STREQ((*aodv)->name(), "aodv");
  RoutingOptions bad = aodv_opts;
  bad.route_ttl_ms = -1.0;
  EXPECT_FALSE(CreateRouting(bad, &topology, &mac).ok());
}

}  // namespace
}  // namespace hyperm::route
