#include "backbone/bloom.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backbone/digest.h"
#include "common/rng.h"
#include "geom/shapes.h"

namespace hyperm::backbone {
namespace {

// Measures the false-positive rate of a filter holding `n` random keys by
// probing `probes` keys disjoint from the inserted set.
double MeasuredFpRate(int bits, int hashes, int n, uint64_t seed,
                      int probes = 20000) {
  BloomFilter filter(bits, hashes);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    // Key space split by a high tag bit so probe keys can never collide with
    // inserted keys (a true positive would corrupt the FP count).
    filter.Insert(rng.NextUint64() >> 1);
  }
  int false_positives = 0;
  for (int i = 0; i < probes; ++i) {
    const uint64_t probe = (rng.NextUint64() >> 1) | (uint64_t{1} << 63);
    if (filter.MayContain(probe)) ++false_positives;
  }
  return static_cast<double>(false_positives) / probes;
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(512, 3);
  Rng rng(7);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(rng.NextUint64());
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(filter.MayContain(k));
}

TEST(BloomFilterTest, MeasuredFpRateWithinTheoreticalBound) {
  // Several (bits, hashes, n) operating points spanning light to heavy load.
  // The measured rate over 20k probes should sit near the (1-e^{-kn/m})^k
  // estimate; we allow 1.5x + a small absolute slack for sampling noise.
  struct Point {
    int bits, hashes, n;
  };
  for (const Point& p : {Point{1024, 4, 100}, Point{4096, 3, 500},
                         Point{256, 2, 50}, Point{2048, 4, 600}}) {
    BloomFilter reference(p.bits, p.hashes);
    for (int i = 0; i < p.n; ++i) reference.Insert(static_cast<uint64_t>(i));
    const double theoretical = reference.TheoreticalFpRate();
    const double measured = MeasuredFpRate(p.bits, p.hashes, p.n, 42);
    EXPECT_LE(measured, theoretical * 1.5 + 0.01)
        << "bits=" << p.bits << " hashes=" << p.hashes << " n=" << p.n
        << " theoretical=" << theoretical << " measured=" << measured;
    EXPECT_GT(theoretical, 0.0);
  }
}

TEST(BloomFilterTest, FpRateShrinksWithMoreBits) {
  const double small = MeasuredFpRate(256, 4, 200, 9);
  const double large = MeasuredFpRate(4096, 4, 200, 9);
  EXPECT_LT(large, small);
}

TEST(BloomFilterTest, MergeIsUnionOfMembership) {
  BloomFilter a(1024, 4);
  BloomFilter b(1024, 4);
  for (uint64_t k = 0; k < 50; ++k) a.Insert(k);
  for (uint64_t k = 1000; k < 1050; ++k) b.Insert(k);
  ASSERT_TRUE(a.Merge(b).ok());
  for (uint64_t k = 0; k < 50; ++k) EXPECT_TRUE(a.MayContain(k));
  for (uint64_t k = 1000; k < 1050; ++k) EXPECT_TRUE(a.MayContain(k));
  EXPECT_EQ(a.inserted(), 100u);
}

TEST(BloomFilterTest, MergeRejectsGeometryMismatch) {
  BloomFilter a(1024, 4);
  BloomFilter bits_differ(512, 4);
  BloomFilter hashes_differ(1024, 3);
  EXPECT_FALSE(a.Merge(bits_differ).ok());
  EXPECT_FALSE(a.Merge(hashes_differ).ok());
}

TEST(BloomFilterTest, ClearResetsMembershipAndCounters) {
  BloomFilter filter(512, 3);
  for (uint64_t k = 0; k < 64; ++k) filter.Insert(k);
  EXPECT_GT(filter.popcount(), 0u);
  filter.Clear();
  EXPECT_EQ(filter.popcount(), 0u);
  EXPECT_EQ(filter.inserted(), 0u);
  EXPECT_EQ(filter.fill_ratio(), 0.0);
  for (uint64_t k = 0; k < 64; ++k) EXPECT_FALSE(filter.MayContain(k));
  EXPECT_EQ(filter.bits(), 512);  // geometry survives
}

TEST(BloomFilterTest, SerializationRoundTripIsByteStable) {
  BloomFilter filter(777, 5);  // non-multiple-of-64 bits on purpose
  Rng rng(3);
  for (int i = 0; i < 123; ++i) filter.Insert(rng.NextUint64());

  const std::string bytes = filter.Serialize();
  EXPECT_EQ(bytes.size(), filter.SerializedBytes());

  Result<BloomFilter> restored = BloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().bits(), filter.bits());
  EXPECT_EQ(restored.value().hashes(), filter.hashes());
  EXPECT_EQ(restored.value().inserted(), filter.inserted());
  EXPECT_EQ(restored.value().popcount(), filter.popcount());

  // Byte stability: re-serializing the restored filter reproduces the exact
  // byte string (the CI baseline diff depends on this).
  EXPECT_EQ(restored.value().Serialize(), bytes);
}

TEST(BloomFilterTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(BloomFilter::Deserialize("").ok());
  EXPECT_FALSE(BloomFilter::Deserialize("nope").ok());
  std::string truncated = BloomFilter(512, 3).Serialize();
  truncated.pop_back();
  EXPECT_FALSE(BloomFilter::Deserialize(truncated).ok());
}

TEST(BloomFilterTest, GeometrylessFilterMatchesNothing) {
  BloomFilter filter;
  EXPECT_EQ(filter.bits(), 0);
  EXPECT_FALSE(filter.MayContain(12345));
  EXPECT_EQ(filter.TheoreticalFpRate(), 0.0);
}

// --- SphereDigest: the geometric layer on top of the Bloom filter ---------

geom::Sphere RandomSphere(Rng& rng, int dim, double max_radius) {
  geom::Sphere s;
  s.center.resize(dim);
  for (int d = 0; d < dim; ++d) s.center[d] = rng.NextDouble();
  s.radius = rng.Uniform(0.01, max_radius);
  return s;
}

// The load-bearing guarantee: a stored sphere that intersects the query can
// never be dismissed — neither by the marginal interval cells nor by the
// joint pair cells, in any dimensionality (including dim 1, which has no
// pairs, and dim 2, whose single pair is covered once).
TEST(SphereDigestTest, NoFalseDismissalsOnIntersectingSpheres) {
  Rng rng(1234);
  for (int dim : {1, 2, 3, 5, 8}) {
    DigestOptions options;
    options.bits = 4096;
    options.cells_per_axis = 16;
    int checked = 0;
    while (checked < 200) {
      SphereDigest digest(dim, options);
      const geom::Sphere stored = RandomSphere(rng, dim, 0.3);
      const geom::Sphere query = RandomSphere(rng, dim, 0.3);
      if (!stored.Intersects(query)) continue;
      digest.InsertSphere(stored);
      EXPECT_TRUE(digest.MayIntersect(query))
          << "false dismissal at dim=" << dim << " after " << checked;
      ++checked;
    }
  }
}

TEST(SphereDigestTest, EmptyDigestProvablyRejectsEverything) {
  SphereDigest digest(3, DigestOptions{});
  Rng rng(5);
  // An empty level is a *provable* no-match even in digest-less mode: the
  // sphere count alone settles it.
  EXPECT_FALSE(digest.MayIntersect(RandomSphere(rng, 3, 0.5)));
  SphereDigest digestless(3, DigestOptions{.bits = 0});
  EXPECT_FALSE(digestless.MayIntersect(RandomSphere(rng, 3, 0.5)));
}

TEST(SphereDigestTest, DigestlessModeAlwaysDescendsOnceNonEmpty) {
  DigestOptions options;
  options.bits = 0;  // comparator mode: count spheres, keep no geometry
  SphereDigest digest(2, options);
  digest.InsertSphere(geom::Sphere{{0.1, 0.1}, 0.05});
  // A far-away query still "may match": bits == 0 must never prune.
  EXPECT_TRUE(digest.MayIntersect(geom::Sphere{{0.9, 0.9}, 0.05}));
  EXPECT_EQ(digest.spheres(), 1u);
  EXPECT_EQ(digest.SerializedBytes(), BloomFilter().SerializedBytes());
}

TEST(SphereDigestTest, WellSeparatedSpheresAreRejected) {
  DigestOptions options;
  options.bits = 8192;  // big enough that Bloom collisions don't pollute this
  options.cells_per_axis = 16;
  SphereDigest digest(3, options);
  digest.InsertSphere(geom::Sphere{{0.1, 0.1, 0.1}, 0.05});
  digest.InsertSphere(geom::Sphere{{0.2, 0.15, 0.1}, 0.08});
  // Opposite corner: no marginal cell overlaps in any dimension.
  EXPECT_FALSE(digest.MayIntersect(geom::Sphere{{0.9, 0.9, 0.9}, 0.05}));
}

// The characteristic marginal-AND false positive: sphere A covers the query's
// dim-0 interval, sphere B covers its dim-1 interval, but no single stored
// sphere covers both. The joint pair cells must reject it.
TEST(SphereDigestTest, PairCellsKillCrossSphereMarginalFalsePositive) {
  DigestOptions options;
  options.bits = 8192;
  options.cells_per_axis = 16;
  SphereDigest digest(2, options);
  digest.InsertSphere(geom::Sphere{{0.1, 0.9}, 0.03});  // shares query's x band
  digest.InsertSphere(geom::Sphere{{0.9, 0.1}, 0.03});  // shares query's y band
  const geom::Sphere query{{0.1, 0.1}, 0.03};
  EXPECT_FALSE(digest.MayIntersect(query));
  // Sanity: a third sphere actually at the query corner flips the verdict.
  digest.InsertSphere(geom::Sphere{{0.12, 0.12}, 0.03});
  EXPECT_TRUE(digest.MayIntersect(query));
}

TEST(SphereDigestTest, ClearDropsAllSpheres) {
  DigestOptions options;
  options.bits = 1024;
  SphereDigest digest(2, options);
  digest.InsertSphere(geom::Sphere{{0.5, 0.5}, 0.2});
  EXPECT_TRUE(digest.MayIntersect(geom::Sphere{{0.5, 0.5}, 0.1}));
  digest.Clear();
  EXPECT_EQ(digest.spheres(), 0u);
  EXPECT_FALSE(digest.MayIntersect(geom::Sphere{{0.5, 0.5}, 0.1}));
}

// Spheres bulging past the unit cube clamp to the boundary cells the same way
// on insert and query, so boundary geometry keeps the no-dismissal guarantee.
TEST(SphereDigestTest, ClampedBoundarySpheresStillMatch) {
  DigestOptions options;
  options.bits = 4096;
  options.cells_per_axis = 16;
  SphereDigest digest(2, options);
  digest.InsertSphere(geom::Sphere{{0.02, 0.98}, 0.1});  // bulges out both ways
  EXPECT_TRUE(digest.MayIntersect(geom::Sphere{{-0.01, 1.01}, 0.05}));
}

}  // namespace
}  // namespace hyperm::backbone
