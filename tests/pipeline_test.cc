// Cross-cutting integration properties of the full Fig. 2 / Fig. 3 pipeline
// that no single-module test covers: determinism, accounting consistency,
// and configuration orthogonality.

#include <memory>

#include <gtest/gtest.h>

#include "data/histogram_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"

namespace hyperm::core {
namespace {

struct Pipeline {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<HyperMNetwork> network;
};

Pipeline BuildPipeline(const HyperMOptions& options, uint64_t seed) {
  Rng rng(seed);
  data::HistogramOptions gen;
  gen.num_objects = 60;
  gen.views_per_object = 8;
  gen.dim = 64;
  Pipeline p;
  p.dataset = data::GenerateHistograms(gen, rng).value();
  data::AssignmentOptions assign;
  assign.num_peers = 10;
  assign.num_interest_classes = 8;
  assign.min_peers_per_class = 3;
  assign.max_peers_per_class = 5;
  p.assignment = data::AssignByInterest(p.dataset, assign, rng).value();
  Result<std::unique_ptr<HyperMNetwork>> net =
      HyperMNetwork::Build(p.dataset, p.assignment, options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  p.network = std::move(net).value();
  return p;
}

TEST(PipelineTest, FullyDeterministicGivenSeed) {
  Pipeline a = BuildPipeline({}, 404);
  Pipeline b = BuildPipeline({}, 404);
  // Identical data, identical traffic, identical query answers.
  EXPECT_EQ(a.dataset.items, b.dataset.items);
  EXPECT_EQ(a.network->stats().total_hops(), b.network->stats().total_hops());
  EXPECT_EQ(a.network->stats().total_bytes(), b.network->stats().total_bytes());
  for (int q = 0; q < 5; ++q) {
    const Vector& query = a.dataset.items[static_cast<size_t>(q * 41)];
    Result<std::vector<ItemId>> ra = a.network->RangeQuery(query, 0.2, 0, -1);
    Result<std::vector<ItemId>> rb = b.network->RangeQuery(query, 0.2, 0, -1);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(*ra, *rb);
    KnnOptions knn;
    Result<std::vector<ItemId>> ka = a.network->KnnQuery(query, 8, knn, 0);
    Result<std::vector<ItemId>> kb = b.network->KnnQuery(query, 8, knn, 0);
    ASSERT_TRUE(ka.ok() && kb.ok());
    EXPECT_EQ(*ka, *kb);
  }
}

TEST(PipelineTest, DifferentSeedsProduceDifferentDeployments) {
  Pipeline a = BuildPipeline({}, 1);
  Pipeline b = BuildPipeline({}, 2);
  EXPECT_NE(a.dataset.items, b.dataset.items);
}

TEST(PipelineTest, PublicationHopsSumMatchesGlobalCounters) {
  Pipeline p = BuildPipeline({}, 7);
  uint64_t per_peer_total = 0;
  for (int peer = 0; peer < p.network->num_peers(); ++peer) {
    per_peer_total += p.network->publication_hops(peer);
  }
  const uint64_t global =
      p.network->stats().hops(sim::TrafficClass::kInsert) +
      p.network->stats().hops(sim::TrafficClass::kReplicate);
  EXPECT_EQ(per_peer_total, global);
}

TEST(PipelineTest, QueriesOnlyAddQueryAndRetrieveTraffic) {
  Pipeline p = BuildPipeline({}, 8);
  const uint64_t join_before = p.network->stats().hops(sim::TrafficClass::kJoin);
  const uint64_t insert_before = p.network->stats().hops(sim::TrafficClass::kInsert);
  const Vector& query = p.dataset.items[3];
  ASSERT_TRUE(p.network->RangeQuery(query, 0.3, 0, -1).ok());
  KnnOptions knn;
  ASSERT_TRUE(p.network->KnnQuery(query, 5, knn, 0).ok());
  EXPECT_EQ(p.network->stats().hops(sim::TrafficClass::kJoin), join_before);
  EXPECT_EQ(p.network->stats().hops(sim::TrafficClass::kInsert), insert_before);
  EXPECT_GT(p.network->stats().hops(sim::TrafficClass::kQuery), 0u);
  EXPECT_GT(p.network->stats().hops(sim::TrafficClass::kRetrieve), 0u);
}

TEST(PipelineTest, EveryQueryingPeerGetsTheSameRangeAnswer) {
  // The entry point must not change what a full-contact range query returns
  // (routing differs; the answer set must not).
  Pipeline p = BuildPipeline({}, 9);
  const FlatIndex oracle(p.dataset);
  const Vector& query = p.dataset.items[25];
  const double eps = oracle.KnnRadius(query, 10);
  Result<std::vector<ItemId>> reference = p.network->RangeQuery(query, eps, 0, -1);
  ASSERT_TRUE(reference.ok());
  for (int peer = 1; peer < p.network->num_peers(); ++peer) {
    Result<std::vector<ItemId>> result = p.network->RangeQuery(query, eps, peer, -1);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, *reference) << "querying peer " << peer;
  }
}

TEST(PipelineTest, TruncateToKCapsTheResult) {
  Pipeline p = BuildPipeline({}, 10);
  const Vector& query = p.dataset.items[12];
  KnnOptions knn;
  knn.c = 2.0;
  knn.truncate_to_k = true;
  Result<std::vector<ItemId>> result = p.network->KnnQuery(query, 7, knn, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->size(), 7u);
  // And truncation never reorders: prefix of the untruncated answer.
  knn.truncate_to_k = false;
  Result<std::vector<ItemId>> full = p.network->KnnQuery(query, 7, knn, 0);
  ASSERT_TRUE(full.ok());
  ASSERT_LE(result->size(), full->size());
  for (size_t i = 0; i < result->size(); ++i) EXPECT_EQ((*result)[i], (*full)[i]);
}

TEST(PipelineTest, HigherLayerCountsCostMoreInsertTraffic) {
  uint64_t previous = 0;
  for (int layers : {1, 3, 5}) {
    HyperMOptions options;
    options.num_layers = layers;
    Pipeline p = BuildPipeline(options, 11);
    const uint64_t hops = p.network->stats().hops(sim::TrafficClass::kInsert) +
                          p.network->stats().hops(sim::TrafficClass::kReplicate);
    EXPECT_GT(hops, previous) << layers << " layers";
    previous = hops;
  }
}

}  // namespace
}  // namespace hyperm::core
