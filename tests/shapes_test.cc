#include "geom/shapes.h"

#include <gtest/gtest.h>

namespace hyperm::geom {
namespace {

TEST(SphereTest, Contains) {
  Sphere s{{0.0, 0.0}, 1.0};
  EXPECT_TRUE(s.Contains({0.5, 0.5}));
  EXPECT_TRUE(s.Contains({1.0, 0.0}));  // boundary inclusive
  EXPECT_FALSE(s.Contains({1.0, 1.0}));
}

TEST(SphereTest, Intersects) {
  Sphere a{{0.0, 0.0}, 1.0};
  Sphere b{{1.5, 0.0}, 1.0};
  Sphere c{{3.0, 0.0}, 0.5};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Tangency counts as intersecting.
  Sphere d{{2.0, 0.0}, 1.0};
  EXPECT_TRUE(a.Intersects(d));
}

TEST(SphereTest, ZeroRadiusSphereIsAPoint) {
  Sphere p{{1.0, 1.0}, 0.0};
  EXPECT_TRUE(p.Contains({1.0, 1.0}));
  EXPECT_FALSE(p.Contains({1.0, 1.0001}));
  Sphere q{{1.0, 2.0}, 1.0};
  EXPECT_TRUE(p.Intersects(q));
}

TEST(BoxTest, ContainsHalfOpen) {
  Box box{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_TRUE(box.ContainsHalfOpen({0.0, 0.0}));
  EXPECT_TRUE(box.ContainsHalfOpen({0.999, 0.5}));
  EXPECT_FALSE(box.ContainsHalfOpen({1.0, 0.5}));  // hi exclusive
  EXPECT_FALSE(box.ContainsHalfOpen({-0.1, 0.5}));
}

TEST(BoxTest, SquaredDistance) {
  Box box{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo({0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo({2.0, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo({2.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo({-1.0, -1.0}), 2.0);
}

TEST(BoxTest, IntersectsSphere) {
  Box box{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_TRUE(box.IntersectsSphere(Sphere{{0.5, 0.5}, 0.1}));   // inside
  EXPECT_TRUE(box.IntersectsSphere(Sphere{{2.0, 0.5}, 1.0}));   // touches edge
  EXPECT_TRUE(box.IntersectsSphere(Sphere{{-0.5, -0.5}, 1.0}));
  EXPECT_FALSE(box.IntersectsSphere(Sphere{{2.0, 2.0}, 0.5}));
}

TEST(BoxTest, CenterAndVolume) {
  Box box{{0.0, 1.0}, {2.0, 2.0}};
  EXPECT_EQ(box.Center(), (Vector{1.0, 1.5}));
  EXPECT_DOUBLE_EQ(box.Volume(), 2.0);
}

}  // namespace
}  // namespace hyperm::geom
