// End-to-end acceptance of the supernode backbone (src/backbone) inside a
// Hyper-M deployment over the radio channel:
//
//   * fail-soft recall: on a fault-free static field the backbone-first
//     probe stage returns exactly the same result sets as the plain CAN
//     path, while actually serving probes and pruning domains;
//   * determinism: enabled runs are bit-identical at 1 and 8 pool threads;
//   * mobility: connectivity-epoch changes trigger re-elections and queries
//     keep succeeding throughout (falling back to CAN when stale);
//   * observability: backbone events land in the flight recorder.

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"
#include "obs/event_log.h"

namespace hyperm::core {
namespace {

constexpr int kNumPeers = 16;
constexpr int kNumItems = 400;

struct Bed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<HyperMNetwork> network;
};

Bed MakeBed(const HyperMOptions& options) {
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = kNumItems;
  data_options.dim = 32;
  data_options.num_families = 8;
  Result<data::Dataset> ds = data::GenerateMarkov(data_options, rng);
  EXPECT_TRUE(ds.ok());
  Bed bed;
  bed.dataset = std::move(ds).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = kNumPeers;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed.dataset, assign_options, rng);
  EXPECT_TRUE(assignment.ok());
  bed.assignment = std::move(assignment).value();
  Result<std::unique_ptr<HyperMNetwork>> net =
      HyperMNetwork::Build(bed.dataset, bed.assignment, options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  bed.network = std::move(net).value();
  return bed;
}

// Static (or mobile) sparse radio field with zero injected faults; the
// backbone toggle is the only thing tests vary on top of this.
HyperMOptions RadioOptions(double speed_m_per_s, bool backbone_on) {
  HyperMOptions options;
  options.net.unreliable = true;
  options.net.summary_ttl_ms = 1500.0;
  options.net.republish_period_ms = 400.0;
  options.channel.enabled = true;
  options.channel.field.field_size_m = 260.0;
  options.channel.field.radio_range_m = 60.0;
  options.channel.field.max_placement_attempts = 5000;
  options.channel.tick_ms = 100.0;
  options.channel.speed_m_per_s = speed_m_per_s;
  options.backbone.enabled = backbone_on;
  return options;
}

// Runs the same query set against a bed and returns each query's sorted
// result ids (exact set comparison, not recall).
std::vector<std::vector<ItemId>> RunQueries(Bed& bed, int num_queries = 12,
                                            double epsilon = 0.8) {
  std::vector<std::vector<ItemId>> all;
  for (int q = 0; q < num_queries; ++q) {
    const Vector& center =
        bed.dataset.items[static_cast<size_t>(q * 17 % kNumItems)];
    Result<std::vector<ItemId>> retrieved = bed.network->RangeQuery(
        center, epsilon, /*querying_peer=*/q % kNumPeers,
        /*max_peers_contacted=*/-1);
    EXPECT_TRUE(retrieved.ok()) << retrieved.status().ToString();
    std::vector<ItemId> ids = std::move(retrieved).value();
    std::sort(ids.begin(), ids.end());
    all.push_back(std::move(ids));
  }
  return all;
}

TEST(BackboneNetworkTest, DisabledBackboneIsNotConstructed) {
  Bed bed = MakeBed(RadioOptions(/*speed_m_per_s=*/0.0, /*backbone_on=*/false));
  EXPECT_EQ(bed.network->backbone(), nullptr);
}

TEST(BackboneNetworkTest, BackboneRequiresRadioChannel) {
  HyperMOptions options;
  options.net.unreliable = true;  // but no channel
  options.backbone.enabled = true;
  Rng rng(1);
  data::MarkovOptions data_options;
  data_options.count = 64;
  data_options.dim = 16;
  Result<data::Dataset> ds = data::GenerateMarkov(data_options, rng);
  ASSERT_TRUE(ds.ok());
  data::AssignmentOptions assign_options;
  assign_options.num_peers = 8;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(ds.value(), assign_options, rng);
  ASSERT_TRUE(assignment.ok());
  Result<std::unique_ptr<HyperMNetwork>> net = HyperMNetwork::Build(
      ds.value(), assignment.value(), options, rng);
  EXPECT_FALSE(net.ok());
}

TEST(BackboneNetworkTest, FaultFreeResultsMatchCanExactly) {
  // Same seed, same static field, same queries: the backbone-served probe
  // stage must produce the exact result sets of the digest-less CAN path
  // (fail-soft means "never worse recall"; fault-free means "identical").
  Bed plain = MakeBed(RadioOptions(0.0, /*backbone_on=*/false));
  Bed backboned = MakeBed(RadioOptions(0.0, /*backbone_on=*/true));
  plain.network->AdvanceTo(plain.network->radio_channel()->DrainedAtMs() + 1.0);
  backboned.network->AdvanceTo(
      backboned.network->radio_channel()->DrainedAtMs() + 1.0);

  const auto expected = RunQueries(plain);
  const auto actual = RunQueries(backboned);
  EXPECT_EQ(expected, actual);

  const backbone::BackboneManager* manager = backboned.network->backbone();
  ASSERT_NE(manager, nullptr);
  const backbone::BackboneCounters& counters = manager->counters();
  EXPECT_GT(counters.elections, 0u);
  EXPECT_GT(counters.reports_sent, 0u);
  EXPECT_GT(counters.probes_served, 0u);
  // Fault-free static field: every probe should be served by the backbone.
  EXPECT_EQ(counters.probes_fallback, 0u);
  // The digests did real work: domains were considered and some were pruned
  // without descending (the 2x criterion itself is bench_backbone's job).
  EXPECT_GT(counters.domains_considered, 0u);
  EXPECT_GT(counters.domains_pruned, 0u);
  EXPECT_GT(manager->num_supernodes(), 0);
}

TEST(BackboneNetworkTest, DigestlessModeDescendsEverywhere) {
  HyperMOptions options = RadioOptions(0.0, /*backbone_on=*/true);
  options.backbone.digest_bits = 0;  // comparator mode: no pruning possible
  Bed bed = MakeBed(options);
  bed.network->AdvanceTo(bed.network->radio_channel()->DrainedAtMs() + 1.0);
  RunQueries(bed, /*num_queries=*/6);
  const backbone::BackboneCounters& counters =
      bed.network->backbone()->counters();
  EXPECT_GT(counters.probes_served, 0u);
  EXPECT_EQ(counters.domains_pruned, 0u);
  EXPECT_EQ(counters.leaf_skips, 0u);
  EXPECT_EQ(counters.domains_descended, counters.domains_considered);
}

TEST(BackboneNetworkTest, EnabledRunsAreBitIdenticalAcrossThreadCounts) {
  auto run = [](int num_threads) {
    HyperMOptions options = RadioOptions(0.0, /*backbone_on=*/true);
    options.num_threads = num_threads;
    Bed bed = MakeBed(options);
    bed.network->AdvanceTo(bed.network->radio_channel()->DrainedAtMs() + 1.0);
    const auto results = RunQueries(bed, /*num_queries=*/8);
    const backbone::BackboneCounters& c = bed.network->backbone()->counters();
    return std::tuple(results, c.elections, c.reports_sent, c.probes_served,
                      c.domains_descended, c.domains_pruned, c.digest_bytes,
                      bed.network->transport().counters().messages_sent);
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(BackboneNetworkTest, MobilityReElectsAndQueriesStaySound) {
  // Moderate speed: the connectivity epoch moves several times over the run
  // (forcing re-elections) but is stable enough between maintenance ticks
  // that a good share of probes still find a fresh election to ride.
  Bed bed = MakeBed(RadioOptions(/*speed_m_per_s=*/4.0, /*backbone_on=*/true));
  const channel::RadioChannel* radio = bed.network->radio_channel();
  ASSERT_NE(radio, nullptr);
  const backbone::BackboneManager* manager = bed.network->backbone();
  ASSERT_NE(manager, nullptr);
  FlatIndex oracle(bed.dataset);

  // Walk the mobile field for a while, querying as the topology shifts. Every
  // query must succeed (fallback is invisible to the caller) and results must
  // stay subsets of the oracle's truth (precision 1 by construction).
  sim::TimeMs t = radio->DrainedAtMs() + 1.0;
  bed.network->AdvanceTo(t);
  const uint64_t first_epoch = manager->election_epoch();
  int queries_ok = 0;
  for (int step = 0; step < 40; ++step) {
    t += 500.0;
    bed.network->AdvanceTo(t);
    const Vector& center =
        bed.dataset.items[static_cast<size_t>(step * 31 % kNumItems)];
    Result<std::vector<ItemId>> retrieved = bed.network->RangeQuery(
        center, 0.8, /*querying_peer=*/step % kNumPeers,
        /*max_peers_contacted=*/-1);
    ASSERT_TRUE(retrieved.ok()) << retrieved.status().ToString();
    ++queries_ok;
    const std::vector<ItemId> truth = oracle.RangeSearch(center, 0.8);
    for (ItemId id : retrieved.value()) {
      EXPECT_TRUE(std::find(truth.begin(), truth.end(), id) != truth.end());
    }
  }
  EXPECT_EQ(queries_ok, 40);

  const backbone::BackboneCounters& counters = manager->counters();
  // Mobility moved the connectivity epoch: the backbone re-elected at least
  // once and the election it holds tracks a later epoch than the first.
  EXPECT_GT(counters.elections, 1u);
  EXPECT_GT(manager->election_epoch(), first_epoch);
  // Some probes were served from the backbone across the run.
  EXPECT_GT(counters.probes_served, 0u);
}

class BackboneFlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::EventLog::Global().Reset(); }
  void TearDown() override { obs::EventLog::Global().Reset(); }
};

struct BackboneEventCounts {
  uint64_t elects = 0, reports = 0, digests = 0, probes = 0, decisions = 0;
};

BackboneEventCounts CountBackboneEvents() {
  BackboneEventCounts counts;
  for (const obs::Event& e : obs::EventLog::Global().events()) {
    switch (e.kind) {
      case obs::EventKind::kBackboneElect: ++counts.elects; break;
      case obs::EventKind::kBackboneReport: ++counts.reports; break;
      case obs::EventKind::kBackboneDigest: ++counts.digests; break;
      case obs::EventKind::kBackboneProbe: ++counts.probes; break;
      case obs::EventKind::kBackboneDecision: ++counts.decisions; break;
      default: break;
    }
  }
  return counts;
}

TEST_F(BackboneFlightRecorderTest, BackboneEventsLandInTheLog) {
  // Mobile field so maintenance re-elects while the recorder is armed (the
  // initial election happens during Build, before arming). Two armed windows
  // keep the ring buffer far from overflow: window 1 catches the maintenance
  // cycle (elect/report/digest), window 2 the probe path.
  Bed bed = MakeBed(RadioOptions(/*speed_m_per_s=*/4.0, /*backbone_on=*/true));
  const backbone::BackboneManager* manager = bed.network->backbone();
  ASSERT_NE(manager, nullptr);

  sim::TimeMs t = bed.network->radio_channel()->DrainedAtMs() + 1.0;
  bed.network->AdvanceTo(t);
  const uint64_t base_elections = manager->counters().elections;
  while (manager->counters().elections <= base_elections && t < 60000.0) {
    // Re-arm each step so the buffer only ever holds the last 100 ms of
    // radio noise — the step that finally re-elects stays well within
    // capacity and nothing is dropped.
    obs::EventLog::Global().Reset();
    obs::EventLog::Global().Arm();
    t += 100.0;
    bed.network->AdvanceTo(t);
  }
  ASSERT_GT(manager->counters().elections, base_elections)
      << "mobility never forced a re-election within 60 s";
  // Let the accelerated post-election reports and the next digest rebuild
  // land in the same armed window.
  t += 500.0;
  bed.network->AdvanceTo(t);
  const BackboneEventCounts maintenance = CountBackboneEvents();
  EXPECT_EQ(obs::EventLog::Global().dropped(), 0u);
  EXPECT_GT(maintenance.elects, 0u);
  EXPECT_GT(maintenance.reports, 0u);
  EXPECT_GT(maintenance.digests, 0u);

  // Fresh window: query until the backbone actually serves a probe (a probe
  // landing on a just-changed radio graph falls back, which also logs the
  // event but records no walk decisions).
  const uint64_t base_served = manager->counters().probes_served;
  for (int attempt = 0; attempt < 40; ++attempt) {
    obs::EventLog::Global().Reset();
    obs::EventLog::Global().Arm();
    t += 500.0;
    bed.network->AdvanceTo(t);
    Result<std::vector<ItemId>> r = bed.network->RangeQuery(
        bed.dataset.items[static_cast<size_t>(attempt * 13 % kNumItems)], 0.8,
        /*querying_peer=*/attempt % kNumPeers, /*max_peers_contacted=*/-1);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (manager->counters().probes_served > base_served) break;
  }
  ASSERT_GT(manager->counters().probes_served, base_served)
      << "no probe was ever served from the backbone";
  const BackboneEventCounts probing = CountBackboneEvents();
  EXPECT_EQ(obs::EventLog::Global().dropped(), 0u);
  EXPECT_GT(probing.probes, 0u);
  EXPECT_GT(probing.decisions, 0u);
}

}  // namespace
}  // namespace hyperm::core
