// Soft-state semantics: published summaries carry TTLs, expiry sweeps
// garbage-collect them, and periodic republish by the owners keeps the
// distributed index alive — including healing it after peer crashes wipe
// a node's volatile summary store.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"
#include "obs/metrics.h"

namespace hyperm::core {
namespace {

struct Bed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<HyperMNetwork> network;
};

Bed MakeBed(const HyperMOptions& options) {
  Rng rng(777);
  data::MarkovOptions data_options;
  data_options.count = 600;
  data_options.dim = 64;
  data_options.num_families = 8;
  Result<data::Dataset> ds = data::GenerateMarkov(data_options, rng);
  EXPECT_TRUE(ds.ok());
  Bed bed;
  bed.dataset = std::move(ds).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = 16;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed.dataset, assign_options, rng);
  EXPECT_TRUE(assignment.ok());
  bed.assignment = std::move(assignment).value();
  Result<std::unique_ptr<HyperMNetwork>> net =
      HyperMNetwork::Build(bed.dataset, bed.assignment, options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  bed.network = std::move(net).value();
  return bed;
}

// Mean range-query recall against the exact oracle; all queries issued from
// peer 0 (a peer that stays up in every scenario below).
double MeasureRecall(Bed& bed, int num_queries = 12, double epsilon = 0.8) {
  FlatIndex oracle(bed.dataset);
  std::vector<PrecisionRecall> results;
  for (int q = 0; q < num_queries; ++q) {
    const Vector& center =
        bed.dataset.items[static_cast<size_t>(q * 29 % 600)];
    Result<std::vector<ItemId>> retrieved =
        bed.network->RangeQuery(center, epsilon, /*querying_peer=*/0);
    EXPECT_TRUE(retrieved.ok()) << retrieved.status().ToString();
    results.push_back(
        Evaluate(retrieved.value(), oracle.RangeSearch(center, epsilon)));
  }
  return Summarize(results).mean_recall;
}

TEST(NetRepublishTest, TtlAloneDecaysTheIndex) {
  // TTL but no republish: the whole distributed index evaporates.
  HyperMOptions options;
  options.net.unreliable = true;
  options.net.summary_ttl_ms = 1000.0;
  options.net.republish_period_ms = 0.0;
  Bed bed = MakeBed(options);

  const double fresh = MeasureRecall(bed);
  EXPECT_GT(fresh, 0.9);

  bed.network->AdvanceTo(2100.0);  // sweeps at 500/1000/1500/2000
  const double decayed = MeasureRecall(bed);
  EXPECT_LT(decayed, 0.3) << "index should have expired";
  EXPECT_GT(bed.network->soft_state().summaries_expired, 0u);
  EXPECT_EQ(bed.network->soft_state().republishes, 0u);
}

TEST(NetRepublishTest, RepublishSustainsTheIndexPastItsTtl) {
  HyperMOptions options;
  options.net.unreliable = true;
  options.net.summary_ttl_ms = 1000.0;
  options.net.republish_period_ms = 500.0;
  Bed bed = MakeBed(options);

  const double fresh = MeasureRecall(bed);
  bed.network->AdvanceTo(2100.0);  // two full TTLs later
  const double sustained = MeasureRecall(bed);
  EXPECT_GE(sustained, fresh - 1e-12)
      << "republish must keep summaries refreshed in place";
  EXPECT_GT(bed.network->soft_state().republishes, 0u);
  EXPECT_EQ(bed.network->soft_state().summaries_lost, 0u);
}

TEST(NetRepublishTest, CrashDegradesAndRepublishHealsRecall) {
  obs::MetricsRegistry::Global().Reset();

  HyperMOptions options;
  options.net.unreliable = true;
  options.net.summary_ttl_ms = 3000.0;       // sweeps every 1500 ms
  options.net.republish_period_ms = 2000.0;
  options.net.faults.peer_events = {
      {100.0, 3, /*up=*/false},   // two peers crash early...
      {100.0, 7, /*up=*/false},
      {4100.0, 3, /*up=*/true},   // ...and rejoin (empty) much later
      {4100.0, 7, /*up=*/true},
  };
  Bed bed = MakeBed(options);

  const double before = MeasureRecall(bed);
  EXPECT_GT(before, 0.9);

  // Crash applied: their summary shards are wiped and their items are
  // unreachable, so live peers' queries lose recall.
  bed.network->AdvanceTo(150.0);
  EXPECT_EQ(bed.network->soft_state().crashes, 2u);
  EXPECT_GT(bed.network->soft_state().summaries_lost, 0u);
  EXPECT_FALSE(bed.network->peer_up(3));
  EXPECT_FALSE(bed.network->peer_up(7));
  const double during = MeasureRecall(bed);
  EXPECT_LT(during, before);

  // Past rejoin + at least one republish round with everyone up: the sweep
  // at t=4500 expired the crashed owners' stale entries (published at t=0
  // with expires_at=3000, never refreshed while down) and the tick at
  // t=6000 re-published every peer's summaries.
  bed.network->AdvanceTo(6100.0);
  EXPECT_EQ(bed.network->soft_state().rejoins, 2u);
  EXPECT_TRUE(bed.network->peer_up(3));
  EXPECT_TRUE(bed.network->peer_up(7));
  EXPECT_GT(bed.network->soft_state().summaries_expired, 0u);
  EXPECT_GT(bed.network->soft_state().republishes, 0u);
  const double after = MeasureRecall(bed);
  EXPECT_GT(after, during);
  EXPECT_GE(after, 0.99 * before)
      << "before " << before << " during " << during << " after " << after;

#ifndef HYPERM_OBS_DISABLED
  // The obs layer mirrors the soft-state ledger.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  for (const char* name : {"net.crashes", "net.rejoins", "net.summaries_lost",
                           "net.summaries_expired", "net.republishes"}) {
    const auto it = snap.counters.find(name);
    ASSERT_NE(it, snap.counters.end()) << name;
    EXPECT_GT(it->second, 0u) << name;
  }
#endif
}

}  // namespace
}  // namespace hyperm::core
