#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hyperm {
namespace {

TEST(ThreadPoolTest, DefaultNumThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInIndexOrder) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.ParallelFor(100, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<size_t> expected(100);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, SingleTaskRunsInlineEvenWithWorkers) {
  ThreadPool pool(8);
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyFanOuts) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(64, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 64u * 65u / 2u);
  }
}

TEST(ThreadPoolTest, DisjointSlotWritesAreIdenticalAtAnyThreadCount) {
  const size_t n = 2048;
  auto run = [n](int threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> slots(n, 0);
    pool.ParallelFor(n, [&](size_t i) { slots[i] = i * 2654435761u + 17; });
    return slots;
  };
  const std::vector<uint64_t> sequential = run(1);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(8), sequential);
}

TEST(MixSeedTest, DistinguishesTaskIdentity) {
  // (seed, a, b) permutations and neighbours must land in distinct streams.
  EXPECT_NE(MixSeed(1, 2, 3), MixSeed(1, 3, 2));
  EXPECT_NE(MixSeed(1, 2, 3), MixSeed(2, 2, 3));
  EXPECT_NE(MixSeed(1, 2, 3), MixSeed(1, 2, 4));
  EXPECT_NE(MixSeed(1, 2, 3), MixSeed(1, 3, 3));
  // A plain xor/add fold would collide on transfers between a and b.
  EXPECT_NE(MixSeed(1, 2, 3), MixSeed(1, 2 + 1, 3 - 1));
  // Same identity, same stream.
  EXPECT_EQ(MixSeed(7, 11, 13), MixSeed(7, 11, 13));
}

}  // namespace
}  // namespace hyperm
