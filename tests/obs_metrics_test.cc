#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <limits>

namespace hyperm::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(3.5);
  g.Add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(BucketsTest, LinearLayout) {
  const Buckets b = Buckets::Linear(0.0, 10.0, 5);
  ASSERT_EQ(b.edges.size(), 6u);
  EXPECT_DOUBLE_EQ(b.edges.front(), 0.0);
  EXPECT_DOUBLE_EQ(b.edges.back(), 10.0);
  EXPECT_DOUBLE_EQ(b.edges[1], 2.0);
}

TEST(BucketsTest, ExponentialLayout) {
  const Buckets b = Buckets::Exponential(1.0, 2.0, 4);
  ASSERT_EQ(b.edges.size(), 5u);
  EXPECT_DOUBLE_EQ(b.edges[0], 1.0);
  EXPECT_DOUBLE_EQ(b.edges[4], 16.0);
}

TEST(HistogramTest, RoutesValuesToInnerBuckets) {
  Histogram h(Buckets::Explicit({0.0, 1.0, 2.0, 4.0}));
  h.Observe(0.0);   // [0,1)
  h.Observe(0.99);  // [0,1)
  h.Observe(1.0);   // [1,2) — lower edge is inclusive
  h.Observe(3.9);   // [2,4)
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.underflow, 0u);
  EXPECT_EQ(s.overflow, 0u);
  EXPECT_EQ(s.count, 4u);
}

TEST(HistogramTest, UnderflowAndOverflowAreExplicit) {
  Histogram h(Buckets::Explicit({0.0, 1.0}));
  h.Observe(-0.001);  // below e0 -> underflow
  h.Observe(1.0);     // at the last edge -> overflow (buckets are half-open)
  h.Observe(100.0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.underflow, 1u);
  EXPECT_EQ(s.overflow, 2u);
  EXPECT_EQ(s.counts[0], 0u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, -0.001);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram h(Buckets::Linear(0.0, 1.0, 2));
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min, std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.max, -std::numeric_limits<double>::infinity());
}

TEST(HistogramTest, ResetKeepsLayout) {
  Histogram h(Buckets::Linear(0.0, 1.0, 2));
  h.Observe(0.25);
  h.Reset();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  ASSERT_EQ(s.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(s.edges[1], 0.5);
}

TEST(RegistryTest, HandlesAreStableAcrossReset) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test.counter");
  c.Add(7);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  // Same name resolves to the same handle; value survives via the handle.
  c.Add(3);
  EXPECT_EQ(registry.GetCounter("test.counter").value(), 3u);
}

TEST(RegistryTest, HistogramLayoutFixedByFirstRegistration) {
  MetricsRegistry registry;
  Histogram& first = registry.GetHistogram("test.h", Buckets::Linear(0.0, 1.0, 2));
  Histogram& again = registry.GetHistogram("test.h", Buckets::Linear(0.0, 100.0, 50));
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(first.Snapshot().edges.size(), 3u);
}

TEST(RegistryTest, SnapshotCopiesAllKinds) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(1);
  registry.GetGauge("g").Set(2.0);
  registry.GetHistogram("h", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.counters.at("c"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.0);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
}

TEST(SnapshotTest, MergeAccumulates) {
  MetricsRegistry a, b;
  a.GetCounter("c").Add(1);
  b.GetCounter("c").Add(2);
  b.GetCounter("only_b").Add(5);
  a.GetGauge("g").Set(1.0);
  b.GetGauge("g").Set(9.0);
  a.GetHistogram("h", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  b.GetHistogram("h", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  MetricsSnapshot merged = a.Snapshot();
  EXPECT_TRUE(merged.Merge(b.Snapshot()));
  EXPECT_EQ(merged.counters.at("c"), 3u);
  EXPECT_EQ(merged.counters.at("only_b"), 5u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 9.0);
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
}

TEST(SnapshotTest, MergeRejectsMismatchedEdges) {
  MetricsRegistry a, b;
  a.GetHistogram("h", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  b.GetHistogram("h", Buckets::Linear(0.0, 2.0, 1)).Observe(0.5);
  MetricsSnapshot merged = a.Snapshot();
  EXPECT_FALSE(merged.Merge(b.Snapshot()));
  // Mismatching entry keeps the original value.
  EXPECT_EQ(merged.histograms.at("h").count, 1u);
  EXPECT_DOUBLE_EQ(merged.histograms.at("h").edges.back(), 1.0);
}

}  // namespace
}  // namespace hyperm::obs
