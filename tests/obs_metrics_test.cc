#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <limits>

namespace hyperm::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(3.5);
  g.Add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(BucketsTest, LinearLayout) {
  const Buckets b = Buckets::Linear(0.0, 10.0, 5);
  ASSERT_EQ(b.edges.size(), 6u);
  EXPECT_DOUBLE_EQ(b.edges.front(), 0.0);
  EXPECT_DOUBLE_EQ(b.edges.back(), 10.0);
  EXPECT_DOUBLE_EQ(b.edges[1], 2.0);
}

TEST(BucketsTest, ExponentialLayout) {
  const Buckets b = Buckets::Exponential(1.0, 2.0, 4);
  ASSERT_EQ(b.edges.size(), 5u);
  EXPECT_DOUBLE_EQ(b.edges[0], 1.0);
  EXPECT_DOUBLE_EQ(b.edges[4], 16.0);
}

TEST(HistogramTest, RoutesValuesToInnerBuckets) {
  Histogram h(Buckets::Explicit({0.0, 1.0, 2.0, 4.0}));
  h.Observe(0.0);   // [0,1)
  h.Observe(0.99);  // [0,1)
  h.Observe(1.0);   // [1,2) — lower edge is inclusive
  h.Observe(3.9);   // [2,4)
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.underflow, 0u);
  EXPECT_EQ(s.overflow, 0u);
  EXPECT_EQ(s.count, 4u);
}

TEST(HistogramTest, UnderflowAndOverflowAreExplicit) {
  Histogram h(Buckets::Explicit({0.0, 1.0}));
  h.Observe(-0.001);  // below e0 -> underflow
  h.Observe(1.0);     // at the last edge -> overflow (buckets are half-open)
  h.Observe(100.0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.underflow, 1u);
  EXPECT_EQ(s.overflow, 2u);
  EXPECT_EQ(s.counts[0], 0u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, -0.001);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram h(Buckets::Linear(0.0, 1.0, 2));
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min, std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.max, -std::numeric_limits<double>::infinity());
}

TEST(HistogramTest, ResetKeepsLayout) {
  Histogram h(Buckets::Linear(0.0, 1.0, 2));
  h.Observe(0.25);
  h.Reset();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  ASSERT_EQ(s.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(s.edges[1], 0.5);
}

TEST(RegistryTest, HandlesAreStableAcrossReset) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test.counter");
  c.Add(7);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  // Same name resolves to the same handle; value survives via the handle.
  c.Add(3);
  EXPECT_EQ(registry.GetCounter("test.counter").value(), 3u);
}

TEST(RegistryTest, HistogramLayoutFixedByFirstRegistration) {
  MetricsRegistry registry;
  Histogram& first = registry.GetHistogram("test.h", Buckets::Linear(0.0, 1.0, 2));
  Histogram& again = registry.GetHistogram("test.h", Buckets::Linear(0.0, 100.0, 50));
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(first.Snapshot().edges.size(), 3u);
}

TEST(RegistryTest, SnapshotCopiesAllKinds) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(1);
  registry.GetGauge("g").Set(2.0);
  registry.GetHistogram("h", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.counters.at("c"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.0);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
}

TEST(SnapshotTest, MergeAccumulates) {
  MetricsRegistry a, b;
  a.GetCounter("c").Add(1);
  b.GetCounter("c").Add(2);
  b.GetCounter("only_b").Add(5);
  a.GetGauge("g").Set(1.0);
  b.GetGauge("g").Set(9.0);
  a.GetHistogram("h", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  b.GetHistogram("h", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  MetricsSnapshot merged = a.Snapshot();
  EXPECT_TRUE(merged.Merge(b.Snapshot()));
  EXPECT_EQ(merged.counters.at("c"), 3u);
  EXPECT_EQ(merged.counters.at("only_b"), 5u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 9.0);
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
}

TEST(QuantileTest, InterpolatesInsideBuckets) {
  // 100 uniform observations over [0, 100): quantiles land on the exact
  // interpolated rank positions.
  Histogram h(Buckets::Linear(0.0, 100.0, 10));
  for (int i = 0; i < 100; ++i) h.Observe(static_cast<double>(i) + 0.5);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 99.0);
}

TEST(QuantileTest, EmptyHistogramReportsZero) {
  Histogram h(Buckets::Linear(0.0, 1.0, 2));
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.99), 0.0);
}

TEST(QuantileTest, UnderflowAndOverflowRanksReportMinAndMax) {
  Histogram h(Buckets::Explicit({10.0, 20.0}));
  h.Observe(5.0);    // underflow; becomes min
  h.Observe(15.0);   // inner bucket
  h.Observe(100.0);  // overflow; becomes max
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 5.0);    // rank in the underflow bucket
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);  // rank in the overflow bucket
}

TEST(QuantileTest, EstimateIsClampedToObservedRange) {
  // One observation at 0.25 in a [0, 1) bucket: naive interpolation would
  // report 0.5, but no observed value exceeds 0.25.
  Histogram h(Buckets::Linear(0.0, 1.0, 1));
  h.Observe(0.25);
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.5), 0.25);
  // Out-of-range q is clamped rather than extrapolated.
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(2.0), 0.25);
}

TEST(SnapshotTest, MergeRejectsMismatchedEdges) {
  MetricsRegistry a, b;
  a.GetHistogram("h", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  b.GetHistogram("h", Buckets::Linear(0.0, 2.0, 1)).Observe(0.5);
  MetricsSnapshot merged = a.Snapshot();
  EXPECT_FALSE(merged.Merge(b.Snapshot()));
  // Mismatching entry keeps the original value.
  EXPECT_EQ(merged.histograms.at("h").count, 1u);
  EXPECT_DOUBLE_EQ(merged.histograms.at("h").edges.back(), 1.0);
}

TEST(SnapshotTest, MergeMismatchBumpsGlobalAuditCounter) {
  // Regression for silently-dropped merges: callers that ignore Merge's
  // return value still leave `obs.merge_mismatch` behind in the global
  // registry, one bump per conflicting histogram.
  MetricsRegistry::Global().Reset();
  const uint64_t before =
      MetricsRegistry::Global().GetCounter("obs.merge_mismatch").value();
  MetricsRegistry a, b;
  a.GetHistogram("h", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  b.GetHistogram("h", Buckets::Explicit({0.0, 0.5, 1.0})).Observe(0.5);
  MetricsSnapshot merged = a.Snapshot();
  EXPECT_FALSE(merged.Merge(b.Snapshot()));
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("obs.merge_mismatch").value(),
      before + 1);
  // A compatible merge leaves the audit counter alone.
  MetricsRegistry c;
  c.GetHistogram("h", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  EXPECT_TRUE(merged.Merge(c.Snapshot()));
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("obs.merge_mismatch").value(),
      before + 1);
  MetricsRegistry::Global().Reset();
}

}  // namespace
}  // namespace hyperm::obs
