// Directed-topology tests: per-node range multipliers make links one-way,
// island labelling becomes SCC-based, and the SCC labeller agrees with the
// undirected BFS labeller wherever both are defined (symmetric graphs).

#include <vector>

#include <gtest/gtest.h>

#include "manet/topology.h"

namespace hyperm::manet {
namespace {

ManetTopology SymmetricField(int nodes, double field, double range,
                             uint64_t seed) {
  TopologyOptions options;
  options.num_nodes = nodes;
  options.field_size_m = field;
  options.radio_range_m = range;
  options.max_placement_attempts = 5000;
  Rng rng(seed);
  Result<ManetTopology> topology = ManetTopology::Generate(options, rng);
  EXPECT_TRUE(topology.ok()) << topology.status().ToString();
  return std::move(topology).value();
}

/// Nodes on a line 50 m apart; per-node transmit ranges make a digraph:
/// 0 (range 120) reaches {1, 2}; 1 (range 60) reaches {0, 2}; 2 (range 30)
/// reaches nobody. {0, 1} is one SCC, {2} a sink of its own.
Result<ManetTopology> AsymmetricChain() {
  TopologyOptions options;
  options.num_nodes = 3;
  options.field_size_m = 200.0;
  options.radio_range_m = 60.0;
  options.min_range_multiplier = 0.5;
  options.max_range_multiplier = 2.0;
  std::vector<Vector> positions = {Vector{0.0, 0.0}, Vector{50.0, 0.0},
                                   Vector{100.0, 0.0}};
  return ManetTopology::FromPositions(options, std::move(positions),
                                      {2.0, 1.0, 0.5});
}

TEST(SccLabelsTest, MatchesUndirectedLabellerOnSymmetricGraphs) {
  // On symmetric graphs SCCs are exactly the connected components, and both
  // labellers number them densely by ascending first occurrence.
  for (uint64_t seed : {1u, 12u, 123u}) {
    ManetTopology connected = SymmetricField(24, 180.0, 60.0, seed);
    ASSERT_TRUE(connected.symmetric());
    EXPECT_EQ(connected.SccLabels(), connected.island_labels());
  }
  // A deliberately split symmetric layout: still identical, per component.
  TopologyOptions options;
  options.num_nodes = 6;
  options.field_size_m = 400.0;
  options.radio_range_m = 60.0;
  std::vector<Vector> positions = {
      Vector{10.0, 10.0},   Vector{50.0, 10.0},   Vector{90.0, 10.0},
      Vector{310.0, 390.0}, Vector{350.0, 390.0}, Vector{390.0, 390.0}};
  Result<ManetTopology> split =
      ManetTopology::FromPositions(options, std::move(positions));
  ASSERT_TRUE(split.ok());
  EXPECT_FALSE(split->connected());
  EXPECT_EQ(split->num_islands(), 2);
  EXPECT_EQ(split->SccLabels(), split->island_labels());
}

TEST(DirectedTopologyTest, RangeMultipliersMakeLinksOneWay) {
  Result<ManetTopology> chain = AsymmetricChain();
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_FALSE(chain->symmetric());
  EXPECT_DOUBLE_EQ(chain->range_multiplier(0), 2.0);
  EXPECT_DOUBLE_EQ(chain->range_multiplier(2), 0.5);
  EXPECT_EQ(chain->neighbors(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(chain->neighbors(1), (std::vector<int>{0, 2}));
  EXPECT_TRUE(chain->neighbors(2).empty());
  EXPECT_EQ(chain->in_neighbors(0), (std::vector<int>{1}));
  EXPECT_EQ(chain->in_neighbors(1), (std::vector<int>{0}));
  EXPECT_EQ(chain->in_neighbors(2), (std::vector<int>{0, 1}));
  // Directed reachability: into the sink but never out of it.
  EXPECT_TRUE(chain->CanReach(0, 2));
  EXPECT_TRUE(chain->CanReach(1, 2));
  EXPECT_FALSE(chain->CanReach(2, 0));
  EXPECT_FALSE(chain->CanReach(2, 1));
  EXPECT_EQ(chain->PathHops(0, 2), 1);
  EXPECT_EQ(chain->PathHops(2, 0), kUnreachableHops);
}

TEST(DirectedTopologyTest, IslandLabelsAreSccsOnDigraphs) {
  Result<ManetTopology> chain = AsymmetricChain();
  ASSERT_TRUE(chain.ok());
  // 2 hears the others but cannot answer: not strongly connected, so it is
  // its own island even though every undirected edge would join it.
  EXPECT_FALSE(chain->connected());
  EXPECT_EQ(chain->num_islands(), 2);
  const std::vector<int>& labels = chain->island_labels();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_EQ(chain->SccLabels(), labels);
  EXPECT_TRUE(chain->SameIsland(0, 1));
  EXPECT_FALSE(chain->SameIsland(0, 2));
}

TEST(DirectedTopologyTest, GenerateDrawsMultipliersAndStaysConsistent) {
  TopologyOptions options;
  options.num_nodes = 14;
  options.field_size_m = 150.0;
  options.radio_range_m = 80.0;
  options.min_range_multiplier = 0.8;
  options.max_range_multiplier = 1.3;
  options.max_placement_attempts = 5000;
  Rng rng(21);
  Result<ManetTopology> topology = ManetTopology::Generate(options, rng);
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();
  EXPECT_FALSE(topology->symmetric());
  EXPECT_TRUE(topology->connected());  // Generate retries until strongly so
  for (int i = 0; i < 14; ++i) {
    EXPECT_GE(topology->range_multiplier(i), 0.8);
    EXPECT_LE(topology->range_multiplier(i), 1.3);
    // In/out adjacency must be mutually consistent.
    for (int j : topology->neighbors(i)) {
      const std::vector<int>& in = topology->in_neighbors(j);
      EXPECT_TRUE(std::binary_search(in.begin(), in.end(), i)) << i << "->" << j;
    }
  }
  // Bad multiplier options are rejected.
  TopologyOptions bad = options;
  bad.min_range_multiplier = 0.0;
  Rng bad_rng(21);
  EXPECT_FALSE(ManetTopology::Generate(bad, bad_rng).ok());
  bad = options;
  bad.max_range_multiplier = 0.5;  // < min
  Rng bad_rng2(21);
  EXPECT_FALSE(ManetTopology::Generate(bad, bad_rng2).ok());
}

TEST(DirectedTopologyTest, MultiplierCountMustMatchNodes) {
  TopologyOptions options;
  options.num_nodes = 3;
  options.field_size_m = 200.0;
  options.radio_range_m = 60.0;
  options.min_range_multiplier = 0.5;
  options.max_range_multiplier = 2.0;
  std::vector<Vector> positions = {Vector{0.0, 0.0}, Vector{50.0, 0.0},
                                   Vector{100.0, 0.0}};
  EXPECT_FALSE(
      ManetTopology::FromPositions(options, positions, {1.0, 2.0}).ok());
  EXPECT_FALSE(
      ManetTopology::FromPositions(options, positions, {1.0, 2.0, -1.0}).ok());
}

}  // namespace
}  // namespace hyperm::manet
