#include "sim/dissemination.h"

#include <gtest/gtest.h>

namespace hyperm::sim {
namespace {

TEST(LinkModelTest, HopDurationComposition) {
  LinkModel link;
  link.hop_overhead_ms = 2.0;
  link.bandwidth_bytes_per_ms = 100.0;
  EXPECT_DOUBLE_EQ(link.HopMs(0.0), 2.0);
  EXPECT_DOUBLE_EQ(link.HopMs(500.0), 7.0);
}

TEST(ParallelMakespanTest, EmptyNetworkIsInstant) {
  EXPECT_DOUBLE_EQ(ParallelMakespanMs({}, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(ParallelMakespanMs({0, 0, 0}, 100.0), 0.0);
}

TEST(ParallelMakespanTest, GovernedBySlowestPeer) {
  LinkModel link;
  link.hop_overhead_ms = 1.0;
  link.bandwidth_bytes_per_ms = 1000.0;
  // Hop duration = 1 + 0.1 = 1.1 ms; peers with 10/20/40 hops.
  const double makespan = ParallelMakespanMs({10, 20, 40}, 100.0, link);
  EXPECT_NEAR(makespan, 40 * 1.1, 1e-9);
}

TEST(ParallelMakespanTest, BiggerMessagesTakeLonger) {
  const double small = ParallelMakespanMs({100}, 50.0);
  const double large = ParallelMakespanMs({100}, 5000.0);
  EXPECT_GT(large, small);
}

TEST(ParallelMakespanTest, ParallelismBeatsSerial) {
  // 4 peers with 25 hops each finish 4x sooner than 1 peer with 100.
  const double parallel = ParallelMakespanMs({25, 25, 25, 25}, 100.0);
  const double serial = ParallelMakespanMs({100}, 100.0);
  EXPECT_NEAR(serial, 4.0 * parallel, 1e-9);
}

TEST(AverageInsertBytesTest, ComputesInsertPathMean) {
  NetworkStats stats;
  EXPECT_DOUBLE_EQ(AverageInsertBytesPerHop(stats), 0.0);
  stats.RecordHop(TrafficClass::kInsert, 100);
  stats.RecordHop(TrafficClass::kReplicate, 300);
  stats.RecordHop(TrafficClass::kQuery, 5000);  // not insert-path: ignored
  EXPECT_DOUBLE_EQ(AverageInsertBytesPerHop(stats), 200.0);
}

}  // namespace
}  // namespace hyperm::sim
