// Determinism and distribution checks for the open-loop workload generator:
// the arrival schedule must be a pure function of (options, num_peers) —
// byte-identical across runs and host thread counts — and its Zipf/Poisson
// streams must actually follow their configured distributions.

#include "serve/workload.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/network.h"
#include "serve/engine.h"

namespace hyperm::serve {
namespace {

WorkloadOptions SampleWorkload() {
  WorkloadOptions workload;
  workload.duration_ms = 60'000.0;
  workload.offered_qps = 25.0;
  workload.num_templates = 16;
  workload.zipf_s = 1.25;
  workload.range_fraction = 0.75;
  return workload;
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOneAndDecay) {
  const ZipfSampler zipf(16, 1.25);
  double sum = 0.0;
  for (int i = 0; i < zipf.n(); ++i) {
    sum += zipf.Probability(i);
    if (i > 0) EXPECT_LT(zipf.Probability(i), zipf.Probability(i - 1));
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  const ZipfSampler zipf(8, 0.0);
  for (int i = 0; i < zipf.n(); ++i) {
    EXPECT_NEAR(zipf.Probability(i), 1.0 / 8.0, 1e-12);
  }
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchExponent) {
  // Satellite check: the sampled stream follows the configured exponent,
  // not just the precomputed table. 200k draws give ~0.1% standard error on
  // the head ranks; 1% absolute tolerance is ~10 sigma.
  const ZipfSampler zipf(16, 1.25);
  Rng rng(MixSeed(0x7a697066ULL, 1));
  const int kDraws = 200'000;
  std::vector<int> counts(16, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<size_t>(zipf.Sample(rng))];
  for (int i = 0; i < zipf.n(); ++i) {
    const double empirical = static_cast<double>(counts[static_cast<size_t>(i)]) / kDraws;
    EXPECT_NEAR(empirical, zipf.Probability(i), 0.01)
        << "rank " << i << " drifted from Zipf(1.25)";
  }
}

TEST(WorkloadTest, ArrivalCountMatchesPoissonRate) {
  const WorkloadOptions workload = SampleWorkload();
  const std::vector<Arrival> schedule = GenerateArrivals(workload, 16);
  // Expected 25 qps * 60 s = 1500 arrivals, sigma = sqrt(1500) ~ 39.
  const double expected = workload.offered_qps * workload.duration_ms / 1000.0;
  EXPECT_NEAR(static_cast<double>(schedule.size()), expected,
              5.0 * std::sqrt(expected));
  // Sorted by construction, in range, and strictly inside the window.
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (i > 0) EXPECT_GE(schedule[i].t_ms, schedule[i - 1].t_ms);
    EXPECT_GE(schedule[i].t_ms, 0.0);
    EXPECT_LT(schedule[i].t_ms, workload.duration_ms);
    EXPECT_GE(schedule[i].template_id, 0);
    EXPECT_LT(schedule[i].template_id, workload.num_templates);
    EXPECT_GE(schedule[i].querying_peer, 0);
    EXPECT_LT(schedule[i].querying_peer, 16);
  }
}

TEST(WorkloadTest, ScheduleIsByteIdenticalAcrossRuns) {
  const WorkloadOptions workload = SampleWorkload();
  const std::vector<Arrival> a = GenerateArrivals(workload, 16);
  const std::vector<Arrival> b = GenerateArrivals(workload, 16);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(ScheduleDigest(a), ScheduleDigest(b));
  // And the digest actually discriminates: any knob change moves it.
  WorkloadOptions reseeded = workload;
  reseeded.seed ^= 1;
  EXPECT_NE(ScheduleDigest(a), ScheduleDigest(GenerateArrivals(reseeded, 16)));
  EXPECT_NE(ScheduleDigest(a), ScheduleDigest(GenerateArrivals(workload, 8)));
}

// The full determinism contract: serving the same schedule through networks
// built at 1 and 8 host threads yields bit-identical accounting (the
// schedule is generated outside the network, and the network itself is
// bit-identical at any thread count).
TEST(WorkloadTest, ServingIsByteIdenticalAcrossThreadCounts) {
  struct RunOutcome {
    uint64_t digest = 0;
    ServeStats stats;
  };
  auto run = [](int num_threads) {
    Rng rng(4242);
    data::MarkovOptions data_options;
    data_options.count = 64;
    data_options.dim = 8;
    data_options.num_families = 4;
    Result<data::Dataset> dataset = data::GenerateMarkov(data_options, rng);
    EXPECT_TRUE(dataset.ok());
    data::AssignmentOptions assign_options;
    assign_options.num_peers = 8;
    assign_options.num_interest_classes = 4;
    Result<data::PeerAssignment> assignment =
        data::AssignByInterest(dataset.value(), assign_options, rng);
    EXPECT_TRUE(assignment.ok());
    core::HyperMOptions options;
    options.num_threads = num_threads;
    options.net.unreliable = true;
    options.channel.enabled = true;
    options.channel.field.field_size_m = 200.0;
    options.channel.field.radio_range_m = 80.0;
    options.channel.field.max_placement_attempts = 5000;
    options.channel.speed_m_per_s = 0.0;
    Result<std::unique_ptr<core::HyperMNetwork>> network =
        core::HyperMNetwork::Build(dataset.value(), assignment.value(),
                                   options, rng);
    EXPECT_TRUE(network.ok()) << network.status().ToString();
    network.value()->AdvanceTo(
        network.value()->radio_channel()->DrainedAtMs() + 1.0);

    ServeOptions serve;
    serve.workload.duration_ms = 4'000.0;
    serve.workload.offered_qps = 2.0;
    serve.workload.num_templates = 8;
    serve.workload.zipf_s = 1.0;
    serve.range_epsilon = 0.5;
    serve.deadline_ms = 20'000.0;
    serve.cache.enabled = true;
    serve.cache.ttl_ms = serve.workload.duration_ms;
    serve.shortcuts.enabled = true;
    const std::vector<QueryTemplate> templates = MakeTemplates(
        dataset.value().items, serve.workload, serve.range_epsilon, serve.knn_k);
    const std::vector<Arrival> schedule = GenerateArrivals(serve.workload, 8);
    RunOutcome outcome;
    outcome.digest = ScheduleDigest(schedule);
    ServeEngine engine(network.value().get(), serve);
    Result<ServeStats> stats = engine.Run(templates, schedule);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    outcome.stats = std::move(stats).value();
    return outcome;
  };
  const RunOutcome serial = run(1);
  const RunOutcome parallel = run(8);
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(serial.stats.admitted, parallel.stats.admitted);
  EXPECT_EQ(serial.stats.shed, parallel.stats.shed);
  EXPECT_EQ(serial.stats.cache_hits, parallel.stats.cache_hits);
  EXPECT_EQ(serial.stats.completed, parallel.stats.completed);
  ASSERT_EQ(serial.stats.t2a_ms.size(), parallel.stats.t2a_ms.size());
  for (size_t i = 0; i < serial.stats.t2a_ms.size(); ++i) {
    EXPECT_EQ(serial.stats.t2a_ms[i], parallel.stats.t2a_ms[i])
        << "time-to-answer " << i << " diverged across thread counts";
  }
}

TEST(WorkloadTest, MakeTemplatesSplitsRangeAndKnn) {
  std::vector<Vector> centers;
  for (int i = 0; i < 10; ++i) {
    centers.push_back(Vector(4, static_cast<double>(i)));
  }
  WorkloadOptions workload;
  workload.num_templates = 8;
  workload.range_fraction = 0.75;
  const std::vector<QueryTemplate> templates =
      MakeTemplates(centers, workload, 0.3, 5);
  ASSERT_EQ(templates.size(), 8u);
  for (size_t i = 0; i < templates.size(); ++i) {
    if (i < 6) {
      EXPECT_FALSE(templates[i].knn);
      EXPECT_DOUBLE_EQ(templates[i].epsilon, 0.3);
    } else {
      EXPECT_TRUE(templates[i].knn);
      EXPECT_EQ(templates[i].k, 5);
    }
  }
}

}  // namespace
}  // namespace hyperm::serve
