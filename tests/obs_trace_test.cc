#include "obs/trace.h"

#include <gtest/gtest.h>

namespace hyperm::obs {
namespace {

TEST(TracerTest, RecordsNestedSpansInStartOrder) {
  Tracer tracer;
  const int outer = tracer.Begin("build");
  const int inner = tracer.Begin("build/publish");
  tracer.End(inner);
  const int sibling = tracer.Begin("build/overlays");
  tracer.End(sibling);
  tracer.End(outer);

  const std::vector<SpanRecord>& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "build");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "build/publish");
  EXPECT_EQ(spans[1].parent, outer);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "build/overlays");
  EXPECT_EQ(spans[2].parent, outer);
  EXPECT_EQ(spans[2].depth, 1);
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.duration_us, 0.0) << s.name << " should be closed";
    EXPECT_GE(s.start_us, 0.0);
  }
  // Children start no earlier than their parent.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_EQ(tracer.open_depth(), 0);
}

TEST(TracerTest, OpenSpanHasNegativeDuration) {
  Tracer tracer;
  const int id = tracer.Begin("open");
  EXPECT_EQ(tracer.spans()[0].duration_us, -1.0);
  EXPECT_EQ(tracer.open_depth(), 1);
  tracer.End(id);
  EXPECT_GE(tracer.spans()[0].duration_us, 0.0);
}

TEST(TracerTest, DropsBeyondCapacity) {
  Tracer tracer;
  tracer.set_capacity(2);
  const int a = tracer.Begin("a");
  const int b = tracer.Begin("b");
  const int c = tracer.Begin("c");  // over capacity -> dropped
  EXPECT_EQ(c, -1);
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_EQ(tracer.spans().size(), 2u);
  tracer.End(c);  // no-op
  tracer.End(b);
  tracer.End(a);
  EXPECT_EQ(tracer.open_depth(), 0);
}

TEST(TracerTest, ResetClearsSpansAndEpoch) {
  Tracer tracer;
  tracer.set_capacity(1);
  tracer.End(tracer.Begin("x"));
  EXPECT_EQ(tracer.Begin("dropped"), -1);
  tracer.Reset();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  const int id = tracer.Begin("fresh");
  EXPECT_EQ(id, 0);
  tracer.End(id);
}

TEST(ScopedSpanTest, ClosesOnScopeExit) {
  Tracer tracer;
  {
    ScopedSpan span("scoped", tracer);
    EXPECT_EQ(tracer.open_depth(), 1);
  }
  EXPECT_EQ(tracer.open_depth(), 0);
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_GE(tracer.spans()[0].duration_us, 0.0);
}

TEST(ScopedTimerTest, ObservesElapsedMicroseconds) {
  Histogram h(Buckets::Exponential(1.0, 10.0, 9));
  { ScopedTimer timer(h); }
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.min, 0.0);
}

#ifndef HYPERM_OBS_DISABLED
TEST(MacroTest, SpanMacroRecordsIntoGlobalTracer) {
  Tracer::Global().Reset();
  {
    HM_OBS_SPAN("macro/test");
  }
  ASSERT_EQ(Tracer::Global().spans().size(), 1u);
  EXPECT_EQ(Tracer::Global().spans()[0].name, "macro/test");
  Tracer::Global().Reset();
}

TEST(MacroTest, MetricMacrosRecordIntoGlobalRegistry) {
  MetricsRegistry::Global().Reset();
  HM_OBS_COUNTER_ADD("macro.counter", 2);
  HM_OBS_GAUGE_SET("macro.gauge", 1.5);
  HM_OBS_HISTOGRAM("macro.hist", Buckets::Linear(0.0, 1.0, 2), 0.25);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counters.at("macro.counter"), 2u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("macro.gauge"), 1.5);
  EXPECT_EQ(snap.histograms.at("macro.hist").count, 1u);
  MetricsRegistry::Global().Reset();
}
#endif  // HYPERM_OBS_DISABLED

}  // namespace
}  // namespace hyperm::obs
