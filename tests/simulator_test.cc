#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace hyperm::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(3.0, [&] { order.push_back(3); });
  sim.ScheduleAfter(1.0, [&] { order.push_back(1); });
  sim.ScheduleAfter(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAfter(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(1.0, [&] {
    ++fired;
    sim.ScheduleAfter(1.0, [&] { ++fired; });
  });
  EXPECT_EQ(sim.Run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(1.0, [&] { ++fired; });
  sim.ScheduleAfter(5.0, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilInclusiveOfBoundaryEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(2.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, MaxEventsGuard) {
  Simulator sim;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { sim.ScheduleAfter(1.0, loop); };
  sim.ScheduleAfter(1.0, loop);
  EXPECT_EQ(sim.Run(10), 10u);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  double seen = -1.0;
  sim.ScheduleAfter(4.0, [&] {
    sim.ScheduleAfter(0.0, [&] { seen = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 4.0);
}

TEST(SimulatorTest, RunUntilExecutesEventsSpawnedExactlyAtBoundary) {
  // An event inside the window schedules work for exactly `until`; that work
  // (and zero-delay work it spawns at `until`) belongs to this RunUntil.
  Simulator sim;
  std::vector<int> fired;
  sim.ScheduleAfter(1.0, [&] {
    fired.push_back(1);
    sim.ScheduleAt(5.0, [&] {
      fired.push_back(2);
      sim.ScheduleAfter(0.0, [&] { fired.push_back(3); });
    });
  });
  sim.ScheduleAfter(5.0 + 1e-9, [&] { fired.push_back(4); });  // just past it
  EXPECT_EQ(sim.RunUntil(5.0), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  EXPECT_EQ(sim.RunUntil(42.0), 0u);
  EXPECT_EQ(sim.now(), 42.0);
  // Moving to an earlier-or-equal instant executes nothing and keeps time
  // monotonic.
  EXPECT_EQ(sim.RunUntil(42.0), 0u);
  EXPECT_EQ(sim.now(), 42.0);
}

TEST(SimulatorTest, ZeroDelaySelfRescheduleIsStoppedByMaxEvents) {
  // A zero-delay feedback loop never advances the clock; only the
  // max_events guard can end the run.
  Simulator sim;
  uint64_t ticks = 0;
  std::function<void()> loop = [&] {
    ++ticks;
    sim.ScheduleAfter(0.0, loop);
  };
  sim.ScheduleAfter(0.0, loop);
  EXPECT_EQ(sim.Run(1000), 1000u);
  EXPECT_EQ(ticks, 1000u);
  EXPECT_EQ(sim.now(), 0.0);      // time never moved
  EXPECT_EQ(sim.pending(), 1u);   // the next iteration is still queued
  // The guard is a pause, not a corruption: a later bounded run continues
  // the same loop from where it stopped.
  EXPECT_EQ(sim.Run(10), 10u);
  EXPECT_EQ(ticks, 1010u);
}

TEST(SimulatorTest, FifoTieBreakAcrossSchedulingStyles) {
  // ScheduleAfter and ScheduleAt targeting the same instant interleave in
  // call order, and zero-delay events spawned while executing that instant
  // run after everything already queued for it.
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(2.0, [&] {
    order.push_back(0);
    sim.ScheduleAfter(0.0, [&] { order.push_back(3); });  // same instant, last
  });
  sim.ScheduleAt(2.0, [&] { order.push_back(1); });
  sim.ScheduleAfter(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorTest, ExecutedAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAfter(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(SimulatorTest, BatchDrainPreservesOrderWithSameTickSelfScheduling) {
  // Same-tick events are extracted in one heap batch; events scheduled
  // *during* the batch for the same instant must still run after every
  // pre-existing same-tick event — the exact one-at-a-time total order.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.ScheduleAfter(1.0, [&order, &sim, i] {
      order.push_back(i);
      if (i == 0) {
        sim.ScheduleAfter(0.0, [&order] { order.push_back(100); });
      }
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 100}));
}

TEST(SimulatorTest, BatchDrainRespectsMaxEventsMidTick) {
  // max_events can split a same-tick batch; the remainder stays queued and a
  // later run resumes mid-instant without reordering.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    sim.ScheduleAfter(1.0, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(sim.Run(4), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_EQ(sim.Run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(SimulatorTest, RunUntilBatchesAcrossDistinctTicks) {
  Simulator sim;
  std::vector<double> at;
  for (double t : {1.0, 1.0, 2.0, 2.0, 3.0}) {
    sim.ScheduleAfter(t, [&at, &sim] { at.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.RunUntil(2.0), 4u);
  EXPECT_EQ(at, (std::vector<double>{1.0, 1.0, 2.0, 2.0}));
  EXPECT_EQ(sim.now(), 2.0);
}

TEST(SimulatorTest, KeyedReschedulingCoalesces) {
  // Re-scheduling a key supersedes the pending callback: only the latest
  // firing runs, the stale heap slot drains as a counted no-op.
  Simulator sim;
  int fired = 0;
  sim.ScheduleKeyedAfter(7, 5.0, [&] { fired += 1; });
  sim.ScheduleKeyedAfter(7, 2.0, [&] { fired += 10; });
  sim.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.coalesced(), 1u);
  // Keyed no-ops still occupy a heap slot but do not count as executions of
  // user work any differently — both entries were popped.
  EXPECT_EQ(sim.executed(), 2u);
}

TEST(SimulatorTest, KeyedTimersAreIndependentPerKey) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleKeyedAfter(1, 1.0, [&] { order.push_back(1); });
  sim.ScheduleKeyedAfter(2, 2.0, [&] { order.push_back(2); });
  sim.ScheduleKeyedAfter(3, 3.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.coalesced(), 0u);
}

TEST(SimulatorTest, CancelKeyedDropsPendingCallback) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleKeyedAfter(9, 1.0, [&] { ++fired; });
  sim.CancelKeyed(9);
  sim.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.coalesced(), 1u);
  // The key is reusable after cancellation.
  sim.ScheduleKeyedAfter(9, 1.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, KeyedCallbackCanRescheduleItself) {
  // The periodic-timer idiom: the callback re-arms its own key.
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 3) sim.ScheduleKeyedAfter(4, 10.0, tick);
  };
  sim.ScheduleKeyedAfter(4, 10.0, tick);
  sim.Run();
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sim.coalesced(), 0u);
  EXPECT_EQ(sim.now(), 30.0);
}

}  // namespace
}  // namespace hyperm::sim
