#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace hyperm::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(3.0, [&] { order.push_back(3); });
  sim.ScheduleAfter(1.0, [&] { order.push_back(1); });
  sim.ScheduleAfter(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAfter(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(1.0, [&] {
    ++fired;
    sim.ScheduleAfter(1.0, [&] { ++fired; });
  });
  EXPECT_EQ(sim.Run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(1.0, [&] { ++fired; });
  sim.ScheduleAfter(5.0, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilInclusiveOfBoundaryEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(2.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, MaxEventsGuard) {
  Simulator sim;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { sim.ScheduleAfter(1.0, loop); };
  sim.ScheduleAfter(1.0, loop);
  EXPECT_EQ(sim.Run(10), 10u);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  double seen = -1.0;
  sim.ScheduleAfter(4.0, [&] {
    sim.ScheduleAfter(0.0, [&] { seen = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 4.0);
}

TEST(SimulatorTest, ExecutedAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAfter(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.executed(), 7u);
}

}  // namespace
}  // namespace hyperm::sim
