#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace hyperm::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(3.0, [&] { order.push_back(3); });
  sim.ScheduleAfter(1.0, [&] { order.push_back(1); });
  sim.ScheduleAfter(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAfter(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(1.0, [&] {
    ++fired;
    sim.ScheduleAfter(1.0, [&] { ++fired; });
  });
  EXPECT_EQ(sim.Run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(1.0, [&] { ++fired; });
  sim.ScheduleAfter(5.0, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilInclusiveOfBoundaryEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(2.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, MaxEventsGuard) {
  Simulator sim;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { sim.ScheduleAfter(1.0, loop); };
  sim.ScheduleAfter(1.0, loop);
  EXPECT_EQ(sim.Run(10), 10u);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  double seen = -1.0;
  sim.ScheduleAfter(4.0, [&] {
    sim.ScheduleAfter(0.0, [&] { seen = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 4.0);
}

TEST(SimulatorTest, RunUntilExecutesEventsSpawnedExactlyAtBoundary) {
  // An event inside the window schedules work for exactly `until`; that work
  // (and zero-delay work it spawns at `until`) belongs to this RunUntil.
  Simulator sim;
  std::vector<int> fired;
  sim.ScheduleAfter(1.0, [&] {
    fired.push_back(1);
    sim.ScheduleAt(5.0, [&] {
      fired.push_back(2);
      sim.ScheduleAfter(0.0, [&] { fired.push_back(3); });
    });
  });
  sim.ScheduleAfter(5.0 + 1e-9, [&] { fired.push_back(4); });  // just past it
  EXPECT_EQ(sim.RunUntil(5.0), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  EXPECT_EQ(sim.RunUntil(42.0), 0u);
  EXPECT_EQ(sim.now(), 42.0);
  // Moving to an earlier-or-equal instant executes nothing and keeps time
  // monotonic.
  EXPECT_EQ(sim.RunUntil(42.0), 0u);
  EXPECT_EQ(sim.now(), 42.0);
}

TEST(SimulatorTest, ZeroDelaySelfRescheduleIsStoppedByMaxEvents) {
  // A zero-delay feedback loop never advances the clock; only the
  // max_events guard can end the run.
  Simulator sim;
  uint64_t ticks = 0;
  std::function<void()> loop = [&] {
    ++ticks;
    sim.ScheduleAfter(0.0, loop);
  };
  sim.ScheduleAfter(0.0, loop);
  EXPECT_EQ(sim.Run(1000), 1000u);
  EXPECT_EQ(ticks, 1000u);
  EXPECT_EQ(sim.now(), 0.0);      // time never moved
  EXPECT_EQ(sim.pending(), 1u);   // the next iteration is still queued
  // The guard is a pause, not a corruption: a later bounded run continues
  // the same loop from where it stopped.
  EXPECT_EQ(sim.Run(10), 10u);
  EXPECT_EQ(ticks, 1010u);
}

TEST(SimulatorTest, FifoTieBreakAcrossSchedulingStyles) {
  // ScheduleAfter and ScheduleAt targeting the same instant interleave in
  // call order, and zero-delay events spawned while executing that instant
  // run after everything already queued for it.
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(2.0, [&] {
    order.push_back(0);
    sim.ScheduleAfter(0.0, [&] { order.push_back(3); });  // same instant, last
  });
  sim.ScheduleAt(2.0, [&] { order.push_back(1); });
  sim.ScheduleAfter(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorTest, ExecutedAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAfter(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.executed(), 7u);
}

}  // namespace
}  // namespace hyperm::sim
