#include "sim/stats.h"

#include <gtest/gtest.h>

namespace hyperm::sim {
namespace {

TEST(StatsTest, StartsEmpty) {
  NetworkStats stats;
  EXPECT_EQ(stats.total_hops(), 0u);
  EXPECT_EQ(stats.total_bytes(), 0u);
  EXPECT_EQ(stats.total_energy_millijoules(), 0.0);
}

TEST(StatsTest, RecordsPerClass) {
  NetworkStats stats;
  stats.RecordHop(TrafficClass::kInsert, 100);
  stats.RecordHop(TrafficClass::kInsert, 50);
  stats.RecordHop(TrafficClass::kQuery, 10);
  EXPECT_EQ(stats.hops(TrafficClass::kInsert), 2u);
  EXPECT_EQ(stats.hops(TrafficClass::kQuery), 1u);
  EXPECT_EQ(stats.hops(TrafficClass::kJoin), 0u);
  EXPECT_EQ(stats.bytes(TrafficClass::kInsert), 150u);
  EXPECT_EQ(stats.total_hops(), 3u);
  EXPECT_EQ(stats.total_bytes(), 160u);
}

TEST(StatsTest, EnergyModelIsLinearInBytes) {
  RadioEnergyModel model;
  const double e1 = model.HopEnergyNanojoules(100);
  const double e2 = model.HopEnergyNanojoules(200);
  // Doubling payload does not double energy (fixed overhead), but the
  // payload-dependent part is linear.
  EXPECT_NEAR(e2 - e1, (model.tx_nanojoule_per_byte + model.rx_nanojoule_per_byte) * 100,
              1e-9);
}

TEST(StatsTest, EnergyAccumulates) {
  RadioEnergyModel model;
  NetworkStats stats(model);
  stats.RecordHop(TrafficClass::kRetrieve, 1000);
  EXPECT_NEAR(stats.total_energy_millijoules(),
              model.HopEnergyNanojoules(1000) * 1e-6, 1e-12);
  EXPECT_NEAR(stats.energy_millijoules(TrafficClass::kRetrieve),
              stats.total_energy_millijoules(), 1e-15);
}

TEST(StatsTest, ResetClearsEverything) {
  NetworkStats stats;
  stats.RecordHop(TrafficClass::kJoin, 10);
  stats.RecordQueryServed();
  stats.Reset();
  EXPECT_EQ(stats.total_hops(), 0u);
  EXPECT_EQ(stats.total_bytes(), 0u);
  EXPECT_EQ(stats.total_energy_millijoules(), 0.0);
  EXPECT_EQ(stats.queries_served(), 0u);
}

TEST(StatsTest, CountsQueriesServed) {
  NetworkStats stats;
  EXPECT_EQ(stats.queries_served(), 0u);
  stats.RecordQueryServed();
  stats.RecordQueryServed();
  EXPECT_EQ(stats.queries_served(), 2u);
}

TEST(StatsTest, MergeAccumulatesAllClassesAndQueries) {
  NetworkStats a, b;
  a.RecordHop(TrafficClass::kInsert, 100);
  a.RecordQueryServed();
  b.RecordHop(TrafficClass::kInsert, 50);
  b.RecordHop(TrafficClass::kQuery, 10);
  b.RecordQueryServed();
  b.RecordQueryServed();
  a.Merge(b);
  EXPECT_EQ(a.hops(TrafficClass::kInsert), 2u);
  EXPECT_EQ(a.bytes(TrafficClass::kInsert), 150u);
  EXPECT_EQ(a.hops(TrafficClass::kQuery), 1u);
  EXPECT_EQ(a.queries_served(), 3u);
  EXPECT_GT(a.total_energy_millijoules(), 0.0);
  // The merge source is untouched.
  EXPECT_EQ(b.total_hops(), 2u);
}

TEST(StatsTest, ClassNames) {
  EXPECT_EQ(TrafficClassName(TrafficClass::kJoin), "join");
  EXPECT_EQ(TrafficClassName(TrafficClass::kReplicate), "replicate");
  EXPECT_EQ(TrafficClassName(TrafficClass::kRetrieve), "retrieve");
}

TEST(StatsTest, SummaryMentionsActiveClasses) {
  NetworkStats stats;
  stats.RecordHop(TrafficClass::kQuery, 10);
  const std::string summary = stats.Summary();
  EXPECT_NE(summary.find("query=1"), std::string::npos);
  EXPECT_EQ(summary.find("join="), std::string::npos);
}

TEST(StatsTest, SummaryReportsPerClassTotalsAndQueries) {
  NetworkStats stats;
  stats.RecordHop(TrafficClass::kInsert, 100);
  stats.RecordHop(TrafficClass::kInsert, 50);
  stats.RecordQueryServed();
  const std::string summary = stats.Summary();
  EXPECT_NE(summary.find("hops=2"), std::string::npos);
  EXPECT_NE(summary.find("bytes=150"), std::string::npos);
  EXPECT_NE(summary.find("served=1"), std::string::npos);
  EXPECT_NE(summary.find("insert=2/150B"), std::string::npos);
}

}  // namespace
}  // namespace hyperm::sim
