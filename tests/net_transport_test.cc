// Unit tests of the unreliable-transport subsystem: fault plans, retry
// policy arithmetic, transport delivery semantics and their determinism.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault_plan.h"
#include "net/retry.h"
#include "net/transport.h"
#include "sim/dissemination.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace hyperm::net {
namespace {

TEST(FaultPlanTest, ValidatesProbabilitiesAndSchedules) {
  FaultPlan plan;
  EXPECT_TRUE(plan.Validate(4).ok());

  plan.loss_rate = 1.5;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.loss_rate = 0.2;
  plan.duplicate_rate = -0.1;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.duplicate_rate = 0.0;
  plan.jitter_ms = -1.0;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.jitter_ms = 0.0;

  plan.peer_events.push_back(PeerEvent{100.0, 7, false});
  EXPECT_FALSE(plan.Validate(4).ok());  // peer 7 of 4
  plan.peer_events.back().peer = 3;
  EXPECT_TRUE(plan.Validate(4).ok());

  plan.partitions.push_back(Partition{200.0, 100.0, {0, 1}});
  EXPECT_FALSE(plan.Validate(4).ok());  // end before start
  plan.partitions.back().end_ms = 300.0;
  EXPECT_TRUE(plan.Validate(4).ok());
}

TEST(FaultStateTest, TracksAvailabilityAndPartitions) {
  FaultPlan plan;
  plan.partitions.push_back(Partition{100.0, 200.0, {0, 1}});
  FaultState state(4, plan);

  for (int p = 0; p < 4; ++p) EXPECT_TRUE(state.up(p));
  EXPECT_FALSE(state.up(-1));
  EXPECT_FALSE(state.up(4));
  state.SetUp(2, false);
  EXPECT_FALSE(state.up(2));
  state.SetUp(2, true);
  EXPECT_TRUE(state.up(2));

  // Outside the window everyone talks; inside, only within a group.
  EXPECT_TRUE(state.Connected(0, 2, 50.0));
  EXPECT_TRUE(state.Connected(0, 1, 150.0));   // both in the group
  EXPECT_TRUE(state.Connected(2, 3, 150.0));   // both in the complement
  EXPECT_FALSE(state.Connected(0, 2, 150.0));  // across the split
  EXPECT_FALSE(state.Connected(3, 1, 150.0));
  EXPECT_TRUE(state.Connected(0, 2, 200.0));  // window is half-open
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithCap) {
  RetryPolicy policy;  // 20ms, x2, cap 160ms
  EXPECT_DOUBLE_EQ(RetryDelayMs(policy, 0), 20.0);
  EXPECT_DOUBLE_EQ(RetryDelayMs(policy, 1), 40.0);
  EXPECT_DOUBLE_EQ(RetryDelayMs(policy, 2), 80.0);
  EXPECT_DOUBLE_EQ(RetryDelayMs(policy, 3), 160.0);
  EXPECT_DOUBLE_EQ(RetryDelayMs(policy, 9), 160.0);  // capped
  EXPECT_EQ(MaxAttempts(policy), 4);

  policy.enabled = false;
  EXPECT_EQ(MaxAttempts(policy), 1);
  policy.enabled = true;
  policy.max_attempts = 0;
  EXPECT_EQ(MaxAttempts(policy), 1);  // floor
}

// Satellite regression: HopMs must stay finite when the configured bandwidth
// is zero or negative instead of dividing by zero.
TEST(LinkModelTest, HopMsClampsNonPositiveBandwidth) {
  sim::LinkModel link;
  link.bandwidth_bytes_per_ms = 0.0;
  EXPECT_TRUE(std::isfinite(link.HopMs(1024.0)));
  link.bandwidth_bytes_per_ms = -5.0;
  EXPECT_TRUE(std::isfinite(link.HopMs(1024.0)));
  EXPECT_GE(link.HopMs(0.0), link.hop_overhead_ms);
  // Sane configurations are untouched.
  link.bandwidth_bytes_per_ms = 125.0;
  EXPECT_DOUBLE_EQ(link.HopMs(125.0), link.hop_overhead_ms + 1.0);
}

TEST(ReliableTransportTest, RecordsExactlyOneHopPerMessage) {
  sim::NetworkStats stats;
  ReliableTransport transport(&stats);
  const Message message{MessageType::kQueryFlood, 0, 1, 100,
                        sim::TrafficClass::kQuery};
  const HopResult result = transport.SendHop(message);
  EXPECT_TRUE(result.delivered);
  EXPECT_GT(result.latency_ms, 0.0);
  EXPECT_EQ(stats.hops(sim::TrafficClass::kQuery), 1u);
  EXPECT_EQ(stats.bytes(sim::TrafficClass::kQuery), 100u);
  EXPECT_EQ(transport.counters().messages_sent, 1u);
  EXPECT_EQ(transport.counters().retries, 0u);
  EXPECT_EQ(transport.counters().dead_letters, 0u);
  EXPECT_TRUE(transport.reliable());
  EXPECT_TRUE(transport.peer_up(12345));
}

NetOptions LossyOptions(double loss, bool retries_enabled = true) {
  NetOptions options;
  options.unreliable = true;
  options.faults.loss_rate = loss;
  options.retry.enabled = retries_enabled;
  return options;
}

struct SendOutcome {
  int delivered = 0;
  double total_latency = 0.0;
  TransportCounters counters;
};

SendOutcome SendMany(const NetOptions& options, int count, int num_peers = 4) {
  sim::Simulator sim;
  sim::NetworkStats stats;
  FaultState state(num_peers, options.faults);
  UnreliableTransport transport(&sim, &stats, &state, options);
  SendOutcome outcome;
  for (int i = 0; i < count; ++i) {
    const HopResult r = transport.SendHop(
        {MessageType::kRoute, i % num_peers, (i + 1) % num_peers, 64,
         sim::TrafficClass::kQuery});
    outcome.delivered += r.delivered ? 1 : 0;
    outcome.total_latency += r.latency_ms;
  }
  outcome.counters = transport.counters();
  return outcome;
}

TEST(UnreliableTransportTest, SeededRunsAreDeterministic) {
  const NetOptions options = LossyOptions(0.3);
  const SendOutcome a = SendMany(options, 500);
  const SendOutcome b = SendMany(options, 500);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.total_latency, b.total_latency);
  EXPECT_EQ(a.counters.messages_sent, b.counters.messages_sent);
  EXPECT_EQ(a.counters.retries, b.counters.retries);
  EXPECT_EQ(a.counters.dead_letters, b.counters.dead_letters);
  EXPECT_EQ(a.counters.dropped_loss, b.counters.dropped_loss);

  NetOptions reseeded = options;
  reseeded.seed ^= 0xdecafbad;
  const SendOutcome c = SendMany(reseeded, 500);
  EXPECT_NE(a.counters.dropped_loss, c.counters.dropped_loss);
}

TEST(UnreliableTransportTest, RetriesMaskLossAtACost) {
  const SendOutcome with_retries = SendMany(LossyOptions(0.2), 1000);
  // 4 attempts vs 20% loss: effective failure ~0.2^4 = 0.16%.
  EXPECT_GE(with_retries.delivered, 985);
  EXPECT_GT(with_retries.counters.retries, 0u);
  // Retransmissions cost real traffic beyond one send per message.
  EXPECT_GT(with_retries.counters.messages_sent, 1000u);

  const SendOutcome no_retries =
      SendMany(LossyOptions(0.2, /*retries_enabled=*/false), 1000);
  EXPECT_EQ(no_retries.counters.retries, 0u);
  // Single-attempt delivery tracks the raw loss rate.
  EXPECT_LT(no_retries.delivered, 900);
  EXPECT_GT(no_retries.delivered, 700);
  EXPECT_LT(no_retries.delivered, with_retries.delivered);
  EXPECT_EQ(no_retries.counters.dead_letters,
            static_cast<uint64_t>(1000 - no_retries.delivered));
}

TEST(UnreliableTransportTest, LossFreePlanDeliversEverything) {
  const SendOutcome outcome = SendMany(LossyOptions(0.0), 200);
  EXPECT_EQ(outcome.delivered, 200);
  EXPECT_EQ(outcome.counters.dead_letters, 0u);
  EXPECT_EQ(outcome.counters.retries, 0u);
  EXPECT_EQ(outcome.counters.messages_sent, 200u);
}

TEST(UnreliableTransportTest, DownPeersAndPartitionsBlockDelivery) {
  NetOptions options;
  options.unreliable = true;
  sim::Simulator sim;
  sim::NetworkStats stats;
  FaultState state(4, options.faults);
  UnreliableTransport transport(&sim, &stats, &state, options);

  state.SetUp(1, false);
  const HopResult to_down = transport.SendHop(
      {MessageType::kRoute, 0, 1, 64, sim::TrafficClass::kQuery});
  EXPECT_FALSE(to_down.delivered);
  EXPECT_GT(transport.counters().dropped_down, 0u);
  EXPECT_FALSE(transport.peer_up(1));
  state.SetUp(1, true);

  NetOptions split = options;
  split.faults.partitions.push_back(Partition{0.0, 1000.0, {0}});
  FaultState split_state(4, split.faults);
  UnreliableTransport split_transport(&sim, &stats, &split_state, split);
  const HopResult across = split_transport.SendHop(
      {MessageType::kRoute, 0, 2, 64, sim::TrafficClass::kQuery});
  EXPECT_FALSE(across.delivered);
  EXPECT_GT(split_transport.counters().dropped_partition, 0u);
  const HopResult inside = split_transport.SendHop(
      {MessageType::kRoute, 2, 3, 64, sim::TrafficClass::kQuery});
  EXPECT_TRUE(inside.delivered);
}

TEST(UnreliableTransportTest, DuplicatesChargeTrafficWithoutNewDeliveries) {
  NetOptions options;
  options.unreliable = true;
  options.faults.duplicate_rate = 1.0;  // every delivery arrives twice
  const SendOutcome outcome = SendMany(options, 100);
  EXPECT_EQ(outcome.delivered, 100);
  EXPECT_EQ(outcome.counters.duplicates, 100u);
  EXPECT_EQ(outcome.counters.messages_sent, 200u);
}

TEST(UnreliableTransportTest, FailedAttemptsChargeEnergyAndLatency) {
  NetOptions options;
  options.unreliable = true;
  options.faults.loss_rate = 1.0;  // nothing ever arrives
  sim::Simulator sim;
  sim::NetworkStats stats;
  FaultState state(2, options.faults);
  UnreliableTransport transport(&sim, &stats, &state, options);
  const HopResult r = transport.SendHop(
      {MessageType::kInsert, 0, 1, 256, sim::TrafficClass::kInsert});
  EXPECT_FALSE(r.delivered);
  // Every physical attempt burnt radio traffic...
  EXPECT_EQ(stats.hops(sim::TrafficClass::kInsert),
            static_cast<uint64_t>(MaxAttempts(options.retry)));
  // ...and the sender waited out every ack timeout: 20+40+80+160.
  EXPECT_DOUBLE_EQ(r.latency_ms, 300.0);
  EXPECT_EQ(transport.counters().dead_letters, 1u);
}

}  // namespace
}  // namespace hyperm::net
