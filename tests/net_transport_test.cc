// Unit tests of the unreliable-transport subsystem: fault plans, retry
// policy arithmetic, transport delivery semantics and their determinism.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault_plan.h"
#include "net/retry.h"
#include "net/transport.h"
#include "sim/dissemination.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace hyperm::net {
namespace {

TEST(FaultPlanTest, ValidatesProbabilitiesAndSchedules) {
  FaultPlan plan;
  EXPECT_TRUE(plan.Validate(4).ok());

  plan.loss_rate = 1.5;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.loss_rate = 0.2;
  plan.duplicate_rate = -0.1;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.duplicate_rate = 0.0;
  plan.jitter_ms = -1.0;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.jitter_ms = 0.0;

  plan.peer_events.push_back(PeerEvent{100.0, 7, false});
  EXPECT_FALSE(plan.Validate(4).ok());  // peer 7 of 4
  plan.peer_events.back().peer = 3;
  EXPECT_TRUE(plan.Validate(4).ok());

  plan.partitions.push_back(Partition{200.0, 100.0, {0, 1}});
  EXPECT_FALSE(plan.Validate(4).ok());  // end before start
  plan.partitions.back().end_ms = 300.0;
  EXPECT_TRUE(plan.Validate(4).ok());
}

// Satellite edge cases: schedules that are legal but easy to mis-handle.
TEST(FaultPlanTest, AcceptsOverlappingPartitionWindows) {
  FaultPlan plan;
  plan.partitions.push_back(Partition{100.0, 300.0, {0, 1}});
  plan.partitions.push_back(Partition{200.0, 400.0, {2}});  // overlaps in time
  ASSERT_TRUE(plan.Validate(4).ok());
  FaultState state(4, plan);
  // In the overlap both windows apply simultaneously: 0-2 crosses the second
  // split, 0-1 sit together in the first group, and 1-3 crosses the first.
  EXPECT_FALSE(state.Connected(0, 2, 250.0));
  EXPECT_TRUE(state.Connected(0, 1, 250.0));
  EXPECT_FALSE(state.Connected(1, 3, 250.0));
  // After the first window closes only the second still blocks.
  EXPECT_TRUE(state.Connected(1, 3, 350.0));
  EXPECT_FALSE(state.Connected(2, 3, 350.0));
}

TEST(FaultPlanTest, AcceptsOutOfOrderAndDuplicatePeerEvents) {
  FaultPlan plan;
  // Events need not be sorted by time, and the same peer may transition
  // repeatedly — even twice at the same instant (last write wins when the
  // simulator applies them in scheduling order).
  plan.peer_events.push_back(PeerEvent{300.0, 1, true});
  plan.peer_events.push_back(PeerEvent{100.0, 1, false});
  plan.peer_events.push_back(PeerEvent{100.0, 1, false});
  EXPECT_TRUE(plan.Validate(4).ok());
  plan.peer_events.push_back(PeerEvent{-1.0, 1, false});
  EXPECT_FALSE(plan.Validate(4).ok());  // negative times stay rejected
}

TEST(FaultPlanTest, ZeroLengthPartitionWindowNeverBlocks) {
  FaultPlan plan;
  plan.partitions.push_back(Partition{100.0, 100.0, {0}});  // empty [100,100)
  ASSERT_TRUE(plan.Validate(4).ok());
  FaultState state(4, plan);
  EXPECT_TRUE(state.Connected(0, 1, 99.0));
  EXPECT_TRUE(state.Connected(0, 1, 100.0));  // half-open: instant window is empty
  EXPECT_TRUE(state.Connected(0, 1, 101.0));
}

TEST(FaultStateTest, TracksAvailabilityAndPartitions) {
  FaultPlan plan;
  plan.partitions.push_back(Partition{100.0, 200.0, {0, 1}});
  FaultState state(4, plan);

  for (int p = 0; p < 4; ++p) EXPECT_TRUE(state.up(p));
  EXPECT_FALSE(state.up(-1));
  EXPECT_FALSE(state.up(4));
  state.SetUp(2, false);
  EXPECT_FALSE(state.up(2));
  state.SetUp(2, true);
  EXPECT_TRUE(state.up(2));

  // Outside the window everyone talks; inside, only within a group.
  EXPECT_TRUE(state.Connected(0, 2, 50.0));
  EXPECT_TRUE(state.Connected(0, 1, 150.0));   // both in the group
  EXPECT_TRUE(state.Connected(2, 3, 150.0));   // both in the complement
  EXPECT_FALSE(state.Connected(0, 2, 150.0));  // across the split
  EXPECT_FALSE(state.Connected(3, 1, 150.0));
  EXPECT_TRUE(state.Connected(0, 2, 200.0));  // window is half-open
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithCap) {
  RetryPolicy policy;  // 20ms, x2, cap 160ms
  EXPECT_DOUBLE_EQ(RetryDelayMs(policy, 0), 20.0);
  EXPECT_DOUBLE_EQ(RetryDelayMs(policy, 1), 40.0);
  EXPECT_DOUBLE_EQ(RetryDelayMs(policy, 2), 80.0);
  EXPECT_DOUBLE_EQ(RetryDelayMs(policy, 3), 160.0);
  EXPECT_DOUBLE_EQ(RetryDelayMs(policy, 9), 160.0);  // capped
  EXPECT_EQ(MaxAttempts(policy), 4);

  policy.enabled = false;
  EXPECT_EQ(MaxAttempts(policy), 1);
  policy.enabled = true;
  policy.max_attempts = 0;
  EXPECT_EQ(MaxAttempts(policy), 1);  // floor
}

// Satellite regression: HopMs must stay finite when the configured bandwidth
// is zero or negative instead of dividing by zero.
TEST(LinkModelTest, HopMsClampsNonPositiveBandwidth) {
  sim::LinkModel link;
  link.bandwidth_bytes_per_ms = 0.0;
  EXPECT_TRUE(std::isfinite(link.HopMs(1024.0)));
  link.bandwidth_bytes_per_ms = -5.0;
  EXPECT_TRUE(std::isfinite(link.HopMs(1024.0)));
  EXPECT_GE(link.HopMs(0.0), link.hop_overhead_ms);
  // Sane configurations are untouched.
  link.bandwidth_bytes_per_ms = 125.0;
  EXPECT_DOUBLE_EQ(link.HopMs(125.0), link.hop_overhead_ms + 1.0);
}

TEST(ReliableTransportTest, RecordsExactlyOneHopPerMessage) {
  sim::NetworkStats stats;
  ReliableTransport transport(&stats);
  const Message message{MessageType::kQueryFlood, 0, 1, 100,
                        sim::TrafficClass::kQuery};
  const HopResult result = transport.SendHop(message);
  EXPECT_TRUE(result.delivered);
  EXPECT_GT(result.latency_ms, 0.0);
  EXPECT_EQ(stats.hops(sim::TrafficClass::kQuery), 1u);
  EXPECT_EQ(stats.bytes(sim::TrafficClass::kQuery), 100u);
  EXPECT_EQ(transport.counters().messages_sent, 1u);
  EXPECT_EQ(transport.counters().retries, 0u);
  EXPECT_EQ(transport.counters().dead_letters, 0u);
  EXPECT_TRUE(transport.reliable());
  EXPECT_TRUE(transport.peer_up(12345));
}

NetOptions LossyOptions(double loss, bool retries_enabled = true) {
  NetOptions options;
  options.unreliable = true;
  options.faults.loss_rate = loss;
  options.retry.enabled = retries_enabled;
  return options;
}

struct SendOutcome {
  int delivered = 0;
  double total_latency = 0.0;
  TransportCounters counters;
};

SendOutcome SendMany(const NetOptions& options, int count, int num_peers = 4) {
  sim::Simulator sim;
  sim::NetworkStats stats;
  FaultState state(num_peers, options.faults);
  UnreliableTransport transport(&sim, &stats, &state, options);
  SendOutcome outcome;
  for (int i = 0; i < count; ++i) {
    const HopResult r = transport.SendHop(
        {MessageType::kRoute, i % num_peers, (i + 1) % num_peers, 64,
         sim::TrafficClass::kQuery});
    outcome.delivered += r.delivered ? 1 : 0;
    outcome.total_latency += r.latency_ms;
  }
  outcome.counters = transport.counters();
  return outcome;
}

TEST(UnreliableTransportTest, SeededRunsAreDeterministic) {
  const NetOptions options = LossyOptions(0.3);
  const SendOutcome a = SendMany(options, 500);
  const SendOutcome b = SendMany(options, 500);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.total_latency, b.total_latency);
  EXPECT_EQ(a.counters.messages_sent, b.counters.messages_sent);
  EXPECT_EQ(a.counters.retries, b.counters.retries);
  EXPECT_EQ(a.counters.dead_letters, b.counters.dead_letters);
  EXPECT_EQ(a.counters.dropped_loss, b.counters.dropped_loss);

  NetOptions reseeded = options;
  reseeded.seed ^= 0xdecafbad;
  const SendOutcome c = SendMany(reseeded, 500);
  EXPECT_NE(a.counters.dropped_loss, c.counters.dropped_loss);
}

TEST(UnreliableTransportTest, RetriesMaskLossAtACost) {
  const SendOutcome with_retries = SendMany(LossyOptions(0.2), 1000);
  // 4 attempts vs 20% loss: effective failure ~0.2^4 = 0.16%.
  EXPECT_GE(with_retries.delivered, 985);
  EXPECT_GT(with_retries.counters.retries, 0u);
  // Retransmissions cost real traffic beyond one send per message.
  EXPECT_GT(with_retries.counters.messages_sent, 1000u);

  const SendOutcome no_retries =
      SendMany(LossyOptions(0.2, /*retries_enabled=*/false), 1000);
  EXPECT_EQ(no_retries.counters.retries, 0u);
  // Single-attempt delivery tracks the raw loss rate.
  EXPECT_LT(no_retries.delivered, 900);
  EXPECT_GT(no_retries.delivered, 700);
  EXPECT_LT(no_retries.delivered, with_retries.delivered);
  EXPECT_EQ(no_retries.counters.dead_letters,
            static_cast<uint64_t>(1000 - no_retries.delivered));
}

TEST(UnreliableTransportTest, LossFreePlanDeliversEverything) {
  const SendOutcome outcome = SendMany(LossyOptions(0.0), 200);
  EXPECT_EQ(outcome.delivered, 200);
  EXPECT_EQ(outcome.counters.dead_letters, 0u);
  EXPECT_EQ(outcome.counters.retries, 0u);
  EXPECT_EQ(outcome.counters.messages_sent, 200u);
}

TEST(UnreliableTransportTest, DownPeersAndPartitionsBlockDelivery) {
  NetOptions options;
  options.unreliable = true;
  sim::Simulator sim;
  sim::NetworkStats stats;
  FaultState state(4, options.faults);
  UnreliableTransport transport(&sim, &stats, &state, options);

  state.SetUp(1, false);
  const HopResult to_down = transport.SendHop(
      {MessageType::kRoute, 0, 1, 64, sim::TrafficClass::kQuery});
  EXPECT_FALSE(to_down.delivered);
  EXPECT_GT(transport.counters().dropped_down, 0u);
  EXPECT_FALSE(transport.peer_up(1));
  state.SetUp(1, true);

  NetOptions split = options;
  split.faults.partitions.push_back(Partition{0.0, 1000.0, {0}});
  FaultState split_state(4, split.faults);
  UnreliableTransport split_transport(&sim, &stats, &split_state, split);
  const HopResult across = split_transport.SendHop(
      {MessageType::kRoute, 0, 2, 64, sim::TrafficClass::kQuery});
  EXPECT_FALSE(across.delivered);
  EXPECT_GT(split_transport.counters().dropped_partition, 0u);
  const HopResult inside = split_transport.SendHop(
      {MessageType::kRoute, 2, 3, 64, sim::TrafficClass::kQuery});
  EXPECT_TRUE(inside.delivered);
}

TEST(UnreliableTransportTest, DuplicatesChargeTrafficWithoutNewDeliveries) {
  NetOptions options;
  options.unreliable = true;
  options.faults.duplicate_rate = 1.0;  // every delivery arrives twice
  const SendOutcome outcome = SendMany(options, 100);
  EXPECT_EQ(outcome.delivered, 100);
  EXPECT_EQ(outcome.counters.duplicates, 100u);
  EXPECT_EQ(outcome.counters.messages_sent, 200u);
}

TEST(UnreliableTransportTest, FailedAttemptsChargeEnergyAndLatency) {
  NetOptions options;
  options.unreliable = true;
  options.faults.loss_rate = 1.0;  // nothing ever arrives
  sim::Simulator sim;
  sim::NetworkStats stats;
  FaultState state(2, options.faults);
  UnreliableTransport transport(&sim, &stats, &state, options);
  const HopResult r = transport.SendHop(
      {MessageType::kInsert, 0, 1, 256, sim::TrafficClass::kInsert});
  EXPECT_FALSE(r.delivered);
  // Every physical attempt burnt radio traffic...
  EXPECT_EQ(stats.hops(sim::TrafficClass::kInsert),
            static_cast<uint64_t>(MaxAttempts(options.retry)));
  // ...and the sender waited out every ack timeout: 20+40+80+160.
  EXPECT_DOUBLE_EQ(r.latency_ms, 300.0);
  EXPECT_EQ(transport.counters().dead_letters, 1u);
}

// --- Adaptive ARQ (Jacobson RTT estimation) --------------------------------

TEST(RttEstimatorTest, ConvergesOnFixedSyntheticTrace) {
  RetryPolicy policy;
  policy.adaptive = true;
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  // Before any sample the static timeout seeds the estimate.
  EXPECT_DOUBLE_EQ(est.TimeoutMs(policy), policy.timeout_ms);

  est.Observe(80.0, policy);  // first sample: srtt = rtt, rttvar = rtt/2
  EXPECT_TRUE(est.has_sample());
  EXPECT_DOUBLE_EQ(est.srtt_ms(), 80.0);
  EXPECT_DOUBLE_EQ(est.rttvar_ms(), 40.0);
  EXPECT_DOUBLE_EQ(est.TimeoutMs(policy), 80.0 + 4.0 * 40.0);

  // A constant 10 ms trace pulls srtt to 10 and rttvar toward zero, so the
  // timeout converges to ~srtt instead of staying at the inflated start.
  for (int i = 0; i < 200; ++i) est.Observe(10.0, policy);
  EXPECT_NEAR(est.srtt_ms(), 10.0, 0.01);
  EXPECT_NEAR(est.rttvar_ms(), 0.0, 0.01);
  EXPECT_LT(est.TimeoutMs(policy), 11.0);
  EXPECT_GE(est.TimeoutMs(policy), policy.min_timeout_ms);
}

TEST(RttEstimatorTest, TimeoutNeverBelowConfiguredFloor) {
  RetryPolicy policy;
  policy.adaptive = true;
  policy.min_timeout_ms = 7.5;
  RttEstimator est;
  for (int i = 0; i < 50; ++i) est.Observe(0.25, policy);  // near-zero RTTs
  EXPECT_GE(est.TimeoutMs(policy), 7.5);
  for (int attempt = 0; attempt < 6; ++attempt) {
    EXPECT_GE(AdaptiveRetryDelayMs(policy, est, attempt), 7.5);
  }
  // The backoff/cap schedule still applies above the floor.
  RttEstimator wide;
  wide.Observe(30.0, policy);  // timeout base 30 + 4*15 = 90
  EXPECT_DOUBLE_EQ(AdaptiveRetryDelayMs(policy, wide, 0), 90.0);
  EXPECT_DOUBLE_EQ(AdaptiveRetryDelayMs(policy, wide, 1), policy.max_timeout_ms);
}

TEST(UnreliableTransportTest, StaticPolicyBitIdenticalWhenAdaptiveFieldsSet) {
  // With adaptive == false the new knobs must be completely inert: a run
  // with exotic adaptive parameters matches the default-policy run exactly.
  const NetOptions plain = LossyOptions(0.25);
  NetOptions tweaked = plain;
  tweaked.retry.adaptive = false;
  tweaked.retry.rtt_gain = 0.9;
  tweaked.retry.rttvar_gain = 0.9;
  tweaked.retry.rttvar_mult = 17.0;
  tweaked.retry.min_timeout_ms = 123.0;
  const SendOutcome a = SendMany(plain, 600);
  const SendOutcome b = SendMany(tweaked, 600);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.total_latency, b.total_latency);
  EXPECT_EQ(a.counters.messages_sent, b.counters.messages_sent);
  EXPECT_EQ(a.counters.retries, b.counters.retries);
  EXPECT_EQ(a.counters.dead_letters, b.counters.dead_letters);
}

TEST(UnreliableTransportTest, AdaptiveModeTrainsPerDestinationEstimators) {
  NetOptions options;
  options.unreliable = true;
  options.retry.adaptive = true;
  sim::Simulator sim;
  sim::NetworkStats stats;
  FaultState state(4, options.faults);
  UnreliableTransport transport(&sim, &stats, &state, options);
  // Loss-free deliveries: every exchange feeds its destination's estimator.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        transport
            .SendHop({MessageType::kRoute, 0, 1, 64, sim::TrafficClass::kQuery})
            .delivered);
  }
  const RttEstimator* trained = transport.rtt_estimator(1);
  ASSERT_NE(trained, nullptr);
  EXPECT_TRUE(trained->has_sample());
  // Jitter-free link: every sample equals HopMs(64), so srtt locks onto it.
  EXPECT_DOUBLE_EQ(trained->srtt_ms(), options.link.HopMs(64.0));
  const RttEstimator* untouched = transport.rtt_estimator(2);
  ASSERT_NE(untouched, nullptr);
  EXPECT_FALSE(untouched->has_sample());
  EXPECT_EQ(transport.rtt_estimator(99), nullptr);
}

TEST(UnreliableTransportTest, AdaptiveTimeoutsDriveFailedAttemptLatency) {
  NetOptions options;
  options.unreliable = true;
  options.faults.loss_rate = 1.0;  // nothing arrives: all waits are timeouts
  options.retry.adaptive = true;
  sim::Simulator sim;
  sim::NetworkStats stats;
  FaultState state(2, options.faults);
  UnreliableTransport transport(&sim, &stats, &state, options);
  const HopResult r = transport.SendHop(
      {MessageType::kInsert, 0, 1, 256, sim::TrafficClass::kInsert});
  EXPECT_FALSE(r.delivered);
  // No samples could be observed, so the waits follow the untrained
  // schedule — computable exactly from the public delay function.
  double expected = 0.0;
  const RttEstimator untrained;
  for (int attempt = 0; attempt < MaxAttempts(options.retry); ++attempt) {
    expected += AdaptiveRetryDelayMs(options.retry, untrained, attempt);
  }
  EXPECT_DOUBLE_EQ(r.latency_ms, expected);
}

}  // namespace
}  // namespace hyperm::net
