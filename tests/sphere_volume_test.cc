#include "geom/sphere_volume.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vec/vector.h"

namespace hyperm::geom {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(BallVolumeTest, KnownLowDimensions) {
  EXPECT_NEAR(BallVolume(1, 1.0), 2.0, 1e-10);                 // interval
  EXPECT_NEAR(BallVolume(2, 1.0), kPi, 1e-10);                 // disk
  EXPECT_NEAR(BallVolume(3, 1.0), 4.0 / 3.0 * kPi, 1e-10);     // ball
  EXPECT_NEAR(BallVolume(4, 1.0), kPi * kPi / 2.0, 1e-10);
}

TEST(BallVolumeTest, ScalesWithRadiusPower) {
  for (int d : {1, 2, 3, 7, 16}) {
    EXPECT_NEAR(BallVolume(d, 2.0) / BallVolume(d, 1.0), std::pow(2.0, d), 1e-6);
  }
}

TEST(BallVolumeTest, ZeroRadius) { EXPECT_EQ(BallVolume(5, 0.0), 0.0); }

TEST(CapFractionTest, Boundaries) {
  for (int d : {1, 2, 3, 8, 63, 64}) {
    EXPECT_EQ(CapVolumeFraction(d, 0.0), 0.0);
    EXPECT_NEAR(CapVolumeFraction(d, kPi), 1.0, 1e-12);
    EXPECT_NEAR(CapVolumeFraction(d, kPi / 2.0), 0.5, 1e-10);
  }
}

TEST(CapFractionTest, ObtuseSymmetry) {
  for (int d : {2, 3, 9}) {
    for (double alpha : {0.3, 0.9, 1.4}) {
      EXPECT_NEAR(CapVolumeFraction(d, alpha) + CapVolumeFraction(d, kPi - alpha), 1.0,
                  1e-10);
    }
  }
}

TEST(CapFractionTest, DimensionOneClosedForm) {
  // In 1-D the "ball" is [-1,1] and the cap fraction is (1 - cos a) / 2.
  for (double alpha : {0.2, 0.7, 1.2, 2.0, 3.0}) {
    EXPECT_NEAR(CapVolumeFraction(1, alpha), (1.0 - std::cos(alpha)) / 2.0, 1e-10);
  }
}

TEST(CapFractionTest, DimensionTwoClosedForm) {
  // Circular segment of a unit disk: (alpha - sin a cos a) / pi.
  for (double alpha : {0.2, 0.7, 1.2}) {
    EXPECT_NEAR(CapVolumeFraction(2, alpha),
                (alpha - std::sin(alpha) * std::cos(alpha)) / kPi, 1e-10);
  }
}

TEST(CapFractionTest, DimensionThreeClosedForm) {
  // Spherical cap height h = 1 - cos a: V = pi h^2 (3 - h)/3 over (4/3)pi.
  for (double alpha : {0.2, 0.7, 1.2}) {
    const double h = 1.0 - std::cos(alpha);
    EXPECT_NEAR(CapVolumeFraction(3, alpha), h * h * (3.0 - h) / 4.0, 1e-10);
  }
}

TEST(CapFractionTest, MonotoneInAlpha) {
  for (int d : {1, 2, 5, 32}) {
    double prev = -1.0;
    for (double alpha = 0.0; alpha <= kPi + 1e-9; alpha += 0.05) {
      const double v = CapVolumeFraction(d, alpha);
      EXPECT_GE(v, prev - 1e-12);
      prev = v;
    }
  }
}

// The paper's Eq. 5 even-d series must agree with the incomplete-beta form.
class EvenSeriesEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EvenSeriesEquivalence, MatchesBetaForm) {
  const int d = GetParam();
  for (double alpha = 0.0; alpha <= kPi + 1e-9; alpha += kPi / 37.0) {
    EXPECT_NEAR(CapVolumeFractionEvenSeries(d, alpha), CapVolumeFraction(d, alpha), 1e-9)
        << "d=" << d << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(EvenDims, EvenSeriesEquivalence,
                         ::testing::Values(2, 4, 6, 8, 16, 32, 64));

// The sine-power recurrence (the paper's omitted odd-d form, valid for both
// parities) must agree with the incomplete-beta closed form everywhere.
class SineRecurrenceEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SineRecurrenceEquivalence, MatchesBetaForm) {
  const int d = GetParam();
  for (double alpha = 0.0; alpha <= kPi + 1e-9; alpha += kPi / 41.0) {
    EXPECT_NEAR(CapVolumeFractionSineRecurrence(d, alpha), CapVolumeFraction(d, alpha),
                1e-9)
        << "d=" << d << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(AllParities, SineRecurrenceEquivalence,
                         ::testing::Values(1, 2, 3, 5, 7, 9, 15, 16, 33));

TEST(IntersectionFractionTest, DisjointIsZero) {
  EXPECT_EQ(SphereIntersectionFraction(3, 1.0, 1.0, 2.5), 0.0);
  EXPECT_EQ(SphereIntersectionFraction(3, 1.0, 1.0, 2.0), 0.0);  // tangent
}

TEST(IntersectionFractionTest, DataInsideQueryIsOne) {
  EXPECT_EQ(SphereIntersectionFraction(3, 1.0, 5.0, 1.0), 1.0);
  EXPECT_EQ(SphereIntersectionFraction(3, 1.0, 2.0, 1.0), 1.0);  // internally tangent
}

TEST(IntersectionFractionTest, QueryInsideDataIsVolumeRatio) {
  for (int d : {1, 2, 3, 8}) {
    EXPECT_NEAR(SphereIntersectionFraction(d, 2.0, 1.0, 0.3), std::pow(0.5, d), 1e-10);
  }
}

TEST(IntersectionFractionTest, ConcentricEqualSpheres) {
  // b=0, eps=r: query covers the data sphere entirely.
  EXPECT_NEAR(SphereIntersectionFraction(4, 1.0, 1.0, 0.0), 1.0, 1e-12);
}

TEST(IntersectionFractionTest, HalfOverlapSymmetricCase) {
  // Equal spheres at center distance b: the covered fraction of either is
  // 2 * cap(alpha) with cos(alpha) = b / (2r). For d=1: 1 - b/(2r).
  for (double b : {0.4, 1.0, 1.6}) {
    EXPECT_NEAR(SphereIntersectionFraction(1, 1.0, 1.0, b), 1.0 - b / 2.0, 1e-10);
  }
}

TEST(IntersectionFractionTest, MonotoneInQueryRadius) {
  for (int d : {1, 2, 4, 16}) {
    double prev = -1.0;
    for (double eps = 0.0; eps <= 4.0; eps += 0.05) {
      const double f = SphereIntersectionFraction(d, 1.0, eps, 1.5);
      EXPECT_GE(f, prev - 1e-12) << "d=" << d << " eps=" << eps;
      prev = f;
    }
    EXPECT_NEAR(prev, 1.0, 1e-12);  // eventually fully covered
  }
}

TEST(IntersectionFractionTest, MonotoneDecreasingInDistance) {
  for (int d : {2, 8}) {
    double prev = 2.0;
    for (double b = 0.0; b <= 3.0; b += 0.05) {
      const double f = SphereIntersectionFraction(d, 1.0, 1.5, b);
      EXPECT_LE(f, prev + 1e-12);
      prev = f;
    }
  }
}

// Monte Carlo cross-validation of the closed form in low dimensions.
class IntersectionMonteCarlo
    : public ::testing::TestWithParam<std::tuple<int, double, double, double>> {};

TEST_P(IntersectionMonteCarlo, AgreesWithSampling) {
  const auto [d, r, eps, b] = GetParam();
  Rng rng(1234);
  const int samples = 200000;
  int inside = 0;
  for (int s = 0; s < samples; ++s) {
    // Uniform point in the radius-r ball at the origin.
    Vector point(static_cast<size_t>(d));
    for (double& v : point) v = rng.Gaussian();
    const double norm = vec::Norm(point);
    const double radius = r * std::pow(rng.NextDouble(), 1.0 / d);
    double dist_sq = 0.0;
    for (size_t i = 0; i < point.size(); ++i) {
      point[i] = point[i] / norm * radius;
      const double diff = i == 0 ? point[i] - b : point[i];  // query center at (b,0,..)
      dist_sq += diff * diff;
    }
    if (dist_sq <= eps * eps) ++inside;
  }
  const double expected = SphereIntersectionFraction(d, r, eps, b);
  EXPECT_NEAR(static_cast<double>(inside) / samples, expected, 0.005)
      << "d=" << d << " r=" << r << " eps=" << eps << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IntersectionMonteCarlo,
    ::testing::Values(std::make_tuple(1, 1.0, 0.8, 1.2),
                      std::make_tuple(2, 1.0, 1.0, 1.0),
                      std::make_tuple(2, 1.0, 0.5, 1.2),
                      std::make_tuple(3, 1.0, 1.5, 1.8),
                      std::make_tuple(4, 2.0, 1.0, 2.2),
                      std::make_tuple(5, 1.0, 1.0, 0.7)));

}  // namespace
}  // namespace hyperm::geom
