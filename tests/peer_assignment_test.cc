#include "data/peer_assignment.h"

#include <set>

#include <gtest/gtest.h>

#include "data/markov_generator.h"

namespace hyperm::data {
namespace {

Dataset SmallDataset(uint64_t seed = 1) {
  Rng rng(seed);
  MarkovOptions options;
  options.count = 1000;
  options.dim = 32;
  options.num_families = 8;
  Result<Dataset> ds = GenerateMarkov(options, rng);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(AssignByInterestTest, RejectsBadOptions) {
  Rng rng(1);
  const Dataset ds = SmallDataset();
  AssignmentOptions bad;
  bad.num_peers = 0;
  EXPECT_FALSE(AssignByInterest(ds, bad, rng).ok());
  bad = AssignmentOptions{};
  bad.max_peers_per_class = 2;
  bad.min_peers_per_class = 5;
  EXPECT_FALSE(AssignByInterest(ds, bad, rng).ok());
  EXPECT_FALSE(AssignByInterest(Dataset{}, AssignmentOptions{}, rng).ok());
}

TEST(AssignByInterestTest, PartitionsEveryItemExactlyOnce) {
  Rng rng(2);
  const Dataset ds = SmallDataset();
  AssignmentOptions options;
  options.num_peers = 20;
  options.num_interest_classes = 10;
  Result<PeerAssignment> a = AssignByInterest(ds, options, rng);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->size(), 20u);
  std::set<int> seen;
  size_t total = 0;
  for (const auto& items : *a) {
    total += items.size();
    for (int id : items) {
      EXPECT_TRUE(seen.insert(id).second) << "item assigned twice: " << id;
      EXPECT_GE(id, 0);
      EXPECT_LT(static_cast<size_t>(id), ds.size());
    }
  }
  EXPECT_EQ(total, ds.size());
}

TEST(AssignByInterestTest, NoPeerLeftEmpty) {
  Rng rng(3);
  const Dataset ds = SmallDataset();
  AssignmentOptions options;
  options.num_peers = 50;
  options.num_interest_classes = 12;
  Result<PeerAssignment> a = AssignByInterest(ds, options, rng);
  ASSERT_TRUE(a.ok());
  for (const auto& items : *a) EXPECT_FALSE(items.empty());
}

TEST(AssignByInterestTest, ClassSpreadIsBounded) {
  Rng rng(4);
  const Dataset ds = SmallDataset();
  AssignmentOptions options;
  options.num_peers = 100;
  options.num_interest_classes = 10;
  Result<PeerAssignment> a = AssignByInterest(ds, options, rng);
  ASSERT_TRUE(a.ok());
  // Peers hold items of a limited number of interest classes: since each
  // class spreads over <= 10 peers and there are 10 classes, at most 100
  // class-peer pairs exist; the empty-peer top-up can add one extra class
  // per peer. On average a peer should see very few classes.
  // (A statistical proxy: on average a peer sees a strict subset of the 8
  // generator families, since interest classes spread over <= 10 of the 100
  // peers each.)
  double total_distinct_labels = 0.0;
  for (const auto& items : *a) {
    std::set<int> labels;
    for (int id : items) labels.insert(ds.labels[static_cast<size_t>(id)]);
    total_distinct_labels += static_cast<double>(labels.size());
  }
  EXPECT_LT(total_distinct_labels / static_cast<double>(a->size()), 6.0);
}

TEST(AssignUniformTest, CoversAllItems) {
  Rng rng(5);
  const Dataset ds = SmallDataset();
  Result<PeerAssignment> a = AssignUniform(ds, 10, rng);
  ASSERT_TRUE(a.ok());
  size_t total = 0;
  for (const auto& items : *a) total += items.size();
  EXPECT_EQ(total, ds.size());
}

TEST(SelectSkewedSubsetTest, KeepsOnlySelectedClasses) {
  Rng rng(6);
  const Dataset ds = SmallDataset();
  Result<std::vector<int>> kept = SelectSkewedSubset(ds, 3, 10, rng);
  ASSERT_TRUE(kept.ok());
  EXPECT_GT(kept->size(), 0u);
  EXPECT_LT(kept->size(), ds.size());
}

TEST(SelectSkewedSubsetTest, MoreClassesKeepMoreItems) {
  const Dataset ds = SmallDataset();
  Rng a(7), b(7);
  Result<std::vector<int>> two = SelectSkewedSubset(ds, 2, 10, a);
  Result<std::vector<int>> five = SelectSkewedSubset(ds, 5, 10, b);
  ASSERT_TRUE(two.ok() && five.ok());
  EXPECT_LT(two->size(), five->size());
}

TEST(SelectSkewedSubsetTest, RejectsBadArguments) {
  Rng rng(8);
  const Dataset ds = SmallDataset();
  EXPECT_FALSE(SelectSkewedSubset(ds, 0, 10, rng).ok());
  EXPECT_FALSE(SelectSkewedSubset(ds, 11, 10, rng).ok());
}

}  // namespace
}  // namespace hyperm::data
