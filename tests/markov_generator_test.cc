#include "data/markov_generator.h"

#include <set>

#include <gtest/gtest.h>

namespace hyperm::data {
namespace {

TEST(MarkovGeneratorTest, RejectsBadOptions) {
  Rng rng(1);
  MarkovOptions bad;
  bad.count = 0;
  EXPECT_FALSE(GenerateMarkov(bad, rng).ok());
  bad = MarkovOptions{};
  bad.dim = 0;
  EXPECT_FALSE(GenerateMarkov(bad, rng).ok());
  bad = MarkovOptions{};
  bad.num_families = 0;
  EXPECT_FALSE(GenerateMarkov(bad, rng).ok());
}

TEST(MarkovGeneratorTest, ShapeMatchesOptions) {
  Rng rng(2);
  MarkovOptions options;
  options.count = 500;
  options.dim = 64;
  options.num_families = 10;
  Result<Dataset> ds = GenerateMarkov(options, rng);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 500u);
  EXPECT_EQ(ds->dim(), 64u);
  ASSERT_TRUE(ds->has_labels());
  for (int label : ds->labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(MarkovGeneratorTest, UsesMultipleFamilies) {
  Rng rng(3);
  MarkovOptions options;
  options.count = 200;
  options.dim = 16;
  options.num_families = 8;
  Result<Dataset> ds = GenerateMarkov(options, rng);
  ASSERT_TRUE(ds.ok());
  std::set<int> families(ds->labels.begin(), ds->labels.end());
  EXPECT_GT(families.size(), 4u);
}

TEST(MarkovGeneratorTest, DeterministicGivenSeed) {
  MarkovOptions options;
  options.count = 50;
  options.dim = 32;
  Rng a(9), b(9);
  Result<Dataset> da = GenerateMarkov(options, a);
  Result<Dataset> db = GenerateMarkov(options, b);
  ASSERT_TRUE(da.ok() && db.ok());
  EXPECT_EQ(da->items, db->items);
  EXPECT_EQ(da->labels, db->labels);
}

TEST(MarkovGeneratorTest, TracesAreBoundedWalks) {
  Rng rng(4);
  MarkovOptions options;
  options.count = 100;
  options.dim = 512;
  Result<Dataset> ds = GenerateMarkov(options, rng);
  ASSERT_TRUE(ds.ok());
  // A 512-step walk with max step 0.1 stays within start ± 51.2 strictly.
  for (const Vector& trace : ds->items) {
    for (double v : trace) {
      EXPECT_GT(v, -52.0);
      EXPECT_LT(v, 53.0);
    }
  }
}

TEST(MarkovGeneratorTest, ConsecutiveValuesMoveByAtMostMaxStep) {
  Rng rng(5);
  MarkovOptions options;
  options.count = 20;
  options.dim = 128;
  Result<Dataset> ds = GenerateMarkov(options, rng);
  ASSERT_TRUE(ds.ok());
  for (const Vector& trace : ds->items) {
    for (size_t i = 1; i < trace.size(); ++i) {
      EXPECT_LE(std::abs(trace[i] - trace[i - 1]), 0.1 + 1e-12);
    }
  }
}

TEST(MarkovGeneratorTest, SameFamilyTracesAreMoreSimilar) {
  Rng rng(6);
  MarkovOptions options;
  options.count = 400;
  options.dim = 64;
  options.num_families = 4;
  Result<Dataset> ds = GenerateMarkov(options, rng);
  ASSERT_TRUE(ds.ok());
  double intra = 0.0, inter = 0.0;
  int intra_n = 0, inter_n = 0;
  for (size_t i = 0; i < ds->size(); i += 7) {
    for (size_t j = i + 1; j < ds->size(); j += 7) {
      const double d = vec::Distance(ds->items[i], ds->items[j]);
      if (ds->labels[i] == ds->labels[j]) {
        intra += d;
        ++intra_n;
      } else {
        inter += d;
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0);
  ASSERT_GT(inter_n, 0);
  EXPECT_LT(intra / intra_n, inter / inter_n);
}

}  // namespace
}  // namespace hyperm::data
