#include "manet/topology.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace hyperm::manet {
namespace {

TopologyOptions DenseOptions(int nodes = 40) {
  TopologyOptions options;
  options.num_nodes = nodes;
  options.field_size_m = 150.0;
  options.radio_range_m = 50.0;
  return options;
}

TEST(ManetTopologyTest, RejectsBadOptions) {
  Rng rng(1);
  TopologyOptions bad = DenseOptions();
  bad.num_nodes = 0;
  EXPECT_FALSE(ManetTopology::Generate(bad, rng).ok());
  bad = DenseOptions();
  bad.radio_range_m = 0.0;
  EXPECT_FALSE(ManetTopology::Generate(bad, rng).ok());
}

TEST(ManetTopologyTest, FailsWhenRangeTooSmall) {
  Rng rng(2);
  TopologyOptions sparse;
  sparse.num_nodes = 30;
  sparse.field_size_m = 10000.0;
  sparse.radio_range_m = 5.0;  // essentially no links
  sparse.max_placement_attempts = 5;
  Result<ManetTopology> t = ManetTopology::Generate(sparse, rng);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ManetTopologyTest, GeneratedGraphIsConnectedAndInField) {
  Rng rng(3);
  Result<ManetTopology> t = ManetTopology::Generate(DenseOptions(), rng);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(t->connected());
  EXPECT_EQ(t->num_nodes(), 40);
  for (int i = 0; i < t->num_nodes(); ++i) {
    const Vector& p = t->position(i);
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], 150.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LE(p[1], 150.0);
  }
}

TEST(ManetTopologyTest, NeighborsAreWithinRangeAndSymmetric) {
  Rng rng(4);
  Result<ManetTopology> t = ManetTopology::Generate(DenseOptions(), rng);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < t->num_nodes(); ++i) {
    for (int j : t->neighbors(i)) {
      EXPECT_LE(vec::Distance(t->position(i), t->position(j)), 50.0 + 1e-9);
      const auto& back = t->neighbors(j);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(ManetTopologyTest, PathHopsBasics) {
  Rng rng(5);
  Result<ManetTopology> t = ManetTopology::Generate(DenseOptions(), rng);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->PathHops(0, 0), 0);
  // Adjacent nodes are one hop apart.
  const int neighbor = t->neighbors(0).front();
  EXPECT_EQ(t->PathHops(0, neighbor), 1);
  // Triangle inequality on hop counts.
  for (int j = 1; j < 10; ++j) {
    for (int k = 1; k < 10; ++k) {
      EXPECT_LE(t->PathHops(0, k), t->PathHops(0, j) + t->PathHops(j, k));
    }
  }
  // Symmetry.
  EXPECT_EQ(t->PathHops(3, 7), t->PathHops(7, 3));
}

TEST(ManetTopologyTest, MeanPairwiseHopsIsAtLeastOne) {
  Rng rng(6);
  Result<ManetTopology> t = ManetTopology::Generate(DenseOptions(), rng);
  ASSERT_TRUE(t.ok());
  EXPECT_GE(t->MeanPairwiseHops(), 1.0);
  // A 150 m field with 50 m range cannot need more than ~6 hops on average.
  EXPECT_LT(t->MeanPairwiseHops(), 8.0);
}

TEST(ManetTopologyTest, MeanLinkDistanceWithinRange) {
  Rng rng(7);
  Result<ManetTopology> t = ManetTopology::Generate(DenseOptions(), rng);
  ASSERT_TRUE(t.ok());
  const double mean = t->MeanLinkDistanceM();
  EXPECT_GT(mean, 0.0);
  EXPECT_LE(mean, 50.0);
}

TEST(ManetTopologyTest, SingleNodeDegenerate) {
  Rng rng(8);
  TopologyOptions one = DenseOptions(1);
  Result<ManetTopology> t = ManetTopology::Generate(one, rng);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->connected());
  EXPECT_EQ(t->MeanPairwiseHops(), 0.0);
  EXPECT_EQ(t->MeanLinkDistanceM(), 0.0);
}

TEST(ManetTopologyTest, RandomWaypointStepMovesNodesBounded) {
  Rng rng(9);
  Result<ManetTopology> t = ManetTopology::Generate(DenseOptions(), rng);
  ASSERT_TRUE(t.ok());
  std::vector<Vector> before;
  for (int i = 0; i < t->num_nodes(); ++i) before.push_back(t->position(i));
  t->RandomWaypointStep(3.0, rng);
  int moved = 0;
  for (int i = 0; i < t->num_nodes(); ++i) {
    const double d = vec::Distance(before[static_cast<size_t>(i)], t->position(i));
    EXPECT_LE(d, 3.0 + 1e-9);
    if (d > 0.0) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(ManetTopologyTest, MobilityKeepsPositionsInBoundsOverTime) {
  Rng rng(10);
  Result<ManetTopology> t = ManetTopology::Generate(DenseOptions(), rng);
  ASSERT_TRUE(t.ok());
  for (int step = 0; step < 100; ++step) t->RandomWaypointStep(5.0, rng);
  for (int i = 0; i < t->num_nodes(); ++i) {
    const Vector& p = t->position(i);
    EXPECT_GE(p[0], -1e-9);
    EXPECT_LE(p[0], 150.0 + 1e-9);
    EXPECT_GE(p[1], -1e-9);
    EXPECT_LE(p[1], 150.0 + 1e-9);
  }
}

// Two tight clusters far outside radio range of each other: a deterministic
// disconnected layout (impossible via Generate, which demands connectivity).
Result<ManetTopology> TwoIslands() {
  TopologyOptions options;
  options.field_size_m = 1000.0;
  options.radio_range_m = 50.0;
  return ManetTopology::FromPositions(
      options, {{10.0, 10.0}, {40.0, 10.0}, {70.0, 10.0},     // island A: 0-1-2
                {910.0, 910.0}, {940.0, 910.0}});             // island B: 3-4
}

TEST(ManetTopologyTest, FromPositionsValidatesInput) {
  TopologyOptions options;
  options.field_size_m = 100.0;
  options.radio_range_m = 30.0;
  EXPECT_FALSE(ManetTopology::FromPositions(options, {}).ok());
  EXPECT_FALSE(ManetTopology::FromPositions(options, {{1.0, 2.0, 3.0}}).ok());
  EXPECT_FALSE(ManetTopology::FromPositions(options, {{50.0, 150.0}}).ok());
  EXPECT_FALSE(ManetTopology::FromPositions(options, {{-1.0, 50.0}}).ok());
  Result<ManetTopology> ok = ManetTopology::FromPositions(options, {{50.0, 50.0}});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->num_nodes(), 1);
}

// Satellite regression: PathHops on a split graph used to Fatal; it must now
// report the kUnreachableHops sentinel and leave every aggregate finite.
TEST(ManetTopologyTest, PathHopsReportsUnreachableAcrossIslands) {
  Result<ManetTopology> t = TwoIslands();
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_FALSE(t->connected());
  EXPECT_EQ(t->PathHops(0, 2), 2);                  // within island A
  EXPECT_EQ(t->PathHops(3, 4), 1);                  // within island B
  EXPECT_EQ(t->PathHops(0, 3), kUnreachableHops);   // across islands
  EXPECT_EQ(t->PathHops(4, 2), kUnreachableHops);
  EXPECT_TRUE(t->ShortestPath(0, 4).empty());
  // Mean pairwise hops averages reachable pairs only: A contributes
  // (1+1+2)*2 hops over 6 ordered pairs, B contributes 2 over 2.
  EXPECT_DOUBLE_EQ(t->MeanPairwiseHops(), 10.0 / 8.0);
}

TEST(ManetTopologyTest, ShortestPathEndpointsHopsAndAdjacency) {
  Rng rng(12);
  Result<ManetTopology> t = ManetTopology::Generate(DenseOptions(), rng);
  ASSERT_TRUE(t.ok());
  for (int to = 1; to < 12; ++to) {
    const std::vector<int> path = t->ShortestPath(0, to);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), to);
    EXPECT_EQ(static_cast<int>(path.size()), t->PathHops(0, to) + 1);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const auto& nbrs = t->neighbors(path[i]);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), path[i + 1]), nbrs.end());
    }
  }
  EXPECT_EQ(t->ShortestPath(5, 5), std::vector<int>{5});
}

TEST(ManetTopologyTest, MobilityCanSplitAndStillReportsFinitely) {
  Result<ManetTopology> t = TwoIslands();
  ASSERT_TRUE(t.ok());
  // Mobility over a split graph keeps working: nodes drift toward fresh
  // waypoints and every metric stays finite whether or not the graph heals.
  Rng rng(13);
  for (int step = 0; step < 50; ++step) {
    t->RandomWaypointStep(25.0, rng);
    const double mean = t->MeanPairwiseHops();
    EXPECT_GE(mean, 0.0);
    EXPECT_LT(mean, 1000.0);
  }
}

TEST(ManetTopologyTest, DeterministicGivenSeed) {
  Result<ManetTopology> a = [&] {
    Rng rng(11);
    return ManetTopology::Generate(DenseOptions(), rng);
  }();
  Result<ManetTopology> b = [&] {
    Rng rng(11);
    return ManetTopology::Generate(DenseOptions(), rng);
  }();
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < a->num_nodes(); ++i) {
    EXPECT_EQ(a->position(i), b->position(i));
  }
}

}  // namespace
}  // namespace hyperm::manet
