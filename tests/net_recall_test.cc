// Recall under packet loss — the transport subsystem's acceptance bar:
// a Hyper-M deployment over a 20%-lossy MANET with link-layer retries must
// retain >= 95% of the fault-free recall, and disabling retries must
// measurably degrade it (showing the loss model has teeth and the ARQ layer
// is what restores effectiveness).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"

namespace hyperm::core {
namespace {

struct Bed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<HyperMNetwork> network;
};

Bed MakeBed(const HyperMOptions& options) {
  // Same seed + data for every transport configuration: the only difference
  // between beds is the fault model.
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = 600;
  data_options.dim = 64;
  data_options.num_families = 8;
  Result<data::Dataset> ds = data::GenerateMarkov(data_options, rng);
  EXPECT_TRUE(ds.ok());
  Bed bed;
  bed.dataset = std::move(ds).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = 16;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed.dataset, assign_options, rng);
  EXPECT_TRUE(assignment.ok());
  bed.assignment = std::move(assignment).value();
  Result<std::unique_ptr<HyperMNetwork>> net =
      HyperMNetwork::Build(bed.dataset, bed.assignment, options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  bed.network = std::move(net).value();
  return bed;
}

struct RecallOutcome {
  double mean_recall = 0.0;
  double total_latency_ms = 0.0;
  int layers_lost = 0;
};

// Mean range-query recall against the centralized exact oracle over a fixed
// deterministic query workload.
RecallOutcome MeasureRecall(Bed& bed, int num_queries = 24,
                            double epsilon = 0.8) {
  FlatIndex oracle(bed.dataset);
  std::vector<PrecisionRecall> results;
  RecallOutcome outcome;
  for (int q = 0; q < num_queries; ++q) {
    const Vector& center =
        bed.dataset.items[static_cast<size_t>(q * 17 % 600)];
    RangeQueryInfo info;
    Result<std::vector<ItemId>> retrieved =
        bed.network->RangeQuery(center, epsilon, /*querying_peer=*/q % 16,
                                /*max_peers_contacted=*/-1, &info);
    EXPECT_TRUE(retrieved.ok()) << retrieved.status().ToString();
    results.push_back(Evaluate(retrieved.value(), oracle.RangeSearch(center, epsilon)));
    outcome.total_latency_ms += info.latency_ms;
    outcome.layers_lost += info.layers_lost;
  }
  outcome.mean_recall = Summarize(results).mean_recall;
  return outcome;
}

HyperMOptions LossyOptions(double loss, bool retries_enabled) {
  HyperMOptions options;
  options.net.unreliable = true;
  options.net.faults.loss_rate = loss;
  options.net.retry.enabled = retries_enabled;
  return options;
}

TEST(NetRecallTest, RetriesHoldRecallUnderTwentyPercentLoss) {
  Bed fault_free = MakeBed(HyperMOptions{});
  const RecallOutcome baseline = MeasureRecall(fault_free);
  EXPECT_GT(baseline.mean_recall, 0.9);  // the fault-free system works
  EXPECT_EQ(baseline.layers_lost, 0);

  Bed lossy = MakeBed(LossyOptions(0.2, /*retries_enabled=*/true));
  const RecallOutcome with_retries = MeasureRecall(lossy);
  // The acceptance bar: loss <= 20% with ARQ keeps >= 95% of fault-free recall.
  EXPECT_GE(with_retries.mean_recall, 0.95 * baseline.mean_recall)
      << "fault-free " << baseline.mean_recall << " vs lossy "
      << with_retries.mean_recall;
  // Holding recall is not free: the transport had to retransmit.
  EXPECT_GT(lossy.network->transport().counters().retries, 0u);
  EXPECT_GT(with_retries.total_latency_ms, 0.0);
}

TEST(NetRecallTest, DisablingRetriesMeasurablyDegradesRecall) {
  Bed with_retries_bed = MakeBed(LossyOptions(0.2, /*retries_enabled=*/true));
  const RecallOutcome with_retries = MeasureRecall(with_retries_bed);

  Bed no_retries_bed = MakeBed(LossyOptions(0.2, /*retries_enabled=*/false));
  const RecallOutcome no_retries = MeasureRecall(no_retries_bed);

  // Single-attempt delivery over multi-hop routes: publications and lookups
  // vanish, so recall visibly drops — not a rounding-error amount.
  EXPECT_LT(no_retries.mean_recall, with_retries.mean_recall - 0.05)
      << "with retries " << with_retries.mean_recall << " vs without "
      << no_retries.mean_recall;
  EXPECT_GT(no_retries.layers_lost + static_cast<int>(
                no_retries_bed.network->soft_state().retrieves_lost +
                no_retries_bed.network->soft_state().inserts_lost),
            0);
  EXPECT_GT(no_retries_bed.network->transport().counters().dead_letters, 0u);
  EXPECT_EQ(no_retries_bed.network->transport().counters().retries, 0u);
}

TEST(NetRecallTest, SeededFaultRunsAreReproducible) {
  Bed a = MakeBed(LossyOptions(0.15, /*retries_enabled=*/true));
  const RecallOutcome ra = MeasureRecall(a);
  Bed b = MakeBed(LossyOptions(0.15, /*retries_enabled=*/true));
  const RecallOutcome rb = MeasureRecall(b);
  EXPECT_EQ(ra.mean_recall, rb.mean_recall);
  EXPECT_EQ(ra.total_latency_ms, rb.total_latency_ms);
  EXPECT_EQ(ra.layers_lost, rb.layers_lost);
  EXPECT_EQ(a.network->transport().counters().messages_sent,
            b.network->transport().counters().messages_sent);
  EXPECT_EQ(a.network->transport().counters().dropped_loss,
            b.network->transport().counters().dropped_loss);
  EXPECT_EQ(a.network->transport().counters().retries,
            b.network->transport().counters().retries);
}

}  // namespace
}  // namespace hyperm::core
