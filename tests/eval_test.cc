#include "hyperm/eval.h"

#include <gtest/gtest.h>

namespace hyperm::core {
namespace {

TEST(EvaluateTest, PerfectRetrieval) {
  const PrecisionRecall pr = Evaluate({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(EvaluateTest, PartialRetrieval) {
  const PrecisionRecall pr = Evaluate({1, 2, 9, 8}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
}

TEST(EvaluateTest, SupersetRetrievalTradesPrecision) {
  const PrecisionRecall pr = Evaluate({1, 2, 3, 4, 5, 6}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(EvaluateTest, EmptyRetrieved) {
  // No false positives => precision 1 by convention (the paper's "precision
  // is constantly 100%" for range queries relies on this).
  const PrecisionRecall pr = Evaluate({}, {1});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
}

TEST(EvaluateTest, EmptyRelevant) {
  const PrecisionRecall pr = Evaluate({1, 2}, {});
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
}

TEST(EvaluateTest, BothEmpty) {
  const PrecisionRecall pr = Evaluate({}, {});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(EvaluateTest, DuplicatesIgnored) {
  const PrecisionRecall pr = Evaluate({1, 1, 1, 2}, {1, 2});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(SummarizeTest, AggregatesMeanMinMax) {
  std::vector<PrecisionRecall> results{
      {1.0, 0.5},
      {0.5, 1.0},
  };
  const EffectivenessSummary s = Summarize(results);
  EXPECT_EQ(s.queries, 2);
  EXPECT_DOUBLE_EQ(s.mean_precision, 0.75);
  EXPECT_DOUBLE_EQ(s.mean_recall, 0.75);
  EXPECT_DOUBLE_EQ(s.min_recall, 0.5);
  EXPECT_DOUBLE_EQ(s.max_recall, 1.0);
  EXPECT_DOUBLE_EQ(s.min_precision, 0.5);
  EXPECT_DOUBLE_EQ(s.max_precision, 1.0);
}

}  // namespace
}  // namespace hyperm::core
