#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace hyperm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkStatusFactory) {
  EXPECT_TRUE(OkStatus().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, OkCodeDropsMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << NotFoundError("peer 7");
  EXPECT_EQ(os.str(), "NotFound: peer 7");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

Status Caller(int x) {
  HM_RETURN_IF_ERROR(FailIfNegative(x));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hyperm
