// Partition-tolerant query planning: queries issued from a peer that a
// scripted partition has isolated must fail soft (deferred levels, empty
// results, no crash) without re-issue, and recover the fault-free answer
// when a heal window + re-issue budget let the deferred levels re-probe
// after the partition closes.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"

namespace hyperm::core {
namespace {

constexpr int kNumPeers = 16;
constexpr int kNumItems = 400;

// The partition window: peer 0 is cut off from everyone during [1s, 2s).
// Build runs at t=0, safely before it, so publication is unaffected.
constexpr double kSplitStartMs = 1000.0;
constexpr double kSplitEndMs = 2000.0;

struct Bed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
  std::unique_ptr<HyperMNetwork> network;
};

Bed MakeBed(const HyperMOptions& options) {
  // Same seed + data for every configuration: the only difference between
  // beds is the fault model and the query plan.
  Rng rng(4242);
  data::MarkovOptions data_options;
  data_options.count = kNumItems;
  data_options.dim = 32;
  data_options.num_families = 8;
  Result<data::Dataset> ds = data::GenerateMarkov(data_options, rng);
  EXPECT_TRUE(ds.ok());
  Bed bed;
  bed.dataset = std::move(ds).value();
  data::AssignmentOptions assign_options;
  assign_options.num_peers = kNumPeers;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(bed.dataset, assign_options, rng);
  EXPECT_TRUE(assignment.ok());
  bed.assignment = std::move(assignment).value();
  Result<std::unique_ptr<HyperMNetwork>> net =
      HyperMNetwork::Build(bed.dataset, bed.assignment, options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  bed.network = std::move(net).value();
  return bed;
}

HyperMOptions BaseOptions() {
  HyperMOptions options;
  options.num_layers = 3;
  options.clusters_per_peer = 6;
  options.net.unreliable = true;
  // FaultPlan defaults: loss_rate 0, no jitter — only the partition bites.
  return options;
}

HyperMOptions PartitionedOptions() {
  HyperMOptions options = BaseOptions();
  net::Partition split;
  split.start_ms = kSplitStartMs;
  split.end_ms = kSplitEndMs;
  split.group = {0};
  options.net.faults.partitions.push_back(split);
  return options;
}

TEST(QueryPartitionTest, IsolatedPeerFailsSoftWithoutReissue) {
  Bed bed = MakeBed(PartitionedOptions());
  bed.network->AdvanceTo(kSplitStartMs + 200.0);

  bool all_levels_deferred_seen = false;
  for (int q = 0; q < 10; ++q) {
    const Vector& center = bed.dataset.items[static_cast<size_t>(q * 31 % kNumItems)];
    RangeQueryInfo info;
    Result<std::vector<ItemId>> retrieved = bed.network->RangeQuery(
        center, /*epsilon=*/0.8, /*querying_peer=*/0,
        /*max_peers_contacted=*/-1, &info);
    ASSERT_TRUE(retrieved.ok()) << retrieved.status().ToString();
    ASSERT_EQ(info.level_outcomes.size(),
              static_cast<size_t>(bed.network->num_layers()));
    EXPECT_EQ(info.reissues, 0);  // no budget configured
    int deferred = 0;
    for (LevelDelivery d : info.level_outcomes) {
      // A full partition never looks like random loss.
      EXPECT_NE(d, LevelDelivery::kLost) << LevelDeliveryName(d);
      if (d == LevelDelivery::kDeferred) ++deferred;
    }
    EXPECT_EQ(deferred, info.layers_deferred);
    EXPECT_EQ(deferred, info.layers_lost);
    if (deferred == bed.network->num_layers()) {
      // Every level died crossing the partition: min-score aggregation has
      // nothing to merge and the query must come back empty, not crash.
      all_levels_deferred_seen = true;
      EXPECT_EQ(info.candidate_peers, 0);
      EXPECT_TRUE(retrieved.value().empty());
    }
  }
  EXPECT_TRUE(all_levels_deferred_seen)
      << "no query lost every level; partition scripting is not biting";
}

TEST(QueryPartitionTest, DeferredLevelsMergeAfterHeal) {
  // Three beds, same seeds: fault-free oracle, partitioned without re-issue,
  // partitioned with a heal window that crosses the partition's end.
  Bed fault_free = MakeBed(BaseOptions());
  Bed dropping = MakeBed(PartitionedOptions());
  HyperMOptions healing_options = PartitionedOptions();
  healing_options.plan.reissue_budget = 2;
  healing_options.plan.heal_window_ms = 400.0;
  Bed healing = MakeBed(healing_options);

  const double query_time = kSplitStartMs + 200.0;  // mid-partition
  fault_free.network->AdvanceTo(query_time);
  dropping.network->AdvanceTo(query_time);
  healing.network->AdvanceTo(query_time);

  const Vector& center = fault_free.dataset.items[3];
  const double epsilon = 0.8;

  RangeQueryInfo free_info;
  Result<std::vector<ItemId>> free_items = fault_free.network->RangeQuery(
      center, epsilon, /*querying_peer=*/0, -1, &free_info);
  ASSERT_TRUE(free_items.ok());
  ASSERT_FALSE(free_items.value().empty());
  EXPECT_EQ(free_info.layers_lost, 0);

  RangeQueryInfo dropping_info;
  Result<std::vector<ItemId>> dropped_items = dropping.network->RangeQuery(
      center, epsilon, /*querying_peer=*/0, -1, &dropping_info);
  ASSERT_TRUE(dropped_items.ok());
  EXPECT_GT(dropping_info.layers_lost, 0);
  EXPECT_LT(dropped_items.value().size(), free_items.value().size());

  RangeQueryInfo healing_info;
  Result<std::vector<ItemId>> healed_items = healing.network->RangeQuery(
      center, epsilon, /*querying_peer=*/0, -1, &healing_info);
  ASSERT_TRUE(healed_items.ok());
  // Two 400 ms rounds from t=1200 reach t=2000 — the partition's end — so
  // every deferred level re-probes successfully and merges into the
  // aggregation: the answer is the fault-free one.
  EXPECT_GT(healing_info.reissues, 0);
  EXPECT_GT(healing_info.layers_deferred, 0);
  EXPECT_EQ(healing_info.layers_lost, 0);
  EXPECT_EQ(healed_items.value(), free_items.value());
  // The recovered levels paid for their heal waits in simulated latency.
  EXPECT_GT(healing_info.latency_ms, free_info.latency_ms);
  EXPECT_GE(healing.network->now(), kSplitEndMs);
}

TEST(QueryPartitionTest, KnnHealsToTheFaultFreeAnswer) {
  Bed fault_free = MakeBed(BaseOptions());
  Bed dropping = MakeBed(PartitionedOptions());
  HyperMOptions healing_options = PartitionedOptions();
  healing_options.plan.reissue_budget = 2;
  healing_options.plan.heal_window_ms = 400.0;
  Bed healing = MakeBed(healing_options);

  const double query_time = kSplitStartMs + 200.0;
  fault_free.network->AdvanceTo(query_time);
  dropping.network->AdvanceTo(query_time);
  healing.network->AdvanceTo(query_time);

  const Vector& center = fault_free.dataset.items[7];
  const KnnOptions knn;
  const int k = 10;

  KnnQueryInfo free_info;
  Result<std::vector<ItemId>> free_items = fault_free.network->KnnQuery(
      center, k, knn, /*querying_peer=*/0, &free_info);
  ASSERT_TRUE(free_items.ok());
  ASSERT_GE(static_cast<int>(free_items.value().size()), k);

  // Without re-issue the isolated querier must not crash — the kSum fallback
  // and empty-merge paths absorb fully-deferred probes.
  KnnQueryInfo dropping_info;
  Result<std::vector<ItemId>> dropped_items = dropping.network->KnnQuery(
      center, k, knn, /*querying_peer=*/0, &dropping_info);
  ASSERT_TRUE(dropped_items.ok()) << dropped_items.status().ToString();
  EXPECT_GT(dropping_info.range.layers_lost, 0);
  EXPECT_LT(dropped_items.value().size(), free_items.value().size());

  KnnQueryInfo healing_info;
  Result<std::vector<ItemId>> healed_items = healing.network->KnnQuery(
      center, k, knn, /*querying_peer=*/0, &healing_info);
  ASSERT_TRUE(healed_items.ok());
  EXPECT_GT(healing_info.range.reissues, 0);
  EXPECT_EQ(healing_info.range.layers_lost, 0);
  EXPECT_EQ(healed_items.value(), free_items.value());
}

}  // namespace
}  // namespace hyperm::core
