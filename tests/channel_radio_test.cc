// Unit tests of the radio-channel subsystem: option validation, queued
// transmission costing, neighbourhood contention, island reachability,
// mobility stepping and determinism.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "channel/mobility.h"
#include "channel/radio_channel.h"
#include "net/transport.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace hyperm::channel {
namespace {

ChannelOptions SmallField() {
  ChannelOptions options;
  options.enabled = true;
  options.field.field_size_m = 150.0;
  options.field.radio_range_m = 60.0;
  options.speed_m_per_s = 0.0;  // static unless a test says otherwise
  return options;
}

net::Message QueryMsg(int src, int dst, uint64_t bytes = 100) {
  return {net::MessageType::kQueryFlood, src, dst, bytes,
          sim::TrafficClass::kQuery};
}

TEST(ChannelOptionsTest, ValidatesKnobs) {
  EXPECT_TRUE(SmallField().Validate().ok());
  ChannelOptions bad = SmallField();
  bad.tick_ms = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallField();
  bad.speed_m_per_s = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallField();
  bad.bandwidth_bytes_per_ms = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallField();
  bad.tx_overhead_ms = -0.1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallField();
  bad.contention_per_busy_neighbor = -0.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallField();
  bad.field.radio_range_m = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(RadioChannelTest, CreateStartsConnectedAndSizedToPeers) {
  sim::NetworkStats stats;
  auto channel = RadioChannel::Create(20, SmallField(), &stats);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  EXPECT_EQ((*channel)->num_nodes(), 20);
  EXPECT_TRUE((*channel)->connected());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE((*channel)->Reachable(0, i));
  }
  EXPECT_FALSE((*channel)->Reachable(-1, 0));
  EXPECT_FALSE((*channel)->Reachable(0, 20));
  EXPECT_FALSE(RadioChannel::Create(0, SmallField(), &stats).ok());
}

TEST(RadioChannelTest, TransmitChargesOneRecordedHopPerRadioHop) {
  sim::NetworkStats stats;
  auto channel = RadioChannel::Create(20, SmallField(), &stats);
  ASSERT_TRUE(channel.ok());
  // Find a genuinely multi-hop pair so the path structure matters.
  int dst = -1;
  for (int j = 1; j < 20 && dst < 0; ++j) {
    if ((*channel)->topology().PathHops(0, j) >= 2) dst = j;
  }
  ASSERT_GE(dst, 0) << "field too dense for a multi-hop pair";
  const int hops = (*channel)->topology().PathHops(0, dst);
  const net::ChannelTransmission tx = (*channel)->Transmit(QueryMsg(0, dst), 0.0);
  EXPECT_TRUE(tx.reachable);
  EXPECT_EQ(tx.radio_hops, hops);
  EXPECT_GT(tx.latency_ms, 0.0);
  EXPECT_EQ(stats.hops(sim::TrafficClass::kQuery), static_cast<uint64_t>(hops));
  EXPECT_EQ(stats.bytes(sim::TrafficClass::kQuery), 100u * hops);
  EXPECT_EQ((*channel)->counters().radio_transmissions,
            static_cast<uint64_t>(hops));
  // Self-sends are local and free.
  const net::ChannelTransmission self = (*channel)->Transmit(QueryMsg(3, 3), 0.0);
  EXPECT_TRUE(self.reachable);
  EXPECT_EQ(self.radio_hops, 0);
  EXPECT_EQ(self.latency_ms, 0.0);
}

TEST(RadioChannelTest, BackToBackSendsQueueAndLatencyGrows) {
  sim::NetworkStats stats;
  ChannelOptions options = SmallField();
  options.contention_per_busy_neighbor = 0.0;  // isolate pure queueing
  auto channel = RadioChannel::Create(12, options, &stats);
  ASSERT_TRUE(channel.ok());
  const int dst = (*channel)->topology().neighbors(0).front();
  // Same instant, same message, repeated: each copy waits behind the
  // previous one in node 0's transmit queue, so latency grows linearly.
  double previous = -1.0;
  for (int i = 0; i < 6; ++i) {
    const net::ChannelTransmission tx = (*channel)->Transmit(QueryMsg(0, dst), 0.0);
    EXPECT_GT(tx.latency_ms, previous);
    previous = tx.latency_ms;
  }
  EXPECT_EQ((*channel)->counters().queued_transmissions, 5u);
  EXPECT_GT((*channel)->counters().queue_wait_ms, 0.0);
  EXPECT_GT((*channel)->DrainedAtMs(), 0.0);
  // Once past the drain point, a fresh send sees an idle queue again.
  const sim::TimeMs later = (*channel)->DrainedAtMs();
  const net::ChannelTransmission fresh = (*channel)->Transmit(QueryMsg(0, dst), later);
  const double serialise =
      options.tx_overhead_ms + 100.0 / options.bandwidth_bytes_per_ms;
  EXPECT_DOUBLE_EQ(fresh.latency_ms, serialise);
}

TEST(RadioChannelTest, BusyNeighborsStretchTransmissions) {
  ChannelOptions contended = SmallField();
  contended.contention_per_busy_neighbor = 0.5;
  ChannelOptions free_air = SmallField();
  free_air.contention_per_busy_neighbor = 0.0;
  sim::NetworkStats stats_a, stats_b;
  auto a = RadioChannel::Create(12, contended, &stats_a);
  auto b = RadioChannel::Create(12, free_air, &stats_b);
  ASSERT_TRUE(a.ok() && b.ok());
  // Same seed, same placement: identical topologies. Keep a neighbour of
  // node 0 busy, then transmit from node 0 in both channels.
  const int nbr = (*a)->topology().neighbors(0).front();
  const int nbr_dst = (*a)->topology().neighbors(nbr).front();
  (void)(*a)->Transmit(QueryMsg(nbr, nbr_dst, 4000), 0.0);
  (void)(*b)->Transmit(QueryMsg(nbr, nbr_dst, 4000), 0.0);
  const int dst = (*a)->topology().neighbors(0).front();
  const double with_contention = (*a)->Transmit(QueryMsg(0, dst), 0.0).latency_ms;
  const double without = (*b)->Transmit(QueryMsg(0, dst), 0.0).latency_ms;
  EXPECT_GT(with_contention, without);
}

TEST(RadioChannelTest, MobilityStepsSplitIslandsAndFlagUnreachable) {
  sim::NetworkStats stats;
  ChannelOptions options = SmallField();
  options.field.field_size_m = 260.0;
  options.field.radio_range_m = 60.0;  // sparse: mobility will split it
  options.field.max_placement_attempts = 5000;  // connected starts are rare here
  options.speed_m_per_s = 30.0;
  options.tick_ms = 1000.0;  // 30 m per step
  auto channel = RadioChannel::Create(10, options, &stats);
  ASSERT_TRUE(channel.ok());
  int first_split = -1;
  for (int step = 0; step < 300 && first_split < 0; ++step) {
    (*channel)->Step();
    if (!(*channel)->connected()) first_split = step;
  }
  ASSERT_GE(first_split, 0) << "mobility never split the sparse field";
  EXPECT_GT((*channel)->counters().mobility_steps, 0u);
  EXPECT_GT((*channel)->counters().disconnected_steps, 0u);
  // Find a cross-island pair and confirm the transmission is flagged — but
  // still charged: the source radio burnt one local send.
  int src = -1, dst = -1;
  for (int i = 0; i < 10 && src < 0; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (!(*channel)->Reachable(i, j)) {
        src = i;
        dst = j;
        break;
      }
    }
  }
  ASSERT_GE(src, 0);
  const uint64_t hops_before = stats.hops(sim::TrafficClass::kQuery);
  const net::ChannelTransmission tx = (*channel)->Transmit(QueryMsg(src, dst), 0.0);
  EXPECT_FALSE(tx.reachable);
  EXPECT_EQ(tx.radio_hops, 1);
  EXPECT_GT(tx.latency_ms, 0.0);
  EXPECT_EQ(stats.hops(sim::TrafficClass::kQuery), hops_before + 1);
  EXPECT_GT((*channel)->counters().unreachable_transmissions, 0u);
}

TEST(RadioChannelTest, DeterministicGivenSeedAcrossInstances) {
  ChannelOptions options = SmallField();
  options.speed_m_per_s = 5.0;
  sim::NetworkStats stats_a, stats_b;
  auto a = RadioChannel::Create(16, options, &stats_a);
  auto b = RadioChannel::Create(16, options, &stats_b);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int step = 0; step < 20; ++step) {
    (*a)->Step();
    (*b)->Step();
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ((*a)->topology().position(i), (*b)->topology().position(i));
  }
  const net::ChannelTransmission ta = (*a)->Transmit(QueryMsg(0, 7), 0.0);
  const net::ChannelTransmission tb = (*b)->Transmit(QueryMsg(0, 7), 0.0);
  EXPECT_EQ(ta.latency_ms, tb.latency_ms);
  EXPECT_EQ(ta.radio_hops, tb.radio_hops);
  EXPECT_EQ(ta.reachable, tb.reachable);
  // A different seed produces a different placement.
  ChannelOptions reseeded = options;
  reseeded.seed ^= 0xabcdef;
  sim::NetworkStats stats_c;
  auto c = RadioChannel::Create(16, reseeded, &stats_c);
  ASSERT_TRUE(c.ok());
  bool any_moved = false;
  for (int i = 0; i < 16 && !any_moved; ++i) {
    any_moved = (*a)->topology().position(i) != (*c)->topology().position(i);
  }
  EXPECT_TRUE(any_moved);
}

TEST(MobilityProcessTest, TicksOnTheSimulatorClock) {
  sim::Simulator sim;
  sim::NetworkStats stats;
  ChannelOptions options = SmallField();
  options.speed_m_per_s = 2.0;
  options.tick_ms = 50.0;
  auto channel = RadioChannel::Create(8, options, &stats);
  ASSERT_TRUE(channel.ok());
  MobilityProcess mobility(&sim, channel->get());
  mobility.Start();
  mobility.Start();  // idempotent
  EXPECT_EQ(mobility.ticks(), 0u);
  sim.RunUntil(500.0);
  EXPECT_EQ(mobility.ticks(), 10u);
  EXPECT_EQ((*channel)->counters().mobility_steps, 10u);
  // Zero speed: Start is a no-op, the placement never changes.
  sim::Simulator still_sim;
  sim::NetworkStats still_stats;
  auto still = RadioChannel::Create(8, SmallField(), &still_stats);
  ASSERT_TRUE(still.ok());
  MobilityProcess parked(&still_sim, still->get());
  parked.Start();
  still_sim.RunUntil(500.0);
  EXPECT_EQ(parked.ticks(), 0u);
  EXPECT_EQ((*still)->counters().mobility_steps, 0u);
}

}  // namespace
}  // namespace hyperm::channel
