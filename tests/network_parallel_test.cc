// Determinism of the parallel build & query engine: every externally
// observable output — query results, traffic accounting, metric values,
// span structure — must be bit-identical at any thread count, because task
// RNG streams derive from (seed, peer, layer) and all ordered effects are
// drained on the orchestrating thread.

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperm::core {
namespace {

constexpr size_t kNumClasses = static_cast<size_t>(sim::TrafficClass::kCount_);

// Everything one deployment + query workload exposes to the outside world.
struct RunCapture {
  std::vector<PeerScore> scores;
  std::vector<ItemId> range_items;
  std::vector<ItemId> knn_items;
  std::vector<double> knn_radii;
  RangeQueryInfo range_info;
  KnnQueryInfo knn_info;
  std::vector<ItemId> post_republish_items;
  std::vector<uint64_t> publication_hops;
  uint64_t transport_messages = 0;
  std::array<uint64_t, kNumClasses> hops{};
  std::array<uint64_t, kNumClasses> bytes{};
  double energy_mj = 0.0;
  uint64_t queries_served = 0;
  obs::MetricsSnapshot metrics;
  std::vector<std::string> span_names;  // sorted multiset of span names
};

RunCapture RunWorkload(int num_threads, bool explicit_net_options = false,
                       bool radio_channel = false, bool csma_aodv = false) {
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Reset();

  Rng rng(606);
  data::MarkovOptions data_options;
  data_options.count = 500;
  data_options.dim = 64;
  data_options.num_families = 8;
  Result<data::Dataset> dataset = data::GenerateMarkov(data_options, rng);
  EXPECT_TRUE(dataset.ok());
  data::AssignmentOptions assign_options;
  assign_options.num_peers = 16;
  assign_options.num_interest_classes = 8;
  assign_options.min_peers_per_class = 4;
  assign_options.max_peers_per_class = 6;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(dataset.value(), assign_options, rng);
  EXPECT_TRUE(assignment.ok());

  HyperMOptions options;
  options.num_threads = num_threads;
  if (explicit_net_options) {
    // Reliable transport spelled out, with soft-state knobs set: none of it
    // may perturb the reliable path (no simulator → the knobs are inert).
    options.net = net::NetOptions{};
    options.net.unreliable = false;
    options.net.summary_ttl_ms = 500.0;
    options.net.republish_period_ms = 250.0;
  }
  if (radio_channel) {
    // The full stack under the transport: mobile radio field, transmit
    // queues, adaptive ARQ. Per-message RNG streams are consumed in issue
    // order and queue state advances with the (single-threaded) simulator,
    // so every observable must stay bit-identical at any thread count.
    options.net = net::NetOptions{};
    options.net.unreliable = true;
    options.net.retry.adaptive = true;
    options.net.faults.loss_rate = 0.05;
    options.net.faults.jitter_ms = 2.0;
    options.net.republish_period_ms = 250.0;
    options.channel.enabled = true;
    options.channel.field.field_size_m = 150.0;
    options.channel.field.radio_range_m = 70.0;
    options.channel.speed_m_per_s = 10.0;
    options.channel.tick_ms = 50.0;
    if (csma_aodv) {
      // The realistic underlay: CSMA/CA backoff draws come from per-node
      // SeedStream RNGs and AODV floods run on the simulator thread, so the
      // whole stack stays deterministic regardless of the pool size.
      options.channel.mac.kind = channel::MacOptions::Kind::kCsmaCa;
      options.channel.routing.kind = route::RoutingOptions::Kind::kAodv;
    }
  }
  Result<std::unique_ptr<HyperMNetwork>> net =
      HyperMNetwork::Build(dataset.value(), assignment.value(), options, rng);
  EXPECT_TRUE(net.ok()) << net.status().ToString();
  HyperMNetwork& network = *net.value();

  RunCapture cap;
  const Vector& q1 = dataset.value().items[7];
  const Vector& q2 = dataset.value().items[123];

  Result<std::vector<PeerScore>> scores = network.ScorePeers(q1, 0.8, 0);
  EXPECT_TRUE(scores.ok());
  cap.scores = std::move(scores).value();

  Result<std::vector<ItemId>> range =
      network.RangeQuery(q1, 0.8, 1, /*max_peers_contacted=*/-1, &cap.range_info);
  EXPECT_TRUE(range.ok());
  cap.range_items = std::move(range).value();

  KnnOptions knn_options;
  Result<std::vector<ItemId>> knn = network.KnnQuery(q2, 5, knn_options, 2, &cap.knn_info);
  EXPECT_TRUE(knn.ok());
  cap.knn_items = std::move(knn).value();
  cap.knn_radii = cap.knn_info.level_radii;

  // Post-creation churn: insert a deterministic item, republish, query again.
  Vector extra(network.data_dim(), 0.0);
  for (double& x : extra) x = rng.Uniform(0.0, 1.0);
  network.AddItemWithoutRepublish(0, 1 << 20, extra);
  EXPECT_TRUE(network.RepublishPeer(0, rng).ok());
  Result<std::vector<ItemId>> post = network.RangeQuery(extra, 0.5, 3);
  EXPECT_TRUE(post.ok());
  cap.post_republish_items = std::move(post).value();

  for (int p = 0; p < network.num_peers(); ++p) {
    cap.publication_hops.push_back(network.publication_hops(p));
  }
  cap.transport_messages = network.transport().counters().messages_sent;
  for (size_t c = 0; c < kNumClasses; ++c) {
    cap.hops[c] = network.stats().hops(static_cast<sim::TrafficClass>(c));
    cap.bytes[c] = network.stats().bytes(static_cast<sim::TrafficClass>(c));
  }
  cap.energy_mj = network.stats().total_energy_millijoules();
  cap.queries_served = network.stats().queries_served();
  cap.metrics = obs::MetricsRegistry::Global().Snapshot();
  for (const obs::SpanRecord& span : obs::Tracer::Global().spans()) {
    cap.span_names.push_back(span.name);
  }
  std::sort(cap.span_names.begin(), cap.span_names.end());
  return cap;
}

// Wall-clock histograms (…_us) are nondeterministic run to run; everything
// else in the registry must match exactly, including bucket counts and sums.
void ExpectMetricsIdentical(const obs::MetricsSnapshot& a,
                            const obs::MetricsSnapshot& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (const auto& [name, ha] : a.histograms) {
    const auto it = b.histograms.find(name);
    ASSERT_NE(it, b.histograms.end()) << name;
    const obs::HistogramSnapshot& hb = it->second;
    EXPECT_EQ(ha.count, hb.count) << name;
    if (name.find("_us") != std::string::npos) continue;
    EXPECT_EQ(ha.edges, hb.edges) << name;
    EXPECT_EQ(ha.counts, hb.counts) << name;
    EXPECT_EQ(ha.underflow, hb.underflow) << name;
    EXPECT_EQ(ha.overflow, hb.overflow) << name;
    EXPECT_EQ(ha.sum, hb.sum) << name;
    EXPECT_EQ(ha.min, hb.min) << name;
    EXPECT_EQ(ha.max, hb.max) << name;
  }
}

void ExpectRunsIdentical(const RunCapture& a, const RunCapture& b) {
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_EQ(a.scores[i].peer, b.scores[i].peer) << i;
    EXPECT_EQ(a.scores[i].score, b.scores[i].score) << i;
  }
  EXPECT_EQ(a.range_items, b.range_items);
  EXPECT_EQ(a.knn_items, b.knn_items);
  EXPECT_EQ(a.knn_radii, b.knn_radii);
  EXPECT_EQ(a.post_republish_items, b.post_republish_items);

  EXPECT_EQ(a.range_info.overlay_routing_hops, b.range_info.overlay_routing_hops);
  EXPECT_EQ(a.range_info.overlay_flood_hops, b.range_info.overlay_flood_hops);
  EXPECT_EQ(a.range_info.candidate_peers, b.range_info.candidate_peers);
  EXPECT_EQ(a.range_info.peers_contacted, b.range_info.peers_contacted);
  EXPECT_EQ(a.range_info.latency_ms, b.range_info.latency_ms);
  EXPECT_EQ(a.range_info.layers_lost, b.range_info.layers_lost);
  EXPECT_EQ(a.range_info.layers_detoured, b.range_info.layers_detoured);
  EXPECT_EQ(a.range_info.layers_deferred, b.range_info.layers_deferred);
  EXPECT_EQ(a.range_info.reissues, b.range_info.reissues);
  EXPECT_EQ(a.range_info.level_outcomes, b.range_info.level_outcomes);
  EXPECT_EQ(a.knn_info.range.level_outcomes, b.knn_info.range.level_outcomes);
  EXPECT_EQ(a.knn_info.range.latency_ms, b.knn_info.range.latency_ms);
  EXPECT_EQ(a.transport_messages, b.transport_messages);
  EXPECT_EQ(a.knn_info.range.overlay_routing_hops, b.knn_info.range.overlay_routing_hops);
  EXPECT_EQ(a.knn_info.range.overlay_flood_hops, b.knn_info.range.overlay_flood_hops);
  EXPECT_EQ(a.knn_info.items_requested, b.knn_info.items_requested);

  EXPECT_EQ(a.publication_hops, b.publication_hops);
  EXPECT_EQ(a.hops, b.hops);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
  EXPECT_EQ(a.queries_served, b.queries_served);
  ExpectMetricsIdentical(a.metrics, b.metrics);
  EXPECT_EQ(a.span_names, b.span_names);
}

TEST(NetworkParallelTest, BitIdenticalAcrossThreadCounts) {
  const RunCapture sequential = RunWorkload(1);
  // Sanity: the workload actually exercised the network.
  EXPECT_FALSE(sequential.scores.empty());
  EXPECT_FALSE(sequential.range_items.empty());
  EXPECT_FALSE(sequential.knn_items.empty());
  EXPECT_GT(sequential.queries_served, 0u);
#ifndef HYPERM_OBS_DISABLED
  EXPECT_FALSE(sequential.span_names.empty());
#endif

  const RunCapture two_threads = RunWorkload(2);
  ExpectRunsIdentical(sequential, two_threads);

  const RunCapture eight_threads = RunWorkload(8);
  ExpectRunsIdentical(sequential, eight_threads);
}

// With the obs kill switch on there is nothing to record; the determinism
// tests above still run in full.
#ifndef HYPERM_OBS_DISABLED
TEST(NetworkParallelTest, PoolMetricsAreRecorded) {
  const RunCapture run = RunWorkload(2);
  const auto tasks = run.metrics.counters.find("pool.tasks");
  ASSERT_NE(tasks, run.metrics.counters.end());
  EXPECT_GT(tasks->second, 0u);
  const auto wall = run.metrics.histograms.find("pool.wall_us");
  ASSERT_NE(wall, run.metrics.histograms.end());
  EXPECT_GT(wall->second.count, 0u);
}
#endif

TEST(NetworkParallelTest, DefaultThreadCountMatchesSequentialResults) {
  // num_threads = 0 resolves to hardware concurrency; results still match.
  const RunCapture sequential = RunWorkload(1);
  const RunCapture defaulted = RunWorkload(0);
  ExpectRunsIdentical(sequential, defaulted);
}

TEST(NetworkParallelTest, ExplicitReliableTransportIsBitIdentical) {
  // Spelling out NetOptions (reliable, with soft-state knobs set) must not
  // change a single observable — results, traffic, metrics, latencies — at
  // any thread count. This is the transport subsystem's compatibility
  // contract: ReliableTransport == the historical direct-stats behavior.
  const RunCapture implicit_seq = RunWorkload(1);
  const RunCapture explicit_seq = RunWorkload(1, /*explicit_net_options=*/true);
  ExpectRunsIdentical(implicit_seq, explicit_seq);
  const RunCapture explicit_par = RunWorkload(8, /*explicit_net_options=*/true);
  ExpectRunsIdentical(implicit_seq, explicit_par);
  // The reliable path never reports faults.
  EXPECT_EQ(explicit_seq.range_info.layers_lost, 0);
}

TEST(NetworkParallelTest, RadioChannelRunsBitIdenticalAcrossThreadCounts) {
  const RunCapture sequential =
      RunWorkload(1, /*explicit_net_options=*/false, /*radio_channel=*/true);
  EXPECT_FALSE(sequential.scores.empty());
  EXPECT_FALSE(sequential.range_items.empty());
  EXPECT_GT(sequential.transport_messages, 0u);
  const RunCapture eight_threads =
      RunWorkload(8, /*explicit_net_options=*/false, /*radio_channel=*/true);
  ExpectRunsIdentical(sequential, eight_threads);
}

TEST(NetworkParallelTest, CsmaAodvRunsBitIdenticalAcrossThreadCounts) {
  // Non-default underlay (CSMA/CA MAC + AODV routing): backoff, collision
  // and discovery randomness all live in dedicated per-node streams, so the
  // swap must not reintroduce thread-count sensitivity.
  const RunCapture sequential = RunWorkload(
      1, /*explicit_net_options=*/false, /*radio_channel=*/true,
      /*csma_aodv=*/true);
  EXPECT_FALSE(sequential.scores.empty());
  EXPECT_FALSE(sequential.range_items.empty());
  EXPECT_GT(sequential.transport_messages, 0u);
  const RunCapture eight_threads = RunWorkload(
      8, /*explicit_net_options=*/false, /*radio_channel=*/true,
      /*csma_aodv=*/true);
  ExpectRunsIdentical(sequential, eight_threads);
}

}  // namespace
}  // namespace hyperm::core
