#include "data/dataset_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/markov_generator.h"

namespace hyperm::data {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  Dataset SampleDataset() {
    Rng rng(1);
    MarkovOptions options;
    options.count = 50;
    options.dim = 16;
    options.num_families = 4;
    Result<Dataset> ds = GenerateMarkov(options, rng);
    EXPECT_TRUE(ds.ok());
    return std::move(ds).value();
  }
};

TEST_F(DatasetIoTest, CsvRoundTrip) {
  const Dataset original = SampleDataset();
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(original, path).ok());
  Result<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->dim(), original.dim());
  EXPECT_EQ(loaded->labels, original.labels);
  for (size_t i = 0; i < original.size(); ++i) {
    for (size_t j = 0; j < original.dim(); ++j) {
      EXPECT_DOUBLE_EQ(loaded->items[i][j], original.items[i][j]);
    }
  }
}

TEST_F(DatasetIoTest, CsvWithoutLabels) {
  Dataset unlabeled;
  unlabeled.items = {{1.0, 2.0}, {3.0, 4.0}};
  const std::string path = TempPath("unlabeled.csv");
  ASSERT_TRUE(WriteCsv(unlabeled, path).ok());
  Result<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->has_labels());
  EXPECT_EQ(loaded->items, unlabeled.items);
}

TEST_F(DatasetIoTest, CsvRejectsInconsistentDimensions) {
  const std::string path = TempPath("ragged.csv");
  {
    std::ofstream out(path);
    out << "0,1.0,2.0\n0,1.0\n";
  }
  Result<Dataset> loaded = ReadCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, CsvRejectsGarbage) {
  const std::string path = TempPath("garbage.csv");
  {
    std::ofstream out(path);
    out << "0,1.0,banana\n";
  }
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST_F(DatasetIoTest, CsvMissingFileIsUnavailable) {
  Result<Dataset> loaded = ReadCsv(TempPath("does_not_exist.csv"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
}

TEST_F(DatasetIoTest, BinaryRoundTripExact) {
  const Dataset original = SampleDataset();
  const std::string path = TempPath("roundtrip.hmd");
  ASSERT_TRUE(WriteBinary(original, path).ok());
  Result<Dataset> loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->items, original.items);  // bit-exact
  EXPECT_EQ(loaded->labels, original.labels);
}

TEST_F(DatasetIoTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath("notmagic.hmd");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTHYPERM-at-all";
  }
  Result<Dataset> loaded = ReadBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, BinaryRejectsTruncation) {
  const Dataset original = SampleDataset();
  const std::string full = TempPath("full.hmd");
  ASSERT_TRUE(WriteBinary(original, full).ok());
  // Copy all but the last 100 bytes.
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes.resize(bytes.size() - 100);
  const std::string truncated = TempPath("truncated.hmd");
  {
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(ReadBinary(truncated).ok());
}

}  // namespace
}  // namespace hyperm::data
