// End-to-end property test of Theorem 4.1: a Hyper-M range query that
// contacts every positive-score candidate peer NEVER misses an item that an
// exact centralized search would return — across datasets, seeds, layer
// counts and cluster granularities.

#include <memory>

#include <gtest/gtest.h>

#include "data/histogram_generator.h"
#include "data/markov_generator.h"
#include "data/peer_assignment.h"
#include "hyperm/eval.h"
#include "hyperm/flat_index.h"
#include "hyperm/network.h"

namespace hyperm::core {
namespace {

struct Config {
  int num_layers;
  int clusters_per_peer;
  bool histogram_data;
  uint64_t seed;
};

class NoFalseDismissal : public ::testing::TestWithParam<Config> {};

TEST_P(NoFalseDismissal, RangeRecallIsPerfectWithFullContact) {
  const Config config = GetParam();
  Rng rng(config.seed);

  data::Dataset dataset;
  if (config.histogram_data) {
    data::HistogramOptions options;
    options.num_objects = 60;
    options.views_per_object = 8;
    options.dim = 64;
    Result<data::Dataset> ds = data::GenerateHistograms(options, rng);
    ASSERT_TRUE(ds.ok());
    dataset = std::move(ds).value();
  } else {
    data::MarkovOptions options;
    options.count = 500;
    options.dim = 64;
    options.num_families = 6;
    Result<data::Dataset> ds = data::GenerateMarkov(options, rng);
    ASSERT_TRUE(ds.ok());
    dataset = std::move(ds).value();
  }

  data::AssignmentOptions assign_options;
  assign_options.num_peers = 12;
  assign_options.num_interest_classes = 6;
  assign_options.min_peers_per_class = 3;
  assign_options.max_peers_per_class = 5;
  Result<data::PeerAssignment> assignment =
      data::AssignByInterest(dataset, assign_options, rng);
  ASSERT_TRUE(assignment.ok());

  HyperMOptions options;
  options.num_layers = config.num_layers;
  options.clusters_per_peer = config.clusters_per_peer;
  Result<std::unique_ptr<HyperMNetwork>> net =
      HyperMNetwork::Build(dataset, *assignment, options, rng);
  ASSERT_TRUE(net.ok()) << net.status().ToString();

  const FlatIndex oracle(dataset);
  for (int q = 0; q < 15; ++q) {
    const size_t query_index = (static_cast<size_t>(q) * 31 + 7) % dataset.size();
    const Vector& query = dataset.items[query_index];
    // Radii from tight (5-NN) to loose (50-NN).
    for (int k : {5, 20, 50}) {
      const double eps = oracle.KnnRadius(query, k);
      Result<std::vector<ItemId>> retrieved =
          (*net)->RangeQuery(query, eps, /*querying_peer=*/q % 12,
                             /*max_peers_contacted=*/-1);
      ASSERT_TRUE(retrieved.ok()) << retrieved.status().ToString();
      const std::vector<ItemId> truth = oracle.RangeSearch(query, eps);
      const PrecisionRecall pr = Evaluate(*retrieved, truth);
      EXPECT_DOUBLE_EQ(pr.recall, 1.0)
          << "FALSE DISMISSAL: query " << query_index << " k " << k << " layers "
          << config.num_layers << " clusters " << config.clusters_per_peer;
      EXPECT_DOUBLE_EQ(pr.precision, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoFalseDismissal,
    ::testing::Values(Config{1, 10, false, 11}, Config{2, 10, false, 12},
                      Config{4, 10, false, 13}, Config{4, 5, false, 14},
                      Config{4, 20, false, 15}, Config{6, 10, false, 16},
                      Config{4, 10, true, 17}, Config{2, 5, true, 18}),
    [](const ::testing::TestParamInfo<Config>& info) {
      const Config& c = info.param;
      return "layers" + std::to_string(c.num_layers) + "_k" +
             std::to_string(c.clusters_per_peer) + (c.histogram_data ? "_hist" : "_markov");
    });

}  // namespace
}  // namespace hyperm::core
