#include "hyperm/baseline.h"

#include <gtest/gtest.h>

#include "data/markov_generator.h"

namespace hyperm::core {
namespace {

struct BaselineBed {
  data::Dataset dataset;
  data::PeerAssignment assignment;
};

BaselineBed MakeBed(int items = 600, int dim = 32, int peers = 12, uint64_t seed = 1) {
  Rng rng(seed);
  data::MarkovOptions options;
  options.count = items;
  options.dim = dim;
  options.num_families = 6;
  Result<data::Dataset> ds = data::GenerateMarkov(options, rng);
  EXPECT_TRUE(ds.ok());
  Result<data::PeerAssignment> assignment = data::AssignUniform(*ds, peers, rng);
  EXPECT_TRUE(assignment.ok());
  return BaselineBed{std::move(ds).value(), std::move(assignment).value()};
}

TEST(CanItemBaselineTest, RejectsBadInput) {
  Rng rng(1);
  BaselineBed setup = MakeBed();
  ItemBaselineOptions options;
  options.index_dims = 1000;  // larger than data dim
  EXPECT_FALSE(CanItemBaseline::Build(setup.dataset, setup.assignment, options, rng).ok());
  EXPECT_FALSE(
      CanItemBaseline::Build(data::Dataset{}, setup.assignment, {}, rng).ok());
}

TEST(CanItemBaselineTest, InsertsEveryItem) {
  Rng rng(2);
  BaselineBed setup = MakeBed();
  Result<std::unique_ptr<CanItemBaseline>> baseline =
      CanItemBaseline::Build(setup.dataset, setup.assignment, {}, rng);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ((*baseline)->items_inserted(), 600);
  // Every item stored somewhere in the overlay.
  int stored = 0;
  for (const overlay::NodeStorage& s : (*baseline)->overlay().StorageDistribution()) {
    stored += s.clusters;
  }
  EXPECT_EQ(stored, 600);  // radius-0 keys are never replicated
}

TEST(CanItemBaselineTest, FullDimensionalIndexByDefault) {
  Rng rng(3);
  BaselineBed setup = MakeBed(200, 16, 8);
  Result<std::unique_ptr<CanItemBaseline>> baseline =
      CanItemBaseline::Build(setup.dataset, setup.assignment, {}, rng);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ((*baseline)->overlay().dim(), 16u);
}

TEST(CanItemBaselineTest, TwoDimensionalVariant) {
  Rng rng(4);
  BaselineBed setup = MakeBed(200, 16, 8);
  ItemBaselineOptions options;
  options.index_dims = 2;
  Result<std::unique_ptr<CanItemBaseline>> baseline =
      CanItemBaseline::Build(setup.dataset, setup.assignment, options, rng);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ((*baseline)->overlay().dim(), 2u);
}

TEST(CanItemBaselineTest, HopAccountingConsistent) {
  Rng rng(5);
  BaselineBed setup = MakeBed(300, 8, 10);
  Result<std::unique_ptr<CanItemBaseline>> baseline =
      CanItemBaseline::Build(setup.dataset, setup.assignment, {}, rng);
  ASSERT_TRUE(baseline.ok());
  const auto& stats = (*baseline)->stats();
  EXPECT_EQ(stats.hops(sim::TrafficClass::kReplicate), 0u);
  EXPECT_NEAR((*baseline)->average_insert_hops_per_item(),
              static_cast<double>(stats.hops(sim::TrafficClass::kInsert)) / 300.0,
              1e-12);
}

}  // namespace
}  // namespace hyperm::core
