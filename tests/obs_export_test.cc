#include "obs/export.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperm::obs {
namespace {

MetricsSnapshot SampleSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("net.hops").Add(12);
  registry.GetGauge("build.num_peers").Set(50.0);
  Histogram& h = registry.GetHistogram("can.route_hops", Buckets::Linear(0.0, 8.0, 4));
  h.Observe(1.0);
  h.Observe(3.0);
  h.Observe(100.0);  // overflow
  return registry.Snapshot();
}

std::vector<SpanRecord> SampleSpans() {
  Tracer tracer;
  const int build = tracer.Begin("build");
  tracer.End(tracer.Begin("build/publish"));
  tracer.End(build);
  return tracer.spans();
}

TEST(JsonTest, ParseRoundTripsDump) {
  Json obj = Json::Object();
  obj.Set("name", Json("hello \"quoted\"\n"));
  obj.Set("value", Json(42));
  obj.Set("fraction", Json(0.5));
  obj.Set("flag", Json(true));
  Json arr = Json::Array();
  arr.Append(Json());
  arr.Append(Json(-3));
  obj.Set("list", std::move(arr));

  Result<Json> back = Json::Parse(obj.Dump());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Dump(), obj.Dump());
  EXPECT_EQ(back->Find("name")->as_string(), "hello \"quoted\"\n");
  EXPECT_DOUBLE_EQ(back->Find("value")->as_number(), 42.0);
  EXPECT_TRUE(back->Find("list")->items()[0].is_null());
}

TEST(JsonTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{} trailing").ok());
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  Json obj = Json::Object();
  obj.Set("a", Json(std::numeric_limits<double>::infinity()));
  obj.Set("b", Json(std::nan("")));
  const std::string text = obj.Dump();
  EXPECT_EQ(text, "{\"a\":null,\"b\":null}");
  Result<Json> back = Json::Parse(text);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Find("a")->is_null());
}

TEST(ExportTest, ReportCarriesSchemaAndMeta) {
  RunMeta meta;
  meta.bench = "unit_test";
  meta.scale = "paper";
  meta.extra["nodes"] = "100";
  const Json report = ReportToJson(meta, SampleSnapshot(), SampleSpans(), 3);
  EXPECT_EQ(static_cast<int>(report.Find("schema_version")->as_number()),
            kReportSchemaVersion);
  const Json* run_meta = report.Find("run_meta");
  EXPECT_EQ(run_meta->Find("bench")->as_string(), "unit_test");
  EXPECT_EQ(run_meta->Find("scale")->as_string(), "paper");
  EXPECT_EQ(run_meta->Find("nodes")->as_string(), "100");
  EXPECT_EQ(report.Find("spans")->items().size(), 2u);
  EXPECT_DOUBLE_EQ(report.Find("dropped_spans")->as_number(), 3.0);
}

TEST(ExportTest, MetricsRoundTripThroughJson) {
  const MetricsSnapshot original = SampleSnapshot();
  const Json report = ReportToJson(RunMeta{}, original, {}, 0);
  Result<Json> reparsed = Json::Parse(report.Dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  Result<MetricsSnapshot> restored = MetricsFromJson(*reparsed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->counters, original.counters);
  EXPECT_EQ(restored->gauges, original.gauges);
  ASSERT_EQ(restored->histograms.size(), 1u);
  const HistogramSnapshot& h = restored->histograms.at("can.route_hops");
  const HistogramSnapshot& o = original.histograms.at("can.route_hops");
  EXPECT_EQ(h.edges, o.edges);
  EXPECT_EQ(h.counts, o.counts);
  EXPECT_EQ(h.overflow, o.overflow);
  EXPECT_EQ(h.count, o.count);
  EXPECT_DOUBLE_EQ(h.sum, o.sum);
  EXPECT_DOUBLE_EQ(h.min, o.min);
  EXPECT_DOUBLE_EQ(h.max, o.max);
}

TEST(ExportTest, HistogramJsonCarriesTailQuantiles) {
  // Satellite of the flight-recorder PR: exported histograms surface
  // p50/p95/p99 so reports expose tail latency, not just the mean.
  const Json report = ReportToJson(RunMeta{}, SampleSnapshot(), {}, 0);
  const Json* h =
      report.Find("metrics")->Find("histograms")->Find("can.route_hops");
  ASSERT_NE(h, nullptr);
  // Observations 1, 3, 100 (overflow): the median interpolates inside the
  // [2,4) bucket; the tail ranks land in the overflow bucket and report max.
  EXPECT_DOUBLE_EQ(h->Find("p50")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(h->Find("p95")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(h->Find("p99")->as_number(), 100.0);
}

TEST(ExportTest, EmptyHistogramRoundTripsInfiniteMinMax) {
  MetricsRegistry registry;
  registry.GetHistogram("empty", Buckets::Linear(0.0, 1.0, 1));
  const Json report = ReportToJson(RunMeta{}, registry.Snapshot(), {}, 0);
  Result<MetricsSnapshot> restored = MetricsFromJson(report);
  ASSERT_TRUE(restored.ok());
  const HistogramSnapshot& h = restored->histograms.at("empty");
  EXPECT_EQ(h.count, 0u);
  EXPECT_TRUE(std::isinf(h.min) && h.min > 0);
  EXPECT_TRUE(std::isinf(h.max) && h.max < 0);
}

TEST(ExportTest, EmptyHistogramReportsNoQuantiles) {
  // Satellite of the serving PR: an empty histogram has no order statistics,
  // so the report must omit p50/p95/p99 entirely instead of emitting a
  // misleading 0.0 (a zero-valued p99 reads as "everything was instant").
  MetricsRegistry registry;
  registry.GetHistogram("empty", Buckets::Linear(0.0, 1.0, 1));
  const Json report = ReportToJson(RunMeta{}, registry.Snapshot(), {}, 0);
  const Json* h = report.Find("metrics")->Find("histograms")->Find("empty");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Find("p50"), nullptr);
  EXPECT_EQ(h->Find("p95"), nullptr);
  EXPECT_EQ(h->Find("p99"), nullptr);
  // One observation is enough to bring the quantile keys back.
  registry.GetHistogram("empty", Buckets::Linear(0.0, 1.0, 1)).Observe(0.5);
  const Json again = ReportToJson(RunMeta{}, registry.Snapshot(), {}, 0);
  EXPECT_NE(
      again.Find("metrics")->Find("histograms")->Find("empty")->Find("p50"),
      nullptr);
}

TEST(ExportTest, MetricsFromJsonAcceptsBareMetricsObject) {
  const Json report = ReportToJson(RunMeta{}, SampleSnapshot(), {}, 0);
  Result<MetricsSnapshot> restored = MetricsFromJson(*report.Find("metrics"));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->counters.at("net.hops"), 12u);
}

TEST(ExportTest, CsvViews) {
  const std::string metrics_csv = MetricsToCsv(SampleSnapshot());
  EXPECT_NE(metrics_csv.find("kind,name,value"), std::string::npos);
  EXPECT_NE(metrics_csv.find("counter,net.hops,12"), std::string::npos);
  EXPECT_NE(metrics_csv.find("histogram_count,can.route_hops,3"), std::string::npos);

  const std::string spans_csv = SpansToCsv(SampleSpans());
  EXPECT_NE(spans_csv.find("id,parent,depth,name,start_us,dur_us"),
            std::string::npos);
  EXPECT_NE(spans_csv.find("build/publish"), std::string::npos);
}

TEST(ExportTest, WriteReportFileProducesParseableJson) {
  const std::string path = ::testing::TempDir() + "/obs_export_test_report.json";
  const Status status =
      WriteReportFile(path, RunMeta{"file_test"}, SampleSnapshot(), SampleSpans());
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Json> parsed = Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("run_meta")->Find("bench")->as_string(), "file_test");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hyperm::obs
