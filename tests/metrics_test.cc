#include "cluster/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "common/rng.h"

namespace hyperm::cluster {
namespace {

TEST(MetricsTest, CohesionOfPerfectClusters) {
  std::vector<Vector> points{{0.0}, {0.0}, {10.0}, {10.0}};
  std::vector<int> assignments{0, 0, 1, 1};
  std::vector<SphereCluster> clusters{
      {{0.0}, 0.0, 2},
      {{10.0}, 0.0, 2},
  };
  EXPECT_DOUBLE_EQ(Cohesion(points, assignments, clusters), 0.0);
}

TEST(MetricsTest, CohesionAveragesDistances) {
  std::vector<Vector> points{{-1.0}, {1.0}};
  std::vector<int> assignments{0, 0};
  std::vector<SphereCluster> clusters{{{0.0}, 1.0, 2}};
  EXPECT_DOUBLE_EQ(Cohesion(points, assignments, clusters), 1.0);
}

TEST(MetricsTest, SeparationPairwiseMean) {
  std::vector<SphereCluster> clusters{
      {{0.0}, 0.0, 1}, {{2.0}, 0.0, 1}, {{4.0}, 0.0, 1}};
  // Pairwise distances 2, 4, 2 -> mean 8/3.
  EXPECT_NEAR(Separation(clusters), 8.0 / 3.0, 1e-12);
}

TEST(MetricsTest, SeparationDegenerate) {
  EXPECT_EQ(Separation({}), 0.0);
  EXPECT_EQ(Separation({{{1.0}, 0.0, 5}}), 0.0);
}

TEST(MetricsTest, QualityRatioLowerIsBetter) {
  std::vector<Vector> tight{{0.0}, {0.1}, {9.9}, {10.0}};
  std::vector<int> assignments{0, 0, 1, 1};
  std::vector<SphereCluster> tight_clusters{{{0.05}, 0.05, 2}, {{9.95}, 0.05, 2}};
  const double good = QualityRatio(tight, assignments, tight_clusters);

  std::vector<Vector> loose{{0.0}, {4.0}, {6.0}, {10.0}};
  std::vector<SphereCluster> loose_clusters{{{2.0}, 2.0, 2}, {{8.0}, 2.0, 2}};
  const double bad = QualityRatio(loose, assignments, loose_clusters);
  EXPECT_LT(good, bad);
}

TEST(MetricsTest, QualityRatioInfiniteWithoutSeparation) {
  std::vector<Vector> points{{0.0}, {1.0}};
  std::vector<int> assignments{0, 0};
  std::vector<SphereCluster> one{{{0.5}, 0.5, 2}};
  EXPECT_TRUE(std::isinf(QualityRatio(points, assignments, one)));
}

TEST(MetricsTest, EndToEndWithKMeans) {
  Rng rng(1);
  std::vector<Vector> points;
  for (int blob = 0; blob < 2; ++blob) {
    for (int i = 0; i < 40; ++i) {
      points.push_back({blob * 20.0 + rng.Gaussian(0.0, 0.5)});
    }
  }
  KMeansOptions options;
  options.k = 2;
  Result<KMeansResult> r = KMeans(points, options, rng);
  ASSERT_TRUE(r.ok());
  const double ratio = QualityRatio(points, r->assignments, r->clusters);
  // Tight blobs 20 apart: cohesion ~0.4, separation ~20.
  EXPECT_LT(ratio, 0.1);
}

}  // namespace
}  // namespace hyperm::cluster
