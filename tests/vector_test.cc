#include "vec/vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hyperm {
namespace {

TEST(VectorOpsTest, AddSubScale) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{0.5, -1.0, 2.0};
  EXPECT_EQ(vec::Add(a, b), (Vector{1.5, 1.0, 5.0}));
  EXPECT_EQ(vec::Sub(a, b), (Vector{0.5, 3.0, 1.0}));
  EXPECT_EQ(vec::Scale(a, 2.0), (Vector{2.0, 4.0, 6.0}));
}

TEST(VectorOpsTest, InPlaceVariants) {
  Vector a{1.0, 2.0};
  vec::AddInPlace(a, Vector{1.0, 1.0});
  EXPECT_EQ(a, (Vector{2.0, 3.0}));
  vec::ScaleInPlace(a, 0.5);
  EXPECT_EQ(a, (Vector{1.0, 1.5}));
}

TEST(VectorOpsTest, DotAndNorms) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(vec::Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(vec::SquaredNorm(a), 25.0);
  EXPECT_DOUBLE_EQ(vec::Norm(a), 5.0);
}

TEST(VectorOpsTest, Distances) {
  Vector a{0.0, 0.0};
  Vector b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(vec::Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(vec::SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(vec::L1Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(vec::LinfDistance(a, b), 4.0);
}

TEST(VectorOpsTest, DistanceSymmetryAndIdentity) {
  Vector a{1.0, -2.0, 0.5};
  Vector b{-1.0, 4.0, 2.5};
  EXPECT_DOUBLE_EQ(vec::Distance(a, b), vec::Distance(b, a));
  EXPECT_DOUBLE_EQ(vec::Distance(a, a), 0.0);
}

TEST(VectorOpsTest, TriangleInequality) {
  Vector a{1.0, 0.0};
  Vector b{0.0, 1.0};
  Vector c{-1.0, -1.0};
  EXPECT_LE(vec::Distance(a, c), vec::Distance(a, b) + vec::Distance(b, c) + 1e-12);
}

TEST(VectorOpsTest, Mean) {
  std::vector<Vector> points{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(vec::Mean(points), (Vector{3.0, 4.0}));
}

TEST(VectorOpsTest, NormalizeL1) {
  Vector a{1.0, 3.0};
  vec::NormalizeL1InPlace(a);
  EXPECT_DOUBLE_EQ(a[0] + a[1], 1.0);
  Vector zero{0.0, 0.0};
  vec::NormalizeL1InPlace(zero);
  EXPECT_EQ(zero, (Vector{0.0, 0.0}));
}

TEST(BoundsTest, UnitBounds) {
  Bounds b = Bounds::Unit(3);
  EXPECT_EQ(b.dim(), 3u);
  EXPECT_TRUE(b.Contains(Vector{0.5, 0.0, 1.0}));
  EXPECT_FALSE(b.Contains(Vector{1.5, 0.0, 0.0}));
}

TEST(BoundsTest, OfPointsIsTight) {
  std::vector<Vector> points{{1.0, -2.0}, {3.0, 0.0}, {2.0, 5.0}};
  Bounds b = Bounds::Of(points);
  EXPECT_EQ(b.lo, (Vector{1.0, -2.0}));
  EXPECT_EQ(b.hi, (Vector{3.0, 5.0}));
  for (const Vector& p : points) EXPECT_TRUE(b.Contains(p));
}

TEST(BoundsTest, ExtendGrows) {
  Bounds b = Bounds::Of({{0.0, 0.0}});
  b.Extend(Vector{-1.0, 2.0});
  EXPECT_EQ(b.lo, (Vector{-1.0, 0.0}));
  EXPECT_EQ(b.hi, (Vector{0.0, 2.0}));
}

TEST(BoundsTest, InflateStrictlyContainsBoundary) {
  std::vector<Vector> points{{0.0, 0.0}, {1.0, 1.0}};
  Bounds b = Bounds::Of(points);
  b.Inflate(0.1);
  EXPECT_LT(b.lo[0], 0.0);
  EXPECT_GT(b.hi[0], 1.0);
}

TEST(BoundsTest, InflateHandlesDegenerateDimension) {
  std::vector<Vector> points{{0.5, 1.0}, {0.5, 2.0}};  // dim 0 has zero width
  Bounds b = Bounds::Of(points);
  b.Inflate(0.05);
  EXPECT_LT(b.lo[0], 0.5);
  EXPECT_GT(b.hi[0], 0.5);
}

}  // namespace
}  // namespace hyperm
